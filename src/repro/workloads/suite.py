"""The single-operator benchmark suite (paper Sec. V-A, Fig. 10).

Operators are extracted from real DNN workloads — BERT, GPT-2, ResNet-50,
VGG — with a variety of shapes; all use half precision and run on tensor
cores. Shapes follow the paper where it states them (e.g. MM_RN50_FC has a
1024x64 output with a 2048 reduction axis) and standard model dimensions
elsewhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import DegradationEvent, ReproError
from ..ops.bmm import bmm_spec
from ..ops.conv2d import Conv2dShape, conv2d_spec
from ..ops.matmul import matmul_spec
from ..tensor.operation import GemmSpec

__all__ = [
    "OPERATOR_SUITE",
    "DEGRADATION_LADDER",
    "suite_specs",
    "get_operator",
    "degraded_best",
]

#: Variant ladder the suite runner steps down when an operator cannot be
#: measured at its preferred variant (subset of
#: :data:`repro.core.compiler.VARIANTS` — the ablation variants share
#: alcop's failure modes, so the suite skips straight to the baselines).
DEGRADATION_LADDER = ("alcop", "tvm-db", "tvm")


def _build_suite() -> Dict[str, GemmSpec]:
    ops: Dict[str, GemmSpec] = {}

    def add(spec: GemmSpec) -> None:
        ops[spec.name] = spec

    # -- MatMuls ---------------------------------------------------------------
    # BERT-base, seq 512, hidden 768: feed-forward layers.
    add(matmul_spec("MM_BERT_FC1", m=512, n=3072, k=768))
    add(matmul_spec("MM_BERT_FC2", m=512, n=768, k=3072))
    add(matmul_spec("MM_BERT_QKV", m=512, n=2304, k=768))
    # GPT-2 (124M), seq 1024, hidden 768.
    add(matmul_spec("MM_GPT2_FC1", m=1024, n=3072, k=768))
    # ResNet-50 classifier: small output (1024x64), long reduction (2048) —
    # the paper's largest-speedup case.
    add(matmul_spec("MM_RN50_FC", m=1024, n=64, k=2048))
    # A large-output 1x1 convolution (abundant inter-tile parallelism, so
    # little benefit from pipelining per the paper's insight).
    add(
        conv2d_spec(
            "MM_Conv1x1_1",
            Conv2dShape(n=16, c=256, h=56, w=56, k=64, r=1, s=1),
        )
    )

    # -- Batched MatMuls ---------------------------------------------------------
    # BERT attention, 12 heads, seq 512, head dim 64.
    add(bmm_spec("BMM_BERT_QK", batch=12, m=512, n=512, k=64))  # short reduction
    add(bmm_spec("BMM_BERT_SV", batch=12, m=512, n=64, k=512))  # long reduction
    # GPT-2 attention, 12 heads, seq 1024.
    add(bmm_spec("BMM_GPT2_QK", batch=12, m=1024, n=1024, k=64))
    add(bmm_spec("BMM_GPT2_SV", batch=12, m=1024, n=64, k=1024))

    # -- Convolutions (implicit GEMM) ---------------------------------------------
    add(
        conv2d_spec(
            "Conv_RN50_3x3",
            Conv2dShape(n=16, c=128, h=28, w=28, k=128, r=3, s=3, padding=1),
        )
    )
    add(
        conv2d_spec(
            "Conv_VGG_3x3",
            Conv2dShape(n=8, c=256, h=28, w=28, k=512, r=3, s=3, padding=1),
        )
    )
    return ops


OPERATOR_SUITE: Dict[str, GemmSpec] = _build_suite()


def suite_specs() -> List[GemmSpec]:
    """All suite operators in canonical order."""
    return list(OPERATOR_SUITE.values())


def get_operator(name: str) -> GemmSpec:
    try:
        return OPERATOR_SUITE[name]
    except KeyError:
        raise KeyError(f"unknown operator {name!r}; choose from {sorted(OPERATOR_SUITE)}")


def degraded_best(
    measurer,
    spec: GemmSpec,
    space: Sequence,
    variant: str = "alcop",
    events: Optional[List[DegradationEvent]] = None,
) -> Tuple[Optional[object], float, str]:
    """Exhaustive best over ``space`` restricted to ``variant``, stepping
    down :data:`DEGRADATION_LADDER` when a rung fails (empty restricted
    space, every candidate failing to compile, injected faults).

    Returns ``(config, latency_us, variant_used)``; when even ``tvm``
    fails the op is priced by the backend-independent roofline fallback
    (``config is None``, ``variant_used == "roofline"``). Each ladder step
    is appended to ``events`` when given.
    """
    from ..models.runtime import roofline_fallback_latency
    from ..tuning.space import restrict_space

    start = DEGRADATION_LADDER.index(variant) if variant in DEGRADATION_LADDER else 0
    ladder = DEGRADATION_LADDER[start:]
    for i, rung in enumerate(ladder):
        try:
            cfg, latency = measurer.best(spec, restrict_space(list(space), rung))
            return cfg, latency, rung
        except (ReproError, ValueError) as e:
            next_rung = ladder[i + 1] if i + 1 < len(ladder) else "roofline"
            if events is not None:
                events.append(
                    DegradationEvent(
                        op=spec.name,
                        from_variant=rung,
                        to_variant=next_rung,
                        stage=getattr(e, "stage", "unknown"),
                        reason=str(e).splitlines()[0] if str(e) else repr(e),
                    )
                )
    return None, roofline_fallback_latency(spec, measurer.gpu), "roofline"

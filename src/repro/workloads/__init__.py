"""The paper's operator benchmark suite."""

from .suite import OPERATOR_SUITE, get_operator, suite_specs

__all__ = ["OPERATOR_SUITE", "get_operator", "suite_specs"]

"""ALCOP reproduction: automatic load-compute pipelining for AI-GPU tensor
programs (MLSys 2023).

Quick start::

    from repro import AlcopCompiler, matmul_spec

    compiler = AlcopCompiler()
    kernel = compiler.compile(matmul_spec("my_mm", 1024, 1024, 1024))
    print(kernel.latency_us, kernel.config)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.ir` — chunk-granularity tensor IR;
* :mod:`repro.tensor` / :mod:`repro.schedule` — tensor graph and schedule
  transformation (pipelining detection rules, Sec. II);
* :mod:`repro.codegen` / :mod:`repro.transform` — lowering and the
  pipelining program transformation (Sec. III);
* :mod:`repro.interp` — functional + pipeline-semantics interpreters;
* :mod:`repro.gpusim` — the simulated A100 evaluation platform;
* :mod:`repro.perfmodel` / :mod:`repro.tuning` — analytical model and the
  auto-tuners (Sec. IV);
* :mod:`repro.ops` / :mod:`repro.workloads` / :mod:`repro.models` —
  operators, the Fig. 10 suite and the Table III model zoo;
* :mod:`repro.baselines` — TVM-like, XLA-like and library baselines;
* :mod:`repro.core` — the top-level ALCOP compiler driver (Fig. 4).
"""

from .core.compiler import AlcopCompiler, CompiledKernel
from .gpusim.config import A100, GpuSpec
from .ops.bmm import bmm_spec
from .ops.conv2d import Conv2dShape, conv2d_spec
from .ops.matmul import matmul_spec
from .schedule.config import TileConfig
from .tensor.operation import GemmSpec

__version__ = "0.1.0"

__all__ = [
    "AlcopCompiler",
    "CompiledKernel",
    "A100",
    "GpuSpec",
    "bmm_spec",
    "Conv2dShape",
    "conv2d_spec",
    "matmul_spec",
    "TileConfig",
    "GemmSpec",
    "__version__",
]

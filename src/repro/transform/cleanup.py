"""Post-pipelining cleanup passes: unrolling and index simplification.

Two classic passes completing the transformation pipeline:

* :func:`unroll_pass` — fully unrolls loops marked ``UNROLLED`` (and,
  optionally, short serial loops), substituting the iteration variable.
  Per the paper's rule 2 a *pipelined* loop is never unrolled — the
  pipelining analysis only accepts ``SERIAL`` loops, and this pass runs
  after it, so the two compose safely in either formal order.

* :func:`simplify_pass` — re-simplifies every index/condition expression;
  the pipelining rewrite produces terms like ``(x % n) % n`` and constant
  guards that this folds away, including dropping statically dead
  ``IfThenElse`` branches.
"""

from __future__ import annotations

from typing import Optional

from ..ir.expr import IntImm, simplify
from ..ir.stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
    seq,
)
from .analysis import TransformError
from .pipeline_pass import _substitute_stmt

__all__ = ["unroll_pass", "simplify_pass"]


def _unroll(stmt: Stmt, max_serial_extent: int) -> Stmt:
    if isinstance(stmt, SeqStmt):
        return SeqStmt([_unroll(s, max_serial_extent) for s in stmt.stmts])
    if isinstance(stmt, For):
        body = _unroll(stmt.body, max_serial_extent)
        should = stmt.kind is ForKind.UNROLLED or (
            stmt.kind is ForKind.SERIAL
            and not stmt.annotations.get("software_pipelined")
            and isinstance(stmt.extent, IntImm)
            and stmt.extent.value <= max_serial_extent
        )
        if not should:
            return For(stmt.var, stmt.extent, body, stmt.kind, stmt.annotations)
        if not isinstance(stmt.extent, IntImm):
            raise TransformError(
                f"cannot unroll loop {stmt.var.name} with non-constant extent"
            )
        copies = [
            _substitute_stmt(body, {stmt.var: IntImm(i)}) for i in range(stmt.extent.value)
        ]
        return seq(*copies)
    if isinstance(stmt, IfThenElse):
        return IfThenElse(
            stmt.cond,
            _unroll(stmt.then_body, max_serial_extent),
            _unroll(stmt.else_body, max_serial_extent) if stmt.else_body else None,
        )
    if isinstance(stmt, Allocate):
        return Allocate(stmt.buffer, _unroll(stmt.body, max_serial_extent), stmt.attrs)
    return stmt


def unroll_pass(kernel: Kernel, max_serial_extent: int = 0) -> Kernel:
    """Unroll ``UNROLLED`` loops (always) and short serial loops whose
    extent is at most ``max_serial_extent`` — never a software-pipelined
    loop, whose circular-buffer structure requires the rolled form."""
    return kernel.with_body(_unroll(kernel.body, max_serial_extent))


def _simplify_region(region):
    return region.with_offsets([simplify(o) for o in region.offsets])


def _simplify(stmt: Stmt) -> Optional[Stmt]:
    if isinstance(stmt, SeqStmt):
        out = [s2 for s in stmt.stmts if (s2 := _simplify(s)) is not None]
        if not out:
            return None
        return seq(*out)
    if isinstance(stmt, For):
        body = _simplify(stmt.body)
        if body is None:
            return None
        return For(stmt.var, simplify(stmt.extent), body, stmt.kind, stmt.annotations)
    if isinstance(stmt, IfThenElse):
        cond = simplify(stmt.cond)
        if isinstance(cond, IntImm):
            # Statically decided guard: keep exactly the live branch.
            return _simplify(stmt.then_body) if cond.value else (
                _simplify(stmt.else_body) if stmt.else_body else None
            )
        then_body = _simplify(stmt.then_body)
        else_body = _simplify(stmt.else_body) if stmt.else_body else None
        if then_body is None and else_body is None:
            return None
        if then_body is None:
            # An if with only an else: invert by keeping else under same cond
            # is not expressible without a Not node; keep a no-op then-branch
            # by swapping in the else body guarded on the original condition.
            raise TransformError("cannot simplify if with a dead then-branch")
        return IfThenElse(cond, then_body, else_body)
    if isinstance(stmt, Allocate):
        body = _simplify(stmt.body)
        if body is None:
            return None
        return Allocate(stmt.buffer, body, stmt.attrs)
    if isinstance(stmt, MemCopy):
        return MemCopy(
            _simplify_region(stmt.dst),
            _simplify_region(stmt.src),
            is_async=stmt.is_async,
            annotations=stmt.annotations,
        )
    if isinstance(stmt, ComputeStmt):
        return ComputeStmt(
            stmt.kind,
            _simplify_region(stmt.out),
            [_simplify_region(r) for r in stmt.inputs],
            fn=stmt.fn,
            flops=stmt.flops,
            annotations=stmt.annotations,
        )
    if isinstance(stmt, PipelineSync):
        return stmt
    raise TransformError(f"unknown statement {type(stmt).__name__}")


def simplify_pass(kernel: Kernel) -> Kernel:
    """Fold constants and drop statically dead guards across the kernel."""
    body = _simplify(kernel.body)
    if body is None:
        raise TransformError("simplification removed the whole kernel body")
    return kernel.with_body(body)

"""Pipelining program transformation (paper Sec. III) and companion
passes: static bounds verification, unrolling, simplification."""

from .analysis import BufferPlan, GroupPlan, PipelinePlan, TransformError, analyze
from .bounds import BoundsError, Interval, interval_of, verify_in_bounds
from .cleanup import simplify_pass, unroll_pass
from .pipeline_pass import PipelineGroupInfo, apply_pipelining

__all__ = [
    "BufferPlan",
    "GroupPlan",
    "PipelinePlan",
    "TransformError",
    "analyze",
    "BoundsError",
    "Interval",
    "interval_of",
    "verify_in_bounds",
    "simplify_pass",
    "unroll_pass",
    "PipelineGroupInfo",
    "apply_pipelining",
]

"""Pipelining program transformation (paper Sec. III) and companion
passes: static bounds verification, unrolling, simplification."""

from .analysis import (
    BufferPlan,
    GroupPlan,
    PipelinePlan,
    TransformError,
    analyze,
    instantiate_plan,
)
from .bounds import BoundsError, Interval, interval_of, verify_in_bounds
from .cleanup import simplify_pass, unroll_pass
from .pipeline_pass import (
    PipelineGroupInfo,
    RewriteCaches,
    apply_pipelining,
    transform_with_plan,
)

__all__ = [
    "BufferPlan",
    "GroupPlan",
    "PipelinePlan",
    "TransformError",
    "analyze",
    "instantiate_plan",
    "BoundsError",
    "Interval",
    "interval_of",
    "verify_in_bounds",
    "simplify_pass",
    "unroll_pass",
    "PipelineGroupInfo",
    "RewriteCaches",
    "apply_pipelining",
    "transform_with_plan",
]

"""Analysis steps of the pipelining program transformation (paper Sec. III-A).

Five analysis steps run before any rewriting:

1. **Hint collection** — find ``pipeline_stages`` attrs left on ``Allocate``
   nodes by the schedule transformation.
2. **Producer/consumer reconstruction** — for each hinted buffer find its
   (unique, asynchronous) producer copy and every consumer statement, and
   derive multi-level structure: a buffer whose producer tensor is itself a
   pipelined buffer forms an inner pipeline fused into the outer one.
3. **Sequential load-and-use loop determination** — walking the producer
   copy's enclosing loops inside-out, the pipelined loop is the first
   *sequential* loop whose iteration variable does not index into the
   buffer.
4. **Load/use region recording** — positions of loads and uses inside the
   pipelined loop body (needed for synchronization injection).
5. **Prologue site determination** — prologues of inner pipelines are
   hoisted before the outer-most pipelined loop to build a holistic
   pipeline (Fig. 3d) rather than a recursive one (Fig. 3c).

The resulting :class:`PipelinePlan` drives :mod:`.pipeline_pass`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..ir.analysis import (
    enclosing_loops,
    loop_extent_int,
    stmt_regions_read,
    walk_with_path,
)
from ..ir.buffer import Buffer, Scope
from ..ir.stmt import Allocate, For, ForKind, Kernel, MemCopy, Stmt

from ..core.errors import TransformError

#: Back-compat re-export: :class:`TransformError` is the taxonomy class
#: from :mod:`repro.core.errors` ("the IR violates an assumption of the
#: pipelining pass").
__all__ = [
    "TransformError",
    "BufferPlan",
    "GroupPlan",
    "PipelinePlan",
    "analyze",
    "instantiate_plan",
]


@dataclasses.dataclass(eq=False)
class BufferPlan:
    """Everything the pass needs to know about one pipelined buffer."""

    buffer: Buffer
    stages: int
    alloc: Allocate
    producer_copy: MemCopy
    copy_path: Tuple[Stmt, ...]
    loop: For
    loop_extent: int
    producer_buffer: Buffer


@dataclasses.dataclass(eq=False)
class GroupPlan:
    """Buffers sharing one scope and one pipelined loop — they share the
    scope-based barrier (rule 3) and are transformed as a unit."""

    scope: Scope
    stages: int
    loop: For
    loop_extent: int
    members: List[BufferPlan]
    parent: Optional["GroupPlan"] = None
    child: Optional["GroupPlan"] = None

    @property
    def loop_var(self):
        return self.loop.var

    @property
    def buffers(self) -> List[Buffer]:
        return [m.buffer for m in self.members]

    @property
    def producer_copy_ids(self) -> set:
        return {id(m.producer_copy) for m in self.members}


@dataclasses.dataclass(eq=False)
class PipelinePlan:
    """Analysis result: pipeline groups ordered outermost-first."""

    groups: List[GroupPlan]

    @property
    def chain_roots(self) -> List[GroupPlan]:
        """Groups with no parent: heads of fused pipeline chains."""
        return [g for g in self.groups if g.parent is None]

    def group_of(self, buffer: Buffer) -> Optional[GroupPlan]:
        for g in self.groups:
            if buffer in g.buffers:
                return g
        return None


def _find_pipelined_loop(copy: MemCopy, path: Tuple[Stmt, ...]) -> For:
    """Analysis step three: the sequential load-and-use loop of a copy."""
    dst_vars = copy.dst.free_vars()
    for loop in reversed(enclosing_loops(path)):
        if loop.kind is not ForKind.SERIAL:
            continue
        if loop.var in dst_vars:
            # The buffer is partitioned along this loop, not re-filled by it.
            continue
        return loop
    raise TransformError(
        f"no sequential load-and-use loop encloses the copy into "
        f"{copy.dst.buffer.name}; the buffer cannot be pipelined"
    )


def analyze(kernel: Kernel) -> PipelinePlan:
    """Run the five analysis steps over a lowered kernel."""
    # -- step 1: collect hints -------------------------------------------------
    hinted: Dict[Buffer, Tuple[int, Allocate]] = {}
    for node, _ in walk_with_path(kernel.body):
        if isinstance(node, Allocate):
            stages = node.attrs.get("pipeline_stages")
            if stages is not None and int(stages) >= 2:
                if node.attrs.get("pipelined"):
                    raise TransformError(
                        f"buffer {node.buffer.name} has already been pipelined"
                    )
                hinted[node.buffer] = (int(stages), node)
    if not hinted:
        return PipelinePlan(groups=[])

    # -- step 2: reconstruct producers and consumers ----------------------------
    copies_by_dst: Dict[Buffer, List[Tuple[MemCopy, Tuple[Stmt, ...]]]] = {}
    consumers: Dict[Buffer, List[Tuple[Stmt, Tuple[Stmt, ...]]]] = {b: [] for b in hinted}
    for node, path in walk_with_path(kernel.body):
        if isinstance(node, MemCopy) and node.dst.buffer in hinted:
            copies_by_dst.setdefault(node.dst.buffer, []).append((node, path))
        for region in stmt_regions_read(node):
            if region.buffer in hinted:
                consumers[region.buffer].append((node, path))

    plans: List[BufferPlan] = []
    for buffer, (stages, alloc) in hinted.items():
        copies = copies_by_dst.get(buffer, [])
        if len(copies) != 1:
            raise TransformError(
                f"pipelined buffer {buffer.name} must have exactly one "
                f"producer copy, found {len(copies)}"
            )
        copy, path = copies[0]
        if not copy.is_async:
            raise TransformError(
                f"buffer {buffer.name} is produced by a synchronous copy; "
                "pipelining requires an asynchronous producer (rule 1)"
            )
        if not consumers[buffer]:
            raise TransformError(f"pipelined buffer {buffer.name} is never read")
        loop = _find_pipelined_loop(copy, path)
        extent = loop_extent_int(loop)
        if extent <= 1:
            raise TransformError(
                f"load-and-use loop of {buffer.name} has extent {extent}; "
                "nothing to pipeline (rule 2)"
            )
        # Steps 3-4: all consumers must sit inside the pipelined loop, or the
        # rolled (stage-indexed) buffer would be read without an iteration
        # context.
        for cons, cpath in consumers[buffer]:
            if loop not in cpath and cons is not loop:
                raise TransformError(
                    f"{buffer.name} is read outside its load-and-use loop; "
                    "pipelining would change program semantics"
                )
        plans.append(
            BufferPlan(
                buffer=buffer,
                stages=stages,
                alloc=alloc,
                producer_copy=copy,
                copy_path=path,
                loop=loop,
                loop_extent=extent,
                producer_buffer=copy.src.buffer,
            )
        )

    # -- grouping by (scope, loop): scope-based barriers (rule 3) ---------------
    groups_by_key: Dict[Tuple[int, Scope], GroupPlan] = {}
    scope_loops: Dict[Scope, For] = {}
    for bp in plans:
        prev_loop = scope_loops.get(bp.buffer.scope)
        if prev_loop is not None and prev_loop is not bp.loop:
            raise TransformError(
                f"buffers in scope {bp.buffer.scope.value} pipeline at "
                "different loops; scope-based barriers cannot be placed (rule 3)"
            )
        scope_loops[bp.buffer.scope] = bp.loop
        key = (id(bp.loop), bp.buffer.scope)
        group = groups_by_key.get(key)
        if group is None:
            group = GroupPlan(
                scope=bp.buffer.scope,
                stages=bp.stages,
                loop=bp.loop,
                loop_extent=bp.loop_extent,
                members=[],
            )
            groups_by_key[key] = group
        elif group.stages != bp.stages:
            raise TransformError(
                f"buffers in scope {bp.buffer.scope.value} request different "
                f"stage counts ({group.stages} vs {bp.stages}); barrier "
                "positions would differ (rule 3)"
            )
        group.members.append(bp)

    groups = list(groups_by_key.values())

    # -- step 2 (multi-level) + step 5: parent links ----------------------------
    buffer_to_group = {m.buffer: g for g in groups for m in g.members}
    for g in groups:
        parents = {
            buffer_to_group[m.producer_buffer]
            for m in g.members
            if m.producer_buffer in buffer_to_group
        }
        if len(parents) > 1:
            raise TransformError(
                "a pipeline group draws from multiple pipelined parent groups"
            )
        if parents:
            parent = parents.pop()
            # The parent loop must strictly enclose this group's loop.
            member_path = g.members[0].copy_path
            if parent.loop not in member_path:
                raise TransformError(
                    f"producer pipeline loop {parent.loop_var.name} does not "
                    f"enclose consumer pipeline loop {g.loop_var.name}"
                )
            if parent.child is not None and parent.child is not g:
                raise TransformError("a pipeline group has more than one inner pipeline")
            if g.stages - 1 > g.loop_extent:
                raise TransformError(
                    f"inner pipeline of {g.loop_var.name} with {g.stages} "
                    f"stages would prefetch past the one visible outer chunk "
                    f"(loop extent {g.loop_extent})"
                )
            g.parent = parent
            parent.child = g

    # Order outermost-first by loop depth (length of enclosing-loop path).
    def depth(g: GroupPlan) -> int:
        return len(enclosing_loops(g.members[0].copy_path))

    groups.sort(key=depth)
    return PipelinePlan(groups=groups)


def instantiate_plan(
    plan: PipelinePlan, stages_by_scope: Dict[Scope, int]
) -> Tuple[PipelinePlan, frozenset]:
    """Re-stage an analyzed plan for a neighboring config (the incremental
    engine's transform key).

    ``plan`` comes from :func:`analyze` over a base kernel hinted at
    canonical stage counts; ``stages_by_scope`` gives the stage count this
    config realizes at each pipeline level. Groups re-staged below two are
    dropped and their buffers returned as *demoted* (the rewriter strips
    their hints and makes their copies synchronous); the remaining groups
    are fresh :class:`GroupPlan` instances with this config's stage counts
    and parent/child links re-derived among the survivors — exactly the
    plan :func:`analyze` would produce on a kernel freshly lowered at
    those counts. Pipelinability itself (the three applicability rules)
    does not depend on the exact stage count once ``>= 2``, which is what
    makes one analyzed base valid for every neighbor.

    The base plan's :class:`BufferPlan` members (producer copies, copy
    paths, loops) are shared, never mutated: they describe the base
    kernel's tree, which is also the tree every derived rewrite walks.
    """
    groups: List[GroupPlan] = []
    demoted: List[Buffer] = []
    for g in plan.groups:
        stages = int(stages_by_scope.get(g.scope, 1))
        if stages >= 2:
            groups.append(
                GroupPlan(
                    scope=g.scope,
                    stages=stages,
                    loop=g.loop,
                    loop_extent=g.loop_extent,
                    members=g.members,
                )
            )
        else:
            demoted.extend(g.buffers)
    by_buffer = {m.buffer: ng for ng in groups for m in ng.members}
    for ng in groups:
        parents = {
            by_buffer[m.producer_buffer]
            for m in ng.members
            if m.producer_buffer in by_buffer
        }
        if parents:
            parent = parents.pop()
            if ng.stages - 1 > ng.loop_extent:
                raise TransformError(
                    f"inner pipeline of {ng.loop_var.name} with {ng.stages} "
                    f"stages would prefetch past the one visible outer chunk "
                    f"(loop extent {ng.loop_extent})"
                )
            ng.parent = parent
            parent.child = ng
    return PipelinePlan(groups=groups), frozenset(demoted)

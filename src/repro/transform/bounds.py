"""Static bounds verification via interval analysis.

``verify_in_bounds`` proves that every buffer access in a kernel stays
inside its buffer for *all* loop iterations, by evaluating conservative
[min, max] intervals of the affine/modular index expressions over the loop
domains. This is the safety net behind the pipelining pass's index
shifting: the transformation advances loop variables by ``stages - 1`` and
relies on modulo wrapping to stay legal (paper Sec. III-B step three); the
verifier machine-checks that claim on the transformed IR rather than
trusting it.

The analysis is sound but not complete: expressions it cannot bound
tightly may produce false positives (none occur for the IR this compiler
emits — the tests pin that).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..ir.buffer import BufferRegion
from ..ir.expr import BinOp, Expr, FloatImm, IntImm, Var
from ..ir.stmt import (
    Allocate,
    ComputeStmt,
    For,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
)
from .analysis import TransformError

__all__ = ["BoundsError", "Interval", "interval_of", "verify_in_bounds"]


class BoundsError(Exception):
    """A buffer access may leave its buffer for some iteration."""


@dataclasses.dataclass(frozen=True)
class Interval:
    """A closed integer interval [lo, hi]."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = [a * b for a in (self.lo, self.hi) for b in (other.lo, other.hi)]
        return Interval(min(corners), max(corners))

    def floordiv(self, other: "Interval") -> "Interval":
        if other.lo <= 0 <= other.hi:
            raise BoundsError("division by an interval containing zero")
        corners = [a // b for a in (self.lo, self.hi) for b in (other.lo, other.hi)]
        return Interval(min(corners), max(corners))

    def floormod(self, other: "Interval") -> "Interval":
        if other.lo == other.hi and other.lo > 0:
            n = other.lo
            # Exact when the dividend already fits one period.
            if self.hi - self.lo + 1 <= n and self.lo % n <= self.hi % n:
                return Interval(self.lo % n, self.hi % n)
            return Interval(0, n - 1)
        raise BoundsError("modulo by a non-constant or non-positive interval")

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))


def interval_of(expr: Expr, env: Dict[Var, Interval]) -> Interval:
    """Conservative interval of ``expr`` under loop-variable domains."""
    if isinstance(expr, IntImm):
        return Interval(expr.value, expr.value)
    if isinstance(expr, FloatImm):
        raise BoundsError("float expression used as a buffer index")
    if isinstance(expr, Var):
        try:
            return env[expr]
        except KeyError:
            raise BoundsError(f"unbound variable {expr.name} in index") from None
    if isinstance(expr, BinOp):
        a = interval_of(expr.a, env)
        if expr.op in ("min", "max"):
            b = interval_of(expr.b, env)
            if expr.op == "min":
                return Interval(min(a.lo, b.lo), min(a.hi, b.hi))
            return Interval(max(a.lo, b.lo), max(a.hi, b.hi))
        b = interval_of(expr.b, env)
        if expr.op == "add":
            return a + b
        if expr.op == "sub":
            return a - b
        if expr.op == "mul":
            return a * b
        if expr.op == "floordiv":
            return a.floordiv(b)
        if expr.op == "floormod":
            return a.floormod(b)
        # Comparisons / logic used as indices would be bizarre; bound 0..1.
        return Interval(0, 1)
    raise BoundsError(f"cannot bound expression {expr!r}")


def _check_region(region: BufferRegion, env: Dict[Var, Interval], where: str) -> None:
    for axis, (off, ext, dim) in enumerate(
        zip(region.offsets, region.extents, region.buffer.shape)
    ):
        iv = interval_of(off, env)
        if iv.lo < 0 or iv.hi + ext > dim:
            raise BoundsError(
                f"{where}: axis {axis} of {region.buffer.name} may access "
                f"[{iv.lo}, {iv.hi + ext}) outside [0, {dim})"
            )


def verify_in_bounds(kernel: Kernel) -> int:
    """Prove every access of ``kernel`` in-bounds; returns the number of
    regions checked. Raises :class:`BoundsError` on a potential violation
    and :class:`TransformError` on non-constant loop extents."""
    checked = 0

    def walk(stmt: Stmt, env: Dict[Var, Interval]) -> None:
        nonlocal checked
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                walk(s, env)
        elif isinstance(stmt, For):
            ext = interval_of(stmt.extent, env)
            if ext.lo != ext.hi:
                raise TransformError(
                    f"loop {stmt.var.name} has a non-constant extent; static "
                    "bounds verification requires static loop domains"
                )
            walk(stmt.body, {**env, stmt.var: Interval(0, ext.hi - 1)})
        elif isinstance(stmt, IfThenElse):
            walk(stmt.then_body, env)
            if stmt.else_body is not None:
                walk(stmt.else_body, env)
        elif isinstance(stmt, Allocate):
            walk(stmt.body, env)
        elif isinstance(stmt, MemCopy):
            _check_region(stmt.dst, env, "copy dst")
            _check_region(stmt.src, env, "copy src")
            checked += 2
        elif isinstance(stmt, ComputeStmt):
            _check_region(stmt.out, env, f"{stmt.kind} out")
            checked += 1
            for r in stmt.inputs:
                _check_region(r, env, f"{stmt.kind} input")
                checked += 1
        elif isinstance(stmt, PipelineSync):
            pass
        else:
            raise TransformError(f"unknown statement {type(stmt).__name__}")

    walk(kernel.body, {})
    return checked

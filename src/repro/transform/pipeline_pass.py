"""The pipelining program transformation (paper Sec. III-B, Figs. 6-7).

Given the analysis plan, five transformation steps rewrite each
load-and-use loop into its pipelined form:

1. **Buffer expansion** — each pipelined buffer gains a leading stage
   dimension of size ``n_stages``.
2. **Index shifting** — producer copies load data for *future* iterations:
   the pipelined loop variable is advanced by ``n_stages - 1`` in the copy's
   source indices.
3. **Rolling / wrapping indices** — stage indices roll with
   ``var % n_stages``; shifted source indices wrap with ``var % extent`` so
   the final iterations do not index out of bounds. In a fused multi-level
   pipeline the inner shift carries into the outer loop variable:
   ``(ko + (ki + shift) // extent_ki) % n_stages_outer`` (Fig. 7 line 26).
4. **Prologue injection** — the first ``n_stages - 1`` chunks are loaded
   ahead of the loop; inner-pipeline prologues are hoisted before the
   outer-most loop (holistic pipeline, Fig. 3d), wrapped in cloned copies of
   any parallel loops between the two levels.
5. **Synchronization injection** — ``producer_acquire`` / ``producer_commit``
   bracket the loads, ``consumer_wait`` / ``consumer_release`` bracket the
   uses. With a fused inner pipeline the outer ``consumer_wait`` moves into
   the inner loop, guarded to fire exactly when the inner prefetch first
   crosses into the next outer chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.analysis import buffers_read
from ..ir.buffer import Buffer, BufferRegion, Scope
from ..ir.expr import Expr, IntImm, Var, as_expr, simplify
from ..ir.stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
    SyncKind,
    seq,
)
from .analysis import BufferPlan, GroupPlan, PipelinePlan, TransformError, analyze

__all__ = [
    "apply_pipelining",
    "transform_with_plan",
    "RewriteCaches",
    "PipelineGroupInfo",
]


class RewriteCaches:
    """Memo tables shared across rewrites of the *same* input kernel.

    The incremental engine transforms one lowered base kernel once per
    pipelining-knob combination; the expensive rewrite products — producer
    and prologue copies (expression substitution + simplification) and the
    per-loop producer/consumer scan — depend only on the identity of the
    input node plus the realized stage counts, so they are memoized here
    and shared across neighboring configs. Keys embed ``id()`` of input
    nodes: a cache instance is only valid for the one kernel tree it was
    created for (the engine ties each instance to its cached base kernel).

    Values are immutable statements; concurrent rewrites (the serve daemon
    shares one measurer across request threads) may race on insertion, but
    both threads compute identical values, so last-write-wins is safe.
    """

    __slots__ = ("stmts", "scans")

    def __init__(self) -> None:
        #: (id(node), chunk, stages, parent_stages) -> rewritten statement
        self.stmts: Dict[Tuple, Stmt] = {}
        #: id(group loop) -> (producer indices, consumer indices)
        self.scans: Dict[int, Tuple[List[int], List[int]]] = {}


class PipelineGroupInfo:
    """Post-transform description of one pipeline group, published on
    ``kernel.attrs['pipeline_groups']`` for interpreters and the simulator."""

    __slots__ = ("leader", "buffers", "scope", "stages", "loop_var_name", "loop_extent")

    def __init__(
        self,
        leader: Buffer,
        buffers: List[Buffer],
        scope: Scope,
        stages: int,
        loop_var_name: str,
        loop_extent: int,
    ) -> None:
        self.leader = leader
        self.buffers = list(buffers)
        self.scope = scope
        self.stages = stages
        self.loop_var_name = loop_var_name
        self.loop_extent = loop_extent

    def __repr__(self) -> str:
        names = ",".join(b.name for b in self.buffers)
        return (
            f"PipelineGroup({names} @{self.scope.value}, stages={self.stages}, "
            f"loop={self.loop_var_name})"
        )


def _substitute_stmt(stmt: Stmt, mapping: Dict[Var, Expr]) -> Stmt:
    """Substitute variables inside all regions/conditions of a subtree."""
    if isinstance(stmt, MemCopy):
        return MemCopy(
            stmt.dst.substitute(mapping),
            stmt.src.substitute(mapping),
            is_async=stmt.is_async,
            annotations=stmt.annotations,
        )
    if isinstance(stmt, ComputeStmt):
        return ComputeStmt(
            stmt.kind,
            stmt.out.substitute(mapping),
            [r.substitute(mapping) for r in stmt.inputs],
            fn=stmt.fn,
            flops=stmt.flops,
            annotations=stmt.annotations,
        )
    if isinstance(stmt, PipelineSync):
        # Clone: duplicated statements (e.g. unrolled loop bodies) must be
        # distinct barriers under the interpreter's fire-once keying.
        return PipelineSync(stmt.buffer, stmt.kind)
    if isinstance(stmt, SeqStmt):
        return SeqStmt([_substitute_stmt(s, mapping) for s in stmt.stmts])
    if isinstance(stmt, For):
        return For(
            stmt.var, stmt.extent, _substitute_stmt(stmt.body, mapping), stmt.kind,
            stmt.annotations,
        )
    if isinstance(stmt, IfThenElse):
        from ..ir.expr import substitute as esub

        return IfThenElse(
            esub(stmt.cond, mapping),
            _substitute_stmt(stmt.then_body, mapping),
            _substitute_stmt(stmt.else_body, mapping) if stmt.else_body else None,
        )
    if isinstance(stmt, Allocate):
        return Allocate(stmt.buffer, _substitute_stmt(stmt.body, mapping), stmt.attrs)
    raise TransformError(f"cannot substitute into {type(stmt).__name__}")


class _Rewriter:
    """Carries the plan state through one full tree rebuild.

    The rewrite is copy-on-write: subtrees the plan does not touch (the
    accumulator init nest, the epilogue, any statement whose regions read
    no pipelined buffer) are returned as the *original* nodes, not
    reconstructed equals. Statements are immutable, so structural sharing
    between the input and output trees — and, through
    :class:`RewriteCaches`, between sibling outputs of one base kernel —
    is observationally free.

    ``demoted`` names buffers that carry pipeline machinery in the input
    kernel (hint attrs, asynchronous producer copies) but must come out
    *un*-pipelined: their hints are stripped and their copies made
    synchronous, reproducing exactly what a fresh lowering at stage count
    one emits. The incremental engine uses this to derive low-stage
    configs from one canonically hinted base kernel.
    """

    def __init__(
        self,
        plan: PipelinePlan,
        demoted: frozenset = frozenset(),
        caches: Optional[RewriteCaches] = None,
    ) -> None:
        self.plan = plan
        self.demoted = demoted
        self.caches = caches
        #: old Buffer -> (new expanded Buffer, its group)
        self.expanded: Dict[Buffer, Tuple[Buffer, GroupPlan]] = {}
        #: id(MemCopy) -> (BufferPlan, GroupPlan) for producer copies
        self.producer_copies: Dict[int, Tuple[BufferPlan, GroupPlan]] = {}
        #: id(For) -> GroupPlan for pipelined loops
        self.group_loops: Dict[int, GroupPlan] = {}
        #: group id -> leader (new buffer) used by sync statements
        self.leaders: Dict[int, Buffer] = {}

        for g in plan.groups:
            self.group_loops[id(g.loop)] = g
            for m in g.members:
                new_buf = m.buffer.with_shape((g.stages,) + m.buffer.shape)
                self.expanded[m.buffer] = (new_buf, g)
                self.producer_copies[id(m.producer_copy)] = (m, g)
            self.leaders[id(g)] = self.expanded[g.members[0].buffer][0]

    # ------------------------------------------------------------------ helpers
    def leader_of(self, g: GroupPlan) -> Buffer:
        return self.leaders[id(g)]

    def sync(self, g: GroupPlan, kind: SyncKind) -> PipelineSync:
        return PipelineSync(self.leader_of(g), kind)

    def consumer_region(self, region: BufferRegion) -> BufferRegion:
        """Rewrite a region that *reads* a (possibly) pipelined buffer:
        rebind to the expanded buffer and prepend the rolling stage index
        ``loop_var % stages``."""
        hit = self.expanded.get(region.buffer)
        if hit is None:
            return region
        new_buf, g = hit
        stage = g.loop_var % g.stages
        return BufferRegion._trusted(
            new_buf,
            (stage,) + region.offsets,
            (1,) + region.extents,
        )

    def _copy_cache_key(self, copy: MemCopy, g: GroupPlan, chunk: int) -> Optional[Tuple]:
        """Identity of a producer/prologue copy rewrite across sibling
        configs of one base kernel: the rewritten statement depends only on
        the input node, the prologue chunk, and the realized stage counts
        of the group and (for fused inner pipelines) its parent."""
        if self.caches is None:
            return None
        parent_stages = g.parent.stages if g.parent is not None else 0
        return (id(copy), chunk, g.stages, parent_stages)

    def producer_copy_stmt(self, copy: MemCopy, m: BufferPlan, g: GroupPlan) -> MemCopy:
        """Steps two & three applied to a producer copy inside the main loop."""
        ckey = self._copy_cache_key(copy, g, -1)
        if ckey is not None:
            hit = self.caches.stmts.get(ckey)
            if hit is not None:
                return hit
        shift = g.stages - 1
        # Destination: expanded buffer, stage rolls with the *shifted* var.
        new_buf, _ = self.expanded[m.buffer]
        dst_stage = (g.loop_var + shift) % g.stages
        dst = BufferRegion._trusted(
            new_buf, (dst_stage,) + copy.dst.offsets, (1,) + copy.dst.extents
        )
        # Source: first the consumer rewrite (multi-level: the source may be a
        # pipelined parent buffer), then the shift substitution with wrapping.
        src = self.consumer_region(copy.src)
        mapping: Dict[Var, Expr] = {g.loop_var: (g.loop_var + shift) % g.loop_extent}
        if g.parent is not None:
            carry = (g.loop_var + shift) // g.loop_extent
            mapping[g.parent.loop_var] = g.parent.loop_var + carry
        src = src.substitute(mapping)
        src = BufferRegion._trusted(
            src.buffer, tuple(simplify(o) for o in src.offsets), src.extents
        )
        out = MemCopy(dst, src, is_async=True, annotations=copy.annotations)
        if ckey is not None:
            self.caches.stmts[ckey] = out
        return out

    def prologue_copy_stmt(self, m: BufferPlan, g: GroupPlan, chunk: int) -> MemCopy:
        """A producer copy specialized to prologue ``chunk`` (step four)."""
        copy = m.producer_copy
        ckey = self._copy_cache_key(copy, g, chunk)
        if ckey is not None:
            hit = self.caches.stmts.get(ckey)
            if hit is not None:
                return hit
        new_buf, _ = self.expanded[m.buffer]
        dst = BufferRegion._trusted(
            new_buf, (IntImm(chunk % g.stages),) + copy.dst.offsets, (1,) + copy.dst.extents
        )
        src = self.consumer_region(copy.src)
        mapping: Dict[Var, Expr] = {g.loop_var: as_expr(chunk % g.loop_extent)}
        if g.parent is not None:
            mapping[g.parent.loop_var] = as_expr(chunk // g.loop_extent)
        src = src.substitute(mapping)
        src = BufferRegion._trusted(
            src.buffer, tuple(simplify(o) for o in src.offsets), src.extents
        )
        out = MemCopy(dst, src, is_async=True, annotations=copy.annotations)
        if ckey is not None:
            self.caches.stmts[ckey] = out
        return out

    # --------------------------------------------------------------- prologues
    def _loops_between(self, parent: GroupPlan, child: GroupPlan) -> List[For]:
        """The loops strictly between the parent and child pipelined loops on
        the child's copy path (cloned around hoisted inner prologues)."""
        path = child.members[0].copy_path
        loops: List[For] = []
        seen_parent = False
        for node in path:
            if node is parent.loop:
                seen_parent = True
                continue
            if node is child.loop:
                break
            if seen_parent and isinstance(node, For):
                loops.append(node)
        if not seen_parent:
            raise TransformError("parent pipeline loop not found on child path")
        return loops

    def chain_prologue(self, root: GroupPlan) -> List[Stmt]:
        """Prologue for a whole fused pipeline chain, hoisted before the
        outer-most loop (analysis step five / transform step four)."""
        stmts: List[Stmt] = []
        for p in range(root.stages - 1):
            stmts.append(self.sync(root, SyncKind.PRODUCER_ACQUIRE))
            for m in root.members:
                stmts.append(self.prologue_copy_stmt(m, root, p))
            stmts.append(self.sync(root, SyncKind.PRODUCER_COMMIT))

        prev, child = root, root.child
        while child is not None:
            # The inner prologue reads the first outer chunk: wait for it.
            stmts.append(self.sync(prev, SyncKind.CONSUMER_WAIT))
            inner: List[Stmt] = []
            for q in range(child.stages - 1):
                inner.append(self.sync(child, SyncKind.PRODUCER_ACQUIRE))
                for m in child.members:
                    inner.append(self.prologue_copy_stmt(m, child, q))
                inner.append(self.sync(child, SyncKind.PRODUCER_COMMIT))
            body: Stmt = seq(*inner)
            # Re-create the (parallel) loops between the levels so warp
            # indices stay bound in the hoisted prologue. The original loop
            # variables are reused: the prologue nest is a *sibling* of the
            # main loop, and each warp must keep the same identity in both
            # (its register pipeline is private to it).
            for loop in reversed(self._loops_between(prev, child)):
                body = For(loop.var, loop.extent, body, loop.kind, loop.annotations)
            stmts.append(body)
            prev, child = child, child.child
        return stmts

    def _drain_stmts(self, g: GroupPlan) -> List[Stmt]:
        """Quiesce a pipeline after its loop so the next instance (when the
        loop re-executes inside an enclosing sequential loop) starts from an
        empty pipeline. Groups with a fused child performed one extra
        prologue wait, which shifts the leftover accounting by one."""
        committed_leftover = (g.stages - 1) - (1 if g.child is not None else 0)
        applied_leftover = 1 if g.child is not None else 0
        stmts: List[Stmt] = []
        for _ in range(committed_leftover):
            stmts.append(self.sync(g, SyncKind.CONSUMER_WAIT))
        for _ in range(committed_leftover + applied_leftover):
            stmts.append(self.sync(g, SyncKind.CONSUMER_RELEASE))
        return stmts

    def _needs_drain(self, root: GroupPlan) -> bool:
        """True when the chain's outermost loop re-executes sequentially
        (recursive pipeline, Fig. 3c) so its state would otherwise leak."""
        for node in root.members[0].copy_path:
            if node is root.loop:
                break
            if isinstance(node, For) and node.kind in (ForKind.SERIAL, ForKind.UNROLLED):
                return True
        return False

    # ------------------------------------------------------------------ rewrite
    def rewrite(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, For):
            g = self.group_loops.get(id(stmt))
            if g is not None:
                new_loop = self.rewrite_group_loop(g)
                if g.parent is None:
                    parts: List[Stmt] = [*self.chain_prologue(g), new_loop]
                    if self._needs_drain(g):
                        node: Optional[GroupPlan] = g
                        chain: List[GroupPlan] = []
                        while node is not None:
                            chain.append(node)
                            node = node.child
                        for member in reversed(chain):
                            parts.extend(self._drain_stmts(member))
                    return seq(*parts)
                return new_loop
            body = self.rewrite(stmt.body)
            if body is stmt.body:
                return stmt
            return For(stmt.var, stmt.extent, body, stmt.kind, stmt.annotations)
        if isinstance(stmt, SeqStmt):
            stmts = [self.rewrite(s) for s in stmt.stmts]
            if all(new is old for new, old in zip(stmts, stmt.stmts)):
                return stmt
            return SeqStmt(stmts)
        if isinstance(stmt, IfThenElse):
            then_body = self.rewrite(stmt.then_body)
            else_body = self.rewrite(stmt.else_body) if stmt.else_body else None
            if then_body is stmt.then_body and else_body is stmt.else_body:
                return stmt
            return IfThenElse(stmt.cond, then_body, else_body)
        if isinstance(stmt, Allocate):
            hit = self.expanded.get(stmt.buffer)
            if hit is not None:
                new_buf, g = hit
                attrs = dict(stmt.attrs)
                # Explicit, even though lowering hinted the buffer already:
                # when deriving from a shared base kernel the hint int in
                # the input tree is the *canonical* stage count, not this
                # config's.
                attrs["pipeline_stages"] = g.stages
                attrs["pipelined"] = True
                return Allocate(new_buf, self.rewrite(stmt.body), attrs)
            body = self.rewrite(stmt.body)
            if stmt.buffer in self.demoted:
                attrs = {k: v for k, v in stmt.attrs.items() if k != "pipeline_stages"}
                return Allocate(stmt.buffer, body, attrs)
            if body is stmt.body:
                return stmt
            return Allocate(stmt.buffer, body, stmt.attrs)
        if isinstance(stmt, MemCopy):
            hit = self.producer_copies.get(id(stmt))
            if hit is not None:
                m, g = hit
                return self.producer_copy_stmt(stmt, m, g)
            dst = self.consumer_region(stmt.dst)
            src = self.consumer_region(stmt.src)
            is_async = stmt.is_async and stmt.dst.buffer not in self.demoted
            if dst is stmt.dst and src is stmt.src and is_async == stmt.is_async:
                return stmt
            return MemCopy(dst, src, is_async=is_async, annotations=stmt.annotations)
        if isinstance(stmt, ComputeStmt):
            out = self.consumer_region(stmt.out)
            inputs = [self.consumer_region(r) for r in stmt.inputs]
            if out is stmt.out and all(new is old for new, old in zip(inputs, stmt.inputs)):
                return stmt
            return ComputeStmt(
                stmt.kind,
                out,
                inputs,
                fn=stmt.fn,
                flops=stmt.flops,
                annotations=stmt.annotations,
            )
        if isinstance(stmt, PipelineSync):
            return stmt
        raise TransformError(f"unknown statement {type(stmt).__name__}")

    def _scan_group_loop(self, g: GroupPlan) -> Tuple[List[int], List[int]]:
        """Producer/consumer child positions inside a group loop body. The
        scan reads only original input nodes, so it is shared across
        sibling configs through :class:`RewriteCaches`."""
        if self.caches is not None:
            hit = self.caches.scans.get(id(g.loop))
            if hit is not None:
                return hit
        body = g.loop.body
        children = list(body.stmts) if isinstance(body, SeqStmt) else [body]
        producer_ids = g.producer_copy_ids
        prod_idx = [i for i, c in enumerate(children) if id(c) in producer_ids]
        if len(prod_idx) != len(producer_ids):
            raise TransformError(
                f"producer copies of group at loop {g.loop_var.name} must be "
                "direct children of the pipelined loop body"
            )
        member_bufs = set(g.buffers)
        cons_idx = [
            i
            for i, c in enumerate(children)
            if i not in prod_idx and buffers_read(c) & member_bufs
        ]
        if not cons_idx:
            raise TransformError(f"group at loop {g.loop_var.name} has no consumers in-loop")
        if self.caches is not None:
            self.caches.scans[id(g.loop)] = (prod_idx, cons_idx)
        return prod_idx, cons_idx

    def rewrite_group_loop(self, g: GroupPlan) -> For:
        """Rewrite one pipelined loop: transformed children plus step-five
        synchronization primitives."""
        body = g.loop.body
        children = list(body.stmts) if isinstance(body, SeqStmt) else [body]
        prod_idx, cons_idx = self._scan_group_loop(g)

        new_children: List[Stmt] = []
        if g.parent is not None:
            # Fused multi-level pipeline: the outer consumer_wait moves here,
            # firing exactly when the prefetch first crosses into the next
            # outer chunk (Fig. 7's guarded wait).
            cross = g.loop_extent - (g.stages - 1)
            new_children.append(
                IfThenElse(
                    g.loop_var.equal(cross % g.loop_extent),
                    self.sync(g.parent, SyncKind.CONSUMER_WAIT),
                )
            )
        for i, child in enumerate(children):
            if i == prod_idx[0]:
                new_children.append(self.sync(g, SyncKind.PRODUCER_ACQUIRE))
            if g.child is None and cons_idx and i == cons_idx[0]:
                new_children.append(self.sync(g, SyncKind.CONSUMER_WAIT))
            new_children.append(self.rewrite(child))
            if i == prod_idx[-1]:
                new_children.append(self.sync(g, SyncKind.PRODUCER_COMMIT))
            if i == cons_idx[-1]:
                new_children.append(self.sync(g, SyncKind.CONSUMER_RELEASE))
        annotations = dict(g.loop.annotations)
        annotations["software_pipelined"] = True
        return For(g.loop_var, g.loop.extent, SeqStmt(new_children), g.loop.kind, annotations)

    def group_infos(self) -> List[PipelineGroupInfo]:
        infos = []
        for g in self.plan.groups:
            infos.append(
                PipelineGroupInfo(
                    leader=self.leader_of(g),
                    buffers=[self.expanded[b][0] for b in g.buffers],
                    scope=g.scope,
                    stages=g.stages,
                    loop_var_name=g.loop_var.name,
                    loop_extent=g.loop_extent,
                )
            )
        return infos


def apply_pipelining(kernel: Kernel, verify_sync: bool = False) -> Kernel:
    """Apply the pipelining program transformation to a lowered kernel.

    Returns a new kernel whose hinted buffers are multi-buffered, whose
    producer copies prefetch future iterations, and whose loads/uses are
    guarded by the four pipeline primitives. A kernel without hints is
    returned with an empty ``pipeline_groups`` attribute.

    With ``verify_sync=True`` the static race checker
    (:mod:`repro.ir.syncheck`) runs on the rewritten kernel and
    error-severity findings raise :class:`~repro.ir.syncheck.SyncCheckError`
    — a mis-placed primitive then fails the build instead of silently
    producing racy code.
    """
    return transform_with_plan(kernel, analyze(kernel), verify_sync=verify_sync)


def transform_with_plan(
    kernel: Kernel,
    plan: PipelinePlan,
    *,
    demoted: frozenset = frozenset(),
    caches: Optional[RewriteCaches] = None,
    attrs: Optional[Dict[str, object]] = None,
    verify_sync: bool = False,
) -> Kernel:
    """:func:`apply_pipelining` with a precomputed (possibly re-staged)
    plan — the incremental engine's entry point.

    ``demoted`` buffers have their pipeline machinery stripped (see
    :class:`_Rewriter`); ``caches`` shares rewrite products across sibling
    configs of one base kernel; ``attrs`` overrides the output kernel's
    attribute dict (the engine stamps the per-config ``config`` attr on
    kernels derived from a canonically configured base).
    """
    if not plan.groups and not demoted:
        out = kernel.with_body(kernel.body)
        if attrs is not None:
            out.attrs = dict(attrs)
        out.attrs["pipeline_groups"] = []
        return out
    rw = _Rewriter(plan, demoted=demoted, caches=caches)
    body = rw.rewrite(kernel.body)
    out = Kernel(kernel.name, kernel.params, body, attrs if attrs is not None else kernel.attrs)
    out.attrs["pipeline_groups"] = rw.group_infos()
    if verify_sync:
        from ..core import profiling
        from ..ir.syncheck import SyncCheckError, check_kernel

        with profiling.stage("syncheck"):
            errors = [d for d in check_kernel(out) if d.severity == "error"]
        if errors:
            raise SyncCheckError(errors)
    return out

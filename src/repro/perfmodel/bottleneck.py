"""Bottleneck-based analysis — the baseline model of paper Sec. V-D.

Takes the maximum of computation, shared-memory loading and device-memory
loading time assuming *full* utilization of throughput and bandwidth. It is
deliberately oversimplified in the two ways the paper calls out:

1. it assumes one aggregated compute unit (ignores SM occupancy), and
2. it is agnostic to latency hiding — pipeline stage counts do not change
   its prediction at all.

It also performs no launchability checks, so its top-ranked schedules can
fail to compile (the 'compile fail' marks in Fig. 12).
"""

from __future__ import annotations

from ..gpusim.config import A100, GpuSpec
from ..gpusim.spec import KernelTimingSpec

__all__ = ["bottleneck_latency"]


def bottleneck_latency(ts: KernelTimingSpec, gpu: GpuSpec = A100) -> float:
    """Predicted latency (us): max over the three full-utilization terms."""
    ts.validate()
    t_compute = ts.total_flops / gpu.tc_flops_total
    smem_traffic = (ts.smem_chunk_bytes + ts.frag_bytes_tb * ts.inner_extent) * ts.outer_extent
    t_smem = ts.grid * smem_traffic / (gpu.smem_bw_per_sm * gpu.num_sms)
    dram_bytes = (
        ts.grid * ts.smem_chunk_bytes * ts.outer_extent * ts.a_footprint_ratio
        + ts.grid * ts.epilogue_bytes
    )
    # Full-bandwidth assumption, no working-set analysis: every requested
    # byte is charged to DRAM once (it ignores both L2 hits and misses).
    t_dram = dram_bytes / gpu.dram_bw
    return max(t_compute, t_smem, t_dram)

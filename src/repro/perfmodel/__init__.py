"""Pipeline-aware analytical performance model (paper Sec. IV, Table I)
plus the bottleneck-analysis baseline it is compared against."""

from .batch import (
    BatchTimingArrays,
    derive_timing_arrays,
    pipeline_latency_batch,
    predict_latency_batch,
)
from .bottleneck import bottleneck_latency
from .kernel_model import ModelBreakdown, predict_breakdown, predict_latency
from .pipeline_model import is_load_bound, pipeline_latency
from .roofline import RooflineReport, analyze_operator
from .static_spec import timing_spec_from_config

__all__ = [
    "BatchTimingArrays",
    "derive_timing_arrays",
    "pipeline_latency_batch",
    "predict_latency_batch",
    "bottleneck_latency",
    "ModelBreakdown",
    "predict_breakdown",
    "predict_latency",
    "is_load_bound",
    "pipeline_latency",
    "RooflineReport",
    "analyze_operator",
    "timing_spec_from_config",
]

"""The full analytical kernel latency model (paper Table I, Fig. 8).

``T_kernel = T_threadblk * N_threadblk_batch`` where the threadblock
latency sums an initialization phase (first chunk round trip), the main
pipelined loop, and the epilogue write-back. The main loop composes two
Pipeline Latency Model applications: the outer (shared-memory) pipeline
whose *use* latency is itself the stable-state latency of the inner
(register) pipeline.

The model deliberately omits effects the simulator has — FIFO queueing,
bank conflicts, wave tails, staggered starts, per-instruction overheads —
because the paper's point (Sec. V-D) is that a *pipeline-aware but
approximate* model ranks schedules well enough to guide tuning.
"""

from __future__ import annotations

import dataclasses
import math

from ..gpusim.config import A100, GpuSpec
from ..gpusim.occupancy import CompileError, tb_per_sm
from ..gpusim.spec import KernelTimingSpec
from .pipeline_model import pipeline_latency

__all__ = ["ModelBreakdown", "predict_latency", "predict_breakdown"]


@dataclasses.dataclass(frozen=True)
class ModelBreakdown:
    """All intermediate quantities of Table I, for inspection and tests."""

    t_kernel: float
    t_threadblk: float
    n_threadblk_batch: int
    t_init: float
    t_main_loop: float
    t_epilogue: float
    t_smem_load: float
    t_smem_use: float
    t_reg_load: float
    t_compute: float
    n_threadblk_per_sm: int
    util: float


def _util(n_warps: int, n_tb_per_sm: int) -> float:
    """SM throughput utilization given available warp parallelism.

    An A100 SM has four tensor-core-equipped sub-partitions; fewer than
    four resident warps cannot saturate them.
    """
    return min(1.0, (n_warps * n_tb_per_sm) / 4.0)


def predict_breakdown(ts: KernelTimingSpec, gpu: GpuSpec = A100) -> ModelBreakdown:
    """Evaluate Table I for one kernel. Raises CompileError when the
    threadblock cannot launch (the model is occupancy-aware)."""
    ts.validate()
    occ = tb_per_sm(gpu, ts.smem_bytes_per_tb, ts.regs_per_thread, ts.threads_per_tb)
    n_batch = math.ceil(ts.grid / (occ * gpu.num_sms))
    tbs_per_batch = min(ts.grid, occ * gpu.num_sms)

    # ---- Computation Latency Model ------------------------------------------
    # An SM time-slices its tensor-core throughput across every resident
    # warp, so one warp's chunk takes ``resident_warps`` fair shares. The
    # Util term models under-filled SM sub-partitions (< 4 resident warps).
    util = _util(ts.warps_per_tb, occ)
    resident_warps = ts.warps_per_tb * occ
    flops_chunk_warp = ts.flops_chunk_tb / ts.warps_per_tb
    t_compute = flops_chunk_warp * resident_warps / (gpu.tc_flops_per_sm * util)

    # ---- Memory Latency Model -------------------------------------------------
    frag_bytes_warp = ts.frag_bytes_tb / ts.warps_per_tb
    t_reg_load = frag_bytes_warp * resident_warps / gpu.smem_bw_per_sm
    t_llc_load = gpu.l2_latency + ts.smem_chunk_bytes * tbs_per_batch / gpu.l2_bw
    workset = _batch_workset_bytes(ts, tbs_per_batch)
    t_dram_load = gpu.dram_latency + workset / gpu.dram_bw
    t_smem_load = max(t_llc_load, t_dram_load)

    # ---- Threadblock Latency Model --------------------------------------------
    t_smem_use = pipeline_latency(
        t_reg_load,
        t_compute,
        n_loop=ts.inner_extent,
        n_pipe=ts.reg_stages,
        n_mplx=ts.warps_per_tb,
    )
    t_main_loop = pipeline_latency(
        t_smem_load,
        t_smem_use,
        n_loop=ts.outer_extent,
        n_pipe=ts.smem_stages,
        n_mplx=occ,
    )
    t_init = t_smem_load + t_reg_load

    # ---- Epilogue Model ---------------------------------------------------------
    t_epilogue = gpu.dram_write_latency + ts.epilogue_bytes * tbs_per_batch / gpu.dram_bw

    t_threadblk = t_init + t_main_loop + t_epilogue
    return ModelBreakdown(
        t_kernel=t_threadblk * n_batch,
        t_threadblk=t_threadblk,
        n_threadblk_batch=n_batch,
        t_init=t_init,
        t_main_loop=t_main_loop,
        t_epilogue=t_epilogue,
        t_smem_load=t_smem_load,
        t_smem_use=t_smem_use,
        t_reg_load=t_reg_load,
        t_compute=t_compute,
        n_threadblk_per_sm=occ,
        util=util,
    )


def _batch_workset_bytes(ts: KernelTimingSpec, tbs_per_batch: int) -> float:
    """Unique DRAM bytes one threadblock-batch loads per outer iteration.

    LLC is shared by all SMs, so DRAM traffic is the batch's working set,
    not the sum of all threadblocks' requests (Table I, memory model note).
    """
    covered = tbs_per_batch
    tiles_per_batch_dim = ts.m_tiles * ts.n_tiles
    batches_covered = max(1, math.ceil(covered / tiles_per_batch_dim))
    unique_a = min(covered, math.ceil(covered / max(1, ts.n_tiles)))
    unique_b = min(covered, ts.n_tiles * batches_covered)
    return (
        unique_a * ts.a_chunk_bytes * ts.a_footprint_ratio
        + unique_b * ts.b_chunk_bytes * ts.b_footprint_ratio
    )


def predict_latency(ts: KernelTimingSpec, gpu: GpuSpec = A100) -> float:
    """Predicted kernel latency in microseconds (Table I top row)."""
    return predict_breakdown(ts, gpu).t_kernel

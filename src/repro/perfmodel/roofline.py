"""Roofline analysis of GEMM-family operators.

Places an operator on the (arithmetic intensity, throughput) plane of a
GPU: which side of the ridge point it sits on, the throughput ceiling that
applies, and the ideal latency at full utilization. Used to reason about
*why* pipelining helps a shape — compute-bound operators with weak
inter-tile parallelism are precisely where intra-tile pipelining pays
(paper Sec. V-A insights) — and by the fallback cost path for operators
the tiled compiler cannot express.
"""

from __future__ import annotations

import dataclasses

from ..gpusim.config import A100, GpuSpec
from ..tensor.operation import GemmSpec

__all__ = ["RooflineReport", "analyze_operator"]


@dataclasses.dataclass(frozen=True)
class RooflineReport:
    """An operator's position on the roofline."""

    operator: str
    #: FLOPs per unique DRAM byte.
    arithmetic_intensity: float
    #: intensity at which the machine transitions memory- to compute-bound.
    ridge_intensity: float
    #: "compute" or "memory"
    bound: str
    #: attainable throughput ceiling (TFLOP/s).
    ceiling_tflops: float
    #: latency at exactly the ceiling (us).
    ideal_latency_us: float

    @property
    def headroom(self) -> float:
        """How far (x) the operator sits from the ridge; > 1 means deep in
        its regime."""
        if self.bound == "compute":
            return self.arithmetic_intensity / self.ridge_intensity
        return self.ridge_intensity / self.arithmetic_intensity


def analyze_operator(spec: GemmSpec, gpu: GpuSpec = A100) -> RooflineReport:
    """Roofline placement of one operator on one GPU."""
    intensity = spec.arithmetic_intensity
    ridge = gpu.tc_flops_total / gpu.dram_bw
    if intensity >= ridge:
        bound = "compute"
        ceiling_flops_per_us = gpu.tc_flops_total
    else:
        bound = "memory"
        ceiling_flops_per_us = intensity * gpu.dram_bw
    return RooflineReport(
        operator=spec.name,
        arithmetic_intensity=intensity,
        ridge_intensity=ridge,
        bound=bound,
        ceiling_tflops=ceiling_flops_per_us / 1e6,
        ideal_latency_us=spec.flops / ceiling_flops_per_us,
    )

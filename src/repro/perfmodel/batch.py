"""Vectorized (batched) evaluation of the Table-I analytical model.

The scalar path — :func:`~repro.perfmodel.static_spec.timing_spec_from_config`
followed by :func:`~repro.perfmodel.kernel_model.predict_latency` — builds a
:class:`KernelTimingSpec` object and walks the model formulas once per
config. Ranking a multi-thousand-config design space that way costs tens of
milliseconds of pure Python object churn per thousand configs; the paper's
whole point (Sec. IV) is that the static model prices candidates *cheaply*.

This module derives the timing-spec quantities for an entire
``enumerate_space`` result as numpy struct-of-arrays and evaluates the
kernel/pipeline model over all of them at once. Every arithmetic step
mirrors the scalar implementation operation for operation (same order, same
float64 ops), so :func:`predict_latency_batch` is *bitwise identical* to
the scalar model on every config — the batch-vs-scalar property tests and
the byte-stable fig12/fig13 benchmark outputs depend on this. Keep the two
implementations in lockstep when editing either.

Configurations the scalar path rejects (problem not divisible by the tile,
or the threadblock cannot launch — occupancy/register/shared-memory limits)
come back as ``inf`` instead of raising, which matches the ``FAILED``
latency convention of the measurement harness.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Union

import numpy as np

from ..gpusim.config import A100, GpuSpec
from ..ir.buffer import DTYPE_BYTES
from ..schedule.config import _BASE_REGS_PER_THREAD, _REG_BYTES, WARP_SIZE, TileConfig
from ..tensor.operation import GemmSpec

__all__ = [
    "BatchTimingArrays",
    "derive_timing_arrays",
    "pipeline_latency_batch",
    "predict_latency_batch",
]

_Array = np.ndarray


def _ceil_div(a: _Array, b: _Array) -> _Array:
    """Integer ceil-division mirroring the ``-(-a // b)`` idiom."""
    return -(-a // b)


def _float_ceil(a: Union[_Array, np.floating]) -> _Array:
    """``math.ceil(float)`` as an int64 array (exact below 2**53)."""
    return np.ceil(a).astype(np.int64)


@dataclasses.dataclass(frozen=True)
class BatchTimingArrays:
    """Struct-of-arrays form of ``timing_spec_from_config`` over N configs.

    ``ok`` marks configs whose static derivation succeeds (problem divisible
    by the tile). All other arrays hold the same quantities the scalar
    :class:`KernelTimingSpec` carries, one entry per config; entries where
    ``ok`` is False contain well-defined but meaningless values.
    """

    ok: _Array  # bool
    grid: _Array
    threads_per_tb: _Array
    warps_per_tb: _Array
    smem_bytes_per_tb: _Array
    regs_per_thread: _Array
    outer_extent: _Array
    smem_chunk_bytes: _Array
    smem_stages: _Array
    inner_extent: _Array
    frag_bytes_tb: _Array
    flops_chunk_tb: _Array
    reg_stages: _Array
    epilogue_bytes: _Array
    m_tiles: _Array
    n_tiles: _Array
    a_chunk_bytes: _Array
    b_chunk_bytes: _Array
    #: scalars shared by every config (problem properties)
    batch: int
    a_footprint_ratio: float
    b_footprint_ratio: float

    def __len__(self) -> int:
        return len(self.ok)


def derive_timing_arrays(spec: GemmSpec, configs: Sequence[TileConfig]) -> BatchTimingArrays:
    """Vectorized :func:`timing_spec_from_config` over a whole space."""
    n = len(configs)
    # One flat list + a single np.array call is ~3x faster than n*8 indexed
    # stores — this extraction loop is the batch path's dominant cost.
    flat: list = []
    extend = flat.extend
    for c in configs:
        extend(
            (c.block_m, c.block_n, c.block_k, c.warp_m, c.warp_n,
             c.chunk_k, c.smem_stages, c.reg_stages)
        )
    raw = np.array(flat, dtype=np.int64).reshape(n, 8)
    bm, bn, bk = raw[:, 0], raw[:, 1], raw[:, 2]
    wm, wn, ck = raw[:, 3], raw[:, 4], raw[:, 5]
    ss, rs = raw[:, 6], raw[:, 7]

    ok = ((spec.m % bm) == 0) & ((spec.n % bn) == 0) & ((spec.k % bk) == 0)

    eb = DTYPE_BYTES[spec.dtype]
    a_chunk = bm * bk * eb
    b_chunk = bn * bk * eb
    warps = (bm // wm) * (bn // wn)
    frag_bytes = (wm + wn) * ck * eb * warps
    flops_chunk = 2 * wm * wn * ck * warps

    # Detection rule 2, exactly as the scalar path applies it: a loop of
    # extent 1 cannot be pipelined, so the stage count degrades to 1.
    outer_extent = _ceil_div(np.int64(spec.k), bk)
    inner_extent = bk // ck
    smem_stages = np.where(outer_extent > 1, ss, 1)
    reg_stages = np.where(inner_extent > 1, rs, 1)

    # Resource usage at the *effective* stage counts (TileConfig.resource_usage).
    smem = (bm + bn) * bk * eb * smem_stages
    accum_regs = (wm * wn * 4) // (_REG_BYTES * WARP_SIZE)
    frag_bytes_staged = (wm + wn) * ck * eb * reg_stages
    frag_regs = _ceil_div(frag_bytes_staged, np.int64(_REG_BYTES * WARP_SIZE))
    regs = _BASE_REGS_PER_THREAD + accum_regs + frag_regs
    threads = warps * WARP_SIZE

    grid = spec.batch * _ceil_div(np.int64(spec.m), bm) * _ceil_div(np.int64(spec.n), bn)

    return BatchTimingArrays(
        ok=ok,
        grid=grid,
        threads_per_tb=threads,
        warps_per_tb=warps,
        smem_bytes_per_tb=smem,
        regs_per_thread=regs,
        outer_extent=outer_extent,
        smem_chunk_bytes=a_chunk + b_chunk,
        smem_stages=smem_stages,
        inner_extent=inner_extent,
        frag_bytes_tb=frag_bytes,
        flops_chunk_tb=flops_chunk,
        reg_stages=reg_stages,
        epilogue_bytes=bm * bn * eb,
        m_tiles=spec.m // bm,
        n_tiles=spec.n // bn,
        a_chunk_bytes=a_chunk,
        b_chunk_bytes=b_chunk,
        batch=spec.batch,
        a_footprint_ratio=spec.a_footprint_ratio,
        b_footprint_ratio=spec.b_footprint_ratio,
    )


def pipeline_latency_batch(
    t_load: _Array, t_use: _Array, n_loop: _Array, n_pipe: _Array, n_mplx: _Array
) -> _Array:
    """Vectorized Pipeline Latency Model (mirror of ``pipeline_latency``)."""
    load_bound = t_load > (n_pipe * n_mplx - 1) * t_use
    return np.where(load_bound, (t_load + t_use) * n_loop / n_pipe, t_use * n_loop)


def _tb_per_sm_batch(gpu: GpuSpec, ta: BatchTimingArrays) -> "tuple[_Array, _Array]":
    """Vectorized occupancy: ``(occ, launchable)`` (mirror of ``tb_per_sm``)."""
    smem, regs, threads = ta.smem_bytes_per_tb, ta.regs_per_thread, ta.threads_per_tb
    launchable = (
        (smem <= gpu.max_smem_per_tb)
        & (regs <= gpu.max_regs_per_thread)
        & (threads <= gpu.max_threads_per_sm)
        & (regs * threads <= gpu.regs_per_sm)
    )
    # All divisors are >= 1 for real TileConfigs, so the minimum can be
    # taken unconditionally (the scalar path guards smem > 0 / regs > 0).
    occ = np.minimum(np.int64(gpu.max_tb_per_sm), gpu.max_threads_per_sm // threads)
    occ = np.minimum(occ, gpu.smem_per_sm // smem)
    occ = np.minimum(occ, gpu.regs_per_sm // (regs * threads))
    launchable &= occ >= 1
    return np.where(launchable, occ, 1), launchable


def _batch_workset_bytes(ta: BatchTimingArrays, tbs_per_batch: _Array) -> _Array:
    """Vectorized mirror of ``kernel_model._batch_workset_bytes``."""
    covered = tbs_per_batch
    tiles_per_batch_dim = ta.m_tiles * ta.n_tiles
    batches_covered = np.maximum(1, _float_ceil(covered / tiles_per_batch_dim))
    unique_a = np.minimum(covered, _float_ceil(covered / np.maximum(1, ta.n_tiles)))
    unique_b = np.minimum(covered, ta.n_tiles * batches_covered)
    return (
        unique_a * ta.a_chunk_bytes * ta.a_footprint_ratio
        + unique_b * ta.b_chunk_bytes * ta.b_footprint_ratio
    )


def predict_latency_batch(
    spec: GemmSpec, configs: Sequence[TileConfig], gpu: GpuSpec = A100
) -> _Array:
    """Predicted kernel latency (us) for every config; ``inf`` where the
    scalar model would reject the config (non-divisible tile or a
    threadblock that cannot launch).

    Guaranteed bitwise-equal to ``predict_latency(timing_spec_from_config(
    spec, cfg), gpu)`` on every accepted config (property-tested).
    """
    if not len(configs):
        return np.empty(0, dtype=np.float64)
    ta = derive_timing_arrays(spec, configs)
    occ, launchable = _tb_per_sm_batch(gpu, ta)
    ok = ta.ok & launchable

    n_batch = _float_ceil(ta.grid / (occ * gpu.num_sms))
    tbs_per_batch = np.minimum(ta.grid, occ * gpu.num_sms)

    # ---- Computation Latency Model (mirror of predict_breakdown) ------------
    util = np.minimum(1.0, (ta.warps_per_tb * occ) / 4.0)
    resident_warps = ta.warps_per_tb * occ
    flops_chunk_warp = ta.flops_chunk_tb / ta.warps_per_tb
    t_compute = flops_chunk_warp * resident_warps / (gpu.tc_flops_per_sm * util)

    # ---- Memory Latency Model ------------------------------------------------
    frag_bytes_warp = ta.frag_bytes_tb / ta.warps_per_tb
    t_reg_load = frag_bytes_warp * resident_warps / gpu.smem_bw_per_sm
    t_llc_load = gpu.l2_latency + ta.smem_chunk_bytes * tbs_per_batch / gpu.l2_bw
    workset = _batch_workset_bytes(ta, tbs_per_batch)
    t_dram_load = gpu.dram_latency + workset / gpu.dram_bw
    t_smem_load = np.maximum(t_llc_load, t_dram_load)

    # ---- Threadblock Latency Model -------------------------------------------
    t_smem_use = pipeline_latency_batch(
        t_reg_load, t_compute, ta.inner_extent, ta.reg_stages, ta.warps_per_tb
    )
    t_main_loop = pipeline_latency_batch(
        t_smem_load, t_smem_use, ta.outer_extent, ta.smem_stages, occ
    )
    t_init = t_smem_load + t_reg_load

    # ---- Epilogue Model ------------------------------------------------------
    t_epilogue = gpu.dram_write_latency + ta.epilogue_bytes * tbs_per_batch / gpu.dram_bw

    t_threadblk = t_init + t_main_loop + t_epilogue
    latency = t_threadblk * n_batch
    return np.where(ok, latency, np.inf)

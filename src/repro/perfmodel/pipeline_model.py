"""The Pipeline Latency Model (paper Table I, middle row; Fig. 9).

Estimates the stable-state latency of a load-and-use loop given the load
and use latencies, the loop trip count, the pipeline depth ``n_pipe`` and
the multiplexing factor ``n_mplx`` (parallel workers sharing the same
compute units — co-resident threadblocks at the shared-memory level, warps
at the register level).

The criterion: during one chunk's load, the compute units can process
other chunks of this pipeline (``n_pipe``) and chunks of other workers
(``n_mplx``) — ``n_pipe * n_mplx - 1`` use-steps in total. If the load fits
inside that window the loop is compute-bound; otherwise loading is the
bottleneck and the loop advances one full load-use round trip per
``n_pipe`` overlapping streams.
"""

from __future__ import annotations

__all__ = ["pipeline_latency", "is_load_bound"]


def _check(t_load: float, t_use: float, n_loop: int, n_pipe: int, n_mplx: int) -> None:
    if t_load < 0 or t_use <= 0:
        raise ValueError("t_load must be >= 0 and t_use > 0")
    if n_loop < 1 or n_pipe < 1 or n_mplx < 1:
        raise ValueError("n_loop, n_pipe and n_mplx must be >= 1")


def is_load_bound(t_load: float, t_use: float, n_pipe: int, n_mplx: int) -> bool:
    """True when data loading is the bottleneck of the stable state."""
    return t_load > (n_pipe * n_mplx - 1) * t_use


def pipeline_latency(
    t_load: float, t_use: float, n_loop: int, n_pipe: int, n_mplx: int
) -> float:
    """Stable-state latency of the whole load-and-use loop (Table I)."""
    _check(t_load, t_use, n_loop, n_pipe, n_mplx)
    if not is_load_bound(t_load, t_use, n_pipe, n_mplx):
        return t_use * n_loop
    return (t_load + t_use) * n_loop / n_pipe

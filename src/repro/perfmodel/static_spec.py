"""Static construction of a timing spec from schedule parameters.

The analytical model's whole value is ranking schedules *without compiling
them* (paper Sec. IV), so it derives the kernel geometry directly from the
:class:`GemmSpec` and :class:`TileConfig`. Tests assert that this static
derivation agrees exactly with what :func:`repro.gpusim.extract_timing_spec`
measures on the compiled IR.
"""

from __future__ import annotations

from ..gpusim.spec import KernelTimingSpec
from ..ir.buffer import DTYPE_BYTES
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["timing_spec_from_config"]


def timing_spec_from_config(spec: GemmSpec, cfg: TileConfig) -> KernelTimingSpec:
    """Derive the timing spec of the canonical kernel for ``(spec, cfg)``."""
    if spec.m % cfg.block_m or spec.n % cfg.block_n or spec.k % cfg.block_k:
        raise ValueError(
            f"problem {spec.name} ({spec.m}x{spec.n}x{spec.k}) not divisible "
            f"by tile {cfg}"
        )
    eb = DTYPE_BYTES[spec.dtype]
    a_chunk = cfg.block_m * cfg.block_k * eb
    b_chunk = cfg.block_n * cfg.block_k * eb
    warps = cfg.warps_per_block
    frag_bytes = (cfg.warp_m + cfg.warp_n) * cfg.chunk_k * eb * warps
    flops_chunk = 2 * cfg.warp_m * cfg.warp_n * cfg.chunk_k * warps
    # Apply detection rule 2 exactly as the automatic scheduler does: a
    # load-and-use loop of extent 1 cannot be pipelined, so the requested
    # stage count silently degrades to 1 (and the buffer uses synchronous
    # copies). Without this, the static path would credit schedules with
    # pipelining the compiler never builds.
    outer_extent = cfg.smem_loop_extent(spec)
    smem_stages = cfg.smem_stages if outer_extent > 1 else 1
    reg_stages = cfg.reg_stages if cfg.reg_loop_extent > 1 else 1
    # Resource usage follows the *effective* stage counts: an un-pipelined
    # buffer is not multi-buffered.
    res = cfg.with_stages(smem_stages, reg_stages).resource_usage(spec.dtype)
    ts = KernelTimingSpec(
        name=f"static_{spec.name}",
        grid=cfg.grid_size(spec),
        threads_per_tb=cfg.threads_per_block,
        warps_per_tb=warps,
        smem_bytes_per_tb=res.smem_bytes,
        regs_per_thread=res.regs_per_thread,
        outer_extent=outer_extent,
        smem_chunk_bytes=a_chunk + b_chunk,
        smem_stages=smem_stages,
        inner_extent=cfg.reg_loop_extent,
        frag_bytes_tb=frag_bytes,
        flops_chunk_tb=flops_chunk,
        reg_stages=reg_stages,
        epilogue_bytes=cfg.block_m * cfg.block_n * eb,
        swizzle=cfg.swizzle,
        batch=spec.batch,
        m_tiles=spec.m // cfg.block_m,
        n_tiles=spec.n // cfg.block_n,
        a_chunk_bytes=a_chunk,
        b_chunk_bytes=b_chunk,
        a_footprint_ratio=spec.a_footprint_ratio,
        b_footprint_ratio=spec.b_footprint_ratio,
        async_smem_copy=smem_stages >= 2,
    )
    ts.validate()
    return ts

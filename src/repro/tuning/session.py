"""Crash-safe, resumable tuning sessions.

A :class:`TuneSession` is a directory with two files:

``session.json``
    The immutable metadata of the run — problem shape, GPU, tuning method,
    trial budget, seed, space cap — written once at creation. Resume reads
    it back so ``repro tune --resume <dir>`` needs no other arguments.
``trials.jsonl``
    The trial journal: one JSON object per measured trial, appended with
    ``flush`` + ``fsync`` *before* the tuner moves on. A crash (or SIGKILL)
    between trials loses at most the trial in flight.

Resume-as-replay
----------------
Resuming does **not** try to restore tuner internals (XGBoost ensembles,
simulated-annealing chains) from disk. Instead it re-runs the seeded tuner
from scratch with the journal preloaded into the measurer's in-memory
cache: the tuner re-proposes the same configs (same seed → same RNG
trajectory), every already-journalled trial is a cache hit (costing
microseconds, not compile time), and the run continues exactly where it
died. The resumed run therefore converges to the *same best config* as an
uninterrupted run by construction — which ``tests/chaos/test_resume.py``
asserts end-to-end.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from typing import Dict, List, Tuple, Union

from .. import faults
from ..core.degrade import DiskDegrade
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["TuneSession", "META_FILE", "JOURNAL_FILE"]

META_FILE = "session.json"
JOURNAL_FILE = "trials.jsonl"


def _fsync_dir(path: pathlib.Path) -> None:
    """fsync a directory so renames/creations inside it are durable.
    Platforms whose directory fds refuse fsync (e.g. Windows) are skipped —
    there is no portable equivalent, and the data-file fsyncs still hold."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class TuneSession:
    """One resumable tuning run, journalled under ``path``."""

    def __init__(self, path: Union[str, pathlib.Path], meta: Dict) -> None:
        self.path = pathlib.Path(path)
        self.meta = dict(meta)
        #: journalled trials in append order (config, latency_us).
        self._trials: List[Tuple[TileConfig, float]] = []
        self._seen: set = set()
        self._journal_f = None
        self._degrade = DiskDegrade(
            f"session journal at {self.path}",
            "trials from here on cannot be replayed by --resume after a crash")
        #: whether the session directory has been fsynced since the
        #: journal file was (re)created, making the file's *existence*
        #: durable, not just its contents.
        self._dir_synced = False

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, path: Union[str, pathlib.Path], **meta) -> "TuneSession":
        """Start a fresh session: create the directory, write the metadata.

        Refuses to clobber an existing journal — a directory that already
        holds trials must be resumed (:meth:`load`), not recreated.
        """
        path = pathlib.Path(path)
        if (path / JOURNAL_FILE).exists() and (path / JOURNAL_FILE).stat().st_size > 0:
            raise FileExistsError(
                f"{path} already holds a trial journal; resume it with "
                f"--resume {path} instead of starting a new session there"
            )
        path.mkdir(parents=True, exist_ok=True)
        session = cls(path, meta)
        # Durable publish: fsync the tmp file before the rename (so the
        # metadata bytes reach disk before the name does) and fsync the
        # directory after it (so the rename itself survives power loss).
        # Without both, a crash can leave a session whose journal exists
        # but whose metadata vanished — unresumable.
        tmp = path / (META_FILE + ".tmp")
        with open(tmp, "w") as f:
            f.write(json.dumps(session.meta, indent=1, sort_keys=True))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path / META_FILE)
        _fsync_dir(path)
        return session

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "TuneSession":
        """Open an existing session and replay its journal.

        A torn final line (the process died mid-write) is dropped; every
        complete line is recovered.
        """
        path = pathlib.Path(path)
        meta_path = path / META_FILE
        if not meta_path.exists():
            raise FileNotFoundError(
                f"{path} is not a tuning session (no {META_FILE}); was it "
                "created with --session-dir?"
            )
        session = cls(path, json.loads(meta_path.read_text()))
        journal = path / JOURNAL_FILE
        if journal.exists():
            for line in journal.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    cfg = TileConfig(**entry["config"])
                    latency = entry["latency_us"]
                    latency = math.inf if latency == "inf" else float(latency)
                except (ValueError, KeyError, TypeError):
                    continue  # torn trailing write from the crash
                session._remember(cfg, latency)
        return session

    def close(self) -> None:
        if self._journal_f is not None:
            self._journal_f.close()
            self._journal_f = None

    def __enter__(self) -> "TuneSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -------------------------------------------------------------- journal
    def _remember(self, cfg: TileConfig, latency_us: float) -> bool:
        key = cfg.key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self._trials.append((cfg, latency_us))
        return True

    @property
    def disk_errors(self) -> int:
        """Journal writes absorbed by degrading to memory-only operation."""
        return self._degrade.disk_errors

    @property
    def degraded(self) -> bool:
        """True once a disk failure stopped journalling (trials stay in
        memory; the run continues, it just loses crash-resumability)."""
        return self._degrade.degraded

    def _note_disk_error(self, exc: OSError) -> None:
        """Stop journalling: warn once, count every occurrence. The trial
        itself is already remembered in memory, so tuning continues — the
        run just loses crash-resumability from this point on."""
        self._degrade.note("append a trial", exc)
        if self._journal_f is not None:
            try:
                self._journal_f.close()
            except OSError:
                pass
            self._journal_f = None

    def log_trial(self, cfg: TileConfig, latency_us: float) -> None:
        """Durably append one trial. The line is flushed *and* fsynced
        before returning, so a crash immediately after a measurement never
        loses it. Re-logging an already-journalled config is a no-op (the
        replayed prefix of a resumed run). A journal hitting ``OSError``
        (ENOSPC, EIO) degrades to memory-only instead of killing the run.
        """
        if not self._remember(cfg, latency_us):
            return
        if self.degraded:
            return
        line = json.dumps(
            {
                "trial": len(self._trials) - 1,
                "config": cfg.as_dict(),
                "latency_us": "inf" if math.isinf(latency_us) else latency_us,
            },
            sort_keys=True,
        )
        try:
            faults.inject("disk", token=f"journal:{self.path.name}", kinds=("crash",))
            if self._journal_f is None:
                journal = self.path / JOURNAL_FILE
                # An append that *creates* the file needs a directory fsync
                # or the just-created journal (fsynced contents and all) can
                # vanish with its directory entry after a crash + power loss.
                self._dir_synced = journal.exists()
                self._journal_f = open(journal, "a")
            self._journal_f.write(line + "\n")
            self._journal_f.flush()
            os.fsync(self._journal_f.fileno())
        except OSError as e:
            self._note_disk_error(e)
            return
        if not self._dir_synced:
            _fsync_dir(self.path)
            self._dir_synced = True

    # --------------------------------------------------------------- replay
    @property
    def trials(self) -> List[Tuple[TileConfig, float]]:
        return list(self._trials)

    def __len__(self) -> int:
        return len(self._trials)

    def preload(self, measurer, spec: GemmSpec) -> int:
        """Seed ``measurer``'s in-memory cache with the journalled results
        so a resumed tuner replays its prefix as cache hits. Returns the
        number of entries loaded."""
        for cfg, latency in self._trials:
            measurer._cache[measurer._key(spec, cfg)] = latency
        return len(self._trials)

    # ----------------------------------------------------------------- meta
    def spec(self) -> GemmSpec:
        """The problem recorded in the session metadata."""
        return GemmSpec(
            self.meta.get("name", "cli"),
            batch=int(self.meta.get("batch", 1)),
            m=int(self.meta["m"]),
            n=int(self.meta["n"]),
            k=int(self.meta["k"]),
        )

    def describe(self) -> str:
        m = self.meta
        return (
            f"session {self.path} ({m.get('m')}x{m.get('n')}x{m.get('k')} "
            f"batch={m.get('batch', 1)} on {m.get('gpu', '?')}, "
            f"method={m.get('method', '?')} seed={m.get('seed', 0)}): "
            f"{len(self)} trial(s) journalled"
        )

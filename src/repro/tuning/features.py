"""Schedule featurization for the learned cost model.

Features combine raw knobs with derived quantities (occupancy, loop
extents, arithmetic intensity) so the boosted-tree model can learn
hardware-relevant structure from few samples — mirroring AutoTVM's knob +
curve features.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..gpusim.config import A100, GpuSpec
from ..gpusim.occupancy import CompileError, tb_per_sm
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["FEATURE_NAMES", "featurize", "featurize_batch"]

FEATURE_NAMES = [
    "log_block_m",
    "log_block_n",
    "log_block_k",
    "log_warp_m",
    "log_warp_n",
    "log_chunk_k",
    "smem_stages",
    "reg_stages",
    "warps",
    "threads",
    "occupancy",
    "grid",
    "waves",
    "outer_extent",
    "inner_extent",
    "smem_kb",
    "regs_per_thread",
    "tile_intensity",
    "load_use_ratio",
    "launchable",
]


def featurize(spec: GemmSpec, cfg: TileConfig, gpu: GpuSpec = A100) -> np.ndarray:
    """One schedule -> float feature vector (len == len(FEATURE_NAMES))."""
    res = cfg.resource_usage(spec.dtype)
    try:
        occ = tb_per_sm(gpu, res.smem_bytes, res.regs_per_thread, res.threads)
        launchable = 1.0
    except CompileError:
        occ = 0
        launchable = 0.0
    grid = cfg.grid_size(spec)
    waves = grid / max(1, occ * gpu.num_sms)
    eb = spec.elem_bytes
    chunk_bytes = (cfg.block_m + cfg.block_n) * cfg.block_k * eb
    flops_chunk = 2 * cfg.block_m * cfg.block_n * cfg.block_k
    return np.array(
        [
            math.log2(cfg.block_m),
            math.log2(cfg.block_n),
            math.log2(cfg.block_k),
            math.log2(cfg.warp_m),
            math.log2(cfg.warp_n),
            math.log2(cfg.chunk_k),
            float(cfg.smem_stages),
            float(cfg.reg_stages),
            float(cfg.warps_per_block),
            float(cfg.threads_per_block),
            float(occ),
            float(grid),
            waves,
            float(cfg.smem_loop_extent(spec)),
            float(cfg.reg_loop_extent),
            res.smem_bytes / 1024.0,
            float(res.regs_per_thread),
            flops_chunk / chunk_bytes,
            chunk_bytes / max(1.0, flops_chunk / (gpu.tc_flops_per_sm / 1e3)),
            launchable,
        ],
        dtype=np.float64,
    )


def featurize_batch(
    spec: GemmSpec, configs: Sequence[TileConfig], gpu: GpuSpec = A100
) -> np.ndarray:
    """Feature matrix of shape ``(len(configs), n_features)``."""
    if not configs:
        return np.empty((0, len(FEATURE_NAMES)))
    return np.stack([featurize(spec, c, gpu) for c in configs])

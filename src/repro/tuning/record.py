"""Tuning trial records, best-in-k metrics (paper Secs. V-D/V-E), and
JSON persistence of tuning sessions (AutoTVM-style log files)."""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import List, Optional, Sequence, Union

from ..schedule.config import TileConfig

__all__ = ["TrialRecord", "TuneHistory", "best_in_top_k", "save_history", "load_history"]

#: Floor for latency denominators in normalized metrics. A zero/denormal
#: simulated latency (degenerate spec, pathological config) must clamp to
#: a finite ratio instead of raising ZeroDivisionError or producing inf.
_MIN_LATENCY_US = 1e-9


def _normalized(exhaustive_best_us: float, latency_us: float) -> float:
    """``exhaustive_best_us / latency_us`` with failure and zero guards."""
    if math.isinf(latency_us) or not math.isfinite(exhaustive_best_us):
        return 0.0
    return exhaustive_best_us / max(latency_us, _MIN_LATENCY_US)


@dataclasses.dataclass(frozen=True)
class TrialRecord:
    """One measured trial. ``latency_us`` is ``inf`` for compile failures."""

    trial: int
    config: TileConfig
    latency_us: float

    @property
    def failed(self) -> bool:
        return math.isinf(self.latency_us)


class TuneHistory:
    """Ordered record of measured trials from one tuning session."""

    def __init__(self) -> None:
        self.records: List[TrialRecord] = []

    def append(self, config: TileConfig, latency_us: float) -> None:
        self.records.append(TrialRecord(len(self.records), config, latency_us))

    def __len__(self) -> int:
        return len(self.records)

    def best_latency_at(self, k: int) -> float:
        """Best latency among the first ``k`` trials (inf if all failed)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        window = self.records[:k]
        if not window:
            return math.inf
        return min(r.latency_us for r in window)

    def best_config_at(self, k: int) -> Optional[TileConfig]:
        window = self.records[:k]
        if not window:
            return None
        best = min(window, key=lambda r: r.latency_us)
        return None if best.failed else best.config

    def normalized_curve(self, ks: Sequence[int], exhaustive_best_us: float) -> List[float]:
        """best-in-k performance relative to the exhaustive optimum
        (1.0 = matched the best schedule in the whole space; 0.0 = nothing
        valid found yet)."""
        return [_normalized(exhaustive_best_us, self.best_latency_at(k)) for k in ks]


def save_history(history: TuneHistory, path: Union[str, pathlib.Path]) -> None:
    """Persist a tuning session as a JSON log (one object per trial)."""
    payload = []
    for r in history.records:
        payload.append(
            {
                "trial": r.trial,
                "latency_us": "inf" if math.isinf(r.latency_us) else r.latency_us,
                "config": r.config.as_dict(),
            }
        )
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_history(path: Union[str, pathlib.Path]) -> TuneHistory:
    """Reload a tuning session saved by :func:`save_history`."""
    payload = json.loads(pathlib.Path(path).read_text())
    history = TuneHistory()
    for entry in payload:
        latency = entry["latency_us"]
        history.append(
            TileConfig(**entry["config"]),
            math.inf if latency == "inf" else float(latency),
        )
    return history


def best_in_top_k(
    ranked_latencies: Sequence[float], k: int, exhaustive_best_us: float
) -> float:
    """Best performance within the top-k model-ranked schedules, normalized
    to the exhaustive optimum (the Fig. 12 metric). ``ranked_latencies`` are
    *measured* latencies in model-rank order; ``inf`` marks compile fails."""
    window = [x for x in ranked_latencies[:k]]
    if not window:
        return 0.0
    return _normalized(exhaustive_best_us, min(window))

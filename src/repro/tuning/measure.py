"""The measurement harness: compile a schedule and time it on the simulator.

This plays the role of AutoTVM's builder+runner: each measurement runs the
full compiler path — automatic schedule, lowering, pipelining program
transformation, timing-spec extraction from the produced IR — and then the
discrete-event simulator (the reproduction's "hardware"). Results are
cached by their full identity (GPU, problem, config, measurement mode) in
memory, optionally persisted to disk (:class:`~repro.tuning.cache.
MeasurementCache`), and batch measurements fan out over worker processes
(``jobs > 1``) while returning bitwise-identical latencies to the serial
path.

Fault tolerance (docs/robustness.md): per-trial crashes, hangs and worker
deaths are ordinary measurement outcomes, never sweep aborts. Each pooled
trial runs in its own process so a dying worker takes down exactly one
attempt; crashed attempts retry with exponential backoff up to
``retries`` times before the config is recorded :data:`FAILED` and
quarantined; trials exceeding ``trial_timeout_s`` are terminated and
recorded :data:`FAILED`. Crash/timeout failures are kept out of the disk
cache (they are properties of the run, not of the config), while genuine
compile failures persist as ``inf``. The ``compile`` and ``worker``
fault-injection sites (:mod:`repro.faults`) live here, so every one of
those recovery paths is exercised by the chaos suite.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..codegen import lower
from ..core import profiling
from ..core.errors import (
    CompileError,
    DeadlineExceededError,
    MeasurementTimeout,
    ReproError,
    WorkerCrash,
)
from ..core.incremental import IncrementalEngine
from ..core.incremental import sort_key as _incremental_sort_key
from ..obs import metrics as _metrics
from ..gpusim.config import A100, GpuSpec
from ..gpusim.engine import simulate_kernel
from ..gpusim.spec import extract_timing_spec
from ..perfmodel.static_spec import timing_spec_from_config
from ..schedule.auto import auto_schedule
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec, Tensor, contraction, placeholder
from .cache import MeasurementCache, measurement_key
from .prune import prune_space

__all__ = ["Measurer", "MeasureTelemetry", "MeasureFailure", "FAILED"]

#: Latency recorded for configurations that fail to compile/launch.
FAILED = math.inf

#: LRU bound on the per-spec tensor-expression graph cache: one entry per
#: distinct problem shape, so a long-lived serve daemon cycling many shapes
#: holds at most this many graphs.
TE_CACHE_MAX = 64

_TE_EVICTIONS = _metrics.counter(
    "repro_te_cache_evictions_total",
    "Tensor-expression graphs evicted from a measurer's per-spec LRU",
)
_TE_SIZE_GAUGE = _metrics.gauge(
    "repro_te_cache_entries",
    "Tensor-expression graphs currently held by the newest measurer",
)


@dataclasses.dataclass(frozen=True)
class MeasureTelemetry:
    """Where a measurer's answers came from, and what the compiles cost."""

    n_compiled: int
    memory_hits: int
    disk_hits: int
    compile_time_s: float
    #: worker attempts that crashed or died (injected or organic)
    n_crashes: int = 0
    #: trials terminated at the wall-clock budget
    n_timeouts: int = 0
    #: crashed attempts that were resubmitted
    n_retries: int = 0
    #: configs that exhausted their retries by killing workers
    n_quarantined: int = 0
    #: configs dropped by model-guided pruning before any compile
    n_pruned: int = 0
    #: accumulated (stage, seconds) compile-path breakdown, canonical order
    stage_time_s: Tuple[Tuple[str, float], ...] = ()
    #: disk-cache write failures absorbed by degrading to memory-only
    disk_errors: int = 0
    #: trials that reused a memoized schedule+lower base kernel
    lower_cache_hits: int = 0
    #: trials that built (and memoized) a new base kernel
    lower_cache_misses: int = 0
    #: pipelining transforms run by the incremental engine
    transform_runs: int = 0
    #: trials the engine handed back to the fresh path (no reuse evidence)
    lower_cache_bypasses: int = 0
    #: whether an incremental engine was attached at all
    incremental: bool = False

    @property
    def n_measured(self) -> int:
        return self.n_compiled + self.memory_hits + self.disk_hits

    def summary(self) -> str:
        out = (
            f"{self.n_measured} measurements: {self.n_compiled} compiled "
            f"({self.compile_time_s:.2f}s), {self.memory_hits} memory hits, "
            f"{self.disk_hits} disk-cache hits"
        )
        if self.n_pruned:
            out += f"; {self.n_pruned} pruned by the analytical model"
        if self.n_crashes or self.n_timeouts:
            out += (
                f"; {self.n_crashes} crashed attempt(s) "
                f"({self.n_retries} retried, {self.n_quarantined} quarantined), "
                f"{self.n_timeouts} timeout(s)"
            )
        return out

    def profile_summary(self) -> str:
        """Per-stage wall-clock breakdown of the compile+simulate path,
        with the incremental engine's stage-cache reuse next to it."""
        times = profiling.StageTimes()
        times.merge(dict(self.stage_time_s))
        out = times.summary()
        if self.incremental:
            served = self.lower_cache_hits + self.lower_cache_misses
            reuse = 100.0 * self.lower_cache_hits / served if served else 0.0
            out += (
                f"\n  stage cache      {self.lower_cache_hits} hits / "
                f"{self.lower_cache_misses} misses ({reuse:.0f}% reuse), "
                f"{self.transform_runs} incremental transform(s)"
            )
            if self.lower_cache_bypasses:
                out += f", {self.lower_cache_bypasses} bypassed"
        return out


@dataclasses.dataclass(frozen=True)
class MeasureFailure:
    """One abnormal measurement outcome (crash or timeout), for telemetry
    and post-mortems. Genuine compile failures are *not* failures in this
    sense — they are valid ``inf`` measurements."""

    spec: str
    config: Tuple
    reason: str  # "crash" | "timeout"
    detail: str
    attempt: int

    def as_error(self) -> ReproError:
        """This failure as its taxonomy exception
        (:class:`MeasurementTimeout` or :class:`WorkerCrash`), for callers
        that want to raise rather than inspect telemetry."""
        cls = MeasurementTimeout if self.reason == "timeout" else WorkerCrash
        return cls(
            f"trial {self.config} of {self.spec} "
            f"(attempt {self.attempt}): {self.detail}",
            diagnostic=self,
        )


def _cfg_token(spec: GemmSpec, cfg: TileConfig) -> str:
    """Deterministic event token identifying one (problem, config) trial,
    used by the fault-injection layer to make per-trial decisions."""
    return (
        f"{spec.name}:{spec.batch}x{spec.m}x{spec.n}x{spec.k}"
        f"|{','.join(str(x) for x in cfg.key())}"
    )


def _trial_main(conn, gpu: GpuSpec, via_ir: bool, spec: GemmSpec, cfg: TileConfig,
                token: str) -> None:
    """Measurement worker process: one compile+simulate in a fresh Measurer.

    Runs exactly the serial code path, so a pooled sweep returns the same
    bits as a serial one. Sends ``("ok", latency, compile_s, stage_times)``
    on success (``inf`` for genuine compile failures; ``stage_times`` is the
    worker's per-stage breakdown dict), ``("crash", detail)`` when the
    trial raised, and nothing at all when the process is killed outright
    (worker death) — the parent treats silence as a crash.
    """
    try:
        faults.ensure_env_plan()
        faults.inject("worker", token=token)
        m = Measurer(gpu, via_ir=via_ir)
        latency = m._compile_and_time(spec, cfg, token=token)
        conn.send(("ok", latency, m.compile_time_s, dict(m.stage_times)))
    except Exception as e:  # crash-class fault or unexpected compiler bug
        try:
            conn.send(("crash", repr(e)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class Measurer:
    """Compile-and-simulate with caching and fault tolerance.

    Thread safety: telemetry counters, the in-memory result cache and the
    failure/quarantine records are guarded by an internal lock, so one
    measurer may be shared by concurrent request threads (the
    :mod:`repro.serve` daemon) without losing counts. Compiles themselves
    run outside the lock; only the bookkeeping serializes.

    Parameters
    ----------
    gpu:
        Target hardware model.
    via_ir:
        When True (default) the timing spec is extracted from the fully
        compiled IR — the honest path that measures the compiler's actual
        output. When False, the statically derived spec is used (proven
        equal in tests, ~3x faster for huge sweeps).
    cache:
        Optional disk-persistent :class:`MeasurementCache`; misses are
        compiled and written back, so later runs (or other measurers
        sharing the directory) warm-start.
    jobs:
        Worker-process width for batch measurement (:meth:`sweep` /
        :meth:`measure_many`). 1 (default) keeps everything in-process
        unless ``trial_timeout_s`` forces process isolation.
    trial_timeout_s:
        Per-trial wall-clock budget. Trials exceeding it are terminated
        and recorded :data:`FAILED`. Requires process isolation, so when
        set, even ``jobs=1`` measurements run in a worker process.
    retries:
        How many times a crashed attempt (dead or raising worker) is
        resubmitted before the config is recorded :data:`FAILED` and
        quarantined.
    backoff_s:
        Base of the exponential retry backoff (``backoff_s * 2**attempt``).
    incremental:
        Enable the incremental compile engine
        (:class:`~repro.core.incremental.IncrementalEngine`): configs
        sharing tile knobs reuse one memoized schedule+lower base kernel
        and only re-run the pipelining transform. Outputs are
        bitwise-identical to fresh builds. Defaults to ``via_ir`` (the
        static-spec path has no IR stages to share).
    """

    def __init__(
        self,
        gpu: GpuSpec = A100,
        via_ir: bool = True,
        cache: Optional[MeasurementCache] = None,
        jobs: int = 1,
        trial_timeout_s: Optional[float] = None,
        retries: int = 2,
        backoff_s: float = 0.05,
        incremental: Optional[bool] = None,
    ) -> None:
        self.gpu = gpu
        self.via_ir = via_ir
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.trial_timeout_s = trial_timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        #: guards every telemetry counter and the in-memory caches below;
        #: reentrant because the pool's crash handler tallies a failure and
        #: records its result in one critical section.
        self._lock = threading.RLock()
        self._cache: Dict[Tuple, float] = {}
        #: canonical tensor-expression graph per problem: building the
        #: placeholders + contraction is config-independent, so one graph
        #: serves every trial of a spec (auto_schedule never mutates it —
        #: cache_read materializes new tensors). Bounded LRU
        #: (:data:`TE_CACHE_MAX`) so a daemon cycling many shapes cannot
        #: grow it without limit; evictions are counted.
        self._te_cache: "OrderedDict[GemmSpec, Tensor]" = OrderedDict()
        self.te_cache_evictions = 0
        #: incremental compile engine (None = always compile fresh)
        self.engine: Optional[IncrementalEngine] = (
            IncrementalEngine()
            if (via_ir if incremental is None else bool(incremental)) and via_ir
            else None
        )
        # Newest measurer wins the process-wide size gauge (matching the
        # engine's own gauge convention).
        _TE_SIZE_GAUGE.set_function(lambda: len(self._te_cache))
        self.n_compiled = 0
        self.n_memory_hits = 0
        self.n_disk_hits = 0
        self.compile_time_s = 0.0
        self.n_crashes = 0
        self.n_timeouts = 0
        self.n_retries = 0
        #: configs dropped by model-guided pruning (opt-in, sweep-level)
        self.n_pruned = 0
        #: newest :class:`~repro.tuning.prune.PruneStats` from a pruned sweep
        self.last_prune_stats = None
        #: accumulated per-stage compile-path wall clock (schedule / lower /
        #: transform / spec-extract / simulate), including pooled workers.
        self.stage_times = profiling.StageTimes()
        #: in-memory keys of configs that exhausted retries by killing
        #: workers; they are never resubmitted by this measurer.
        self.quarantined: set = set()
        #: abnormal outcomes (crashes/timeouts) observed, newest last.
        self.failures: List[MeasureFailure] = []

    @property
    def telemetry(self) -> MeasureTelemetry:
        with self._lock:
            return self._telemetry_locked()

    def _telemetry_locked(self) -> MeasureTelemetry:
        return MeasureTelemetry(
            n_compiled=self.n_compiled,
            memory_hits=self.n_memory_hits,
            disk_hits=self.n_disk_hits,
            compile_time_s=self.compile_time_s,
            n_crashes=self.n_crashes,
            n_timeouts=self.n_timeouts,
            n_retries=self.n_retries,
            n_quarantined=len(self.quarantined),
            n_pruned=self.n_pruned,
            stage_time_s=tuple(self.stage_times.ordered()),
            disk_errors=self.cache.disk_errors if self.cache is not None else 0,
            lower_cache_hits=self.engine.hits if self.engine is not None else 0,
            lower_cache_misses=self.engine.misses if self.engine is not None else 0,
            transform_runs=self.engine.transform_runs if self.engine is not None else 0,
            lower_cache_bypasses=self.engine.bypasses if self.engine is not None else 0,
            incremental=self.engine is not None,
        )

    def _key(self, spec: GemmSpec, cfg: TileConfig) -> Tuple:
        """Full in-memory identity. The GPU spec and the ``via_ir`` mode are
        part of it: a measurer retargeted across GPU generations (the
        ``bench_ablation_gpu_generations`` pattern) or flipped between
        measurement modes must never serve stale latencies."""
        return (self.gpu, self.via_ir, spec, cfg.key())

    def _te_graph(self, spec: GemmSpec) -> Tensor:
        """The canonical (placeholder + contraction) graph for ``spec``,
        built once per LRU residency and reused by every trial."""
        with self._lock:
            c = self._te_cache.get(spec)
            if c is not None:
                self._te_cache.move_to_end(spec)
                return c
        a_shape = (spec.batch, spec.m, spec.k) if spec.batch > 1 else (spec.m, spec.k)
        b_shape = (spec.batch, spec.n, spec.k) if spec.batch > 1 else (spec.n, spec.k)
        a = placeholder("A", a_shape, dtype=spec.dtype)
        b = placeholder("B", b_shape, dtype=spec.dtype)
        c = contraction(a, b, spec)
        with self._lock:
            self._te_cache[spec] = c
            self._te_cache.move_to_end(spec)
            while len(self._te_cache) > TE_CACHE_MAX:
                self._te_cache.popitem(last=False)
                self.te_cache_evictions += 1
                _TE_EVICTIONS.inc()
        return c

    def _build_timing_spec(self, spec: GemmSpec, cfg: TileConfig):
        if not self.via_ir:
            with profiling.stage("spec-extract"):
                return timing_spec_from_config(spec, cfg)
        from ..transform import apply_pipelining

        c = self._te_graph(spec)
        if self.engine is not None:
            ts = self.engine.timing_spec(c, spec, cfg)
            if ts is not None:
                return ts
            # engine declined (no reuse evidence for this tile key): fresh
        with profiling.stage("schedule"):
            sched = auto_schedule(c, cfg)
        with profiling.stage("lower"):
            kernel = lower(sched)
        with profiling.stage("transform"):
            kernel = apply_pipelining(kernel)
        with profiling.stage("spec-extract"):
            return extract_timing_spec(kernel)

    def _compile_and_time(self, spec: GemmSpec, cfg: TileConfig, token: str = "") -> float:
        """One compile+simulate. Genuine compile/launch rejections return
        :data:`FAILED`; anything else (injected crashes, compiler bugs)
        propagates for the recovery layer to classify."""
        t0 = time.perf_counter()
        try:
            # Ambient token only matters to fault injection; skip the
            # context-manager round-trip on the (common) fault-free path.
            if faults.active_plan() is None:
                with profiling.collect(self.stage_times):
                    try:
                        ts = self._build_timing_spec(spec, cfg)
                        with profiling.stage("simulate"):
                            latency = simulate_kernel(ts, self.gpu).latency_us
                    except (CompileError, ValueError):
                        latency = FAILED
            else:
                with faults.push_token(token), profiling.collect(self.stage_times):
                    faults.inject("compile")
                    try:
                        ts = self._build_timing_spec(spec, cfg)
                        with profiling.stage("simulate"):
                            latency = simulate_kernel(ts, self.gpu).latency_us
                    except (CompileError, ValueError):
                        latency = FAILED
        except BaseException:
            dt = time.perf_counter() - t0
            with self._lock:
                self.compile_time_s += dt
            raise
        dt = time.perf_counter() - t0
        with self._lock:
            self.compile_time_s += dt
            self.n_compiled += 1
        return latency

    def _record(
        self, key: Tuple, spec: GemmSpec, cfg: TileConfig, latency: float,
        persist: bool = True,
    ) -> None:
        """Commit a result to the memory cache and (for genuine
        measurements, not crash/timeout placeholders) the disk cache."""
        with self._lock:
            self._cache[key] = latency
        if self.cache is not None and persist:
            self.cache.put(
                measurement_key(self.gpu, spec, cfg, self.via_ir, version=self.cache.version),
                latency,
                meta={
                    "gpu": self.gpu.name,
                    "spec": spec.name,
                    "dims": [spec.batch, spec.m, spec.n, spec.k],
                    "config": list(cfg.key()),
                    "via_ir": self.via_ir,
                },
            )

    def _lookup(self, key: Tuple, spec: GemmSpec, cfg: TileConfig) -> Optional[float]:
        """Memory cache, then disk cache (promoting disk hits to memory)."""
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self.n_memory_hits += 1
                return hit
        if self.cache is not None:
            disk = self.cache.get(
                measurement_key(self.gpu, spec, cfg, self.via_ir, version=self.cache.version)
            )
            if disk is not None:
                with self._lock:
                    self.n_disk_hits += 1
                    self._cache[key] = disk
                return disk
        return None

    # ------------------------------------------------------------- recovery
    def _note_failure(
        self, spec: GemmSpec, cfg: TileConfig, reason: str, detail: str, attempt: int
    ) -> None:
        with self._lock:
            self.failures.append(
                MeasureFailure(
                    spec=spec.name, config=cfg.key(), reason=reason,
                    detail=detail, attempt=attempt,
                )
            )

    def _measure_with_recovery(self, spec: GemmSpec, cfg: TileConfig, key: Tuple) -> None:
        """Serial (in-process) trial with bounded retry; crash-class
        exceptions become :data:`FAILED` + quarantine instead of aborting
        the sweep."""
        # The trial token exists solely for fault injection; don't pay for
        # its construction per trial when no plan is active.
        token_base = _cfg_token(spec, cfg) if faults.active_plan() is not None else ""
        for attempt in range(self.retries + 1):
            try:
                token = f"{token_base}#a{attempt}" if token_base else ""
                latency = self._compile_and_time(spec, cfg, token=token)
                self._record(key, spec, cfg, latency)
                return
            except Exception as e:
                with self._lock:
                    self.n_crashes += 1
                self._note_failure(spec, cfg, "crash", repr(e), attempt)
                if attempt < self.retries:
                    with self._lock:
                        self.n_retries += 1
                    time.sleep(self.backoff_s * (2**attempt))
        with self._lock:
            self.quarantined.add(key)
        self._record(key, spec, cfg, FAILED, persist=False)

    @staticmethod
    def _deadline_check(deadline: Optional[float], spec: GemmSpec, done: int,
                        total: int) -> None:
        """Raise :class:`DeadlineExceededError` when ``deadline`` (absolute
        ``time.monotonic``) has passed. Results already committed stay in
        the caches, so a retry of the same request resumes warm."""
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                f"sweep of {spec.name} ran out of its deadline after "
                f"{done}/{total} uncached trials; committed results are kept"
            )

    # ----------------------------------------------------------------- pool
    def _run_pool(self, spec: GemmSpec, tasks: List[Tuple[Tuple, TileConfig]],
                  width: int, sweep_deadline: Optional[float] = None) -> None:
        """Fault-tolerant worker pool: one process per trial attempt,
        per-future deadlines, crash recovery with retry/backoff, quarantine
        for repeat offenders. A dead or hung worker affects exactly its own
        trial; the sweep always completes."""
        import collections
        import multiprocessing as mp
        from multiprocessing import connection as mp_conn

        ctx = mp.get_context()
        # (key, cfg, attempt, not_before_monotonic)
        queue = collections.deque((key, cfg, 0, 0.0) for key, cfg in tasks)
        running: Dict[object, tuple] = {}

        def pop_ready(now: float):
            for _ in range(len(queue)):
                item = queue.popleft()
                if item[3] <= now:
                    return item
                queue.append(item)
            return None

        def on_crash(key, cfg, attempt, detail):
            with self._lock:
                self.n_crashes += 1
            self._note_failure(spec, cfg, "crash", detail, attempt)
            if attempt < self.retries:
                with self._lock:
                    self.n_retries += 1
                queue.append(
                    (key, cfg, attempt + 1,
                     time.monotonic() + self.backoff_s * (2**attempt))
                )
            else:
                with self._lock:
                    self.quarantined.add(key)
                self._record(key, spec, cfg, FAILED, persist=False)

        def put_down(proc, conn):
            """Retire one worker: join, escalating to SIGKILL when it
            ignores SIGTERM (or is wedged in uninterruptible state), and
            always release the pipe fd — a hung trial must never leak a
            zombie process or its descriptor for the rest of the sweep."""
            try:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            finally:
                conn.close()

        def reap(sid):
            proc, conn, *_ = running.pop(sid)
            put_down(proc, conn)

        try:
            while queue or running:
                if sweep_deadline is not None and time.monotonic() >= sweep_deadline:
                    # Put every in-flight worker down (same escalation as a
                    # Ctrl-C) before aborting: a deadline must never leak a
                    # child process. Committed trials stay cached.
                    for proc, *_ in running.values():
                        proc.terminate()
                    for proc, conn, *_ in running.values():
                        put_down(proc, conn)
                    done = len(tasks) - len(queue) - len(running)
                    running.clear()
                    self._deadline_check(sweep_deadline, spec, done, len(tasks))
                now = time.monotonic()
                while len(running) < width:
                    item = pop_ready(now)
                    if item is None:
                        break
                    key, cfg, attempt, _ = item
                    if key in self.quarantined:
                        self._record(key, spec, cfg, FAILED, persist=False)
                        continue
                    token = f"{_cfg_token(spec, cfg)}#a{attempt}"
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_trial_main,
                        args=(child_conn, self.gpu, self.via_ir, spec, cfg, token),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    deadline = (
                        now + self.trial_timeout_s
                        if self.trial_timeout_s is not None else None
                    )
                    running[proc.sentinel] = (proc, parent_conn, key, cfg, attempt, deadline)
                if not running:
                    # everything is backing off; wait out the shortest delay
                    time.sleep(min(self.backoff_s, 0.05))
                    continue
                waitables = [r[1] for r in running.values()]
                waitables += [r[0].sentinel for r in running.values()]
                mp_conn.wait(waitables, timeout=0.05)
                for sid in list(running):
                    proc, conn, key, cfg, attempt, deadline = running[sid]
                    if conn.poll():
                        try:
                            payload = conn.recv()
                        except (EOFError, OSError):
                            payload = None
                        if payload is not None and payload[0] == "ok":
                            _, latency, compile_s, stage_times = payload
                            with self._lock:
                                self.n_compiled += 1
                                self.compile_time_s += compile_s
                            self.stage_times.merge(stage_times)
                            self._record(key, spec, cfg, latency)
                        else:
                            detail = payload[1] if payload else "worker closed pipe"
                            on_crash(key, cfg, attempt, detail)
                        reap(sid)
                    elif not proc.is_alive():
                        if conn.poll():
                            continue  # result raced process exit; next pass
                        on_crash(key, cfg, attempt, f"worker died (exit code {proc.exitcode})")
                        reap(sid)
                    elif deadline is not None and time.monotonic() > deadline:
                        proc.terminate()
                        # Drain the pipe once before recording the timeout: a
                        # result that landed in the race window between the
                        # deadline check and the terminate is a completed
                        # measurement, and discarding it would make retries
                        # (or a fleet coordinator) re-measure a config that
                        # actually finished.
                        payload = None
                        try:
                            if conn.poll(0.05):
                                payload = conn.recv()
                        except (EOFError, OSError):
                            payload = None
                        if payload is not None and payload[0] == "ok":
                            _, latency, compile_s, stage_times = payload
                            with self._lock:
                                self.n_compiled += 1
                                self.compile_time_s += compile_s
                            self.stage_times.merge(stage_times)
                            self._record(key, spec, cfg, latency)
                        else:
                            with self._lock:
                                self.n_timeouts += 1
                            self._note_failure(
                                spec, cfg, "timeout",
                                f"exceeded {self.trial_timeout_s}s wall clock", attempt,
                            )
                            self._record(key, spec, cfg, FAILED, persist=False)
                        reap(sid)
        except KeyboardInterrupt:
            # Completed trials are already committed to the caches; just
            # put the workers down before propagating (same SIGTERM →
            # SIGKILL escalation as reap, so Ctrl-C never leaks children).
            for proc, *_ in running.values():
                proc.terminate()
            for proc, conn, *_ in running.values():
                put_down(proc, conn)
            raise

    # ------------------------------------------------------------------ api
    def measure(self, spec: GemmSpec, cfg: TileConfig) -> float:
        """Latency in us, or :data:`FAILED` when compilation fails."""
        return self.measure_many(spec, [cfg])[0]

    def measure_many(
        self, spec: GemmSpec, cfgs: Sequence[TileConfig], jobs: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[float]:
        """Measure a batch; fans out over worker processes.

        ``jobs`` explicitly overrides the pool width for this call only —
        the measurer's configured width is never mutated, so re-entrant or
        failed sweeps cannot leave a stale pool width behind. Cache hits
        are answered in-process; only distinct uncached configs reach the
        pool. Results (and cache writes) are merged in input order, so the
        output is identical to the serial path bit for bit.

        ``deadline`` (absolute ``time.monotonic`` seconds) aborts the batch
        cleanly with :class:`DeadlineExceededError` once passed: in-flight
        workers are put down, committed results stay cached. The serving
        daemon uses this to stop burning a worker thread on a request whose
        client budget has already expired.
        """
        width = self.jobs if jobs is None else max(1, int(jobs))
        results: Dict[int, float] = {}
        pending: Dict[Tuple, List[int]] = {}
        order: List[Tuple[Tuple, TileConfig]] = []
        for i, cfg in enumerate(cfgs):
            key = self._key(spec, cfg)
            if key in pending:  # duplicate within the batch: compile once
                pending[key].append(i)
                continue
            hit = self._lookup(key, spec, cfg)
            if hit is not None:
                results[i] = hit
                continue
            pending[key] = [i]
            order.append((key, cfg))
        if self.engine is not None and len(order) > 1:
            # Group uncached trials by shared schedule-key prefix so one
            # memoized base kernel's reuse window is contiguous, and tell
            # the engine which tile keys this batch repeats (so even their
            # first trial goes through it). Results are merged back by key
            # into input positions below, so the recorded latencies — and
            # which configs are measured — are unchanged.
            order.sort(key=lambda kc: _incremental_sort_key(kc[1]))
            self.engine.note_batch(spec, [cfg for _, cfg in order])
        if order:
            if width <= 1 and self.trial_timeout_s is None:
                for done, (key, cfg) in enumerate(order):
                    self._deadline_check(deadline, spec, done, len(order))
                    self._measure_with_recovery(spec, cfg, key)
            else:
                self._run_pool(spec, order, width, sweep_deadline=deadline)
            for key, _ in order:
                for i in pending[key]:
                    results[i] = self._cache[key]
        return [results[i] for i in range(len(cfgs))]

    def sweep(
        self,
        spec: GemmSpec,
        space: Sequence[TileConfig],
        jobs: Optional[int] = None,
        prune_ratio: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> List[float]:
        """Measure every config; failed builds yield :data:`FAILED`.

        ``jobs`` overrides the pool width for this sweep only (passed
        through :meth:`measure_many` explicitly, never stored).

        ``prune_ratio`` (opt-in, default off) runs the model-guided pruning
        pass first: configs the analytical model prices beyond
        ``prune_ratio`` times its best prediction are recorded
        :data:`FAILED` without ever being compiled. Positions in the
        returned list still correspond 1:1 to ``space``.
        """
        space = list(space)
        if not prune_ratio:
            return self.measure_many(spec, space, jobs=jobs, deadline=deadline)
        kept, stats = prune_space(spec, space, self.gpu, prune_ratio)
        with self._lock:
            self.n_pruned += stats.n_total - stats.n_kept
            self.last_prune_stats = stats
        kept_latency = self.measure_many(spec, kept, jobs=jobs, deadline=deadline)
        by_key = {cfg.key(): lat for cfg, lat in zip(kept, kept_latency)}
        return [by_key.get(cfg.key(), FAILED) for cfg in space]

    def best(self, spec: GemmSpec, space: Sequence[TileConfig],
             deadline: Optional[float] = None) -> Tuple[TileConfig, float]:
        """Exhaustive-search optimum over ``space``."""
        space = list(space)
        if not space:
            raise CompileError(
                f"cannot search an empty design space for {spec.name}: every "
                "candidate was removed by the variant/space restrictions"
            )
        latencies = self.sweep(spec, space, deadline=deadline)
        idx = min(range(len(space)), key=lambda i: latencies[i])
        if latencies[idx] == FAILED:
            raise CompileError(f"no configuration in the space compiles for {spec.name}")
        return space[idx], latencies[idx]

"""The measurement harness: compile a schedule and time it on the simulator.

This plays the role of AutoTVM's builder+runner: each measurement runs the
full compiler path — automatic schedule, lowering, pipelining program
transformation, timing-spec extraction from the produced IR — and then the
discrete-event simulator (the reproduction's "hardware"). Results are
cached by (problem, config) so exhaustive studies and tuner comparisons
re-use timings.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..codegen import lower
from ..gpusim.config import A100, GpuSpec
from ..gpusim.engine import simulate_kernel
from ..gpusim.occupancy import CompileError
from ..gpusim.spec import extract_timing_spec
from ..perfmodel.static_spec import timing_spec_from_config
from ..schedule.auto import auto_schedule
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec, contraction, placeholder

__all__ = ["Measurer", "FAILED"]

#: Latency recorded for configurations that fail to compile/launch.
FAILED = math.inf


class Measurer:
    """Compile-and-simulate with caching.

    Parameters
    ----------
    gpu:
        Target hardware model.
    via_ir:
        When True (default) the timing spec is extracted from the fully
        compiled IR — the honest path that measures the compiler's actual
        output. When False, the statically derived spec is used (proven
        equal in tests, ~3x faster for huge sweeps).
    """

    def __init__(self, gpu: GpuSpec = A100, via_ir: bool = True) -> None:
        self.gpu = gpu
        self.via_ir = via_ir
        self._cache: Dict[Tuple, float] = {}
        self.n_compiled = 0

    def _build_timing_spec(self, spec: GemmSpec, cfg: TileConfig):
        if not self.via_ir:
            return timing_spec_from_config(spec, cfg)
        from ..transform import apply_pipelining

        a_shape = (spec.batch, spec.m, spec.k) if spec.batch > 1 else (spec.m, spec.k)
        b_shape = (spec.batch, spec.n, spec.k) if spec.batch > 1 else (spec.n, spec.k)
        a = placeholder("A", a_shape, dtype=spec.dtype)
        b = placeholder("B", b_shape, dtype=spec.dtype)
        c = contraction(a, b, spec)
        kernel = apply_pipelining(lower(auto_schedule(c, cfg)))
        return extract_timing_spec(kernel)

    def measure(self, spec: GemmSpec, cfg: TileConfig) -> float:
        """Latency in us, or :data:`FAILED` when compilation fails."""
        key = (spec.name, spec.batch, spec.m, spec.n, spec.k, spec.dtype, cfg.key())
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.n_compiled += 1
        try:
            ts = self._build_timing_spec(spec, cfg)
            latency = simulate_kernel(ts, self.gpu).latency_us
        except (CompileError, ValueError):
            latency = FAILED
        self._cache[key] = latency
        return latency

    def sweep(self, spec: GemmSpec, space: Sequence[TileConfig]) -> List[float]:
        """Measure every config; failed builds yield :data:`FAILED`."""
        return [self.measure(spec, cfg) for cfg in space]

    def best(self, spec: GemmSpec, space: Sequence[TileConfig]) -> Tuple[TileConfig, float]:
        """Exhaustive-search optimum over ``space``."""
        latencies = self.sweep(spec, space)
        idx = min(range(len(space)), key=lambda i: latencies[i])
        if latencies[idx] == FAILED:
            raise CompileError(f"no configuration in the space compiles for {spec.name}")
        return space[idx], latencies[idx]

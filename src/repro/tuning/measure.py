"""The measurement harness: compile a schedule and time it on the simulator.

This plays the role of AutoTVM's builder+runner: each measurement runs the
full compiler path — automatic schedule, lowering, pipelining program
transformation, timing-spec extraction from the produced IR — and then the
discrete-event simulator (the reproduction's "hardware"). Results are
cached by their full identity (GPU, problem, config, measurement mode) in
memory, optionally persisted to disk (:class:`~repro.tuning.cache.
MeasurementCache`), and batch measurements can fan out over a process pool
(``jobs > 1``) while returning bitwise-identical latencies to the serial
path.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..codegen import lower
from ..gpusim.config import A100, GpuSpec
from ..gpusim.engine import simulate_kernel
from ..gpusim.occupancy import CompileError
from ..gpusim.spec import extract_timing_spec
from ..perfmodel.static_spec import timing_spec_from_config
from ..schedule.auto import auto_schedule
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec, contraction, placeholder
from .cache import MeasurementCache, measurement_key

__all__ = ["Measurer", "MeasureTelemetry", "FAILED"]

#: Latency recorded for configurations that fail to compile/launch.
FAILED = math.inf


@dataclasses.dataclass(frozen=True)
class MeasureTelemetry:
    """Where a measurer's answers came from, and what the compiles cost."""

    n_compiled: int
    memory_hits: int
    disk_hits: int
    compile_time_s: float

    @property
    def n_measured(self) -> int:
        return self.n_compiled + self.memory_hits + self.disk_hits

    def summary(self) -> str:
        return (
            f"{self.n_measured} measurements: {self.n_compiled} compiled "
            f"({self.compile_time_s:.2f}s), {self.memory_hits} memory hits, "
            f"{self.disk_hits} disk-cache hits"
        )


def _measure_worker(args: Tuple[GpuSpec, bool, GemmSpec, TileConfig]) -> float:
    """Process-pool entry point: one compile+simulate in a fresh Measurer.

    Runs exactly the serial code path, so a parallel sweep returns the same
    bits as a serial one.
    """
    gpu, via_ir, spec, cfg = args
    return Measurer(gpu, via_ir=via_ir)._compile_and_time(spec, cfg)


class Measurer:
    """Compile-and-simulate with caching.

    Parameters
    ----------
    gpu:
        Target hardware model.
    via_ir:
        When True (default) the timing spec is extracted from the fully
        compiled IR — the honest path that measures the compiler's actual
        output. When False, the statically derived spec is used (proven
        equal in tests, ~3x faster for huge sweeps).
    cache:
        Optional disk-persistent :class:`MeasurementCache`; misses are
        compiled and written back, so later runs (or other measurers
        sharing the directory) warm-start.
    jobs:
        Process-pool width for batch measurement (:meth:`sweep` /
        :meth:`measure_many`). 1 (default) keeps everything in-process.
    """

    def __init__(
        self,
        gpu: GpuSpec = A100,
        via_ir: bool = True,
        cache: Optional[MeasurementCache] = None,
        jobs: int = 1,
    ) -> None:
        self.gpu = gpu
        self.via_ir = via_ir
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self._cache: Dict[Tuple, float] = {}
        self.n_compiled = 0
        self.n_memory_hits = 0
        self.n_disk_hits = 0
        self.compile_time_s = 0.0

    @property
    def telemetry(self) -> MeasureTelemetry:
        return MeasureTelemetry(
            n_compiled=self.n_compiled,
            memory_hits=self.n_memory_hits,
            disk_hits=self.n_disk_hits,
            compile_time_s=self.compile_time_s,
        )

    def _key(self, spec: GemmSpec, cfg: TileConfig) -> Tuple:
        """Full in-memory identity. The GPU spec and the ``via_ir`` mode are
        part of it: a measurer retargeted across GPU generations (the
        ``bench_ablation_gpu_generations`` pattern) or flipped between
        measurement modes must never serve stale latencies."""
        return (self.gpu, self.via_ir, spec, cfg.key())

    def _build_timing_spec(self, spec: GemmSpec, cfg: TileConfig):
        if not self.via_ir:
            return timing_spec_from_config(spec, cfg)
        from ..transform import apply_pipelining

        a_shape = (spec.batch, spec.m, spec.k) if spec.batch > 1 else (spec.m, spec.k)
        b_shape = (spec.batch, spec.n, spec.k) if spec.batch > 1 else (spec.n, spec.k)
        a = placeholder("A", a_shape, dtype=spec.dtype)
        b = placeholder("B", b_shape, dtype=spec.dtype)
        c = contraction(a, b, spec)
        kernel = apply_pipelining(lower(auto_schedule(c, cfg)))
        return extract_timing_spec(kernel)

    def _compile_and_time(self, spec: GemmSpec, cfg: TileConfig) -> float:
        self.n_compiled += 1
        t0 = time.perf_counter()
        try:
            ts = self._build_timing_spec(spec, cfg)
            latency = simulate_kernel(ts, self.gpu).latency_us
        except (CompileError, ValueError):
            latency = FAILED
        self.compile_time_s += time.perf_counter() - t0
        return latency

    def _record(self, key: Tuple, spec: GemmSpec, cfg: TileConfig, latency: float) -> None:
        self._cache[key] = latency
        if self.cache is not None:
            self.cache.put(
                measurement_key(self.gpu, spec, cfg, self.via_ir, version=self.cache.version),
                latency,
                meta={
                    "gpu": self.gpu.name,
                    "spec": spec.name,
                    "dims": [spec.batch, spec.m, spec.n, spec.k],
                    "config": list(cfg.key()),
                    "via_ir": self.via_ir,
                },
            )

    def _lookup(self, key: Tuple, spec: GemmSpec, cfg: TileConfig) -> Optional[float]:
        """Memory cache, then disk cache (promoting disk hits to memory)."""
        hit = self._cache.get(key)
        if hit is not None:
            self.n_memory_hits += 1
            return hit
        if self.cache is not None:
            disk = self.cache.get(
                measurement_key(self.gpu, spec, cfg, self.via_ir, version=self.cache.version)
            )
            if disk is not None:
                self.n_disk_hits += 1
                self._cache[key] = disk
                return disk
        return None

    def measure(self, spec: GemmSpec, cfg: TileConfig) -> float:
        """Latency in us, or :data:`FAILED` when compilation fails."""
        key = self._key(spec, cfg)
        hit = self._lookup(key, spec, cfg)
        if hit is not None:
            return hit
        latency = self._compile_and_time(spec, cfg)
        self._record(key, spec, cfg, latency)
        return latency

    def measure_many(self, spec: GemmSpec, cfgs: Sequence[TileConfig]) -> List[float]:
        """Measure a batch; fans out over ``jobs`` worker processes.

        Cache hits are answered in-process; only distinct uncached configs
        reach the pool. Results (and cache writes) are merged in input
        order, so the output is identical to ``[measure(spec, c) for c in
        cfgs]`` bit for bit.
        """
        if self.jobs <= 1 or len(cfgs) <= 1:
            return [self.measure(spec, cfg) for cfg in cfgs]
        results: Dict[int, float] = {}
        pending: Dict[Tuple, List[int]] = {}
        order: List[Tuple[Tuple, TileConfig]] = []
        for i, cfg in enumerate(cfgs):
            key = self._key(spec, cfg)
            if key in pending:  # duplicate within the batch: compile once
                pending[key].append(i)
                continue
            hit = self._lookup(key, spec, cfg)
            if hit is not None:
                results[i] = hit
                continue
            pending[key] = [i]
            order.append((key, cfg))
        if order:
            import concurrent.futures

            t0 = time.perf_counter()
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(order))
            ) as pool:
                latencies = list(
                    pool.map(
                        _measure_worker,
                        [(self.gpu, self.via_ir, spec, cfg) for _, cfg in order],
                        chunksize=max(1, len(order) // (4 * self.jobs)),
                    )
                )
            self.compile_time_s += time.perf_counter() - t0
            self.n_compiled += len(order)
            for (key, cfg), latency in zip(order, latencies):
                self._record(key, spec, cfg, latency)
                for i in pending[key]:
                    results[i] = latency
        return [results[i] for i in range(len(cfgs))]

    def sweep(
        self, spec: GemmSpec, space: Sequence[TileConfig], jobs: Optional[int] = None
    ) -> List[float]:
        """Measure every config; failed builds yield :data:`FAILED`.

        ``jobs`` temporarily overrides the pool width for this sweep.
        """
        if jobs is None:
            return self.measure_many(spec, list(space))
        saved = self.jobs
        self.jobs = max(1, int(jobs))
        try:
            return self.measure_many(spec, list(space))
        finally:
            self.jobs = saved

    def best(self, spec: GemmSpec, space: Sequence[TileConfig]) -> Tuple[TileConfig, float]:
        """Exhaustive-search optimum over ``space``."""
        latencies = self.sweep(spec, space)
        idx = min(range(len(space)), key=lambda i: latencies[i])
        if latencies[idx] == FAILED:
            raise CompileError(f"no configuration in the space compiles for {spec.name}")
        return space[idx], latencies[idx]

"""Gradient-boosted regression trees, implemented from scratch on numpy.

This substitutes for XGBoost (unavailable offline) in the paper's
ML-based cost model. Squared-error boosting over CART trees with exact
greedy splits; supports sample weights, which the model-assisted tuner uses
to blend analytically generated pseudo-samples with real measurements.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees"]


@dataclasses.dataclass
class _Node:
    feature: int = -1  # -1 marks a leaf
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0


class RegressionTree:
    """A CART regression tree (weighted squared error, exact splits)."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 2) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray, w: Optional[np.ndarray] = None) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (n, d) and match y")
        if w is None:
            w = np.ones(len(y))
        w = np.asarray(w, dtype=np.float64)
        if np.any(w < 0) or w.sum() == 0:
            raise ValueError("weights must be non-negative with positive sum")
        self._root = self._build(X, y, w, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(np.average(y, weights=w)))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, y, w)
        if split is None:
            return node
        feat, thr = split
        mask = X[:, feat] <= thr
        node.feature = feat
        node.threshold = thr
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, w: np.ndarray):
        n, d = X.shape
        best_gain = 1e-12
        best = None
        total_w = w.sum()
        total_wy = (w * y).sum()
        base_sse = (w * y * y).sum() - total_wy**2 / total_w
        for feat in range(d):
            order = np.argsort(X[:, feat], kind="stable")
            xs = X[order, feat]
            ws = w[order]
            wys = ws * y[order]
            cw = np.cumsum(ws)
            cwy = np.cumsum(wys)
            cwyy = np.cumsum(wys * y[order])
            # candidate split points: between distinct consecutive values
            valid = np.nonzero(xs[:-1] < xs[1:])[0]
            if valid.size == 0:
                continue
            k = valid  # split after index k (left = [0..k])
            lw = cw[k]
            rw = total_w - lw
            ok = (k + 1 >= self.min_samples_leaf) & (n - k - 1 >= self.min_samples_leaf)
            ok &= (lw > 0) & (rw > 0)
            if not np.any(ok):
                continue
            lwy = cwy[k]
            rwy = total_wy - lwy
            lsse = cwyy[k] - lwy**2 / np.where(lw > 0, lw, 1)
            rsse = (cwyy[-1] - cwyy[k]) - rwy**2 / np.where(rw > 0, rw, 1)
            gain = np.where(ok, base_sse - (lsse + rsse), -np.inf)
            i = int(np.argmax(gain))
            if gain[i] > best_gain:
                best_gain = float(gain[i])
                thr = 0.5 * (xs[valid[i]] + xs[valid[i] + 1])
                best = (feat, float(thr))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while node.feature != -1:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Squared-loss gradient boosting (the XGBoost stand-in)."""

    def __init__(
        self,
        n_estimators: int = 80,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
    ) -> None:
        if n_estimators < 1 or not (0 < learning_rate <= 1):
            raise ValueError("need n_estimators >= 1 and 0 < learning_rate <= 1")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._init = 0.0
        self._trees: List[RegressionTree] = []

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        w: Optional[np.ndarray] = None,
    ) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if w is None:
            w = np.ones(len(y))
        w = np.asarray(w, dtype=np.float64)
        self._trees = []
        self._init = float(np.average(y, weights=w))
        pred = np.full(len(y), self._init)
        for _ in range(self.n_estimators):
            residual = y - pred
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(X, residual, w)
            step = tree.predict(X)
            if np.allclose(step, 0):
                break
            pred += self.learning_rate * step
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.full(len(X), self._init)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees) or self._init != 0.0

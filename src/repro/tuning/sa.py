"""Simulated-annealing proposal over the schedule space.

AutoTVM-style sampler: random walks over the knob lattice, scored by the
current cost model, keeping the best distinct points visited. Neighborhood
moves change one knob to an adjacent legal value; the walk restarts from
promising known points, so it exploits the model while still exploring.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..schedule.config import TileConfig

__all__ = ["SimulatedAnnealingSampler"]

_FIELDS = ("block_m", "block_n", "block_k", "warp_m", "warp_n", "chunk_k",
           "smem_stages", "reg_stages")


class SimulatedAnnealingSampler:
    """Propose promising configurations from a finite space."""

    def __init__(
        self,
        space: Sequence[TileConfig],
        n_iters: int = 150,
        n_chains: int = 16,
        temperature: float = 0.6,
        seed: int = 0,
    ) -> None:
        if not space:
            raise ValueError("space must be non-empty")
        self.space = list(space)
        self.n_iters = n_iters
        self.n_chains = n_chains
        self.temperature = temperature
        self.rng = np.random.default_rng(seed)
        self._index: Dict[Tuple, int] = {c.key(): i for i, c in enumerate(self.space)}
        self._neighbors: Dict[int, List[int]] = {}
        self._values = {
            f: sorted({getattr(c, f) for c in self.space}) for f in _FIELDS
        }

    def _neighbor_ids(self, idx: int) -> List[int]:
        """Configs differing from ``idx`` by one knob step (lazily built)."""
        cached = self._neighbors.get(idx)
        if cached is not None:
            return cached
        cfg = self.space[idx]
        out: List[int] = []
        for f in _FIELDS:
            vals = self._values[f]
            cur = vals.index(getattr(cfg, f))
            for j in (cur - 1, cur + 1):
                if 0 <= j < len(vals):
                    try:
                        candidate = dataclasses.replace(cfg, **{f: vals[j]})
                    except ValueError:
                        continue  # knob combination violates tile divisibility
                    hit = self._index.get(candidate.key())
                    if hit is not None:
                        out.append(hit)
        self._neighbors[idx] = out
        return out

    def propose(
        self,
        score_fn: Callable[[Sequence[TileConfig]], np.ndarray],
        n_propose: int,
        exclude: Optional[set] = None,
        seeds: Optional[Sequence[TileConfig]] = None,
    ) -> List[TileConfig]:
        """Return up to ``n_propose`` distinct high-scoring configs.

        ``score_fn`` maps configs to scores (higher is better).
        ``exclude`` holds ``cfg.key()`` tuples already measured.
        ``seeds`` are known-good starting points (best measured so far).
        """
        exclude = exclude or set()
        n = len(self.space)
        starts: List[int] = []
        for s in seeds or []:
            hit = self._index.get(s.key())
            if hit is not None:
                starts.append(hit)
        while len(starts) < self.n_chains:
            starts.append(int(self.rng.integers(n)))

        current = np.array(starts[: self.n_chains])
        cur_scores = score_fn([self.space[i] for i in current])
        visited: Dict[int, float] = {int(i): float(s) for i, s in zip(current, cur_scores)}

        for it in range(self.n_iters):
            temp = self.temperature * (1.0 - it / self.n_iters) + 1e-3
            proposals = []
            for ci, idx in enumerate(current):
                nbrs = self._neighbor_ids(int(idx))
                proposals.append(
                    int(self.rng.choice(nbrs)) if nbrs else int(self.rng.integers(n))
                )
            new_scores = score_fn([self.space[i] for i in proposals])
            for ci in range(len(current)):
                delta = new_scores[ci] - cur_scores[ci]
                scale = max(1e-9, abs(cur_scores[ci]) * temp)
                if delta >= 0 or self.rng.random() < np.exp(delta / scale):
                    current[ci] = proposals[ci]
                    cur_scores[ci] = new_scores[ci]
                visited[int(proposals[ci])] = float(new_scores[ci])

        ranked = sorted(visited.items(), key=lambda kv: -kv[1])
        out: List[TileConfig] = []
        for idx, _ in ranked:
            cfg = self.space[idx]
            if cfg.key() in exclude:
                continue
            out.append(cfg)
            if len(out) == n_propose:
                break
        if len(out) < n_propose:
            # Top up with unmeasured random points to keep batch sizes fixed.
            out_keys = {c.key() for c in out}
            perm = self.rng.permutation(n)
            for idx in perm:
                cfg = self.space[int(idx)]
                key = cfg.key()
                if key in exclude or key in out_keys:
                    continue
                out.append(cfg)
                out_keys.add(key)
                if len(out) == n_propose:
                    break
        return out

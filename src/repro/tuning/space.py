"""Schedule design space enumeration.

The space spans the knobs of :class:`TileConfig`: threadblock tile, warp
tile, register chunk and both pipeline stage counts. Baseline compilers use
restricted sub-spaces of the same enumeration (paper Sec. V-A):

* ``vanilla TVM``            — ``smem_stages == reg_stages == 1``;
* ``TVM-DB``                 — manual double-buffering, ``(2, 1)``;
* ``ALCOP w/o ML & MS``      — two-stage single-level, ``smem <= 2``;
* ``ALCOP w/o ML``           — multi-stage single-level, ``reg == 1``;
* ``ALCOP``                  — the full space.

Configurations that cannot launch (register overflow, over-sized shared
memory) are *kept* in the enumeration: real compilers only discover these
failures when building the kernel, which is exactly the 'compile fail'
phenomenon of Fig. 12. Use ``launchable_only=True`` to pre-filter.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from ..gpusim.config import A100, GpuSpec
from ..gpusim.occupancy import CompileError, check_launchable
from ..obs import metrics as _metrics
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = [
    "SpaceOptions",
    "enumerate_space",
    "SUBSPACES",
    "restrict_space",
    "clear_space_caches",
]

_BLOCK_MN = (16, 32, 64, 128, 256)
_BLOCK_K = (16, 32, 64)
_WARP_MN = (16, 32, 64)
_CHUNK_K = (8, 16, 32)


@dataclasses.dataclass(frozen=True)
class SpaceOptions:
    """Bounds of the enumeration."""

    max_smem_stages: int = 4
    max_reg_stages: int = 2
    max_warps: int = 8
    max_threads: int = 512
    launchable_only: bool = False
    #: deterministic strided subsampling cap (None = full space); used by
    #: end-to-end studies where per-op exhaustive sweeps are unnecessary.
    max_size: "int | None" = None


# Enumeration and variant restriction are pure functions of hashable,
# frozen inputs, and the compiler's variant ladder plus the benchmarks call
# them with the same arguments over and over — so both are memoized in
# small LRU caches. Tuples are stored internally; callers get a fresh list
# each time, so mutating a returned space can never corrupt the cache.
# The caches are lock-guarded: the serve daemon enumerates from concurrent
# request threads, and OrderedDict reordering is not atomic.
_cache_lock = threading.Lock()
_ENUM_CACHE_SIZE = 64
_enum_cache: "OrderedDict[Tuple[GemmSpec, GpuSpec, SpaceOptions], Tuple[TileConfig, ...]]" = (
    OrderedDict()
)
_RESTRICT_CACHE_SIZE = 64
_restrict_cache: "OrderedDict[Tuple[str, Tuple[TileConfig, ...]], Tuple[TileConfig, ...]]" = (
    OrderedDict()
)

_SPACE_EVICTIONS = _metrics.counter(
    "repro_space_cache_evictions_total",
    "Entries evicted from the enumerate/restrict memo caches",
)
_ENUM_SIZE_GAUGE = _metrics.gauge(
    "repro_space_enum_cache_entries",
    "Design-space enumerations currently memoized",
)
_ENUM_SIZE_GAUGE.set_function(lambda: len(_enum_cache))
_RESTRICT_SIZE_GAUGE = _metrics.gauge(
    "repro_space_restrict_cache_entries",
    "Variant sub-space restrictions currently memoized",
)
_RESTRICT_SIZE_GAUGE.set_function(lambda: len(_restrict_cache))


def clear_space_caches() -> None:
    """Drop both memo caches (tests and long-lived sessions)."""
    with _cache_lock:
        _enum_cache.clear()
        _restrict_cache.clear()


def _cache_put(cache: "OrderedDict", size: int, key, value) -> None:
    cache[key] = value
    while len(cache) > size:
        cache.popitem(last=False)
        _SPACE_EVICTIONS.inc()


def enumerate_space(
    spec: GemmSpec,
    gpu: GpuSpec = A100,
    options: Optional[SpaceOptions] = None,
) -> List[TileConfig]:
    """All candidate schedules for ``spec``, in deterministic grid order."""
    opt = options or SpaceOptions()
    key = (spec, gpu, opt)
    with _cache_lock:
        cached = _enum_cache.get(key)
        if cached is not None:
            _enum_cache.move_to_end(key)
            return list(cached)
    out = _enumerate_space_uncached(spec, gpu, opt)
    # Only successful enumerations are cached; the empty-space ValueError
    # path stays uncached so its message is always raised fresh.
    with _cache_lock:
        _cache_put(_enum_cache, _ENUM_CACHE_SIZE, key, tuple(out))
    return out


def _enumerate_space_uncached(
    spec: GemmSpec, gpu: GpuSpec, opt: SpaceOptions
) -> List[TileConfig]:
    out: List[TileConfig] = []
    for bm in _BLOCK_MN:
        if spec.m % bm:
            continue
        for bn in _BLOCK_MN:
            if spec.n % bn:
                continue
            for bk in _BLOCK_K:
                if spec.k % bk:
                    continue
                for wm in _WARP_MN:
                    if bm % wm:
                        continue
                    for wn in _WARP_MN:
                        if bn % wn:
                            continue
                        warps = (bm // wm) * (bn // wn)
                        if warps > opt.max_warps or warps * 32 > opt.max_threads:
                            continue
                        for ck in _CHUNK_K:
                            if bk % ck:
                                continue
                            for ss in range(1, opt.max_smem_stages + 1):
                                for rs in range(1, opt.max_reg_stages + 1):
                                    cfg = TileConfig(
                                        bm, bn, bk, warp_m=wm, warp_n=wn, chunk_k=ck,
                                        smem_stages=ss, reg_stages=rs,
                                    )
                                    if opt.launchable_only and not _launchable(cfg, spec, gpu):
                                        continue
                                    out.append(cfg)
    if not out:
        raise ValueError(
            f"design space for {spec.name} ({spec.m}x{spec.n}x{spec.k}) is "
            "empty; the problem dimensions admit no candidate tiles"
        )
    if opt.max_size is not None and len(out) > opt.max_size:
        stride = -(-len(out) // opt.max_size)
        out = out[::stride]
    return out


def _launchable(cfg: TileConfig, spec: GemmSpec, gpu: GpuSpec) -> bool:
    res = cfg.resource_usage(spec.dtype)
    try:
        check_launchable(gpu, res.smem_bytes, res.regs_per_thread, res.threads)
    except CompileError:
        return False
    return True


#: Named sub-spaces implementing the paper's compiler variants.
SUBSPACES = {
    "tvm": lambda c: c.smem_stages == 1 and c.reg_stages == 1,
    "tvm-db": lambda c: c.smem_stages <= 2 and c.reg_stages == 1,
    "alcop-no-ml-no-ms": lambda c: c.smem_stages <= 2 and c.reg_stages == 1,
    "alcop-no-ml": lambda c: c.reg_stages == 1,
    "alcop": lambda c: True,
}


def restrict_space(space: Sequence[TileConfig], variant: str) -> List[TileConfig]:
    """Filter an enumerated space down to a named compiler variant."""
    try:
        pred = SUBSPACES[variant]
    except KeyError:
        raise ValueError(f"unknown variant {variant!r}; choose from {sorted(SUBSPACES)}")
    key = (variant, tuple(space))
    with _cache_lock:
        cached = _restrict_cache.get(key)
        if cached is not None:
            _restrict_cache.move_to_end(key)
            return list(cached)
    out = [c for c in space if pred(c)]
    with _cache_lock:
        _cache_put(_restrict_cache, _RESTRICT_CACHE_SIZE, key, tuple(out))
    return out

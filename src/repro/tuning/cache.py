"""Content-addressed, disk-persistent measurement cache.

Every measurement the harness produces is a pure function of its full
identity: the GPU model, the GEMM problem, the schedule configuration, the
measurement mode (``via_ir``) and the compiler itself. This module hashes
that identity into a content address and persists ``address -> latency``
as an append-only JSON-lines file, so sweeps, tuner comparisons and repeat
benchmark runs never redo a compile the repo has already paid for.

Invalidation is automatic: the content address folds in a hash over the
source of every compile-path package (``transform``, ``codegen``,
``schedule``, ``gpusim``, ``perfmodel``, ``tensor``, ``ir`` and the
measurement harness itself), so editing a transform pass orphans old
entries instead of serving stale latencies. See ``docs/tuning_cache.md``
for the key anatomy and the CLI flags that drive this.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import math
import pathlib
import threading
from typing import Dict, Optional, Union

from .. import faults
from ..core.degrade import DiskDegrade
from ..gpusim.config import GpuSpec
from ..obs import metrics as obs_metrics
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = [
    "MeasurementCache",
    "compiler_version_hash",
    "gpu_fingerprint",
    "measurement_key",
]

#: Packages (under ``src/repro``) whose source defines what a measurement
#: means; any edit to them must invalidate persisted latencies.
_VERSION_PACKAGES = (
    "codegen",
    "gpusim",
    "ir",
    "perfmodel",
    "schedule",
    "tensor",
    "transform",
)

_version_hash: Optional[str] = None


def compiler_version_hash() -> str:
    """Hex digest over the compile-path sources (cached per process)."""
    global _version_hash
    if _version_hash is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for pkg in _VERSION_PACKAGES:
            for path in sorted((root / pkg).rglob("*.py")):
                h.update(str(path.relative_to(root)).encode())
                h.update(path.read_bytes())
        # The harness itself participates: it defines how specs are built
        # and timed, so a measure.py change also invalidates.
        h.update((root / "tuning" / "measure.py").read_bytes())
        _version_hash = h.hexdigest()[:16]
    return _version_hash


@functools.lru_cache(maxsize=None)
def gpu_fingerprint(gpu: GpuSpec) -> str:
    """Stable digest of every hardware parameter of ``gpu`` (not just its
    name — two presets that differ in any simulated quantity must never
    share cache entries)."""
    payload = json.dumps(dataclasses.asdict(gpu), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def measurement_key(
    gpu: GpuSpec,
    spec: GemmSpec,
    cfg: TileConfig,
    via_ir: bool,
    version: Optional[str] = None,
) -> str:
    """Content address of one measurement: the full identity, hashed."""
    payload = {
        "gpu": gpu_fingerprint(gpu),
        "spec": dataclasses.asdict(spec),
        "config": cfg.as_dict(),
        "via_ir": bool(via_ir),
        "version": version if version is not None else compiler_version_hash(),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


_MISS = object()

_CACHE_HITS = obs_metrics.counter(
    "repro_cache_hits_total", "Measurement-cache lookups served from memory.")
_CACHE_MISSES = obs_metrics.counter(
    "repro_cache_misses_total", "Measurement-cache lookups that missed.")


class MeasurementCache:
    """Append-only JSON-lines store of measured latencies under a directory.

    Entries from other compiler versions are skipped on load (their content
    addresses can never match anyway), so a version bump behaves exactly
    like an empty cache without deleting the history. Failed builds are
    cached as ``"inf"`` — re-running a sweep does not re-discover known
    compile failures.

    Thread safety: lookups, inserts and the underlying file append are
    serialized by an internal lock, so one cache instance may back the
    serve daemon's shared measurer across concurrent request threads.

    Disk failure: an ``OSError`` on any write (ENOSPC, EIO, an unwritable
    directory) degrades the cache to memory-only for the rest of the
    process — one warning, a ``disk_errors`` counter, and the sweep keeps
    running on the in-memory entries instead of crashing the tuner.
    """

    FILENAME = "measurements.jsonl"

    def __init__(
        self, cache_dir: Union[str, pathlib.Path], version: Optional[str] = None
    ) -> None:
        self.dir = pathlib.Path(cache_dir)
        self._degrade = DiskDegrade(
            "measurement cache",
            f"results from this run will not persist to {self.dir}")
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except OSError as e:
            self._note_disk_error("create cache directory", e)
        self.path = self.dir / self.FILENAME
        self.version = version if version is not None else compiler_version_hash()
        self._entries: Dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._load()

    @property
    def disk_errors(self) -> int:
        """Disk writes absorbed by degrading to memory-only operation."""
        return self._degrade.disk_errors

    @property
    def degraded(self) -> bool:
        """True once a disk failure switched this cache to memory-only."""
        return self._degrade.degraded

    def _note_disk_error(self, action: str, exc: OSError) -> None:
        """Degrade to memory-only: warn once, count every occurrence."""
        self._degrade.note(action, exc)

    def _load(self) -> None:
        try:
            if not self.path.exists():
                return
            text = self.path.read_text()
        except OSError as e:
            self._note_disk_error("read its store", e)
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a crashed run: skip, don't crash
            if entry.get("version") != self.version or "key" not in entry:
                continue
            latency = entry.get("latency_us")
            self._entries[entry["key"]] = (
                math.inf if latency == "inf" else float(latency)
            )

    def get(self, key: str) -> Optional[float]:
        """Cached latency (``math.inf`` for cached failures) or None."""
        with self._lock:
            hit = self._entries.get(key, _MISS)
            if hit is _MISS:
                self.misses += 1
                _CACHE_MISSES.inc()
                return None
            self.hits += 1
            _CACHE_HITS.inc()
            return hit

    def put(self, key: str, latency_us: float, meta: Optional[dict] = None) -> None:
        """Record one measurement; ``meta`` rides along for humans reading
        the log (the key alone is opaque). The in-memory entry always
        lands, even when the disk append fails (degraded mode)."""
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = latency_us
            if self.degraded:
                return
            entry = dict(meta or {})
            entry.update(
                {
                    "key": key,
                    "version": self.version,
                    "latency_us": "inf" if math.isinf(latency_us) else latency_us,
                }
            )
            try:
                faults.inject("disk", token=f"cache:{key[:16]}", kinds=("crash",))
                with self.path.open("a") as f:
                    f.write(json.dumps(entry, sort_keys=True) + "\n")
            except OSError as e:
                self._note_disk_error("append a measurement", e)

    def __len__(self) -> int:
        return len(self._entries)

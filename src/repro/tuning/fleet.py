"""Distributed, elastic tuning fleet (docs/distributed.md).

The process-pool :class:`~repro.tuning.measure.Measurer` is one box wide;
this module scales the measurement loop beyond it, modelled on TVM's
RPC-tracker measurement farm: a :class:`FleetCoordinator` shards an
enumerated design space across many expendable workers, streams results
back asynchronously as each trial lands, work-steals the unmeasured
remainder of straggler shards, tolerates worker death at any point, and
scales the fleet up or down mid-sweep (:meth:`FleetCoordinator.scale_to`).

Workers come in two kinds:

:class:`LocalProcessWorker`
    One long-lived worker *process* per fleet slot (amortizing spawn cost
    across trials, unlike the pool's process-per-trial isolation). Each
    trial runs through the hardened ``Measurer`` trial protocol — retry
    with backoff, quarantine — inside the worker, so per-trial crashes
    never surface as worker failures.
:class:`RemoteServeWorker`
    A ``repro serve`` / ``repro fleet-worker`` daemon reached over the
    newline-JSON Unix socket or HTTP transport, answering the ``measure``
    op with one shard per request. One warm daemon box is one fleet slot.

The invariant that makes the fleet safe to trust: a sharded sweep is
**bitwise-identical** to a serial ``Measurer.sweep`` — every latency and
the best config — including under injected worker death at any fleet
width and mid-sweep resizes. Trials are deterministic simulations, so a
re-measured (retried or stolen) config reproduces the same bits; the
coordinator merges duplicates first-write-wins and the chaos suite
(``tests/chaos/test_fleet.py``) asserts the identity end to end.

Failure model
-------------
A worker dying mid-shard (``fleet`` fault site, ``worker-death``) costs
the shard's unmeasured remainder, which is requeued at the next attempt
number while the slot respawns its worker. A lost dispatch
(``coordinator`` token, ``crash``) requeues the whole shard. A shard that
fails :attr:`FleetCoordinator.max_shard_retries` times aborts the sweep
with :class:`~repro.core.errors.WorkerCrash` — by then the fault is
systemic, not transient. Results already streamed are never lost: they
are committed to the coordinator (and through :func:`fleet_sweep`, to the
measurer's caches) the moment they arrive.

Endpoint health is tracked per slot by a :class:`CircuitBreaker`
(docs/robustness.md): repeated worker-start failures (any slot) or remote
transport/deadline failures open the breaker, which stops dispatching to
the sick seat for an escalating cooldown, then lets one half-open probe
shard through. A successful probe closes the breaker — a daemon that
restarts mid-sweep *rejoins* the fleet instead of being permanently
retired — while a breaker that opens :attr:`CircuitBreaker.max_opens`
times is deemed dead and retires its seat for good.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..core.errors import FaultInjected, ServeError, WorkerCrash
from ..gpusim.config import A100, GpuSpec
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec
from .measure import Measurer, _cfg_token

__all__ = [
    "CircuitBreaker",
    "FleetCoordinator",
    "FleetResult",
    "FleetTelemetry",
    "LocalProcessWorker",
    "RemoteServeWorker",
    "fleet_sweep",
    "parse_endpoint",
]

#: (position in the sweep, config) — the unit of fleet work.
Item = Tuple[int, TileConfig]

#: on_result callback signature: (index, latency_us, persist_to_disk).
ResultSink = Callable[[int, float, bool], None]


#: Process-global mirrors of the fleet telemetry counters, so a long
#: coordinator (or a daemon hosting many sweeps) shows up on /metrics.
_FLEET_STEALS = obs_metrics.counter(
    "repro_fleet_steals_total", "Straggler shards work-stolen mid-sweep.")
_FLEET_DEATHS = obs_metrics.counter(
    "repro_fleet_worker_deaths_total", "Fleet workers that died mid-shard.")
_BREAKER_OPENS = obs_metrics.counter(
    "repro_breaker_opens_total", "Circuit breakers opened on sick fleet seats.")
_BREAKER_REJOINS = obs_metrics.counter(
    "repro_breaker_rejoins_total",
    "Fleet seats that rejoined after a successful half-open probe.")


def _coordinator_token(sid: int, attempt: int) -> str:
    return f"coordinator|shard={sid}|attempt={attempt}"


def _worker_token(spec: GemmSpec, cfg: TileConfig, sid: int, attempt: int) -> str:
    return f"worker|shard={sid}|attempt={attempt}|{_cfg_token(spec, cfg)}"


# --------------------------------------------------------------------- workers
def _fleet_worker_main(conn, gpu: GpuSpec, via_ir: bool, retries: int) -> None:
    """Fleet worker process: a long-lived loop answering shard requests.

    Each trial goes through the serial ``Measurer`` recovery path (retry
    with backoff, quarantine), so the values returned are bit-identical to
    a serial sweep's. Results stream back one message per trial —
    ``("result", sid, index, latency, persist)`` — so the coordinator
    loses at most the trial in flight when this process dies. ``persist``
    is False for crash-quarantined FAILED placeholders, which are run
    properties, not config properties, and must stay out of disk caches.

    A shard message may carry a sixth element, ``(trace_id, span_id)``:
    the coordinator's trace context. The worker then records a
    ``fleet:worker-shard`` span with per-trial children and ships the
    serialized spans back on the ``done`` message, stitching the child
    process into the coordinator's tree. Older coordinators send 5-tuples
    and older workers ignore the extra element — both directions stay
    compatible. A worker that dies mid-shard simply never ships its spans:
    the trace loses that shard's detail, never its validity.
    """
    try:
        faults.ensure_env_plan()
        measurer = Measurer(gpu, via_ir=via_ir, retries=retries, backoff_s=0.01)
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                return
            _, sid, attempt, spec, items = msg[:5]
            wire_ctx = msg[5] if len(msg) > 5 else None
            ctx = None
            if (isinstance(wire_ctx, (tuple, list)) and len(wire_ctx) == 2
                    and all(isinstance(x, str) for x in wire_ctx)):
                ctx = obs_trace.SpanContext(wire_ctx[0], wire_ctx[1])
            tracer = None
            with contextlib.ExitStack() as scope:
                if ctx is not None:
                    tracer = scope.enter_context(
                        obs_trace.activate(obs_trace.Tracer(capacity=4096)))
                    scope.enter_context(obs_trace.span(
                        "fleet:worker-shard", parent=ctx,
                        attrs={"shard": sid, "attempt": attempt,
                               "trials": len(items)}))
                for idx, cfg in items:
                    faults.inject("fleet", token=_worker_token(spec, cfg, sid, attempt))
                    with obs_trace.span("fleet:trial", attrs={"index": idx}):
                        latency = measurer.measure(spec, cfg)
                    persist = measurer._key(spec, cfg) not in measurer.quarantined
                    conn.send(("result", sid, idx, latency, persist))
            spans = [s.as_dict() for s in tracer.spans()] if tracer is not None else None
            conn.send(("done", sid, spans))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # coordinator went away; nothing to report to
    finally:
        try:
            conn.close()
        except OSError:
            pass


class LocalProcessWorker:
    """One fleet slot backed by a long-lived local worker process."""

    kind = "process"

    def __init__(self, gpu: GpuSpec, via_ir: bool, retries: int = 2) -> None:
        self.gpu = gpu
        self.via_ir = via_ir
        self.retries = retries
        self._proc = None
        self._conn = None

    def start(self) -> None:
        import multiprocessing as mp

        ctx = mp.get_context()
        self._conn, child = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_fleet_worker_main,
            args=(child, self.gpu, self.via_ir, self.retries),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def measure_shard(
        self, spec: GemmSpec, sid: int, attempt: int, items: Sequence[Item],
        on_result: ResultSink, should_abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Run ``items`` on the worker, streaming each trial's result into
        ``on_result`` as it lands. Raises :class:`WorkerCrash` when the
        worker dies mid-shard (the caller requeues the remainder) or when
        ``should_abort`` turns true (sweep already complete elsewhere)."""
        ctx = obs_trace.current_context()
        wire_ctx = (ctx.trace_id, ctx.span_id) if ctx is not None else None
        try:
            self._conn.send(("shard", sid, attempt, spec, list(items), wire_ctx))
            while True:
                if not self._conn.poll(0.05):
                    if should_abort is not None and should_abort():
                        raise WorkerCrash(f"shard {sid} abandoned: sweep over")
                    if self._proc.is_alive() or self._conn.poll():
                        continue
                    raise WorkerCrash(
                        f"fleet worker died mid-shard {sid} "
                        f"(exit code {self._proc.exitcode})"
                    )
                msg = self._conn.recv()
                if msg[0] == "done":
                    # Adopt the child process's spans (message element 3,
                    # absent from older workers) into every active tracer.
                    if len(msg) > 2 and msg[2]:
                        for tracer in obs_trace.active_tracers():
                            tracer.import_spans(msg[2])
                    return
                _, _, idx, latency, persist = msg
                on_result(idx, latency, persist)
        except (EOFError, OSError, BrokenPipeError) as e:
            raise WorkerCrash(f"fleet worker pipe broke on shard {sid}: {e}") from e

    def stop(self) -> None:
        """Retire the worker with the same SIGTERM → SIGKILL escalation as
        the measurement pool: never leak a child or its pipe fd."""
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        if self._proc is not None:
            try:
                self._proc.join(timeout=0.5)
                if self._proc.is_alive():
                    self._proc.terminate()
                    self._proc.join(timeout=1.0)
                if self._proc.is_alive():
                    self._proc.kill()
                    self._proc.join(timeout=1.0)
            finally:
                self._proc = None
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None


class RemoteServeWorker:
    """One fleet slot backed by a ``repro serve`` / ``repro fleet-worker``
    daemon answering the ``measure`` op. Result streaming is per-shard (one
    request/response round trip per shard) rather than per-trial."""

    kind = "remote"

    def __init__(self, endpoint: str, via_ir: bool, timeout: float = 600.0) -> None:
        from ..serve.client import ServeClient

        self.endpoint = endpoint
        self.via_ir = via_ir
        kwargs = parse_endpoint(endpoint)
        self._client = ServeClient(timeout=timeout, **kwargs)

    def start(self) -> None:
        self._client.ping()

    def measure_shard(
        self, spec: GemmSpec, sid: int, attempt: int, items: Sequence[Item],
        on_result: ResultSink, should_abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        result = self._client.measure(spec, [cfg for _, cfg in items])
        if bool(result.get("via_ir")) != bool(self.via_ir):
            raise ServeError(
                f"fleet worker {self.endpoint} measures via_ir="
                f"{result.get('via_ir')} but this sweep needs via_ir="
                f"{self.via_ir}; its latencies would not be bitwise-"
                "comparable to the serial sweep"
            )
        latencies = result.get("latencies", [])
        persist = result.get("persist", [True] * len(latencies))
        if len(latencies) != len(items):
            raise ServeError(
                f"fleet worker {self.endpoint} answered {len(latencies)} "
                f"latencies for a {len(items)}-trial shard"
            )
        for (idx, _), latency, keep in zip(items, latencies, persist):
            on_result(idx, float(latency), bool(keep))

    def stop(self) -> None:
        pass  # the daemon outlives the sweep by design


def parse_endpoint(endpoint: str) -> Dict[str, object]:
    """``host:port`` → TCP/HTTP client kwargs; anything else is a Unix
    socket path (the jsonl transport)."""
    host, sep, port = endpoint.rpartition(":")
    if sep and port.isdigit() and "/" not in host:
        return {"host": host or "127.0.0.1", "port": int(port)}
    return {"socket_path": endpoint}


# ------------------------------------------------------------ circuit breaker
class CircuitBreaker:
    """Per-slot endpoint health: closed → open → half-open → closed.

    *Closed* (healthy): every dispatch is allowed; ``threshold``
    consecutive failures trip the breaker *open*. *Open*: no dispatches
    for an escalating cooldown (``cooldown_s * 2**(opens-1)``, capped at
    16×), after which the breaker goes *half-open* and admits exactly one
    probe shard. A probe success closes the breaker — the seat rejoins
    the fleet; a probe failure re-opens it with a longer cooldown. A
    breaker that has opened ``max_opens`` times is :attr:`exhausted`:
    the endpoint is dead, not flaky, and its seat retires.

    Not thread-safe by design: each fleet slot owns one breaker and only
    its own driver thread touches it.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 0.25,
                 max_opens: int = 5) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown_s = max(0.0, float(cooldown_s))
        self.max_opens = max(1, int(max_opens))
        self.state = "closed"
        #: consecutive failures while closed (reset on success or trip)
        self.failures = 0
        #: lifetime count of closed/half-open → open transitions
        self.opens = 0
        self._opened_at = 0.0
        self._probe_out = False

    @property
    def exhausted(self) -> bool:
        """True once the breaker has opened ``max_opens`` times: give up."""
        return self.opens >= self.max_opens

    def _cooldown(self) -> float:
        return self.cooldown_s * (2 ** min(self.opens - 1, 4))

    def allow(self) -> bool:
        """May this slot take a shard right now? An open breaker whose
        cooldown has elapsed transitions to half-open and grants the one
        probe; a half-open breaker with its probe already out refuses."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if time.monotonic() - self._opened_at < self._cooldown():
                return False
            self.state = "half-open"
            self._probe_out = True
            return True
        if self._probe_out:
            return False
        self._probe_out = True
        return True

    def release_probe(self) -> None:
        """Return an unused probe permission (``allow`` granted but no
        shard was available to dispatch)."""
        if self.state == "half-open":
            self._probe_out = False

    def record_success(self) -> bool:
        """A dispatch completed. Returns True when this success *rejoined*
        the seat (the breaker was not closed — a probe came back alive)."""
        rejoined = self.state != "closed"
        self.state = "closed"
        self.failures = 0
        self._probe_out = False
        return rejoined

    def record_failure(self) -> bool:
        """A dispatch failed at the transport (worker start, remote I/O,
        remote deadline). Returns True when this failure *opened* the
        breaker (so the caller can count opens and check exhaustion)."""
        if self.state == "open":
            return False
        if self.state == "half-open":
            self._probe_out = False
            self._trip()
            return True
        self.failures += 1
        if self.failures >= self.threshold:
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self.state = "open"
        self.opens += 1
        self.failures = 0
        self._opened_at = time.monotonic()


# ----------------------------------------------------------------- coordinator
@dataclasses.dataclass(frozen=True)
class FleetTelemetry:
    """What the sweep cost the fleet: dispatches, losses, steals, resizes."""

    n_workers_peak: int
    n_shards: int
    shards_dispatched: int
    worker_deaths: int
    shard_losses: int
    steals: int
    resizes: int
    results_streamed: int
    duplicates: int
    breaker_opens: int = 0
    breaker_rejoins: int = 0

    def summary(self) -> str:
        out = (
            f"{self.n_shards} shard(s) over {self.n_workers_peak} worker(s), "
            f"{self.shards_dispatched} dispatch(es), "
            f"{self.results_streamed} result(s) streamed"
        )
        if self.worker_deaths or self.shard_losses:
            out += (
                f"; {self.worker_deaths} worker death(s), "
                f"{self.shard_losses} shard loss(es) recovered"
            )
        if self.steals:
            out += f"; {self.steals} shard(s) work-stolen ({self.duplicates} duplicate trial(s))"
        if self.resizes:
            out += f"; {self.resizes} mid-sweep resize(s)"
        if self.breaker_opens:
            out += (
                f"; {self.breaker_opens} circuit-breaker open(s), "
                f"{self.breaker_rejoins} rejoin(s)"
            )
        return out


@dataclasses.dataclass(frozen=True)
class FleetResult:
    """Latencies aligned 1:1 with the input space, plus fleet telemetry."""

    latencies: List[float]
    telemetry: FleetTelemetry

    def best_index(self) -> int:
        return min(range(len(self.latencies)), key=lambda i: self.latencies[i])


class _Shard:
    """A contiguous slice of the space, tracking its unmeasured items."""

    def __init__(self, sid: int, items: List[Item], attempt: int = 0,
                 steal_of: Optional[int] = None) -> None:
        self.sid = sid
        self.items = items
        self.attempt = attempt
        #: sid of the in-flight shard this one was cloned from, or None.
        self.steal_of = steal_of
        #: concurrent thieves cloned *from* this shard (bounded to 1).
        self.thieves = 0


class _Slot:
    """One fleet seat: a driver thread plus the worker it manages."""

    def __init__(self, slot_id: int, factory: Callable[[], object],
                 remote: bool = False,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.slot_id = slot_id
        self.factory = factory
        self.remote = remote
        self.retired = False
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.thread: Optional[threading.Thread] = None


class FleetCoordinator:
    """Shard a design space over an elastic worker fleet (module docstring).

    Parameters
    ----------
    spec / configs:
        The problem and the (deduplicated) configs to measure.
    gpu / via_ir:
        Measurement identity — must match the serial measurer's for the
        bitwise-identity guarantee to be meaningful.
    workers:
        Local worker processes to start with (``scale_to`` changes it
        mid-sweep).
    endpoints:
        Remote ``measure``-op daemons, one fleet slot each, on top of the
        local workers.
    shard_size:
        Trials per shard. Defaults to ~4 shards per slot (enough
        granularity for balancing and stealing without drowning in
        dispatch overhead).
    max_shard_retries:
        Times one shard may be lost (worker death / lost dispatch) before
        the sweep aborts with :class:`WorkerCrash`.
    steal:
        Allow idle slots to clone the unmeasured remainder of an in-flight
        shard (first result wins; duplicates are identical by determinism).
    breaker_threshold / breaker_cooldown_s / breaker_max_opens:
        Per-slot :class:`CircuitBreaker` tuning — consecutive transport
        failures before the slot stops taking shards, base cooldown before
        its half-open probe, and opens before the seat retires for good.
    """

    def __init__(
        self,
        spec: GemmSpec,
        configs: Sequence[TileConfig],
        *,
        gpu: GpuSpec = A100,
        via_ir: bool = False,
        workers: int = 2,
        endpoints: Sequence[str] = (),
        shard_size: Optional[int] = None,
        max_shard_retries: int = 8,
        steal: bool = True,
        trial_retries: int = 2,
        remote_timeout: float = 600.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 0.25,
        breaker_max_opens: int = 5,
    ) -> None:
        self.spec = spec
        self.configs = list(configs)
        self.gpu = gpu
        self.via_ir = via_ir
        self.endpoints = list(endpoints)
        self.max_shard_retries = max(0, int(max_shard_retries))
        self.steal = steal
        self.trial_retries = trial_retries
        self.remote_timeout = remote_timeout
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.breaker_max_opens = breaker_max_opens
        self._initial_workers = max(0, int(workers))
        if self._initial_workers + len(self.endpoints) < 1:
            raise ValueError("a fleet needs at least one local or remote worker")
        n_slots = self._initial_workers + len(self.endpoints)
        if shard_size is None:
            shard_size = max(1, math.ceil(len(self.configs) / max(1, 4 * n_slots)))
        self.shard_size = max(1, int(shard_size))

        self._cond = threading.Condition()
        self._queue: List[_Shard] = [
            _Shard(sid, [(i, self.configs[i]) for i in range(lo, min(lo + self.shard_size,
                                                                     len(self.configs)))])
            for sid, lo in enumerate(range(0, len(self.configs), self.shard_size))
        ]
        self._n_shards = len(self._queue)
        self._inflight: Dict[int, _Shard] = {}
        self._results: Dict[int, float] = {}
        self._on_result: Optional[ResultSink] = None
        self._slots: List[_Slot] = []
        self._next_slot = 0
        self._done = False
        self._failure: Optional[BaseException] = None
        # telemetry
        self._dispatched = 0
        self._deaths = 0
        self._losses = 0
        self._steals = 0
        self._resizes = 0
        self._streamed = 0
        self._duplicates = 0
        self._peak = 0
        self._breaker_opens = 0
        self._breaker_rejoins = 0
        #: trace context of the coordinator's root span, handed to the
        #: driver threads (which have no span stack of their own).
        self._trace_ctx: Optional[obs_trace.SpanContext] = None

    # ------------------------------------------------------------- public api
    def run(self, on_result: Optional[ResultSink] = None) -> FleetResult:
        """Measure everything; returns when every config has a result.

        ``on_result(index, latency, persist)`` is invoked exactly once per
        config, as its first result streams in (the hook
        :func:`fleet_sweep` uses to commit into a measurer's caches).
        """
        with obs_trace.span(
            "fleet:coordinator",
            attrs={"configs": len(self.configs), "shards": self._n_shards},
        ) as root:
            self._trace_ctx = root.context() if root is not None else None
            return self._run(on_result)

    def _run(self, on_result: Optional[ResultSink]) -> FleetResult:
        self._on_result = on_result
        if not self.configs:
            return FleetResult([], self._telemetry_locked())
        with self._cond:
            for endpoint in self.endpoints:
                self._add_slot_locked(self._remote_factory(endpoint), remote=True)
            for _ in range(self._initial_workers):
                self._add_slot_locked(self._local_factory())
        try:
            with self._cond:
                while len(self._results) < len(self.configs) and self._failure is None:
                    self._cond.wait(0.05)
        finally:
            with self._cond:
                self._done = True
                self._cond.notify_all()
            for slot in list(self._slots):
                if slot.thread is not None:
                    slot.thread.join(timeout=10.0)
        if self._failure is not None:
            raise self._failure
        with self._cond:
            telemetry = self._telemetry_locked()
        return FleetResult(
            [self._results[i] for i in range(len(self.configs))], telemetry
        )

    def scale_to(self, n_local: int) -> None:
        """Resize the *local* half of the fleet mid-sweep. Growing spawns
        fresh slots immediately; shrinking retires slots, each of which
        drains its current shard and then leaves. Remote endpoint slots are
        not touched."""
        n_local = max(0, int(n_local))
        with self._cond:
            local = [s for s in self._slots if not s.retired and not s.remote]
            if n_local == len(local):
                return
            self._resizes += 1
            if n_local > len(local):
                for _ in range(n_local - len(local)):
                    self._add_slot_locked(self._local_factory())
            else:
                for slot in local[n_local:]:
                    slot.retired = True
            self._cond.notify_all()

    @property
    def telemetry(self) -> FleetTelemetry:
        with self._cond:
            return self._telemetry_locked()

    # ---------------------------------------------------------------- slots
    def _local_factory(self) -> Callable[[], object]:
        return lambda: LocalProcessWorker(self.gpu, self.via_ir, self.trial_retries)

    def _remote_factory(self, endpoint: str) -> Callable[[], object]:
        return lambda: RemoteServeWorker(endpoint, self.via_ir, self.remote_timeout)

    def _add_slot_locked(self, factory: Callable[[], object],
                         remote: bool = False) -> None:
        slot = _Slot(
            self._next_slot, factory, remote=remote,
            breaker=CircuitBreaker(
                threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
                max_opens=self.breaker_max_opens,
            ),
        )
        self._next_slot += 1
        self._slots.append(slot)
        active = sum(1 for s in self._slots if not s.retired)
        self._peak = max(self._peak, active)
        slot.thread = threading.Thread(
            target=self._drive, args=(slot,), name=f"fleet-slot-{slot.slot_id}",
            daemon=True,
        )
        slot.thread.start()

    # --------------------------------------------------------------- driving
    def _over(self) -> bool:
        with self._cond:
            return self._done or self._failure is not None

    def _drive(self, slot: _Slot) -> None:
        worker = None
        try:
            while True:
                with self._cond:
                    shard = None
                    while shard is None:
                        if self._done or self._failure is not None or slot.retired:
                            return
                        if not slot.breaker.allow():
                            # Open breaker: sit out the cooldown without
                            # touching the queue.
                            self._cond.wait(0.05)
                            continue
                        shard = self._next_shard_locked()
                        if shard is None:
                            slot.breaker.release_probe()
                            self._cond.wait(0.05)
                    if shard.steal_of is None:
                        self._inflight[shard.sid] = shard
                    self._dispatched += 1
                if worker is None:
                    try:
                        worker = slot.factory()
                        worker.start()
                    except Exception:
                        # The slot cannot get a worker (e.g. its endpoint is
                        # down). Hand the shard back untouched — this is not
                        # the shard's fault — and feed the breaker so a dead
                        # endpoint backs off instead of stalling the sweep
                        # (and retires for good once the breaker exhausts).
                        worker = None
                        with self._cond:
                            self._breaker_failure_locked(slot)
                            self._requeue_unchanged_locked(shard)
                            self._cond.notify_all()
                        time.sleep(0.05)
                        continue
                try:
                    faults.inject(
                        "fleet",
                        token=_coordinator_token(shard.sid, shard.attempt),
                        kinds=("crash",),
                    )
                    # Driver threads have no span stack; parent the dispatch
                    # explicitly under the coordinator's root span so local
                    # worker-shard spans (and remote serve spans, via the
                    # client context on this thread) stitch into one tree.
                    with obs_trace.span(
                        "fleet:dispatch", parent=self._trace_ctx,
                        attrs={"slot": slot.slot_id, "shard": shard.sid,
                               "attempt": shard.attempt,
                               "kind": getattr(worker, "kind", "unknown")},
                    ):
                        worker.measure_shard(
                            self.spec, shard.sid, shard.attempt, shard.items,
                            self._commit, should_abort=self._over,
                        )
                except FaultInjected:
                    # Lost dispatch (shard-loss): the worker never saw the
                    # shard; requeue it whole, keep the worker.
                    self._abandon(shard, death=False)
                except (WorkerCrash, ServeError, EOFError, OSError) as e:
                    if self._over():
                        self._finish(shard)
                        return
                    if slot.remote:
                        # Remote transport/deadline failure: the endpoint is
                        # sick, not the shard. Local mid-shard deaths stay
                        # out of the breaker — they are the chaos suite's
                        # injected faults, recovered by requeue alone.
                        with self._cond:
                            self._breaker_failure_locked(slot)
                    self._abandon(shard, death=True, error=e)
                    if worker is not None:
                        try:
                            worker.stop()
                        finally:
                            worker = None
                else:
                    if slot.breaker.record_success():
                        with self._cond:
                            self._breaker_rejoins += 1
                        _BREAKER_REJOINS.inc()
                    self._finish(shard)
        except BaseException as e:  # never die silently: fail the sweep
            with self._cond:
                if self._failure is None:
                    self._failure = e
                self._cond.notify_all()
        finally:
            if worker is not None:
                worker.stop()

    def _breaker_failure_locked(self, slot: _Slot) -> None:
        """Feed one transport failure into ``slot``'s breaker; when the
        breaker exhausts, the seat retires — and when every seat is gone,
        the sweep aborts rather than hangs."""
        if slot.breaker.record_failure():
            self._breaker_opens += 1
            _BREAKER_OPENS.inc()
            if slot.breaker.exhausted:
                slot.retired = True
                if not any(
                    not s.retired for s in self._slots
                ) and self._failure is None:
                    self._failure = WorkerCrash(
                        "every fleet slot is gone (workers "
                        "unreachable); sweep cannot proceed"
                    )

    def _requeue_unchanged_locked(self, shard: _Shard) -> None:
        """Give a shard back exactly as dispatched (no attempt consumed)."""
        if shard.steal_of is not None:
            owner = self._inflight.get(shard.steal_of)
            if owner is not None:
                owner.thieves -= 1
            return
        self._inflight.pop(shard.sid, None)
        self._queue.append(shard)

    def _next_shard_locked(self) -> Optional[_Shard]:
        while self._queue:
            shard = self._queue.pop(0)
            shard.items = self._remaining(shard.items)
            if shard.items:
                return shard
            self._inflight.pop(shard.sid, None)  # fully covered by a thief
        if self.steal:
            victim = None
            for shard in self._inflight.values():
                if shard.thieves:
                    continue
                remaining = self._remaining(shard.items)
                if len(remaining) >= 2 and (
                    victim is None or len(remaining) > len(victim[1])
                ):
                    victim = (shard, remaining)
            if victim is not None:
                shard, remaining = victim
                shard.thieves += 1
                self._steals += 1
                _FLEET_STEALS.inc()
                return _Shard(shard.sid, remaining, shard.attempt + 1,
                              steal_of=shard.sid)
        return None

    def _remaining(self, items: Sequence[Item]) -> List[Item]:
        return [it for it in items if it[0] not in self._results]

    def _commit(self, idx: int, latency: float, persist: bool) -> None:
        with self._cond:
            self._streamed += 1
            if idx in self._results:
                self._duplicates += 1
                return
            self._results[idx] = latency
            fresh = True
            if len(self._results) == len(self.configs):
                self._cond.notify_all()
        if fresh and self._on_result is not None:
            self._on_result(idx, latency, persist)

    def _finish(self, shard: _Shard) -> None:
        with self._cond:
            if shard.steal_of is not None:
                owner = self._inflight.get(shard.steal_of)
                if owner is not None:
                    owner.thieves -= 1
            else:
                self._inflight.pop(shard.sid, None)
            self._cond.notify_all()

    def _abandon(self, shard: _Shard, death: bool,
                 error: Optional[BaseException] = None) -> None:
        """A dispatch failed: requeue whatever the shard still owes."""
        with self._cond:
            if death:
                self._deaths += 1
                _FLEET_DEATHS.inc()
            self._losses += 1
            if shard.steal_of is not None:
                # The owner still carries these items; just release the
                # steal slot.
                owner = self._inflight.get(shard.steal_of)
                if owner is not None:
                    owner.thieves -= 1
                self._cond.notify_all()
                return
            self._inflight.pop(shard.sid, None)
            remaining = self._remaining(shard.items)
            if not remaining:
                self._cond.notify_all()
                return
            if shard.attempt >= self.max_shard_retries:
                if self._failure is None:
                    self._failure = WorkerCrash(
                        f"fleet shard {shard.sid} lost {shard.attempt + 1} "
                        f"time(s) ({len(remaining)} trial(s) unmeasured); "
                        f"last error: {error!r}",
                        diagnostic=error,
                    )
            else:
                self._queue.append(_Shard(shard.sid, remaining, shard.attempt + 1))
            self._cond.notify_all()

    def _telemetry_locked(self) -> FleetTelemetry:
        return FleetTelemetry(
            n_workers_peak=self._peak,
            n_shards=self._n_shards,
            shards_dispatched=self._dispatched,
            worker_deaths=self._deaths,
            shard_losses=self._losses,
            steals=self._steals,
            resizes=self._resizes,
            results_streamed=self._streamed,
            duplicates=self._duplicates,
            breaker_opens=self._breaker_opens,
            breaker_rejoins=self._breaker_rejoins,
        )


# ------------------------------------------------------------------ integration
def fleet_sweep(
    measurer: Measurer,
    spec: GemmSpec,
    space: Sequence[TileConfig],
    *,
    workers: int = 2,
    endpoints: Sequence[str] = (),
    shard_size: Optional[int] = None,
    steal: bool = True,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 0.25,
    breaker_max_opens: int = 5,
    coordinator: Optional[FleetCoordinator] = None,
) -> Tuple[List[float], FleetTelemetry]:
    """Sweep ``space`` over a worker fleet, committing every result into
    ``measurer``'s caches exactly as a serial sweep would.

    Cache hits (memory, then disk) are answered locally without touching
    the fleet; duplicates within the batch dispatch once. The returned
    latencies are positionally aligned with ``space`` and bitwise-equal to
    ``measurer.sweep(spec, space)``. After the call, every config is a
    memory-cache hit, so a tuner running on ``measurer`` afterwards (the
    ``repro tune --fleet`` path) replays the fleet's answers for free.
    """
    space = list(space)
    results: Dict[int, float] = {}
    pending: Dict[Tuple, List[int]] = {}
    order: List[Tuple[Tuple, TileConfig]] = []
    for i, cfg in enumerate(space):
        key = measurer._key(spec, cfg)
        if key in pending:
            pending[key].append(i)
            continue
        hit = measurer._lookup(key, spec, cfg)
        if hit is not None:
            results[i] = hit
            continue
        pending[key] = [i]
        order.append((key, cfg))
    if not order:
        return [results[i] for i in range(len(space))], FleetTelemetry(
            0, 0, 0, 0, 0, 0, 0, 0, 0
        )
    if coordinator is None:
        coordinator = FleetCoordinator(
            spec,
            [cfg for _, cfg in order],
            gpu=measurer.gpu,
            via_ir=measurer.via_ir,
            workers=workers,
            endpoints=endpoints,
            shard_size=shard_size,
            steal=steal,
            trial_retries=measurer.retries,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
            breaker_max_opens=breaker_max_opens,
        )

    def record(pos: int, latency: float, persist: bool) -> None:
        key, cfg = order[pos]
        measurer._record(key, spec, cfg, latency, persist=persist)

    fleet = coordinator.run(on_result=record)
    for pos, (key, _) in enumerate(order):
        for i in pending[key]:
            results[i] = fleet.latencies[pos]
    return [results[i] for i in range(len(space))], fleet.telemetry

"""The four schedule-tuning methods compared in the paper (Table II).

* :class:`GridSearchTuner` — enumerate the space in grid order; no learning.
* :class:`XGBTuner` — boosted-tree cost model fit on measured trials, with
  simulated-annealing proposal (TVM's default method; our GBT replaces the
  XGBoost dependency).
* :class:`AnalyticalOnlyTuner` — rank the whole space by the pipeline-aware
  analytical model's predictions; measure in rank order.
* :class:`ModelAssistedXGBTuner` — ALCOP's method: pretrain the boosted
  trees on (schedule, analytical prediction) pseudo-pairs, then run the
  XGB workflow, so the first proposals already carry hardware knowledge
  while measured data keeps refining the model.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..gpusim.config import A100, GpuSpec
from ..gpusim.occupancy import CompileError
from ..perfmodel.batch import predict_latency_batch
from ..perfmodel.kernel_model import predict_latency
from ..perfmodel.static_spec import timing_spec_from_config
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec
from .features import featurize_batch
from .gbt import GradientBoostedTrees
from .measure import Measurer
from .prune import prune_space
from .record import TuneHistory
from .sa import SimulatedAnnealingSampler

__all__ = [
    "Tuner",
    "GridSearchTuner",
    "RandomSearchTuner",
    "AnalyticalOnlyTuner",
    "XGBTuner",
    "ModelAssistedXGBTuner",
    "analytical_rank",
]


def _analytical_rank_scalar(
    spec: GemmSpec, space: Sequence[TileConfig], gpu: GpuSpec = A100, model=predict_latency
) -> List[int]:
    """One scalar model call per config — the pre-batching reference path.

    Kept (a) for custom ``model`` callables, which only speak the scalar
    ``(KernelTimingSpec, GpuSpec)`` interface, and (b) as the baseline the
    compile-throughput benchmark measures the batch speedup against.
    """
    scored = []
    rejected = []
    for i, cfg in enumerate(space):
        try:
            ts = timing_spec_from_config(spec, cfg)
            scored.append((model(ts, gpu), i))
        except (CompileError, ValueError):
            rejected.append(i)
    scored.sort(key=lambda t: t[0])
    return [i for _, i in scored] + rejected


def analytical_rank(
    spec: GemmSpec, space: Sequence[TileConfig], gpu: GpuSpec = A100, model=predict_latency
) -> List[int]:
    """Indices of ``space`` sorted by a static model's predicted latency.

    Configurations the model rejects (occupancy/compile checks) rank last,
    in original order.

    For the default analytical model this evaluates the whole space in one
    vectorized :func:`predict_latency_batch` call; since the batch model is
    bitwise-equal to the scalar one, a stable argsort (rejections map to
    ``inf``, which sorts last in original order) reproduces the scalar
    ranking index-for-index. Custom models take the scalar loop.
    """
    if model is not predict_latency:
        return _analytical_rank_scalar(spec, space, gpu, model=model)
    latency = predict_latency_batch(spec, space, gpu)
    return [int(i) for i in np.argsort(latency, kind="stable")]


class Tuner:
    """Base tuner: measures proposals until the trial budget is exhausted."""

    name = "base"

    def __init__(
        self,
        spec: GemmSpec,
        space: Sequence[TileConfig],
        measurer: Optional[Measurer] = None,
        gpu: GpuSpec = A100,
        seed: int = 0,
        prune_ratio: Optional[float] = None,
    ) -> None:
        if not space:
            raise ValueError("cannot tune over an empty space")
        self.spec = spec
        self.space = list(space)
        self.gpu = gpu
        self.prune_stats = None
        if prune_ratio:
            # Opt-in model-guided pruning (off by default): drop candidates
            # the analytical model prices far above its own best before any
            # compile+simulate is spent on them.
            self.space, self.prune_stats = prune_space(spec, self.space, gpu, prune_ratio)
        self.measurer = measurer or Measurer(gpu)
        self.rng = np.random.default_rng(seed)
        self.history = TuneHistory()

    # -- subclass hook ---------------------------------------------------------
    def _next_batch(self, n: int) -> List[TileConfig]:
        raise NotImplementedError

    def tune(self, n_trials: int, on_trial=None) -> TuneHistory:
        """Run until ``n_trials`` measurements have been recorded.

        Proposals that re-visit an already-measured config (an SA chain or
        cold-start batch can re-propose one) are dropped before they reach
        the history, so the trial budget is only ever spent on distinct
        schedules and best-in-k curves never flatten on duplicates.

        ``on_trial(config, latency_us)`` is invoked after each recorded
        trial — the hook crash-safe tuning sessions use to journal every
        measurement to disk (:class:`repro.tuning.session.TuneSession`).
        """
        while len(self.history) < n_trials:
            want = n_trials - len(self.history)
            batch = self._next_batch(want)
            if not batch:
                break  # space exhausted
            measured = self._measured_keys()
            fresh = []
            for cfg in batch:
                key = cfg.key()
                if key in measured:
                    continue
                measured.add(key)
                fresh.append(cfg)
                if len(fresh) == want:
                    break
            if not fresh:
                break  # proposer can only re-offer measured points
            latencies = self.measurer.measure_many(self.spec, fresh)
            for cfg, latency in zip(fresh, latencies):
                self.history.append(cfg, latency)
                if on_trial is not None:
                    on_trial(cfg, latency)
        return self.history

    def _measured_keys(self) -> set:
        return {r.config.key() for r in self.history.records}


class GridSearchTuner(Tuner):
    """Exhaustive enumeration in deterministic grid order (Table II col 1)."""

    name = "grid"

    def _next_batch(self, n: int) -> List[TileConfig]:
        done = len(self.history)
        return self.space[done : done + n]


class RandomSearchTuner(Tuner):
    """Uniform random sampling without replacement (extra baseline)."""

    name = "random"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._order = list(self.rng.permutation(len(self.space)))

    def _next_batch(self, n: int) -> List[TileConfig]:
        done = len(self.history)
        return [self.space[i] for i in self._order[done : done + n]]


class AnalyticalOnlyTuner(Tuner):
    """Pure analytical-model ranking (Table II col 3): no learning, no
    feedback from measurements."""

    name = "analytical"

    def __init__(self, *args, model=predict_latency, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._order = analytical_rank(self.spec, self.space, self.gpu, model=model)

    def _next_batch(self, n: int) -> List[TileConfig]:
        done = len(self.history)
        return [self.space[i] for i in self._order[done : done + n]]


class XGBTuner(Tuner):
    """ML cost model + simulated annealing (TVM's default, Table II col 2)."""

    name = "xgb"
    #: measurements per round between model refits (TVM's default workflow
    #: measures in sizable batches; the cost model only learns after the
    #: first full batch returns).
    batch_size = 16

    def __init__(
        self,
        *args,
        n_pseudo: int = 0,
        pseudo_weight: float = 0.25,
        warm_start: Optional["TuneHistory"] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.sampler = SimulatedAnnealingSampler(
            self.space, n_iters=60, seed=int(self.rng.integers(2**31))
        )
        # Lazily computed once and shared between pseudo-label pretraining
        # and ModelAssistedXGBTuner's cold-start batch (previously each
        # ranked the full space independently).
        self._analytical_order_cache: Optional[List[int]] = None
        self._feature_cache: dict = {}
        self._prior_seeds: List[TileConfig] = []
        self.model = GradientBoostedTrees()
        self._pseudo_X: Optional[np.ndarray] = None
        self._pseudo_y: Optional[np.ndarray] = None
        self.pseudo_weight = pseudo_weight
        if n_pseudo > 0:
            self._build_pseudo(n_pseudo)
        if warm_start is not None and warm_start.records:
            # Transfer tuning: prior measured trials (e.g. of a related
            # shape, loaded via tuning.record.load_history) join the pseudo
            # pool at the same reduced weight — they inform, measurements
            # of *this* task dominate.
            self._absorb_warm_start(warm_start)
        if self._pseudo_X is not None:
            self._refit()

    def _analytical_order(self) -> List[int]:
        """Full-space analytical ranking, computed once per tuner."""
        if self._analytical_order_cache is None:
            self._analytical_order_cache = analytical_rank(self.spec, self.space, self.gpu)
        return self._analytical_order_cache

    # -- pretraining on analytical predictions ---------------------------------
    def _build_pseudo(self, n_pseudo: int) -> None:
        idx = self.rng.permutation(len(self.space))[:n_pseudo]
        configs = [self.space[i] for i in idx]
        # Always include the analytical model's own favourites so the tree
        # model represents the top of the ranking accurately, not just the
        # bulk of the space.
        top = self._analytical_order()[: max(32, n_pseudo // 8)]
        seen = {c.key() for c in configs}
        for i in top:
            cfg = self.space[i]
            if cfg.key() not in seen:
                configs.append(cfg)
                seen.add(cfg.key())
        self._prior_seeds = [self.space[i] for i in top[:8]]
        # One vectorized model evaluation labels the whole pseudo pool;
        # rejected configs come back as inf == FAILED and get the same
        # floor score the scalar path assigned them.
        latencies = predict_latency_batch(self.spec, configs, self.gpu)
        ys = [self._score_from_latency(float(lat)) for lat in latencies]
        self._pseudo_X = self._features(configs)
        self._pseudo_y = np.array(ys)

    def _absorb_warm_start(self, history: "TuneHistory") -> None:
        configs = [r.config for r in history.records]
        X = self._features(configs)
        y = np.array([self._score_from_latency(r.latency_us) for r in history.records])
        if self._pseudo_X is None or not len(self._pseudo_X):
            self._pseudo_X, self._pseudo_y = X, y
        else:
            self._pseudo_X = np.vstack([self._pseudo_X, X])
            self._pseudo_y = np.concatenate([self._pseudo_y, y])
        best = history.best_config_at(len(history))
        if best is not None and best.key() in {c.key() for c in self.space}:
            self._prior_seeds.append(best)

    @staticmethod
    def _score_from_latency(latency_us: float) -> float:
        """Higher-is-better learning target; failures get a floor score."""
        if math.isinf(latency_us) or latency_us <= 0:
            return -20.0
        return -math.log(latency_us)

    def _refit(self) -> None:
        X_parts, y_parts, w_parts = [], [], []
        if self._pseudo_X is not None and len(self._pseudo_X):
            X_parts.append(self._pseudo_X)
            y_parts.append(self._pseudo_y)
            w_parts.append(np.full(len(self._pseudo_X), self.pseudo_weight))
        if self.history.records:
            configs = [r.config for r in self.history.records]
            X_parts.append(self._features(configs))
            y_parts.append(
                np.array([self._score_from_latency(r.latency_us) for r in self.history.records])
            )
            w_parts.append(np.ones(len(configs)))
        if not X_parts:
            return
        self.model.fit(np.vstack(X_parts), np.concatenate(y_parts), np.concatenate(w_parts))

    def _features(self, configs: Sequence[TileConfig]) -> np.ndarray:
        rows = []
        for cfg in configs:
            key = cfg.key()
            row = self._feature_cache.get(key)
            if row is None:
                row = featurize_batch(self.spec, [cfg], self.gpu)[0]
                self._feature_cache[key] = row
            rows.append(row)
        return np.stack(rows) if rows else np.empty((0, 0))

    def _score_batch(self, configs: Sequence[TileConfig]) -> np.ndarray:
        if not self.model.is_fitted:
            return self.rng.random(len(configs))
        return self.model.predict(self._features(configs))

    def _next_batch(self, n: int) -> List[TileConfig]:
        # Measurements proceed in rounds of ``batch_size`` with a model
        # refit between rounds (the AutoTVM workflow).
        n = min(n, self.batch_size)
        if not self.model.is_fitted and not self.history.records:
            # Cold start: random batch (the un-pretrained XGB workflow).
            order = self.rng.permutation(len(self.space))
            return [self.space[i] for i in order[:n]]
        self._refit()
        seeds = [r.config for r in sorted(self.history.records, key=lambda r: r.latency_us)[:4]]
        seeds.extend(self._prior_seeds)
        return self.sampler.propose(
            self._score_batch, max(n, 1), exclude=self._measured_keys(), seeds=seeds
        )


class ModelAssistedXGBTuner(XGBTuner):
    """ALCOP's tuner (Table II col 4): XGB workflow pretrained on the
    analytical model's predictions.

    The prior knowledge enters in two places: (1) the boosted trees are
    pretrained on (schedule, analytical prediction) pseudo-pairs, so later
    refits keep the hardware prior while fitting measured data; (2) the
    first batch of proposals is the pretrained model's argmax, which for a
    faithfully pretrained model coincides with the analytical ranking — we
    take it from the ranking directly rather than through the tree
    approximation (trees cannot resolve the top-of-ranking fine structure
    from pseudo-samples alone)."""

    name = "model-assisted-xgb"

    def __init__(self, *args, n_pseudo: int = 256, **kwargs) -> None:
        super().__init__(*args, n_pseudo=n_pseudo, **kwargs)

    def _next_batch(self, n: int) -> List[TileConfig]:
        if not self.history.records:
            n = min(n, self.batch_size)
            measured = self._measured_keys()
            first = []
            for i in self._analytical_order():
                cfg = self.space[i]
                if cfg.key() not in measured:
                    first.append(cfg)
                if len(first) >= n:
                    break
            return first
        return super()._next_batch(n)

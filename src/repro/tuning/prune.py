"""Model-guided search-space pruning.

The analytical model prices a config in nanoseconds (batched) while a real
trial costs a compile plus a simulation — so a cheap pre-pass that drops
candidates the model is *confident* are far from optimal shrinks sweeps by
an order of magnitude. The model's job here is not to pick the winner
(that is the tuner's job) but to discard the hopeless tail, so the keep
criterion is deliberately loose: a config survives when its predicted
latency is within ``ratio``× of the best prediction over the space.

Pruning is **opt-in everywhere** (``repro tune --prune-ratio``,
``Tuner(prune_ratio=...)``, ``Measurer.sweep(prune_ratio=...)``): the
fig12/fig13 fidelity benchmarks and all default workflows run unpruned.

Configs the model outright rejects (non-divisible tiling, threadblock that
cannot launch) are pruned too — the measurement path applies the very same
occupancy check during compilation, so those trials could only ever come
back FAILED. Fail-safe: if the model prices *nothing* finite, the space is
returned untouched rather than emptied.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..gpusim.config import A100, GpuSpec
from ..perfmodel.batch import predict_latency_batch
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["DEFAULT_PRUNE_RATIO", "PruneStats", "prune_space"]

#: Keep configs predicted within this factor of the analytical best. Chosen
#: loose on purpose: across the small test GEMMs the *measured*-best config
#: is priced at up to ~2.8x the model's own best prediction, so 4x keeps
#: the true optimum with margin while still discarding the hopeless tail.
DEFAULT_PRUNE_RATIO = 4.0


@dataclasses.dataclass(frozen=True)
class PruneStats:
    """What a pruning pass did to a space."""

    n_total: int
    n_kept: int
    n_model_rejected: int  # model could not price (would FAIL compilation)
    n_pruned: int  # priced, but beyond ratio * best
    ratio: float
    best_predicted_us: float

    def summary(self) -> str:
        return (
            f"prune(ratio={self.ratio:g}): kept {self.n_kept}/{self.n_total} "
            f"configs ({self.n_pruned} above threshold, "
            f"{self.n_model_rejected} unlaunchable), "
            f"best predicted {self.best_predicted_us:.2f}us"
        )


def prune_space(
    spec: GemmSpec,
    space: Sequence[TileConfig],
    gpu: GpuSpec = A100,
    ratio: float = DEFAULT_PRUNE_RATIO,
) -> Tuple[List[TileConfig], PruneStats]:
    """Drop configs whose predicted latency exceeds ``ratio`` times the best
    prediction. Returns the surviving configs (original order preserved)
    and a :class:`PruneStats` record.
    """
    if ratio <= 0:
        raise ValueError(f"prune ratio must be positive, got {ratio}")
    latency = predict_latency_batch(spec, space, gpu)
    finite = np.isfinite(latency)
    n_total = len(space)
    if not finite.any():
        # The model prices nothing — either an empty space or one where
        # every config fails its launchability check. Pruning on no signal
        # would empty the space, so pass it through untouched.
        return list(space), PruneStats(
            n_total=n_total,
            n_kept=n_total,
            n_model_rejected=int(n_total - finite.sum()),
            n_pruned=0,
            ratio=ratio,
            best_predicted_us=float("inf"),
        )
    best = float(latency[finite].min())
    keep = latency <= ratio * best
    kept = [cfg for cfg, k in zip(space, keep) if k]
    return kept, PruneStats(
        n_total=n_total,
        n_kept=len(kept),
        n_model_rejected=int((~finite).sum()),
        n_pruned=int(n_total - len(kept) - (~finite).sum()),
        ratio=ratio,
        best_predicted_us=best,
    )

"""Schedule auto-tuning (paper Sec. IV): design space, measurement harness,
cost-model features, boosted trees, simulated annealing, and the four
tuning methods of Table II."""

from .cache import (
    MeasurementCache,
    compiler_version_hash,
    gpu_fingerprint,
    measurement_key,
)
from .features import FEATURE_NAMES, featurize, featurize_batch
from .fleet import (
    FleetCoordinator,
    FleetResult,
    FleetTelemetry,
    LocalProcessWorker,
    RemoteServeWorker,
    fleet_sweep,
)
from .gbt import GradientBoostedTrees, RegressionTree
from .measure import FAILED, Measurer, MeasureTelemetry
from .prune import DEFAULT_PRUNE_RATIO, PruneStats, prune_space
from .record import TrialRecord, TuneHistory, best_in_top_k
from .sa import SimulatedAnnealingSampler
from .space import (
    SUBSPACES,
    SpaceOptions,
    clear_space_caches,
    enumerate_space,
    restrict_space,
)
from .tuners import (
    AnalyticalOnlyTuner,
    GridSearchTuner,
    ModelAssistedXGBTuner,
    RandomSearchTuner,
    Tuner,
    XGBTuner,
    analytical_rank,
)

__all__ = [
    "MeasurementCache",
    "MeasureTelemetry",
    "compiler_version_hash",
    "gpu_fingerprint",
    "measurement_key",
    "FEATURE_NAMES",
    "featurize",
    "featurize_batch",
    "FleetCoordinator",
    "FleetResult",
    "FleetTelemetry",
    "LocalProcessWorker",
    "RemoteServeWorker",
    "fleet_sweep",
    "GradientBoostedTrees",
    "RegressionTree",
    "FAILED",
    "Measurer",
    "TrialRecord",
    "TuneHistory",
    "best_in_top_k",
    "SimulatedAnnealingSampler",
    "DEFAULT_PRUNE_RATIO",
    "PruneStats",
    "prune_space",
    "SUBSPACES",
    "SpaceOptions",
    "clear_space_caches",
    "enumerate_space",
    "restrict_space",
    "AnalyticalOnlyTuner",
    "GridSearchTuner",
    "ModelAssistedXGBTuner",
    "RandomSearchTuner",
    "Tuner",
    "XGBTuner",
    "analytical_rank",
]

"""Schedule-level error types."""

__all__ = ["ScheduleError", "OrderingError", "PipelineRejected"]


class ScheduleError(Exception):
    """Base class for schedule construction errors."""


class OrderingError(ScheduleError):
    """A primitive was applied in an order that violates Sec. II-B."""


class PipelineRejected(ScheduleError):
    """A buffer failed the pipelining applicability rules (Sec. II-A)."""

    def __init__(self, rule: str, message: str) -> None:
        super().__init__(f"[{rule}] {message}")
        self.rule = rule
        self.message = message

"""Schedule-level error types.

:class:`ScheduleError` is the taxonomy class from
:mod:`repro.core.errors` (re-exported for back compatibility); the
schedule-specific refinements below subclass it.
"""

from ..core.errors import ScheduleError

__all__ = ["ScheduleError", "OrderingError", "PipelineRejected"]


class OrderingError(ScheduleError):
    """A primitive was applied in an order that violates Sec. II-B."""


class PipelineRejected(ScheduleError):
    """A buffer failed the pipelining applicability rules (Sec. II-A)."""

    def __init__(self, rule: str, message: str) -> None:
        super().__init__(f"[{rule}] {message}", diagnostic=rule)
        self.rule = rule
        self.message = message

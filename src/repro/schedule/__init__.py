"""Schedule transformation layer (paper Sec. II): tiling configuration,
pipelining applicability detection, ordering constraints, and the automatic
scheduler."""

from .auto import auto_schedule
from .config import ResourceUsage, TileConfig, WARP_SIZE
from .detection import (
    RULE_ASYNC,
    RULE_SEQ_LOOP,
    RULE_SYNC_POS,
    PipelineCheck,
    check_pipelinable,
)
from .errors import OrderingError, PipelineRejected, ScheduleError
from .ordering import RECOMMENDED_ORDER, verify_log_order
from .schedule import Schedule, create_schedule

__all__ = [
    "auto_schedule",
    "ResourceUsage",
    "TileConfig",
    "WARP_SIZE",
    "RULE_ASYNC",
    "RULE_SEQ_LOOP",
    "RULE_SYNC_POS",
    "PipelineCheck",
    "check_pipelinable",
    "OrderingError",
    "PipelineRejected",
    "ScheduleError",
    "RECOMMENDED_ORDER",
    "verify_log_order",
    "Schedule",
    "create_schedule",
]

"""Pipeline-applicable buffer detection — the three rules of paper Sec. II-A.

Given a schedule and a candidate buffer tensor, :func:`check_pipelinable`
evaluates:

* **Rule 1 (async producer).** The buffer must be produced by an
  *asynchronous-capable* memory copy: a pure ``cache_read`` whose source
  scope is the hardware async source of the buffer's scope (global → shared
  for ``cp.async``; shared → register for non-blocking register loads). A
  copy with an elementwise function fused into it computes while copying and
  is rejected (Fig. 5, case 1).

* **Rule 2 (sequential load-and-use loop).** The buffer must be filled and
  re-used inside a *sequential* loop — the tiled reduction loop. A buffer
  filled exactly once (reduction loop of extent 1, or a non-reduction
  operand such as a stencil halo tile) is rejected.

* **Rule 3 (synchronization position match).** On hardware with scope-based
  barriers, all pipelined buffers in one scope must share their barrier
  positions: same pipelined loop level and same stage count.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..tensor.operation import CacheReadOp, Tensor

if TYPE_CHECKING:  # pragma: no cover
    from .schedule import Schedule

__all__ = ["PipelineCheck", "check_pipelinable", "RULE_ASYNC", "RULE_SEQ_LOOP", "RULE_SYNC_POS"]

RULE_ASYNC = "rule1-async-producer"
RULE_SEQ_LOOP = "rule2-sequential-loop"
RULE_SYNC_POS = "rule3-sync-position"


@dataclasses.dataclass(frozen=True)
class PipelineCheck:
    """Outcome of the applicability rules for one buffer."""

    ok: bool
    rule: Optional[str] = None
    message: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def _fail(rule: str, message: str) -> PipelineCheck:
    return PipelineCheck(False, rule, message)


def check_pipelinable(sch: "Schedule", tensor: Tensor, stages: int) -> PipelineCheck:
    """Evaluate all three rules for pipelining ``tensor`` with ``stages``."""
    if stages < 2:
        return _fail(RULE_ASYNC, f"stages={stages} does not form a pipeline (need >= 2)")

    # ---- Rule 1: produced by an asynchronous memory copy --------------------
    if not isinstance(tensor.op, CacheReadOp):
        return _fail(
            RULE_ASYNC,
            f"{tensor.name} is produced by {type(tensor.op).__name__}, not a memory copy",
        )
    if not tensor.op.is_pure_copy:
        return _fail(
            RULE_ASYNC,
            f"{tensor.name} is produced by a copy with fused compute "
            f"({tensor.op.fused_fn_name}); the copy is not asynchronous",
        )
    expected_src = tensor.scope.async_source
    if expected_src is None:
        return _fail(
            RULE_ASYNC,
            f"scope {tensor.scope.value} has no asynchronous copy path",
        )
    source = sch.producer_of(tensor)
    if source is None or source.scope is not expected_src:
        got = source.scope.value if source is not None else "none"
        return _fail(
            RULE_ASYNC,
            f"{tensor.name} copies from scope {got}, but async copies into "
            f"{tensor.scope.value} require source scope {expected_src.value}",
        )

    # ---- Rule 2: produced inside a sequential load-and-use loop -------------
    if sch.tile_config is None:
        return _fail(RULE_SEQ_LOOP, "tiling has not been applied; no loop structure to inspect")
    if not sch.feeds_contraction_operand(tensor):
        return _fail(
            RULE_SEQ_LOOP,
            f"{tensor.name} does not feed a reduction operand; it is filled "
            "and used once (no sequential load-and-use loop)",
        )
    extent = sch.load_loop_extent(tensor)
    if extent <= 1:
        return _fail(
            RULE_SEQ_LOOP,
            f"load-and-use loop of {tensor.name} has extent {extent}; the "
            "buffer is produced outside a sequential loop",
        )

    # ---- Rule 3: synchronization positions must match within a scope --------
    for other, other_stages in sch.pipeline_marks.items():
        if other is tensor or other.scope is not tensor.scope:
            continue
        if sch.pipeline_level(other) != sch.level_of(tensor):
            return _fail(
                RULE_SYNC_POS,
                f"{tensor.name} and {other.name} share scope "
                f"{tensor.scope.value} but pipeline at different loops; "
                "scope-based barriers cannot be placed",
            )
        if other_stages != stages:
            return _fail(
                RULE_SYNC_POS,
                f"{tensor.name} requests {stages} stages but {other.name} in "
                f"the same scope has {other_stages}; barrier positions differ",
            )
    return PipelineCheck(True)

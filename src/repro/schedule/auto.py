"""Automatic scheduler: builds the canonical pipelined GEMM schedule.

This is the "schedule transformation" stage in the ALCOP architecture
(Fig. 4): given a contraction graph and a :class:`TileConfig`, it applies
``cache_read``, ``tile``, ``pipeline`` and ``inline`` in the
paper-prescribed order, silently skipping buffers that fail the
applicability rules (Sec. II-A).
"""

from __future__ import annotations

from typing import List

from ..ir.buffer import Scope
from ..tensor.operation import ElementwiseOp, Tensor
from .config import TileConfig
from .schedule import Schedule

__all__ = ["auto_schedule"]


def auto_schedule(output: Tensor, config: TileConfig) -> Schedule:
    """Build the standard two-level cached, optionally pipelined schedule.

    Per operand: ``global -> shared -> register`` cache reads, then tiling,
    then pipelining at the levels whose stage count in ``config`` is >= 2,
    then inlining of any elementwise producers (after pipelining, so fusion
    takes the pipeline-preserving route of Fig. 5 case 2).
    """
    sch = Schedule(output)
    if sch.contraction is None:
        raise ValueError("auto_schedule requires a contraction output")

    smem_bufs: List[Tensor] = []
    reg_bufs: List[Tensor] = []
    for side in ("a", "b"):
        tail = sch.chain(side)[-1]
        smem = sch.cache_read(tail, Scope.SHARED)
        reg = sch.cache_read(smem, Scope.REGISTER)
        smem_bufs.append(smem)
        reg_bufs.append(reg)

    sch.tile(config)

    if config.smem_stages >= 2:
        for buf in smem_bufs:
            sch.pipeline(buf, config.smem_stages, strict=False)
    if config.reg_stages >= 2:
        for buf in reg_bufs:
            sch.pipeline(buf, config.reg_stages, strict=False)

    # Inline elementwise producers last (pipeline < inline, Sec. II-B).
    for side in ("a", "b"):
        for t in list(sch.chain(side)):
            if isinstance(t.op, ElementwiseOp):
                sch.inline(t)

    # Fuse any output-side elementwise chain into the epilogue write-back.
    sch.fuse_epilogue()

    return sch

"""Schedule (tiling + pipelining) configuration and its resource math.

:class:`TileConfig` is the knob vector the auto-tuner searches over
(paper Sec. IV): threadblock tile, warp tile, register chunk, and the
pipeline stage counts for the shared-memory and register levels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..ir.buffer import DTYPE_BYTES
from ..tensor.operation import GemmSpec

__all__ = ["TileConfig", "ResourceUsage", "WARP_SIZE"]

WARP_SIZE = 32

#: Registers reserved per thread for addressing, predicates and loop state.
_BASE_REGS_PER_THREAD = 40
#: Bytes per register.
_REG_BYTES = 4


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Per-threadblock resource consumption of a schedule."""

    smem_bytes: int
    regs_per_thread: int
    threads: int

    @property
    def regs_per_block(self) -> int:
        return self.regs_per_thread * self.threads


@dataclasses.dataclass(frozen=True)
class TileConfig:
    """A complete schedule parameterization for a GEMM-family kernel.

    Attributes
    ----------
    block_m, block_n, block_k:
        Threadblock output tile (``TB_tile`` in the paper's Fig. 7).
    warp_m, warp_n:
        Warp output tile; ``(block_m // warp_m) * (block_n // warp_n)`` warps
        cooperate in one threadblock.
    chunk_k:
        Register-level reduction chunk (``Warp_tile_k``); the inner
        load-and-use loop runs ``block_k // chunk_k`` iterations.
    smem_stages:
        Pipeline stages of the shared-memory load-and-use loop. ``1`` means
        no pipelining, ``2`` is double-buffering, ``>= 3`` is multi-stage.
    reg_stages:
        Pipeline stages of the register-level loop (``1`` or ``2``).
    swizzle:
        Whether shared-memory swizzling is applied to kill bank conflicts
        (both ALCOP and the baselines enable it in the paper's evaluation).
    """

    block_m: int
    block_n: int
    block_k: int
    warp_m: int
    warp_n: int
    chunk_k: int
    smem_stages: int = 1
    reg_stages: int = 1
    swizzle: bool = True

    def __post_init__(self) -> None:
        for field in ("block_m", "block_n", "block_k", "warp_m", "warp_n", "chunk_k"):
            v = getattr(self, field)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"TileConfig.{field} must be a positive int, got {v!r}")
        if self.block_m % self.warp_m != 0:
            raise ValueError(f"block_m={self.block_m} not divisible by warp_m={self.warp_m}")
        if self.block_n % self.warp_n != 0:
            raise ValueError(f"block_n={self.block_n} not divisible by warp_n={self.warp_n}")
        if self.block_k % self.chunk_k != 0:
            raise ValueError(f"block_k={self.block_k} not divisible by chunk_k={self.chunk_k}")
        if self.smem_stages < 1 or self.smem_stages > 8:
            raise ValueError(f"smem_stages must be in [1, 8], got {self.smem_stages}")
        if self.reg_stages not in (1, 2):
            raise ValueError(f"reg_stages must be 1 or 2, got {self.reg_stages}")

    # -- derived geometry ----------------------------------------------------
    @property
    def warps_per_block(self) -> int:
        return (self.block_m // self.warp_m) * (self.block_n // self.warp_n)

    @property
    def threads_per_block(self) -> int:
        return self.warps_per_block * WARP_SIZE

    @property
    def reg_loop_extent(self) -> int:
        """Iterations of the inner (register-level) load-and-use loop."""
        return self.block_k // self.chunk_k

    def grid_size(self, spec: GemmSpec) -> int:
        """Number of threadblocks launched for ``spec`` (ceil division)."""
        tiles_m = -(-spec.m // self.block_m)
        tiles_n = -(-spec.n // self.block_n)
        return spec.batch * tiles_m * tiles_n

    def smem_loop_extent(self, spec: GemmSpec) -> int:
        """Iterations of the outer (shared-memory-level) load-and-use loop."""
        return -(-spec.k // self.block_k)

    # -- resource usage --------------------------------------------------------
    def resource_usage(self, dtype: str = "float16") -> ResourceUsage:
        """Shared memory and register consumption of one threadblock.

        Matches the occupancy-limiting quantities the paper's scheduling
        policy considers (Sec. IV-A).
        """
        eb = DTYPE_BYTES[dtype]
        smem_per_stage = (self.block_m + self.block_n) * self.block_k * eb
        smem = smem_per_stage * self.smem_stages
        # Accumulator fragments: fp32 accumulation, one warp owns warp_m*warp_n.
        accum_regs = (self.warp_m * self.warp_n * 4) // (_REG_BYTES * WARP_SIZE)
        # Operand fragments at the register level, double-buffered if staged.
        frag_bytes = (self.warp_m + self.warp_n) * self.chunk_k * eb * self.reg_stages
        frag_regs = -(-frag_bytes // (_REG_BYTES * WARP_SIZE))
        regs = _BASE_REGS_PER_THREAD + accum_regs + frag_regs
        return ResourceUsage(
            smem_bytes=smem,
            regs_per_thread=regs,
            threads=self.threads_per_block,
        )

    # -- helpers ----------------------------------------------------------------
    def with_stages(self, smem_stages: int, reg_stages: int) -> "TileConfig":
        """The same tiling with different pipeline stage counts."""
        return dataclasses.replace(self, smem_stages=smem_stages, reg_stages=reg_stages)

    def key(self) -> Tuple:
        """Hashable identity used for caching compiled/simulated results.

        Memoized on the (frozen, hot) instance: every cache layer on the
        measurement path keys by it, and ``dataclasses.astuple`` is far too
        slow to re-run per lookup.
        """
        k = getattr(self, "_key", None)
        if k is None:
            k = (
                self.block_m,
                self.block_n,
                self.block_k,
                self.warp_m,
                self.warp_n,
                self.chunk_k,
                self.smem_stages,
                self.reg_stages,
                self.swizzle,
            )
            object.__setattr__(self, "_key", k)
        return k

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"TB({self.block_m}x{self.block_n}x{self.block_k})"
            f"/W({self.warp_m}x{self.warp_n}x{self.chunk_k})"
            f"/S({self.smem_stages},{self.reg_stages})"
        )

"""Ordering of schedule transformations (paper Sec. II-B).

The paper fixes the order in which pipelining composes with the three
pre-existing transformations:

* **cache-read ≺ pipeline** — pipelining applies to buffers that cache-read
  creates. Enforced structurally: :meth:`Schedule.pipeline` only accepts
  cache-read buffers (rule 1), and :meth:`Schedule.cache_read` refuses to
  run once pipeline marks exist.
* **tile ≺ pipeline** — rule 2 inspects the tiled loop sketch, so
  :meth:`Schedule.tile` refuses to run after pipelining and pipelining fails
  when no tiling is recorded.
* **pipeline ≺ inline** — inlining an elementwise producer into a copy makes
  the copy non-asynchronous (Fig. 5 case 1). :meth:`Schedule.inline` applied
  *after* pipelining instead fuses the function into the consumer
  (case 2), keeping the copy asynchronous.

:data:`RECOMMENDED_ORDER` documents the canonical sequence the automatic
scheduler (:mod:`repro.schedule.auto`) follows.
"""

from __future__ import annotations

from typing import List, Tuple

from .schedule import Schedule

__all__ = ["RECOMMENDED_ORDER", "verify_log_order"]

RECOMMENDED_ORDER: Tuple[str, ...] = ("cache_read", "tile", "pipeline", "inline")


def verify_log_order(sch: Schedule) -> List[str]:
    """Check a schedule's applied-primitive log against the canonical order.

    Returns a list of violation messages (empty when the order is sound).
    This is a diagnostic used by tests and by the compiler's debug mode; the
    hard constraints are enforced eagerly by the primitives themselves.
    """
    rank = {name: i for i, name in enumerate(RECOMMENDED_ORDER)}
    violations: List[str] = []
    last_rank = -1
    last_name = None
    for entry in sch.log:
        name = entry[0]
        r = rank.get(name)
        if r is None:
            continue
        if r < last_rank:
            violations.append(
                f"{name} applied after {last_name}; canonical order is "
                + " < ".join(RECOMMENDED_ORDER)
            )
        last_rank, last_name = max(last_rank, r), name
    return violations

"""The schedule object and its transformation primitives (paper Sec. II).

A :class:`Schedule` wraps a contraction output tensor and records schedule
transformations: ``cache_read``, ``tile``, ``pipeline`` and ``inline``. It
owns a *scheduled read chain* per contraction operand — the sequence of
tensors data flows through on its way to the tensor cores, e.g.::

    A(global) -> A_shared(shared) -> A_reg(register) -> mma

``pipeline`` runs the applicability rules of :mod:`.detection` and the
ordering constraints of :mod:`.ordering`; accepted buffers are recorded in
``pipeline_marks`` and later materialized by the lowering + the pipelining
program transformation (Sec. III).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.buffer import Scope
from ..tensor.operation import (
    CacheReadOp,
    ContractionOp,
    ElementwiseOp,
    GemmSpec,
    Tensor,
)
from .config import TileConfig
from .detection import PipelineCheck, check_pipelinable
from .errors import OrderingError, PipelineRejected, ScheduleError

__all__ = ["Schedule", "create_schedule"]

_SIDES = ("a", "b")


class Schedule:
    """Schedule state for one GEMM-family kernel (or a plain copy graph)."""

    def __init__(self, output: Tensor) -> None:
        self.output = output
        self.tile_config: Optional[TileConfig] = None
        #: tensor -> requested pipeline stages (>= 2)
        self.pipeline_marks: Dict[Tensor, int] = {}
        #: applied-primitive log, for tests and debugging
        self.log: List[Tuple] = []
        #: elementwise fn fused into the contraction's operand read, per side
        self.operand_fused_fn: Dict[str, Optional[str]] = {"a": None, "b": None}
        #: elementwise fns fused into the epilogue write-back (application
        #: order). Populated by :meth:`fuse_epilogue`.
        self.epilogue_fns: List[str] = []

        # An elementwise chain on top of a contraction forms the epilogue
        # (e.g. bias activation); it is fusable via fuse_epilogue.
        self._epilogue_chain: List[Tensor] = []
        base = output
        while isinstance(base.op, ElementwiseOp):
            self._epilogue_chain.append(base)
            base = base.op.inputs[0]

        if isinstance(base.op, ContractionOp):
            self.contraction: Optional[ContractionOp] = base.op
            self.spec: Optional[GemmSpec] = base.op.spec
            self._chains: Dict[str, List[Tensor]] = {
                "a": [base.op.inputs[0]],
                "b": [base.op.inputs[1]],
            }
        else:
            # Non-contraction graphs (e.g. a stencil-like copy pipeline) are
            # schedulable but never satisfy detection rule 2.
            self.contraction = None
            self.spec = None
            self._epilogue_chain = []
            self._chains = {"a": [output], "b": []}

    # ------------------------------------------------------------------ graph
    def chain(self, side: str) -> List[Tensor]:
        """The scheduled read chain of one operand, source first."""
        if side not in _SIDES:
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        return list(self._chains[side])

    def side_of(self, tensor: Tensor) -> Optional[str]:
        """Which operand chain a tensor belongs to, or ``None``."""
        for side in _SIDES:
            if tensor in self._chains[side]:
                return side
        return None

    def producer_of(self, tensor: Tensor) -> Optional[Tensor]:
        """The tensor ``tensor`` reads from in the *scheduled* graph."""
        side = self.side_of(tensor)
        if side is None:
            return None
        chain = self._chains[side]
        idx = chain.index(tensor)
        return chain[idx - 1] if idx > 0 else None

    def consumer_of(self, tensor: Tensor) -> Optional[Tensor]:
        """The next tensor in the scheduled chain (``None`` for the tail,
        whose consumer is the contraction itself)."""
        side = self.side_of(tensor)
        if side is None:
            return None
        chain = self._chains[side]
        idx = chain.index(tensor)
        return chain[idx + 1] if idx + 1 < len(chain) else None

    def buffer_at(self, side: str, scope: Scope) -> Optional[Tensor]:
        """The cache-read buffer of ``side`` at ``scope``, if present."""
        for t in self._chains[side]:
            if t.scope is scope and isinstance(t.op, CacheReadOp):
                return t
        return None

    def feeds_contraction_operand(self, tensor: Tensor) -> bool:
        """True when the buffer caches a reduction operand (rule 2 needs a
        sequential load-and-use loop, which only the reduction provides)."""
        return self.contraction is not None and self.side_of(tensor) is not None

    def level_of(self, tensor: Tensor) -> str:
        """Pipeline level name of a buffer: ``smem`` or ``reg``."""
        if tensor.scope is Scope.SHARED:
            return "smem"
        if tensor.scope is Scope.REGISTER:
            return "reg"
        raise ScheduleError(f"{tensor.name} in scope {tensor.scope.value} has no pipeline level")

    def pipeline_level(self, tensor: Tensor) -> str:
        return self.level_of(tensor)

    def load_loop_extent(self, tensor: Tensor) -> int:
        """Extent of the sequential loop the buffer is re-filled in."""
        if self.tile_config is None or self.spec is None:
            raise ScheduleError("tile() must be applied before inspecting loop extents")
        level = self.level_of(tensor)
        if level == "smem":
            return self.tile_config.smem_loop_extent(self.spec)
        return self.tile_config.reg_loop_extent

    def stages_for(self, tensor: Tensor) -> int:
        """Pipeline stages of a buffer (1 when not pipelined)."""
        return self.pipeline_marks.get(tensor, 1)

    # ------------------------------------------------------------- primitives
    def cache_read(self, tensor: Tensor, scope: Scope, name: Optional[str] = None) -> Tensor:
        """Insert a read buffer for ``tensor`` in ``scope`` (Sec. II-B).

        The new buffer becomes the tensor the downstream consumer reads.
        Must precede :meth:`pipeline` for the same data (ordering rule:
        *cache-reading before pipelining*).
        """
        if self.pipeline_marks:
            raise OrderingError(
                "cache_read after pipeline would invalidate the recorded "
                "pipeline structure; apply cache_read first (Sec. II-B)"
            )
        if self.contraction is not None:
            side = self.side_of(tensor)
            if side is None:
                raise ScheduleError(f"{tensor.name} is not in any operand chain")
            chain = self._chains[side]
            if tensor is not chain[-1]:
                raise ScheduleError(
                    f"cache_read must extend the innermost end of the chain; "
                    f"{tensor.name} already has a consumer buffer"
                )
        else:
            side = "a"
            chain = self._chains[side]
        if scope is Scope.GLOBAL:
            raise ScheduleError("cache_read target scope must be on-chip")
        base = tensor.name
        for suffix in ("_shared", "_reg"):
            base = base.removesuffix(suffix)
        buf = Tensor(
            name or f"{base}_{'shared' if scope is Scope.SHARED else 'reg'}",
            tensor.shape,
            CacheReadOp(tensor),
            dtype=tensor.dtype,
            scope=scope,
        )
        chain.append(buf)
        self.log.append(("cache_read", tensor.name, scope.value, buf.name))
        return buf

    def tile(self, config: TileConfig) -> None:
        """Record the tiling configuration. Must precede :meth:`pipeline`."""
        if self.contraction is None:
            raise ScheduleError("tile() requires a contraction output")
        if self.pipeline_marks:
            raise OrderingError("tile() must be applied before pipeline() (Sec. II-B)")
        self.tile_config = config
        self.log.append(("tile", str(config)))

    def pipeline(self, tensor: Tensor, stages: int, strict: bool = True) -> PipelineCheck:
        """Mark ``tensor`` for pipelining with ``stages`` stages.

        Runs the three applicability rules (Sec. II-A). With ``strict=True``
        a failed rule raises :class:`PipelineRejected`; with ``strict=False``
        the check result is returned and the buffer is left unmarked — the
        behaviour of the automatic scheduler, which silently skips
        non-pipelinable buffers.
        """
        if tensor in self.pipeline_marks:
            raise OrderingError(f"{tensor.name} is already pipelined")
        check = check_pipelinable(self, tensor, stages)
        if not check.ok:
            if strict:
                raise PipelineRejected(check.rule or "unknown", check.message)
            return check
        self.pipeline_marks[tensor] = stages
        self.log.append(("pipeline", tensor.name, stages))
        return check

    def inline(self, tensor: Tensor) -> str:
        """Inline an elementwise tensor into its consumer (Sec. II-B, Fig. 5).

        Returns which fusion route was taken:

        * ``"into-copy"`` (Fig. 5 case 1) — the elementwise function is fused
          into the downstream cache-read copy. The copy is no longer a pure
          asynchronous copy, so a *later* ``pipeline`` of that buffer will be
          rejected by rule 1.
        * ``"into-consumer"`` (Fig. 5 case 2) — the downstream buffer is
          already pipelined, so the copy must stay asynchronous; instead the
          function is fused into the contraction's operand read and the copy
          re-sourced from the elementwise input.
        """
        if not isinstance(tensor.op, ElementwiseOp):
            raise ScheduleError(f"inline() requires an elementwise tensor, got {tensor.name}")
        side = self.side_of(tensor)
        if side is None:
            raise ScheduleError(f"{tensor.name} is not in any operand chain")
        chain = self._chains[side]
        idx = chain.index(tensor)
        source = tensor.op.inputs[0]
        fn_name = tensor.op.fn_name
        downstream = chain[idx + 1] if idx + 1 < len(chain) else None

        if downstream is not None and isinstance(downstream.op, CacheReadOp):
            downstream_pipelined = downstream in self.pipeline_marks
            # Re-source the copy directly from the elementwise input; the raw
            # source replaces the elementwise tensor in the chain.
            replacement = Tensor(
                downstream.name,
                downstream.shape,
                CacheReadOp(source, fused_fn_name=None if downstream_pipelined else fn_name),
                dtype=downstream.dtype,
                scope=downstream.scope,
            )
            chain[idx] = source
            chain[idx + 1] = replacement
            # Keep pipeline marks attached to the replacement buffer object.
            if downstream_pipelined:
                self.pipeline_marks[replacement] = self.pipeline_marks.pop(downstream)
            if downstream_pipelined:
                self.operand_fused_fn[side] = fn_name
                self.log.append(("inline", tensor.name, "into-consumer"))
                return "into-consumer"
            self.log.append(("inline", tensor.name, "into-copy"))
            return "into-copy"

        # No downstream buffer: fuse directly into the contraction read.
        chain[idx] = source
        self.operand_fused_fn[side] = fn_name
        self.log.append(("inline", tensor.name, "into-consumer"))
        return "into-consumer"

    def fuse_epilogue(self) -> List[str]:
        """Fuse the output-side elementwise chain into the epilogue
        write-back (an extension of the paper's fusion support: lightweight
        epilogues — bias activation, casting — are computed while storing
        the accumulator, avoiding standalone memory-bound kernels).

        Returns the fused function names in application order. Safe in any
        order relative to pipelining: the epilogue is outside every
        load-and-use loop, so no pipelining rule is affected.
        """
        if not self._epilogue_chain:
            return []
        # The chain was collected from the output inward; application order
        # is producer-first.
        fns = [t.op.fn_name for t in reversed(self._epilogue_chain)]
        self.epilogue_fns.extend(fns)
        self._epilogue_chain = []
        self.log.append(("fuse_epilogue", tuple(fns)))
        return fns

    # ------------------------------------------------------------- inspection
    def pipelined_buffers(self) -> List[Tensor]:
        """All pipelined buffers, shared-memory level first."""
        order = {Scope.SHARED: 0, Scope.REGISTER: 1}
        return sorted(self.pipeline_marks, key=lambda t: (order[t.scope], t.name))

    def describe(self) -> str:
        """Human-readable schedule summary."""
        lines = [f"schedule of {self.output.name}:"]
        for side in _SIDES:
            if not self._chains[side]:
                continue
            chain = " -> ".join(f"{t.name}@{t.scope.value}" for t in self._chains[side])
            fused = self.operand_fused_fn[side]
            suffix = f"  (fused read: {fused})" if fused else ""
            lines.append(f"  {side}: {chain}{suffix}")
        if self.tile_config is not None:
            lines.append(f"  tiling: {self.tile_config}")
        for t, s in self.pipeline_marks.items():
            lines.append(f"  pipeline: {t.name} stages={s}")
        return "\n".join(lines)


def create_schedule(output: Tensor) -> Schedule:
    """Create a schedule for a tensor (contraction output or copy graph)."""
    return Schedule(output)

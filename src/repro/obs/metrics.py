"""Process-global metrics registry: counters, gauges and histograms with
Prometheus text exposition.

Zero dependencies by design — the registry renders the exposition format
by hand (``# HELP`` / ``# TYPE`` plus one line per sample) so a stock
Prometheus scraper can consume ``GET /metrics`` on the serve daemon
without any client library in the image.

The registry is get-or-create: scattered subsystems (serve counters,
fleet telemetry, disk-degrade paths) each ask for their metric by name at
import or construction time and increment the shared instance they get
back.  Re-registering an existing name with the same type returns the
existing metric; re-registering with a different type is a programming
error and raises.
"""

from __future__ import annotations

import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

# Latency buckets in seconds, chosen for the serve path: sub-millisecond
# warm registry hits up to ten-second cold fleet sweeps.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(v):
    if v == float("inf"):
        return "+Inf"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name, help=""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n=1):
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc({n}))")
        with self._lock:
            self._value += n

    @property
    def value(self):
        with self._lock:
            return self._value

    def samples(self):
        return [(self.name, self.value)]


class Gauge:
    """Instantaneous value: either set explicitly or read from a callback.

    A callback gauge re-reads its function at render time, which lets the
    server expose live queue depth without a write on every enqueue.  The
    callback is replaced wholesale on re-registration so a fresh server
    instance in the same process (common in tests) wins over a stopped one.
    """

    kind = "gauge"

    def __init__(self, name, help="", fn=None):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn = fn

    def set(self, v):
        with self._lock:
            self._fn = None
            self._value = float(v)

    def set_function(self, fn):
        with self._lock:
            self._fn = fn

    @property
    def value(self):
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            # A dead callback (stopped server) must not poison the whole
            # exposition page.
            return 0.0

    def samples(self):
        return [(self.name, self.value)]


class Histogram:
    """Cumulative-bucket histogram in the Prometheus style."""

    kind = "histogram"

    def __init__(self, name, help="", buckets=DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, v):
        v = float(v)
        with self._lock:
            self._sum += v
            self._count += 1
            for i, le in enumerate(self.buckets):
                if v <= le:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self):
        with self._lock:
            return self._count

    @property
    def sum(self):
        with self._lock:
            return self._sum

    def samples(self):
        with self._lock:
            counts = list(self._counts)
            total, sum_ = self._count, self._sum
        out, cumulative = [], 0
        for le, n in zip(self.buckets, counts):
            cumulative += n
            out.append((f'{self.name}_bucket{{le="{_format_value(float(le))}"}}',
                        cumulative))
        out.append((f'{self.name}_bucket{{le="+Inf"}}', total))
        out.append((f"{self.name}_sum", sum_))
        out.append((f"{self.name}_count", total))
        return out


class MetricsRegistry:
    """Thread-safe, name-keyed registry of metrics."""

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics = {}

    def _get_or_create(self, cls, name, help, **kwargs):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help=help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help=""):
        return self._get_or_create(Counter, name, help)

    def gauge(self, name, help="", fn=None):
        g = self._get_or_create(Gauge, name, help)
        if fn is not None:
            g.set_function(fn)
        return g

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name):
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self):
        """Flat ``{sample_name: value}`` dict, for tests and status ops."""
        with self._lock:
            metrics = list(self._metrics.values())
        out = {}
        for m in metrics:
            for sample, value in m.samples():
                out[sample] = value
        return out

    def render(self):
        """Prometheus text exposition (version 0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines = []
        for m in metrics:
            if m.help:
                escaped = m.help.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {m.name} {escaped}")
            lines.append(f"# TYPE {m.name} {m.kind}")
            for sample, value in m.samples():
                lines.append(f"{sample} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def reset(self):
        """Drop every metric.  Tests only — production code never unregisters."""
        with self._lock:
            self._metrics.clear()


#: The process-global registry every subsystem shares.
REGISTRY = MetricsRegistry()


def counter(name, help=""):
    return REGISTRY.counter(name, help)


def gauge(name, help="", fn=None):
    return REGISTRY.gauge(name, help, fn=fn)


def histogram(name, help="", buckets=DEFAULT_BUCKETS):
    return REGISTRY.histogram(name, help, buckets=buckets)


def render():
    return REGISTRY.render()

"""Unified observability: distributed tracing, a process-global metrics
registry, and Chrome-trace export.

Zero third-party dependencies.  See ``docs/observability.md`` for the
span model, the metric-name table and how to view exported traces.
"""

from . import metrics, trace
from .metrics import REGISTRY, MetricsRegistry
from .trace import Span, SpanContext, Tracer

__all__ = [
    "metrics",
    "trace",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "SpanContext",
    "Tracer",
]

"""Distributed tracing: spans, tracers, context propagation and
Chrome-trace export.

A :class:`Span` is one timed operation; spans share a ``trace_id`` and
reference their parent by ``span_id``, so a client request, the serve
daemon's queue wait, a fleet worker's shard and the compiler's stage
timings stitch into one tree even across process boundaries.

Timing uses ``time.perf_counter()`` (CLOCK_MONOTONIC on Linux, consistent
across local processes), so spans recorded in a fleet worker child line
up with the coordinator's on the same timeline.

Tracers are explicitly activated — either per thread (the server
activates one per sampled request) or process-wide (``repro tune
--trace-out`` captures the fleet driver threads too).  When no tracer is
active, :func:`span` yields ``None`` without allocating, so the
instrumentation threaded through the hot paths costs nearly nothing by
default.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import re
import threading
import time

from . import metrics as _metrics

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "active_tracers",
    "current_context",
    "current_span",
    "extract_context",
    "inject_context",
    "new_id",
    "record_span",
    "record_stage",
    "span",
    "stage_active",
]

#: Envelope field names for cross-process propagation.
TRACE_ID_FIELD = "trace_id"
PARENT_SPAN_FIELD = "parent_span_id"

_ID_RE = re.compile(r"^[0-9a-f]{8,32}$")

_SPANS_DROPPED = _metrics.counter(
    "repro_spans_dropped_total",
    "Spans evicted from a tracer ring buffer under overflow.")


# Id generation and the origin pid are on the per-span hot path (the bench
# guard holds tracing under 2% of cold-sweep throughput), so both avoid a
# syscall per span: a dedicated PRNG (never the seedable module-level
# ``random`` state, which tuners may pin) and a cached pid, each re-armed
# after fork so fleet worker children stay distinct.
_rng = random.Random(os.urandom(16))
_PID = os.getpid()


def _after_fork():
    global _PID
    _rng.seed(os.urandom(16))
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork)


def new_id():
    return "%016x" % _rng.getrandbits(64)


class SpanContext:
    """Propagatable reference to a span: ``(trace_id, span_id)``.

    An empty ``span_id`` means "join this trace but parent to nothing" —
    the shape produced when an envelope carries a valid ``trace_id`` but a
    garbled parent id.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id=""):
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other):
        return (isinstance(other, SpanContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __repr__(self):
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


class Span:
    __slots__ = ("name", "trace_id", "span_id", "parent_id",
                 "start_s", "duration_s", "category", "pid", "tid", "attrs")

    def __init__(self, name, trace_id, span_id, parent_id=None,
                 start_s=0.0, duration_s=0.0, category="", attrs=None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.duration_s = duration_s
        self.category = category
        self.pid = _PID
        self.tid = threading.get_ident()
        self.attrs = attrs

    def context(self):
        if not self.span_id:
            self.span_id = new_id()
        return SpanContext(self.trace_id, self.span_id)

    def as_dict(self):
        if not self.span_id:
            # Leaf spans (stage bridges) defer id generation to export —
            # nothing parents under them, so the hot path skips the cost.
            self.span_id = new_id()
        d = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.category:
            d["category"] = self.category
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d):
        """Rebuild a span shipped across a process boundary.

        Tolerant by design: a malformed dict returns ``None`` rather than
        raising, so one corrupt entry cannot fail a whole import batch.
        """
        if not isinstance(d, dict):
            return None
        try:
            name = d["name"]
            trace_id = d["trace_id"]
            span_id = d["span_id"]
            start_s = float(d["start_s"])
            duration_s = float(d["duration_s"])
        except (KeyError, TypeError, ValueError):
            return None
        if not (isinstance(name, str) and _ID_RE.match(str(trace_id))
                and _ID_RE.match(str(span_id))):
            return None
        parent = d.get("parent_id")
        span = cls(name, trace_id, span_id,
                   parent_id=parent if isinstance(parent, str) else None,
                   start_s=start_s, duration_s=duration_s,
                   category=d.get("category", "") or "",
                   attrs=d.get("attrs") if isinstance(d.get("attrs"), dict) else None)
        # Preserve the origin process/thread ids so the Chrome trace keeps
        # child-process spans on their own rows.
        if isinstance(d.get("pid"), int):
            span.pid = d["pid"]
        if isinstance(d.get("tid"), int):
            span.tid = d["tid"]
        return span

    def to_chrome_event(self):
        if not self.span_id:
            self.span_id = new_id()
        args = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            args["parent_span_id"] = self.parent_id
        if self.attrs:
            args.update(self.attrs)
        event = {
            "name": self.name,
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "pid": self.pid,
            "tid": self.tid,
            "args": args,
        }
        if self.category:
            event["cat"] = self.category
        return event


class Tracer:
    """Bounded ring buffer of finished spans.

    Overflow drops the oldest span and counts it — both on the instance
    (``spans_dropped``) and in the process-global ``repro_spans_dropped_total``
    counter — so a long fleet sweep degrades visibly instead of eating
    unbounded memory.
    """

    def __init__(self, capacity=16384):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.spans_dropped = 0
        self._lock = threading.Lock()
        self._spans = []

    def add(self, span):
        # list.append is atomic under the GIL, so the common path takes no
        # lock (span recording is on the compile hot path); the lock only
        # serializes overflow trimming and snapshot reads.
        spans = self._spans
        spans.append(span)
        if len(spans) > self.capacity:
            with self._lock:
                overflow = len(spans) - self.capacity
                if overflow > 0:
                    del spans[:overflow]
                    self.spans_dropped += overflow
                    _SPANS_DROPPED.inc(overflow)

    def import_spans(self, dicts):
        """Adopt spans serialized by another process; skips invalid entries."""
        added = 0
        for d in dicts or ():
            span = Span.from_dict(d)
            if span is not None:
                self.add(span)
                added += 1
        return added

    def spans(self):
        with self._lock:
            return list(self._spans)

    def __len__(self):
        with self._lock:
            return len(self._spans)

    def to_chrome_trace(self):
        return {
            "traceEvents": [s.to_chrome_event() for s in self.spans()],
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path):
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, indent=1)


# --- activation -------------------------------------------------------------
#
# Two scopes: a process-global tracer list (CLI --trace-out, visible from
# every thread including fleet drivers) and a thread-local list (the server
# activates a tracer for the one request thread it owns).  The span stack
# used for implicit parenting is always thread-local.

_global_tracers = []
_global_lock = threading.Lock()
_tls = threading.local()


def _local_tracers():
    return getattr(_tls, "tracers", None) or ()


def _stack():
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def active_tracers():
    local = _local_tracers()
    if _global_tracers or local:
        return list(_global_tracers) + list(local)
    return []


@contextlib.contextmanager
def activate(tracer, all_threads=False):
    """Make ``tracer`` receive spans for the duration of the block.

    ``all_threads=True`` registers process-wide (spans from any thread are
    captured); the default registers for the current thread only.
    """
    if all_threads:
        with _global_lock:
            _global_tracers.append(tracer)
        try:
            yield tracer
        finally:
            with _global_lock:
                for i in range(len(_global_tracers) - 1, -1, -1):
                    if _global_tracers[i] is tracer:
                        del _global_tracers[i]
                        break
    else:
        tracers = getattr(_tls, "tracers", None)
        if tracers is None:
            tracers = _tls.tracers = []
        tracers.append(tracer)
        try:
            yield tracer
        finally:
            for i in range(len(tracers) - 1, -1, -1):
                if tracers[i] is tracer:
                    del tracers[i]
                    break


def current_span():
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def current_context():
    """Context of the innermost open span on this thread, or ``None``."""
    top = current_span()
    return top.context() if top is not None else None


@contextlib.contextmanager
def span(name, parent=None, attrs=None, category=""):
    """Open a span.  Yields the :class:`Span`, or ``None`` when no tracer
    is active (the no-tracer path does no allocation or clock reads).

    Parenting: an explicit ``parent`` :class:`SpanContext` wins, else the
    innermost open span on this thread, else a fresh root trace.
    """
    tracers = active_tracers()
    if not tracers:
        yield None
        return
    if parent is None:
        parent = current_context()
    if parent is not None:
        trace_id, parent_id = parent.trace_id, parent.span_id or None
    else:
        trace_id, parent_id = new_id(), None
    s = Span(name, trace_id, new_id(), parent_id=parent_id,
             category=category, attrs=dict(attrs) if attrs else None)
    stack = _stack()
    stack.append(s)
    s.start_s = time.perf_counter()
    try:
        yield s
    finally:
        s.duration_s = time.perf_counter() - s.start_s
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is s:
                del stack[i]
                break
        for tracer in tracers:
            tracer.add(s)


def record_span(name, start_s, end_s, parent=None, attrs=None, category=""):
    """Record an already-elapsed interval as a span (retroactive).

    Used for intervals measured before a tracer could exist — e.g. the
    server's admission-queue wait, whose clock started before the request
    reached a worker thread.  Returns the span, or ``None`` when no tracer
    is active or no parent can be determined (retroactive spans never
    start new root traces).
    """
    tracers = active_tracers()
    if not tracers:
        return None
    if parent is None:
        parent = current_context()
    if parent is None:
        return None
    s = Span(name, parent.trace_id, new_id(),
             parent_id=parent.span_id or None,
             start_s=start_s, duration_s=max(0.0, end_s - start_s),
             category=category, attrs=dict(attrs) if attrs else None)
    for tracer in tracers:
        tracer.add(s)
    return s


# --- profiling bridge -------------------------------------------------------

def stage_active():
    """True when a profiling stage should also be recorded as a span:
    a tracer is active AND there is an open span to parent under."""
    if not _global_tracers and not getattr(_tls, "tracers", None):
        return False
    return current_span() is not None


def record_stage(name, t0, t1):
    """Bridge one ``profiling.stage`` interval into the active trace.

    Specialized for the compile hot path: skips the :class:`SpanContext`
    allocation and the attrs handling of :func:`record_span` — stage spans
    are the overwhelming majority of spans in a traced sweep.
    """
    local = getattr(_tls, "tracers", None)
    if not _global_tracers and not local:
        return None
    top = current_span()
    if top is None:
        return None
    # span_id="" defers id generation to export: stage spans are leaves.
    s = Span(name, top.trace_id, "", parent_id=top.span_id,
             start_s=t0, duration_s=t1 - t0, category="stage")
    for tracer in _global_tracers:
        tracer.add(s)
    for tracer in local or ():
        tracer.add(s)
    return s


# --- envelope propagation ---------------------------------------------------

def inject_context(envelope, ctx=None):
    """Stamp trace-context fields onto a request envelope (in place).

    No-op when there is no context to inject."""
    if ctx is None:
        ctx = current_context()
    if ctx is None:
        return envelope
    envelope[TRACE_ID_FIELD] = ctx.trace_id
    if ctx.span_id:
        envelope[PARENT_SPAN_FIELD] = ctx.span_id
    return envelope


def extract_context(message):
    """Pull trace context out of a request envelope, tolerantly.

    Missing or garbage ``trace_id`` → ``None`` (the request simply goes
    untraced); a valid ``trace_id`` with a garbage parent id joins the
    trace with no parent.  Never raises on hostile input.
    """
    if not isinstance(message, dict):
        return None
    trace_id = message.get(TRACE_ID_FIELD)
    if not isinstance(trace_id, str) or not _ID_RE.match(trace_id):
        return None
    parent = message.get(PARENT_SPAN_FIELD)
    if not isinstance(parent, str) or not _ID_RE.match(parent):
        parent = ""
    return SpanContext(trace_id, parent)

"""ALCOP core: the top-level automatic-pipelining compiler (paper Fig. 4),
the split-K extension, and the unified error taxonomy.

Only :mod:`repro.core.errors` (a leaf module) is imported eagerly; the
compiler drivers load lazily (PEP 562) so that low-level packages
(``gpusim``, ``schedule``, ``transform``) can import the taxonomy without
creating an import cycle through the full compiler stack.
"""

from . import errors
from .errors import (
    CompileError,
    DegradationEvent,
    FaultInjected,
    MeasurementTimeout,
    ProtocolError,
    RegistryError,
    ReproError,
    ScheduleError,
    ServeError,
    SimulationError,
    SyncVerificationError,
    TransformError,
    WorkerCrash,
)

__all__ = [
    "VARIANTS",
    "AlcopCompiler",
    "CompiledKernel",
    "SplitKCompiled",
    "SplitKCompiler",
    "build_reduce_kernel",
    "reduce_latency_us",
    "errors",
    "ReproError",
    "ScheduleError",
    "TransformError",
    "SyncVerificationError",
    "SimulationError",
    "CompileError",
    "MeasurementTimeout",
    "WorkerCrash",
    "FaultInjected",
    "ServeError",
    "ProtocolError",
    "RegistryError",
    "DegradationEvent",
]

_COMPILER_EXPORTS = {"VARIANTS", "AlcopCompiler", "CompiledKernel"}
_SPLITK_EXPORTS = {
    "SplitKCompiled",
    "SplitKCompiler",
    "build_reduce_kernel",
    "reduce_latency_us",
}


def __getattr__(name: str):
    if name in _COMPILER_EXPORTS:
        from . import compiler

        return getattr(compiler, name)
    if name in _SPLITK_EXPORTS:
        from . import splitk

        return getattr(splitk, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _COMPILER_EXPORTS | _SPLITK_EXPORTS)

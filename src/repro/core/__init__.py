"""ALCOP core: the top-level automatic-pipelining compiler (paper Fig. 4)
and the split-K extension."""

from .compiler import VARIANTS, AlcopCompiler, CompiledKernel
from .splitk import SplitKCompiled, SplitKCompiler, build_reduce_kernel, reduce_latency_us

__all__ = [
    "VARIANTS",
    "AlcopCompiler",
    "CompiledKernel",
    "SplitKCompiled",
    "SplitKCompiler",
    "build_reduce_kernel",
    "reduce_latency_us",
]

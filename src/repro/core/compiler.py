"""ALCOP's top-level compiler driver (the architecture of paper Fig. 4).

:class:`AlcopCompiler` wires the whole flow together for one GEMM-family
problem:

1. schedule search over the (variant-restricted) design space — exhaustive
   or any of the Table II tuning methods;
2. automatic schedule construction (cache reads, tiling, pipelining marks
   with the Sec. II applicability rules);
3. lowering and the Sec. III pipelining program transformation;
4. timing on the simulated A100 (and optional functional execution through
   the pipeline-semantics interpreter).

Compiler *variants* (``alcop``, ``alcop-no-ml``, ``alcop-no-ml-no-ms``,
``tvm-db``, ``tvm``) restrict which pipelining features the search may use,
implementing the paper's ablations and the vanilla-TVM baseline on an
otherwise identical stack.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import faults
from ..codegen import lower
from ..gpusim.config import A100, GpuSpec
from ..gpusim.engine import SimResult, simulate_kernel
from ..gpusim.spec import extract_timing_spec
from ..interp import run_kernel
from ..ir.stmt import Kernel
from ..schedule.auto import auto_schedule
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec, Tensor, contraction, placeholder
from ..transform import apply_pipelining
from ..tuning.measure import Measurer
from ..tuning.space import SpaceOptions, enumerate_space, restrict_space
from ..tuning.tuners import ModelAssistedXGBTuner, XGBTuner
from . import profiling
from .errors import CompileError, DegradationEvent, ReproError

__all__ = ["CompiledKernel", "AlcopCompiler", "VARIANTS"]

#: Compiler variants in decreasing pipelining capability. The order doubles
#: as the graceful-degradation ladder: when a build fails at one rung, the
#: per-op fallback steps rightward until something compiles (and finally to
#: the roofline fallback in :mod:`repro.models.runtime`).
VARIANTS = ("alcop", "alcop-no-ml", "alcop-no-ml-no-ms", "tvm-db", "tvm")

_SEARCH_METHODS = ("exhaustive", "model-assisted-xgb", "xgb")


@dataclasses.dataclass
class CompiledKernel:
    """A compiled, timed kernel."""

    spec: GemmSpec
    config: TileConfig
    kernel: Kernel
    sim: SimResult

    @property
    def latency_us(self) -> float:
        return self.sim.latency_us

    @property
    def tflops(self) -> float:
        return self.sim.tflops

    def run(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Execute functionally through the pipeline-semantics interpreter
        (intended for small problem sizes / correctness checks)."""
        mode = "pipeline" if self.kernel.attrs.get("pipeline_groups") else "eager"
        return run_kernel(self.kernel, {"A": a, "B": b}, mode=mode)["C"]


class AlcopCompiler:
    """Compile GEMM-family problems with automatic pipelining."""

    def __init__(
        self,
        gpu: GpuSpec = A100,
        variant: str = "alcop",
        search: str = "exhaustive",
        n_trials: int = 50,
        seed: int = 0,
        measurer: Optional[Measurer] = None,
        space_options: Optional[SpaceOptions] = None,
        verify_sync: bool = True,
        degrade: bool = True,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")
        if search not in _SEARCH_METHODS:
            raise ValueError(f"unknown search {search!r}; choose from {_SEARCH_METHODS}")
        self.gpu = gpu
        self.variant = variant
        self.search = search
        self.n_trials = n_trials
        self.seed = seed
        self.space_options = space_options
        self.measurer = measurer or Measurer(gpu, via_ir=False)
        #: run the static synchronization race checker on every built kernel
        #: (repro.ir.syncheck); a mis-transformed pipeline fails the build.
        self.verify_sync = verify_sync
        #: when used as an end-to-end backend (:meth:`gemm_latency`), step
        #: down the variant ladder per-op instead of failing the model.
        self.degrade = degrade
        #: every ladder step taken, in order (surfaced by ``repro suite``
        #: and :func:`repro.models.runtime.estimate_model_latency`).
        self.degradations: List[DegradationEvent] = []
        self._cache: Dict[Tuple, CompiledKernel] = {}
        #: per-op ladder resolution: op identity -> first variant that
        #: compiled, so repeated calls skip known-failing rungs (and record
        #: each degradation exactly once).
        self._resolved: Dict[Tuple, str] = {}
        self._failed: Dict[Tuple, ReproError] = {}

    # ------------------------------------------------------------------ search
    def _search_config(self, spec: GemmSpec, variant: Optional[str] = None) -> TileConfig:
        variant = variant or self.variant
        space = restrict_space(
            enumerate_space(spec, self.gpu, self.space_options), variant
        )
        if not space:
            raise CompileError(
                f"design space for {spec.name} is empty under the {variant!r} "
                "variant restriction (no tiling divides the problem within "
                "the space bounds)",
                diagnostic={"spec": spec.name, "variant": variant},
            )
        if self.search == "exhaustive":
            cfg, _ = self.measurer.best(spec, space)
            return cfg
        tuner_cls = ModelAssistedXGBTuner if self.search == "model-assisted-xgb" else XGBTuner
        tuner = tuner_cls(spec, space, measurer=self.measurer, gpu=self.gpu, seed=self.seed)
        history = tuner.tune(self.n_trials)
        cfg = history.best_config_at(self.n_trials)
        if cfg is None:
            raise CompileError(
                f"no valid schedule found for {spec.name} (variant {variant!r}) "
                f"in {self.n_trials} trials: every measured config failed to compile",
                diagnostic={"spec": spec.name, "variant": variant,
                            "trials": len(history)},
            )
        return cfg

    # ------------------------------------------------------------------ build
    def build(
        self, spec: GemmSpec, config: TileConfig, graph_output: Optional[Tensor] = None
    ) -> Kernel:
        """Schedule, lower and pipeline one problem at a fixed config."""
        if graph_output is None:
            a_shape = (spec.batch, spec.m, spec.k) if spec.batch > 1 else (spec.m, spec.k)
            b_shape = (spec.batch, spec.n, spec.k) if spec.batch > 1 else (spec.n, spec.k)
            a = placeholder("A", a_shape, dtype=spec.dtype)
            b = placeholder("B", b_shape, dtype=spec.dtype)
            graph_output = contraction(a, b, spec)
        with profiling.stage("schedule"):
            sch = auto_schedule(graph_output, config)
        with profiling.stage("lower"):
            kernel = lower(sch)
        with profiling.stage("transform"):
            return apply_pipelining(kernel, verify_sync=self.verify_sync)

    def compile(self, spec: GemmSpec, graph_output: Optional[Tensor] = None) -> CompiledKernel:
        """Search, build and time a kernel for ``spec`` (cached)."""
        return self._compile_as(spec, self.variant, graph_output)

    def _compile_as(
        self, spec: GemmSpec, variant: str, graph_output: Optional[Tensor] = None
    ) -> CompiledKernel:
        """One rung of the ladder: compile ``spec`` under ``variant``'s
        search-space restriction (cached per variant)."""
        key = (variant, spec.name, spec.batch, spec.m, spec.n, spec.k, spec.dtype)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        faults.inject("build", token=f"variant={variant};op={spec.name}")
        config = self._search_config(spec, variant)
        kernel = self.build(spec, config, graph_output)
        sim = simulate_kernel(extract_timing_spec(kernel), self.gpu)
        out = CompiledKernel(spec=spec, config=config, kernel=kernel, sim=sim)
        self._cache[key] = out
        return out

    def compile_with_fallback(
        self, spec: GemmSpec, graph_output: Optional[Tensor] = None
    ) -> CompiledKernel:
        """Compile ``spec``, stepping down the variant ladder on failure.

        A transform rejection, sync-verification race, launch failure or
        injected fault at one rung degrades to the next more conservative
        variant (``alcop → … → tvm``) instead of failing the caller; each
        step is recorded as a :class:`DegradationEvent`. When even ``tvm``
        cannot compile the op, the last error is re-raised — the model
        runtime then prices the op with its roofline fallback.
        """
        op_key = (spec.name, spec.batch, spec.m, spec.n, spec.k, spec.dtype)
        known_failure = self._failed.get(op_key)
        if known_failure is not None:
            raise known_failure
        start = self._resolved.get(op_key, self.variant)
        ladder = VARIANTS[VARIANTS.index(start):]
        last_error: Optional[Exception] = None
        for i, variant in enumerate(ladder):
            try:
                out = self._compile_as(spec, variant, graph_output)
                self._resolved[op_key] = variant
                return out
            except (ReproError, ValueError) as e:
                last_error = e
                next_rung = ladder[i + 1] if i + 1 < len(ladder) else "roofline"
                self.degradations.append(
                    DegradationEvent(
                        op=spec.name,
                        from_variant=variant,
                        to_variant=next_rung,
                        stage=getattr(e, "stage", "unknown"),
                        reason=str(e).splitlines()[0] if str(e) else repr(e),
                    )
                )
        if not isinstance(last_error, ReproError):
            last_error = CompileError(
                f"every variant of the ladder failed for {spec.name}",
                diagnostic={"spec": spec.name, "ladder": list(ladder)},
            )
        self._failed[op_key] = last_error
        raise last_error

    # ---------------------------------------------------------------- backend
    def gemm_latency(self, spec: GemmSpec) -> float:
        """Backend hook for the end-to-end model runtime. With
        :attr:`degrade` (the default) a failing pipelined build steps down
        the variant ladder per-op instead of failing the whole model."""
        if self.degrade:
            return self.compile_with_fallback(spec).latency_us
        return self.compile(spec).latency_us

    #: bandwidth efficiency multiplier for unfused elementwise ops (TVM and
    #: ALCOP fuse simple epilogues but keep layernorm/softmax standalone).
    elementwise_factor: float = 1.0
    #: per-op launch overhead in us
    launch_overhead: float = 3.0
    #: multiplier applied to roofline fallback ops (shapes our tiled GEMM
    #: compiler cannot tile, e.g. the 3-channel first convolution).
    fallback_factor: float = 1.0

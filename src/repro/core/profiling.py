"""Lightweight per-stage wall-clock profiling for the compile hot path.

The measurement harness compiles thousands of schedules per sweep; knowing
*which* stage (automatic scheduling, lowering, the pipelining transform,
sync verification, timing-spec extraction, simulation) dominates is what
turns "the sweep is slow" into an actionable optimization. Stages are
annotated at their definition sites with :func:`stage`; any code that wants
a breakdown activates a collector around the region of interest with
:func:`collect`::

    times = StageTimes()
    with collect(times):
        measurer.sweep(spec, space)
    print(times.summary())

When no collector is active, :func:`stage` costs one dict lookup — the hot
path pays nothing measurable for being instrumented. Collectors nest:
every active collector sees every stage, so a per-trial collector and a
session-wide collector can coexist.

Thread model (the serve daemon shares one measurer across request
threads): the collector stack is **thread-local** — a request thread that
activates a collector sees only the stages its own thread executes, never
a concurrent request's — while :class:`StageTimes` accumulation itself is
lock-protected, so several threads may safely collect into one shared
instance (the measurer's session-wide breakdown).
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Dict, Iterator, List, Mapping, Tuple

from ..obs import trace as _trace

__all__ = ["StageTimes", "collect", "stage", "STAGE_ORDER"]

#: Canonical display order of the compile/measure pipeline stages.
STAGE_ORDER: Tuple[str, ...] = (
    "schedule",
    "lower",
    "transform",
    "syncheck",
    "spec-extract",
    "simulate",
)


class StageTimes(Dict[str, float]):
    """Accumulated seconds per named stage (a plain dict with helpers).

    Accumulation (:meth:`add` / :meth:`merge`) is thread-safe: one
    instance can be the target of collectors on many threads at once.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._lock = threading.Lock()

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self[name] = self.get(name, 0.0) + seconds

    def merge(self, other: Mapping[str, float]) -> None:
        """Fold another breakdown (e.g. from a worker process) into this one."""
        # Snapshot first: merging a StageTimes into itself must not deadlock.
        items = list(other.items())
        with self._lock:
            for name, seconds in items:
                self[name] = self.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.values())

    def ordered(self) -> List[Tuple[str, float]]:
        """Items in canonical stage order, unknown stages last (by name)."""
        known = [(n, self[n]) for n in STAGE_ORDER if n in self]
        extra = sorted((n, t) for n, t in self.items() if n not in STAGE_ORDER)
        return known + extra

    def summary(self) -> str:
        """Multi-line human-readable breakdown with percentages."""
        total = self.total
        if total <= 0.0:
            return "no stages recorded"
        lines = []
        for name, t in self.ordered():
            lines.append(f"{name:12s} {t:9.4f}s  {100.0 * t / total:5.1f}%")
        lines.append(f"{'total':12s} {total:9.4f}s")
        return "\n".join(lines)


#: Active collectors, innermost last — one stack per thread, so concurrent
#: request threads (the serve daemon) never observe each other's stages.
#: Worker processes ship finished breakdowns back over the result pipe
#: instead of sharing.
_local = threading.local()


def _active() -> List[StageTimes]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextlib.contextmanager
def collect(into: StageTimes) -> Iterator[StageTimes]:
    """Route every :func:`stage` duration inside the block (on this
    thread) into ``into``."""
    stack = _active()
    stack.append(into)
    try:
        yield into
    finally:
        # Remove by identity: StageTimes is a dict subclass, so equal
        # *contents* would make list.remove() pop the wrong collector.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is into:
                del stack[i]
                break


class stage:
    """Time the enclosed block under ``name`` (no-op when nothing collects).

    When a tracer is active with an open span on this thread, the stage is
    also recorded as a child span (the observability bridge: per-stage
    compile timings appear in exported traces for free).

    A slotted context-manager class rather than a generator: the
    measurement hot path enters several stages per compiled config, and
    the generator protocol's overhead is measurable at sweep scale.
    """

    __slots__ = ("name", "_stack", "_traced", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> None:
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        self._traced = _trace.stage_active()
        # The record/skip decision is taken at entry (matching the original
        # generator implementation): a collector activated mid-block does
        # not retroactively see this stage.
        self._stack = stack if (stack or self._traced) else None
        self._t0 = time.perf_counter() if self._stack is not None else 0.0

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._stack
        if stack is None:
            return
        t0 = self._t0
        t1 = time.perf_counter()
        dt = t1 - t0
        for collector in stack:
            collector.add(self.name, dt)
        if self._traced:
            _trace.record_stage(self.name, t0, t1)

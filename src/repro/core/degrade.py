"""Shared degrade-to-memory policy for disk-backed stores.

Three stores persist opportunistically — the measurement cache, the tune
session journal and the kernel artifact registry.  All of them follow the
same contract on ``OSError`` (ENOSPC, EIO, read-only mounts): warn once,
flip to memory-only operation, keep counting errors, never crash the
tuner or the daemon.  This module is that contract in one place; each
store owns a :class:`DiskDegrade` and delegates its ``disk_errors`` /
``degraded`` surface to it.

Every noted error also increments the process-global
``repro_disk_errors_total`` counter, so degradation shows up on
``GET /metrics`` no matter which store hit it.
"""

from __future__ import annotations

import warnings

from ..obs import metrics as _metrics

__all__ = ["DiskDegrade"]

_DISK_ERRORS = _metrics.counter(
    "repro_disk_errors_total",
    "OSErrors absorbed by disk-backed stores (cache, journal, registry).")


class DiskDegrade:
    """Warn-once degrade policy for one disk-backed store.

    ``subject`` names the store in the warning ("measurement cache", ...);
    ``consequence`` finishes the sentence with what the user loses
    ("results from this run will not persist to /path").
    """

    def __init__(self, subject, consequence):
        self.subject = subject
        self.consequence = consequence
        self.disk_errors = 0
        self.degraded = False

    def note(self, action, exc, stacklevel=4):
        """Record one failed disk ``action``; warn on the first only.

        The default ``stacklevel`` of 4 points the warning at the caller
        of the store method, through the store's own ``_note_disk_error``
        wrapper and this method.
        """
        self.disk_errors += 1
        _DISK_ERRORS.inc()
        if self.degraded:
            return
        self.degraded = True
        warnings.warn(
            f"{self.subject} cannot {action} ({exc}); degrading to "
            f"memory-only operation — {self.consequence}",
            RuntimeWarning, stacklevel=stacklevel)

"""Split-K GEMM: an extension beyond the paper's evaluated feature set.

Small-output, long-reduction problems (the paper's MM_RN50_FC class) are
the shapes where pipelining helps most — but they also launch too few
threadblocks to fill the machine. Split-K partitions the reduction axis
across ``split_k`` threadblock groups that each compute a partial product
into a float16 workspace, followed by a bandwidth-bound reduction kernel.
CUTLASS ships this as ``GemmSplitKParallel``; here it composes with
automatic pipelining: the partial-product kernel is an ordinary batched
GEMM for the existing compiler (batch = split_k), so it gets the full
schedule search and the pipelining transformation for free.

Trade-off captured by the timing model: more splits add parallelism but
shrink the per-threadblock reduction (fewer iterations to amortize the
pipeline fill) and add workspace traffic — so the optimum is interior,
and split-K only wins on under-parallelized shapes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.config import A100, GpuSpec
from ..ir import Buffer, IRBuilder, Kernel, Scope
from ..ops.elementwise import MemoryBoundOp, memory_bound_latency
from ..tensor.operation import GemmSpec
from ..tuning.measure import Measurer
from ..tuning.space import SpaceOptions
from .compiler import AlcopCompiler, CompiledKernel

__all__ = ["SplitKCompiled", "SplitKCompiler", "build_reduce_kernel", "reduce_latency_us"]

#: Output tile of the reduction kernel.
_REDUCE_TILE = 64


def build_reduce_kernel(m: int, n: int, split_k: int, name: str = "splitk_reduce") -> Kernel:
    """The second kernel: ``C[m, n] = sum_s W[s, m, n]`` with fp32
    accumulation and an fp16 store."""
    if m % _REDUCE_TILE and m < _REDUCE_TILE:
        tile_m = m
    else:
        tile_m = _REDUCE_TILE if m % _REDUCE_TILE == 0 else 1
    tile_n = _REDUCE_TILE if n % _REDUCE_TILE == 0 else (n if n < _REDUCE_TILE else 1)

    W = Buffer("W", (split_k, m, n), dtype="float16")
    C = Buffer("C", (m, n), dtype="float16")
    acc = Buffer("acc", (tile_m, tile_n), dtype="float32", scope=Scope.ACCUMULATOR)

    def fill_zero(out: np.ndarray) -> None:
        out[...] = 0

    def accumulate(out: np.ndarray, part: np.ndarray) -> None:
        out += part.astype(np.float32)

    b = IRBuilder()
    with b.block_for("rm", m // tile_m) as rm:
        with b.block_for("rn", n // tile_n) as rn:
            with b.allocate(acc):
                b.compute("fill", acc.full_region(), [], fn=fill_zero, accumulate=False)
                with b.serial_for("s", split_k) as s:
                    b.compute(
                        "reduce_add",
                        acc.full_region(),
                        [W.region((s, 1), (rm * tile_m, tile_m), (rn * tile_n, tile_n))],
                        fn=accumulate,
                        flops=tile_m * tile_n,
                    )
                b.copy(
                    C.region((rm * tile_m, tile_m), (rn * tile_n, tile_n)),
                    acc.full_region(),
                    epilogue=True,
                )
    return Kernel(name, [W, C], b.finish())


def reduce_latency_us(m: int, n: int, split_k: int, gpu: GpuSpec = A100) -> float:
    """Roofline latency of the reduction kernel: read ``split_k`` partials,
    write one output — purely bandwidth bound."""
    op = MemoryBoundOp("splitk_reduce", bytes_read=split_k * m * n * 2, bytes_written=m * n * 2)
    return memory_bound_latency(op, gpu, launch_overhead=3.0)


@dataclasses.dataclass
class SplitKCompiled:
    """A compiled split-K GEMM: partial-product kernel + reduction."""

    spec: GemmSpec
    split_k: int
    partial: CompiledKernel
    reduce_kernel: Kernel
    reduce_us: float

    @property
    def latency_us(self) -> float:
        return self.partial.latency_us + self.reduce_us

    def run(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Execute both kernels through the interpreters.

        Inputs are the *unsplit* operands ``A (m, k)`` and ``B (n, k)``;
        the split view is materialized the way the partial kernel's batched
        layout expects.
        """
        from ..interp import run_kernel

        s = self.split_k
        if s == 1:
            return self.partial.run(a, b)
        m, n, k = self.spec.m, self.spec.n, self.spec.k
        a_split = np.ascontiguousarray(a.reshape(m, s, k // s).swapaxes(0, 1))
        b_split = np.ascontiguousarray(b.reshape(n, s, k // s).swapaxes(0, 1))
        mode = "pipeline" if self.partial.kernel.attrs.get("pipeline_groups") else "eager"
        w = run_kernel(self.partial.kernel, {"A": a_split, "B": b_split}, mode=mode)["C"]
        out = run_kernel(self.reduce_kernel, {"W": w}, mode="eager")
        return out["C"]


class SplitKCompiler:
    """Search over ``split_k`` factors on top of the pipelining compiler.

    Usable wherever an end-to-end :class:`~repro.models.runtime.Backend`
    is expected (same elementwise/fusion profile as the plain compiler).
    """

    elementwise_factor: float = 1.0
    launch_overhead: float = 3.0
    fallback_factor: float = 1.0

    def __init__(
        self,
        gpu: GpuSpec = A100,
        measurer: Optional[Measurer] = None,
        space_options: Optional[SpaceOptions] = None,
        split_candidates: Sequence[int] = (1, 2, 4, 8),
        min_k_per_split: int = 64,
    ) -> None:
        self.gpu = gpu
        self.measurer = measurer or Measurer(gpu, via_ir=False)
        self.space_options = space_options
        self.split_candidates = tuple(split_candidates)
        self.min_k_per_split = min_k_per_split
        self._inner = AlcopCompiler(
            gpu=gpu, measurer=self.measurer, space_options=space_options
        )
        self._cache: Dict[Tuple, SplitKCompiled] = {}

    def _partial_spec(self, spec: GemmSpec, split_k: int) -> GemmSpec:
        return GemmSpec(
            f"{spec.name}_sk{split_k}",
            batch=split_k,
            m=spec.m,
            n=spec.n,
            k=spec.k // split_k,
            dtype=spec.dtype,
            a_footprint_ratio=spec.a_footprint_ratio,
            b_footprint_ratio=spec.b_footprint_ratio,
        )

    def candidate_splits(self, spec: GemmSpec) -> List[int]:
        """Feasible split factors for a problem (1 is always included)."""
        if spec.batch != 1:
            return [1]  # batched problems already have grid parallelism
        out = []
        for s in self.split_candidates:
            if spec.k % s:
                continue
            if s > 1 and spec.k // s < self.min_k_per_split:
                continue
            out.append(s)
        return out or [1]

    def compile(self, spec: GemmSpec) -> SplitKCompiled:
        """Pick the best split factor by measured total latency."""
        key = (spec.name, spec.batch, spec.m, spec.n, spec.k)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        best: Optional[SplitKCompiled] = None
        for s in self.candidate_splits(spec):
            partial = self._inner.compile(self._partial_spec(spec, s) if s > 1 else spec)
            reduce_us = reduce_latency_us(spec.m, spec.n, s, self.gpu) if s > 1 else 0.0
            candidate = SplitKCompiled(
                spec=spec,
                split_k=s,
                partial=partial,
                reduce_kernel=build_reduce_kernel(spec.m, spec.n, max(s, 1)),
                reduce_us=reduce_us,
            )
            if best is None or candidate.latency_us < best.latency_us:
                best = candidate
        assert best is not None
        self._cache[key] = best
        return best

    def gemm_latency(self, spec: GemmSpec) -> float:
        return self.compile(spec).latency_us

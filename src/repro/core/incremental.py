"""Incremental sweep compilation: stage-graph memoization across configs.

One sweep of the design space compiles thousands of configs, but the
space has structure (:mod:`repro.tuning.space` enumerates the pipelining
knobs ``smem_stages``/``reg_stages`` as the *innermost* loops): configs
that share the tile and warp knobs differ only in how many pipeline
stages the transform realizes, while ``auto_schedule`` + ``lower``
produce the same loop nest for all of them — up to the stage-count hint
integers and the async flags the hints imply. The engine exploits this:

* **schedule/lower key** — the tile-knob subset of
  :class:`~repro.schedule.config.TileConfig` (block/warp/chunk/swizzle)
  plus the problem. One *base kernel* per key, lowered at canonical stage
  counts ``(2, 2)`` so every pipeline level that *can* be pipelined is
  hinted, analyzed once (:func:`~repro.transform.analysis.analyze`).
* **transform key** — the full config. Each neighbor re-stages the base
  plan (:func:`~repro.transform.analysis.instantiate_plan`) and re-runs
  only the pipelining rewrite; levels a config leaves un-pipelined are
  *demoted* (hints stripped, copies made synchronous), reproducing a
  fresh lowering at those stage counts bit for bit.

The rewrite is copy-on-write (untouched subtrees are shared with the
base tree) and rewrite products that depend only on realized stage
counts are memoized per base kernel
(:class:`~repro.transform.pipeline_pass.RewriteCaches`), so sibling
configs share most of the transform's expression work too.

The measurement sweep needs only the *timing spec*, and the spec's
dependence on the pipelining knobs is tiny: at entry build the engine
materializes the base at its two stage extremes, extracts both specs
from the transformed IR, and proves that exactly five fields vary
(shared-memory footprint, the two stage counts, the register budget,
the async flag). Sibling specs are then derived from the extracted
extremes plus the instantiated plan — no per-config rewrite or IR walk
at all. Kernels proper (:meth:`IncrementalEngine.kernel`) always go
through the copy-on-write rewrite.

Outputs are bitwise-identical to fresh per-config builds — printer text
and simulated latency — which `tests` assert over full enumerated
spaces; the engine is a pure throughput optimization, never a semantic
one.

Reuse policy: a base kernel costs one full schedule+lower+analyze, so
building one for a config whose tile key never recurs is pure overhead.
The engine therefore builds a base only when the key is *promised*
(:meth:`IncrementalEngine.note_batch` saw >= 2 configs share it in one
batch) or *recurring* (second sighting across calls — the fleet-worker
pattern, one ``measure()`` per shard item); anything else reports
``None`` and the caller compiles fresh. Entries live in a bounded LRU;
evictions and sizes are exported as :mod:`repro.obs` metrics alongside
the ``repro_lower_cache_hits_total`` / ``repro_transform_runs_total``
reuse counters.

Thread safety: the maps are lock-guarded (the serve daemon shares one
measurer — hence one engine — across request threads); base builds run
outside the lock and insert once. Per-config rewrites touch only
immutable statements and idempotent memo inserts, so concurrent rewrites
of one entry are safe. A config whose build *fails* (injected fault,
genuine compile rejection) never reaches the entry maps mid-build, so a
faulted trial cannot poison the shared stage cache for its neighbors.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..codegen.lower import lower
from ..gpusim.spec import KernelTimingSpec, extract_timing_spec
from ..ir.buffer import Scope
from ..ir.stmt import Kernel
from ..obs import metrics as _metrics
from ..schedule.auto import auto_schedule
from ..schedule.config import TileConfig
from ..tensor.operation import ContractionOp, GemmSpec, PlaceholderOp, Tensor
from ..transform import RewriteCaches, analyze, instantiate_plan, transform_with_plan
from . import profiling

__all__ = ["IncrementalEngine", "schedule_key", "sort_key"]

#: Canonical stage counts the base kernel is hinted at. Any value >= 2
#: works (pipelinability does not depend on the exact count); 2 keeps the
#: hints minimal.
_BASE_STAGES = (2, 2)

_LOWER_HITS = _metrics.counter(
    "repro_lower_cache_hits_total",
    "Sweep trials that reused a memoized schedule+lower base kernel",
)
_LOWER_MISSES = _metrics.counter(
    "repro_lower_cache_misses_total",
    "Sweep trials that built (and cached) a new base kernel",
)
_TRANSFORM_RUNS = _metrics.counter(
    "repro_transform_runs_total",
    "Pipelining transforms run by the incremental engine (one per config)",
)
_EVICTIONS = _metrics.counter(
    "repro_stage_cache_evictions_total",
    "Base-kernel entries evicted from the incremental engine's LRU",
)
_SIZE_GAUGE = _metrics.gauge(
    "repro_stage_cache_entries",
    "Base-kernel entries currently held by the incremental engine",
)


def schedule_key(spec: GemmSpec, cfg: TileConfig) -> Tuple:
    """The stage-relevant knob subset shared by every pipelining sibling:
    problem identity plus tile/warp/chunk/swizzle knobs. ``smem_stages``
    and ``reg_stages`` are deliberately absent — that is the reuse."""
    return (
        spec,
        cfg.block_m,
        cfg.block_n,
        cfg.block_k,
        cfg.warp_m,
        cfg.warp_n,
        cfg.chunk_k,
        cfg.swizzle,
    )


def sort_key(cfg: TileConfig) -> Tuple:
    """Deterministic trial order grouping siblings consecutively: tile
    knobs first, pipelining knobs last. ``measure_many`` sorts uncached
    trials with this so one base kernel's reuse window is contiguous."""
    return (
        cfg.block_m,
        cfg.block_n,
        cfg.block_k,
        cfg.warp_m,
        cfg.warp_n,
        cfg.chunk_k,
        cfg.swizzle,
        cfg.smem_stages,
        cfg.reg_stages,
    )


#: KernelTimingSpec fields that legitimately vary with the pipelining
#: knobs alone. Everything else must be identical across every sibling of
#: one base kernel — asserted per entry by comparing the extracted specs
#: of the fully-pipelined and fully-demoted materializations.
_STAGE_FIELDS = (
    "smem_bytes_per_tb",
    "smem_stages",
    "reg_stages",
    "regs_per_thread",
    "async_smem_copy",
)


class _Entry:
    """One memoized base: lowered canonical kernel + its analyzed plan +
    the rewrite memo tables shared by every derived config.

    ``ts_lo``/``ts_hi`` are the timing specs *extracted from transformed
    IR* at the two stage extremes — fully demoted ``(1, 1)`` and the
    canonical ``(2, 2)`` — from which every sibling's spec is derived
    (see :meth:`IncrementalEngine.timing_spec`). ``smem_stage_bytes`` is
    the per-stage shared-memory increment ``ts_hi - ts_lo`` implies.
    ``derivable`` is the build-time proof that nothing *else* varies
    with the stage knobs; when it is ``False`` the engine falls back to
    materialize-and-extract per config."""

    __slots__ = (
        "kernel", "plan", "caches",
        "ts_lo", "ts_hi", "smem_stage_bytes", "derivable",
    )

    def __init__(self, kernel: Kernel, plan) -> None:
        self.kernel = kernel
        self.plan = plan
        self.caches = RewriteCaches()
        self.ts_lo: Optional[KernelTimingSpec] = None
        self.ts_hi: Optional[KernelTimingSpec] = None
        self.smem_stage_bytes = 0
        self.derivable = False


class IncrementalEngine:
    """Memoizing compile engine for neighboring sweep configs."""

    def __init__(self, max_entries: int = 32) -> None:
        self.max_entries = max(1, int(max_entries))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, _Entry]" = OrderedDict()
        #: keys seen exactly once without an entry (second sighting builds)
        self._seen: "OrderedDict[Tuple, bool]" = OrderedDict()
        #: keys a batch promised will recur (note_batch counted >= 2)
        self._hot: "OrderedDict[Tuple, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: trials handed back to the fresh path (unsupported graph or a
        #: tile key with no evidence of reuse)
        self.bypasses = 0
        self.transform_runs = 0
        self.evictions = 0
        # Newest engine wins the process-wide gauge (fresh instances in
        # one process are the test/serve-restart pattern).
        _SIZE_GAUGE.set_function(lambda: len(self._entries))

    # ------------------------------------------------------------- predicates
    @staticmethod
    def supports(graph: Tensor) -> bool:
        """Reuse is only sound for pure placeholder+contraction graphs:
        elementwise producers change how ``inline()`` routes fusion
        depending on which levels are pipelined, so one base kernel could
        not stand in for every stage combination. The measurement path
        always builds pure graphs; anything else compiles fresh."""
        op = graph.op
        return isinstance(op, ContractionOp) and all(
            isinstance(t.op, PlaceholderOp) for t in op.inputs
        )

    def note_batch(self, spec: GemmSpec, cfgs) -> None:
        """Mark tile keys that recur within one upcoming batch as worth a
        base kernel, so even their first trial goes through the engine."""
        counts: Dict[Tuple, int] = {}
        for cfg in cfgs:
            k = schedule_key(spec, cfg)
            counts[k] = counts.get(k, 0) + 1
        with self._lock:
            for k, n in counts.items():
                if n >= 2:
                    self._hot[k] = True
                    self._hot.move_to_end(k)
            while len(self._hot) > 4 * self.max_entries * 64:
                self._hot.popitem(last=False)

    # ---------------------------------------------------------------- entries
    def _entry_for(self, graph: Tensor, spec: GemmSpec, cfg: TileConfig) -> Optional[_Entry]:
        key = schedule_key(spec, cfg)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _LOWER_HITS.inc()
                return entry
            if key not in self._hot and key not in self._seen:
                # No evidence this tile key recurs: remember the sighting
                # and let the caller compile fresh. A second sighting (the
                # fleet worker's one-measure-per-item loop) builds.
                self._seen[key] = True
                while len(self._seen) > 4 * self.max_entries * 64:
                    self._seen.popitem(last=False)
                self.bypasses += 1
                return None
        # Build outside the lock: schedule+lower+analyze is the expensive
        # part and must not serialize concurrent request threads.
        base_cfg = cfg.with_stages(*_BASE_STAGES)
        with profiling.stage("schedule"):
            sch = auto_schedule(graph, base_cfg)
        with profiling.stage("lower"):
            kernel = lower(sch)
        with profiling.stage("transform"):
            plan = analyze(kernel)
        entry = _Entry(kernel, plan)
        self._extract_extremes(entry, base_cfg)
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                _LOWER_HITS.inc()
                return raced
            self._entries[key] = entry
            self.misses += 1
            _LOWER_MISSES.inc()
            self._seen.pop(key, None)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                _EVICTIONS.inc()
        return entry

    def _extract_extremes(self, entry: _Entry, base_cfg: TileConfig) -> None:
        """Materialize the base at its two stage extremes — fully pipelined
        ``(2, 2)`` and fully demoted ``(1, 1)`` — extract both timing specs
        from the transformed IR, and prove that only :data:`_STAGE_FIELDS`
        differ between them. Every sibling's spec is then derived by
        interpolating those fields (shared-memory footprint is linear in
        the stage count; the stage counts and register budget are config
        math; the async flag flips with demotion). A kernel that violates
        the proof — or whose extraction fails outright — simply leaves
        ``derivable`` False and every config materializes+extracts fresh,
        so the fast path can never change a reported spec."""
        try:
            with profiling.stage("transform"):
                hi = self._config_kernel_raw(entry, base_cfg)
                lo = self._config_kernel_raw(entry, base_cfg.with_stages(1, 1))
            with profiling.stage("spec-extract"):
                ts_hi = extract_timing_spec(hi)
                ts_lo = extract_timing_spec(lo)
        except Exception:
            return
        entry.ts_hi = ts_hi
        entry.ts_lo = ts_lo
        entry.smem_stage_bytes = ts_hi.smem_bytes_per_tb - ts_lo.smem_bytes_per_tb
        aligned = dataclasses.replace(
            ts_lo, **{f: getattr(ts_hi, f) for f in _STAGE_FIELDS}
        )
        entry.derivable = (
            aligned == ts_hi
            and ts_lo.smem_stages == 1
            and ts_lo.reg_stages == 1
            and ts_hi.smem_stages in (1, 2)
            and ts_hi.reg_stages in (1, 2)
        )

    # ------------------------------------------------------------------- api
    def kernel(self, graph: Tensor, spec: GemmSpec, cfg: TileConfig) -> Optional[Kernel]:
        """The fully transformed kernel for ``cfg``, derived from the
        memoized base — or ``None`` when the engine declines (unsupported
        graph / no reuse evidence) and the caller should build fresh."""
        if not self.supports(graph):
            with self._lock:
                self.bypasses += 1
            return None
        entry = self._entry_for(graph, spec, cfg)
        if entry is None:
            return None
        return self._config_kernel(entry, cfg)

    def timing_spec(
        self, graph: Tensor, spec: GemmSpec, cfg: TileConfig
    ) -> Optional[KernelTimingSpec]:
        """Timing spec for ``cfg`` through the memoized compile path, or
        ``None`` when the engine declines.

        When the entry carries the stage-extreme proof (``derivable``),
        the spec is *derived*: the stage-invariant fields come from specs
        extracted from transformed IR at entry build, and the five
        stage-dependent fields follow from the instantiated plan — which
        also replicates, config for config, the analysis errors a fresh
        build would raise. Otherwise each config materializes its kernel
        through the copy-on-write rewrite and extracts normally. Both
        routes are asserted bitwise-equal to fresh builds by the property
        tests over full enumerated spaces."""
        if not self.supports(graph):
            with self._lock:
                self.bypasses += 1
            return None
        entry = self._entry_for(graph, spec, cfg)
        if entry is None:
            return None
        if not entry.derivable:
            kernel = self._config_kernel(entry, cfg)
            with profiling.stage("spec-extract"):
                return extract_timing_spec(kernel)
        with profiling.stage("spec-extract"):
            plan, _demoted = instantiate_plan(
                entry.plan,
                {Scope.SHARED: cfg.smem_stages, Scope.REGISTER: cfg.reg_stages},
            )
            ss = rs = 1
            for g in plan.groups:
                if g.scope is Scope.SHARED:
                    ss = g.stages
                elif g.scope is Scope.REGISTER:
                    rs = g.stages
            base = entry.ts_hi if ss >= 2 else entry.ts_lo
            effective = cfg if (cfg.smem_stages == ss and cfg.reg_stages == rs) \
                else cfg.with_stages(ss, rs)
            regs = effective.resource_usage(spec.dtype).regs_per_thread
            ts = dataclasses.replace(
                base,
                smem_bytes_per_tb=(
                    entry.ts_lo.smem_bytes_per_tb + (ss - 1) * entry.smem_stage_bytes
                ),
                smem_stages=ss,
                reg_stages=rs,
                regs_per_thread=regs,
            )
            ts.validate()
            return ts

    def _config_kernel_raw(self, entry: _Entry, cfg: TileConfig) -> Kernel:
        plan, demoted = instantiate_plan(
            entry.plan,
            {Scope.SHARED: cfg.smem_stages, Scope.REGISTER: cfg.reg_stages},
        )
        attrs = dict(entry.kernel.attrs)
        attrs["config"] = cfg
        out = transform_with_plan(
            entry.kernel, plan, demoted=demoted, caches=entry.caches, attrs=attrs
        )
        with self._lock:
            self.transform_runs += 1
        _TRANSFORM_RUNS.inc()
        return out

    def _config_kernel(self, entry: _Entry, cfg: TileConfig) -> Kernel:
        with profiling.stage("transform"):
            return self._config_kernel_raw(entry, cfg)

    # ------------------------------------------------------------------ stats
    @property
    def reuse_ratio(self) -> float:
        """Fraction of engine-served trials answered from a memoized base."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "lower_cache_hits": self.hits,
                "lower_cache_misses": self.misses,
                "bypasses": self.bypasses,
                "transform_runs": self.transform_runs,
                "entries": len(self._entries),
                "evictions": self.evictions,
                "reuse_ratio": self.reuse_ratio,
            }

"""Unified error taxonomy for the ALCOP flow (schedule → transform →
sync-verify → simulate → measure).

Every failure mode of the compile/tune/serve stack derives from
:class:`ReproError` and carries a structured ``stage`` (which phase of the
Fig. 4 pipeline failed) plus an optional ``diagnostic`` payload, so callers
can degrade gracefully (:mod:`repro.models.runtime`), quarantine offenders
(:mod:`repro.tuning.measure`) or report precisely (``repro suite``) without
string-matching exception text.

This module is a leaf: it imports nothing from the rest of the package, so
any layer (gpusim, schedule, transform, tuning) can depend on it without
import cycles. Pre-existing error types fold in with back-compat
re-exports:

* ``repro.gpusim.occupancy.CompileError``   is :class:`CompileError`;
* ``repro.schedule.errors.ScheduleError``   is :class:`ScheduleError`;
* ``repro.transform.TransformError``        is :class:`TransformError`;
* ``repro.ir.syncheck.SyncCheckError``      subclasses
  :class:`SyncVerificationError`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = [
    "ReproError",
    "ScheduleError",
    "TransformError",
    "SyncVerificationError",
    "SimulationError",
    "CompileError",
    "MeasurementTimeout",
    "WorkerCrash",
    "FaultInjected",
    "ServeError",
    "ProtocolError",
    "RegistryError",
    "OverloadedError",
    "DeadlineExceededError",
    "DegradationEvent",
]


class ReproError(Exception):
    """Base class of every structured failure in the ALCOP flow.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    diagnostic:
        Optional structured payload (e.g. the offending config, the sync
        diagnostics, the injected fault) for machine consumers.
    """

    #: which phase of the compile/tune flow this error belongs to.
    stage: str = "unknown"

    def __init__(self, message: str = "", *, diagnostic: Optional[object] = None) -> None:
        super().__init__(message)
        self.message = message
        self.diagnostic = diagnostic

    def describe(self) -> str:
        """``[stage] message`` (+ diagnostic when present)."""
        out = f"[{self.stage}] {self.message}"
        if self.diagnostic is not None:
            out += f"\n  diagnostic: {self.diagnostic}"
        return out


class ScheduleError(ReproError):
    """Automatic schedule construction failed (Sec. II rules)."""

    stage = "schedule"


class TransformError(ReproError):
    """The pipelining program transformation rejected the kernel (Sec. III)."""

    stage = "transform"


class SyncVerificationError(ReproError):
    """Static synchronization verification found races in transformed IR."""

    stage = "sync-verify"


class SimulationError(ReproError):
    """The discrete-event GPU simulator failed or produced garbage."""

    stage = "simulate"


class CompileError(ReproError):
    """The kernel cannot be compiled/launched on the target GPU — analogous
    to nvcc register-overflow or over-sized shared memory failures, which
    the paper's Fig. 12 reports as 'compile fail'."""

    stage = "compile"


class MeasurementTimeout(ReproError):
    """A measurement trial exceeded its wall-clock budget (hung worker)."""

    stage = "measure"


class WorkerCrash(ReproError):
    """A measurement worker process died without reporting a result."""

    stage = "measure"


class ServeError(ReproError):
    """The compile-as-a-service layer failed (:mod:`repro.serve`): the
    daemon could not satisfy a request, a client lost its connection, or
    the server reported a structured error envelope. ``diagnostic`` holds
    the remote error payload when one was received."""

    stage = "serve"


class ProtocolError(ServeError):
    """A malformed serve request/response: unparseable JSON, an unknown
    operation, missing/invalid parameters, or a protocol-version mismatch.
    Always a client-side (caller) bug, never a reason to retry."""

    stage = "serve"


class OverloadedError(ServeError):
    """The daemon shed this request at admission: its bounded work queue
    was full. Carries ``retry_after_s``, the server's hint for how long a
    client should back off before retrying — honoured by
    :class:`repro.serve.client.ServeClient` when retries are enabled.
    Always safe to retry; no work was started."""

    stage = "serve"

    def __init__(self, message: str = "", *,
                 retry_after_s: Optional[float] = None,
                 diagnostic: Optional[object] = None) -> None:
        super().__init__(message, diagnostic=diagnostic)
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServeError):
    """A request ran out of its ``deadline_s`` budget: either it expired
    while queued (rejected before any work started) or its sweep was
    aborted mid-flight by the measurement layer. Work already committed to
    the caches stays committed, so a retried request resumes warm — but
    retrying with the same budget will usually expire again, so the client
    never retries this automatically."""

    stage = "deadline"


class RegistryError(ServeError):
    """The kernel artifact registry is unusable (unwritable directory,
    unrecoverable store state). Individual corrupt artifacts never raise
    this — they are quarantined and treated as misses."""

    stage = "registry"


class FaultInjected(ReproError):
    """An injected fault fired (:mod:`repro.faults`); chaos tests assert on
    this type to separate injected failures from organic ones."""

    stage = "fault"

    def __init__(self, message: str = "", *, site: str = "", kind: str = "",
                 diagnostic: Optional[object] = None) -> None:
        super().__init__(message, diagnostic=diagnostic)
        self.site = site
        self.kind = kind


@dataclasses.dataclass(frozen=True)
class DegradationEvent:
    """One step down the compiler degradation ladder for one operator.

    Recorded whenever a build fails and a more conservative variant (or the
    roofline fallback) is used instead: ``alcop → tvm-db → tvm → roofline``.
    """

    op: str
    from_variant: str
    to_variant: str
    stage: str
    reason: str

    def __str__(self) -> str:
        return (
            f"{self.op}: {self.from_variant} -> {self.to_variant} "
            f"({self.stage}: {self.reason})"
        )

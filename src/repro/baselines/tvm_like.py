"""Vanilla-TVM-like baselines.

Both baselines share ALCOP's entire stack (schedule machinery, lowering,
simulator) with the pipelining features disabled in the search space, so
measured deltas are attributable to pipelining alone — the paper's
experimental design:

* :func:`tvm_compiler` — no pipelining at all (``smem == reg == 1``);
* :func:`tvm_db_compiler` — manually inserted double-buffering (up to
  2-stage shared-memory pipelining, no multi-stage, no multi-level).
"""

from __future__ import annotations

from ..core.compiler import AlcopCompiler
from ..gpusim.config import A100, GpuSpec
from ..tuning.measure import Measurer

__all__ = ["tvm_compiler", "tvm_db_compiler", "ablation_compilers"]


def tvm_compiler(gpu: GpuSpec = A100, measurer: Measurer = None, **kwargs) -> AlcopCompiler:
    """Vanilla TVM: exhaustive tiling search, no pipelining."""
    return AlcopCompiler(gpu=gpu, variant="tvm", measurer=measurer, **kwargs)


def tvm_db_compiler(gpu: GpuSpec = A100, measurer: Measurer = None, **kwargs) -> AlcopCompiler:
    """TVM with manual double-buffering primitives (TVM DB in Fig. 10)."""
    return AlcopCompiler(gpu=gpu, variant="tvm-db", measurer=measurer, **kwargs)


def ablation_compilers(gpu: GpuSpec = A100, measurer: Measurer = None, **kwargs):
    """The Fig. 10 compiler set, keyed by display name."""
    mk = lambda variant: AlcopCompiler(gpu=gpu, variant=variant, measurer=measurer, **kwargs)
    return {
        "TVM": mk("tvm"),
        "TVM DB": mk("tvm-db"),
        "ALCOP w/o ML&MS": mk("alcop-no-ml-no-ms"),
        "ALCOP w/o ML": mk("alcop-no-ml"),
        "ALCOP": mk("alcop"),
    }

"""An XLA-like whole-graph compiler baseline (paper Sec. V-B, Table III).

XLA (TF 2.9.1) profiles differently from TVM/ALCOP:

* strong elementwise **fusion** — layernorm/softmax/activation chains
  compile into few kernels, cutting their memory traffic and launches;
* its tiling heuristics (derived from broad offline measurement) pick
  good tiles, but the emitted kernels are **never pipelined** — no Ampere
  ``cp.async`` multi-stage code path exists, which is the deficit the
  paper's Table III measures;
* batched attention GEMMs pay layout adaptation, and every convolution
  pays a fixed layout-transform / algorithm-selection cost — which hits
  many-small-conv networks (ResNet-18) hardest.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..gpusim.config import A100, GpuSpec
from ..gpusim.engine import simulate_kernel
from ..gpusim.occupancy import CompileError
from ..perfmodel.static_spec import timing_spec_from_config
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["XlaLikeCompiler"]

#: Fixed tile preference menu for XLA's own (non-delegated) code paths.
_XLA_TILES: Tuple[Tuple[int, int, int, int, int], ...] = (
    (128, 128, 32, 64, 64),
    (128, 64, 32, 64, 32),
    (64, 128, 32, 32, 64),
    (64, 64, 32, 32, 32),
    (32, 64, 32, 32, 32),
    (64, 32, 32, 32, 32),
    (32, 32, 32, 32, 32),
    (16, 64, 16, 16, 64),
    (16, 32, 16, 16, 32),
)

#: Quality gap of XLA's batched-GEMM handling (layout adaptation around
#: attention GEMMs) on top of the missing pipelining.
_BMM_PENALTY = 1.05
#: Fixed per-convolution layout-transform / algorithm-selection cost (us).
#: Amortizes on large convolutions, dominates small ones — the ResNet-18
#: vs VGG contrast in Table III.
_CONV_FIXED_OVERHEAD_US = 8.0


class XlaLikeCompiler:
    """Fusion-strong, pipelining-blind whole-graph compiler."""

    name = "XLA-like"
    #: fused elementwise chains move far fewer bytes and launch fewer kernels
    elementwise_factor = 0.55
    launch_overhead = 2.0
    fallback_factor = 1.2

    def __init__(self, gpu: GpuSpec = A100) -> None:
        self.gpu = gpu
        self._cache = {}

    def pick_tile(self, spec: GemmSpec) -> TileConfig:
        """Best tile from the fixed menu — XLA's tiling heuristics were
        derived from broad offline measurement, so they pick *good tiles*;
        what the menu fundamentally lacks is any pipelined variant."""
        best: Optional[TileConfig] = None
        best_lat = float("inf")
        for bm, bn, bk, wm, wn in _XLA_TILES:
            if spec.m % bm or spec.n % bn or spec.k % bk:
                continue
            cfg = TileConfig(bm, bn, bk, warp_m=wm, warp_n=wn, chunk_k=16 if bk >= 16 else bk)
            try:
                lat = simulate_kernel(timing_spec_from_config(spec, cfg), self.gpu).latency_us
            except (CompileError, ValueError):
                continue
            if lat < best_lat:
                best, best_lat = cfg, lat
        if best is None:
            raise CompileError(f"XLA heuristics found no tile for {spec.name}")
        return best

    def _own_path_latency(self, spec: GemmSpec) -> float:
        cfg = self.pick_tile(spec)
        return simulate_kernel(timing_spec_from_config(spec, cfg), self.gpu).latency_us

    def gemm_latency(self, spec: GemmSpec) -> float:
        key = (spec.name, spec.batch, spec.m, spec.n, spec.k)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        base = self._own_path_latency(spec)
        if spec.a_footprint_ratio < 1.0:
            # Convolution: per-call layout transform + algorithm selection.
            latency = base + _CONV_FIXED_OVERHEAD_US
        elif spec.batch > 1:
            # Batched attention GEMM: layout adaptation around the batch.
            latency = base * _BMM_PENALTY
        else:
            latency = base
        self._cache[key] = latency
        return latency

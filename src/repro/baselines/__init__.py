"""Baseline systems: vanilla-TVM variants, an XLA-like compiler, and a
cuBLAS/cuDNN-like kernel library."""

from .library import LIBRARY_CATALOG, LibraryKernels
from .tvm_like import ablation_compilers, tvm_compiler, tvm_db_compiler
from .xla_like import XlaLikeCompiler

__all__ = [
    "LIBRARY_CATALOG",
    "LibraryKernels",
    "ablation_compilers",
    "tvm_compiler",
    "tvm_db_compiler",
    "XlaLikeCompiler",
]

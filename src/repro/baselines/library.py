"""A cuBLAS/cuDNN-like hand-tuned kernel library (paper Sec. V-C, Fig. 11).

Vendor libraries ship a small *catalog* of expert-written, fully pipelined
kernel templates and a heuristic dispatcher that picks one per problem
shape — they do not search per shape the way a compiler does. We model:

* a catalog of the classic CUTLASS/cuBLAS tile shapes, all multi-stage
  multi-level pipelined;
* an analytical-model-based dispatcher (the library's shape heuristics);
* a small hand-tuning uplift (``_HAND_TUNED_SPEEDUP``) for the assembly-
  level scheduling a compiler's generated code does not reach.

This reproduces the paper's finding: ALCOP lands at ~93% of library
performance on average, and *beats* the library on shapes the catalog and
heuristic serve poorly (e.g. BMM_BERT_QK), because the compiler searches
the whole schedule space per shape.
"""

from __future__ import annotations

from typing import List, Tuple

from ..gpusim.config import A100, GpuSpec
from ..gpusim.engine import simulate_kernel
from ..gpusim.occupancy import CompileError
from ..perfmodel.static_spec import timing_spec_from_config
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["LIBRARY_CATALOG", "LibraryKernels"]

#: Hand-written kernels are ~10% faster than compiler output at the same
#: schedule (SASS-level register allocation, instruction scheduling and
#: software-pipelined epilogues that compiler codegen does not reach).
_HAND_TUNED_SPEEDUP = 0.90

#: Expert kernel templates: the tile shapes cuBLAS/CUTLASS actually ship,
#: all with multi-stage shared-memory and double-buffered register
#: pipelines.
LIBRARY_CATALOG: Tuple[TileConfig, ...] = tuple(
    TileConfig(bm, bn, bk, warp_m=wm, warp_n=wn, chunk_k=16, smem_stages=ss, reg_stages=2)
    for (bm, bn, bk, wm, wn, ss) in [
        (256, 128, 32, 64, 64, 3),
        (128, 256, 32, 64, 64, 3),
        (128, 128, 32, 64, 64, 4),
        (128, 64, 32, 64, 32, 4),
        (64, 128, 32, 32, 64, 4),
        (64, 64, 64, 32, 32, 4),
        (64, 32, 64, 32, 32, 5),
        (32, 64, 64, 32, 32, 5),
        (16, 64, 64, 16, 64, 5),
        (16, 128, 32, 16, 64, 4),
    ]
)


class LibraryKernels:
    """The vendor library: dispatch + fixed expert kernels."""

    name = "cuBLAS/cuDNN-like"

    def __init__(self, gpu: GpuSpec = A100) -> None:
        self.gpu = gpu
        self._cache = {}

    def dispatch(self, spec: GemmSpec) -> TileConfig:
        """Pick the catalog kernel for a shape.

        Vendor heuristics were derived from extensive offline benchmarking
        of the catalog on common shapes, so the dispatcher behaves like
        best-of-catalog: every exactly tiling candidate is timed and the
        winner shipped. Per-shape *schedule search beyond the catalog* is
        what the library cannot do — that is where ALCOP wins (Fig. 11).
        """
        candidates: List[Tuple[float, int, TileConfig]] = []
        for rank, cfg in enumerate(LIBRARY_CATALOG):
            if spec.m % cfg.block_m or spec.n % cfg.block_n or spec.k % cfg.block_k:
                continue
            try:
                lat = simulate_kernel(timing_spec_from_config(spec, cfg), self.gpu).latency_us
            except (CompileError, ValueError):
                continue
            candidates.append((lat, rank, cfg))
        if not candidates:
            raise CompileError(
                f"no library kernel tiles {spec.name} "
                f"({spec.m}x{spec.n}x{spec.k}); the library would fall back "
                "to a slow generic path"
            )
        candidates.sort(key=lambda t: (t[0], t[1]))
        return candidates[0][2]

    def gemm_latency(self, spec: GemmSpec) -> float:
        """Latency of the library kernel chosen for ``spec`` (us)."""
        key = (spec.name, spec.batch, spec.m, spec.n, spec.k)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        cfg = self.dispatch(spec)
        sim = simulate_kernel(timing_spec_from_config(spec, cfg), self.gpu)
        latency = sim.latency_us * _HAND_TUNED_SPEEDUP
        self._cache[key] = latency
        return latency

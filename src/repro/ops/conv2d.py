"""Conv2D lowered to implicit GEMM (the im2col formulation).

A convolution ``(N, C, H, W) * (K, C, R, S) -> (N, K, P, Q)`` becomes a
GEMM with ``M = N*P*Q``, ``N = K`` and reduction ``C*R*S`` over the virtual
im2col matrix. The virtual matrix re-reads overlapping input patches, so
its DRAM *footprint* is smaller than its size: the :class:`GemmSpec`'s
``a_footprint_ratio`` records ``unique_input_bytes / im2col_bytes``, which
the simulator's and the analytical model's L2/DRAM working-set analyses
consume.

For functional testing, :func:`im2col` materializes the virtual matrix so
the compiled GEMM kernel can be executed on real data and compared against
:func:`reference_conv2d`.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..tensor.operation import GemmSpec

__all__ = ["Conv2dShape", "conv2d_spec", "im2col", "reference_conv2d"]


@dataclasses.dataclass(frozen=True)
class Conv2dShape:
    """NCHW convolution geometry."""

    n: int
    c: int
    h: int
    w: int
    k: int
    r: int
    s: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        if min(self.n, self.c, self.h, self.w, self.k, self.r, self.s, self.stride) <= 0:
            raise ValueError("conv2d dims and stride must be positive")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")
        if self.p <= 0 or self.q <= 0:
            raise ValueError("output spatial size is non-positive")

    @property
    def p(self) -> int:
        return (self.h + 2 * self.padding - self.r) // self.stride + 1

    @property
    def q(self) -> int:
        return (self.w + 2 * self.padding - self.s) // self.stride + 1

    @property
    def gemm_m(self) -> int:
        return self.n * self.p * self.q

    @property
    def gemm_n(self) -> int:
        return self.k

    @property
    def gemm_k(self) -> int:
        return self.c * self.r * self.s

    @property
    def footprint_ratio(self) -> float:
        """unique input bytes / im2col bytes (<= 1; 1 for 1x1 stride-1)."""
        unique = self.n * self.c * self.h * self.w
        virtual = self.gemm_m * self.gemm_k
        return min(1.0, unique / virtual)


def conv2d_spec(name: str, shape: Conv2dShape, dtype: str = "float16") -> GemmSpec:
    """The implicit-GEMM problem of a convolution."""
    return GemmSpec(
        name,
        batch=1,
        m=shape.gemm_m,
        n=shape.gemm_n,
        k=shape.gemm_k,
        dtype=dtype,
        a_footprint_ratio=shape.footprint_ratio,
    )


def im2col(x: np.ndarray, shape: Conv2dShape) -> np.ndarray:
    """Materialize the virtual im2col matrix: ``(N*P*Q, C*R*S)``.

    Row order is (n, p, q); column order is (c, r, s) — matching
    :func:`reference_conv2d` and the weight layout ``(K, C*R*S)``.
    """
    if x.shape != (shape.n, shape.c, shape.h, shape.w):
        raise ValueError(f"input shape {x.shape} != {(shape.n, shape.c, shape.h, shape.w)}")
    pad = shape.padding
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    rows = np.empty((shape.n, shape.p, shape.q, shape.c, shape.r, shape.s), dtype=x.dtype)
    for p in range(shape.p):
        for q in range(shape.q):
            hi = p * shape.stride
            wi = q * shape.stride
            rows[:, p, q] = xp[:, :, hi : hi + shape.r, wi : wi + shape.s]
    return rows.reshape(shape.gemm_m, shape.gemm_k)


def reference_conv2d(x: np.ndarray, w: np.ndarray, shape: Conv2dShape) -> np.ndarray:
    """Gold-standard convolution: ``(N, K, P, Q)`` fp16 output."""
    if w.shape != (shape.k, shape.c, shape.r, shape.s):
        raise ValueError(f"weight shape {w.shape} != {(shape.k, shape.c, shape.r, shape.s)}")
    cols = im2col(x, shape).astype(np.float32)
    wm = w.reshape(shape.k, shape.gemm_k).astype(np.float32)
    out = cols @ wm.T  # (N*P*Q, K)
    out = out.reshape(shape.n, shape.p, shape.q, shape.k).transpose(0, 3, 1, 2)
    return out.astype(np.float16)

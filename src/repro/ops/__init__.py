"""Operator definitions: MatMul, batched MatMul, Conv2D (implicit GEMM) and
memory-bound elementwise ops."""

from .bmm import bmm_spec, build_bmm_graph, reference_bmm
from .conv2d import Conv2dShape, conv2d_spec, im2col, reference_conv2d
from .elementwise import MemoryBoundOp, memory_bound_latency
from .matmul import build_matmul_graph, matmul_spec, reference_matmul

__all__ = [
    "bmm_spec",
    "build_bmm_graph",
    "reference_bmm",
    "Conv2dShape",
    "conv2d_spec",
    "im2col",
    "reference_conv2d",
    "MemoryBoundOp",
    "memory_bound_latency",
    "build_matmul_graph",
    "matmul_spec",
    "reference_matmul",
]

"""Batched MatMul: ``C[b, m, n] = sum_k A[b, m, k] * B[b, n, k]``.

Attention score (QK^T) and context (SV) computations in transformers lower
to this operator; the batch dimension is heads x batch."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..tensor.operation import GemmSpec, Tensor, contraction, placeholder

__all__ = ["bmm_spec", "build_bmm_graph", "reference_bmm"]


def bmm_spec(name: str, batch: int, m: int, n: int, k: int, dtype: str = "float16") -> GemmSpec:
    """A batched matrix multiplication problem."""
    if batch < 2:
        raise ValueError("bmm requires batch >= 2; use matmul_spec otherwise")
    return GemmSpec(name, batch=batch, m=m, n=n, k=k, dtype=dtype)


def build_bmm_graph(spec: GemmSpec) -> Tuple[Tensor, Tensor, Tensor]:
    a = placeholder("A", (spec.batch, spec.m, spec.k), dtype=spec.dtype)
    b = placeholder("B", (spec.batch, spec.n, spec.k), dtype=spec.dtype)
    return a, b, contraction(a, b, spec)


def reference_bmm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gold-standard numpy semantics."""
    out = np.einsum("bmk,bnk->bmn", a.astype(np.float32), b.astype(np.float32))
    return out.astype(np.float16)

"""Memory-bound non-GEMM operators for end-to-end model timing.

Layer norms, softmaxes, activations and residual additions are bandwidth
bound on every backend; pipelining does not apply to them (they fail
detection rule 2 — no sequential load-and-use loop). Their latency is a
simple roofline: bytes moved over DRAM bandwidth plus a launch overhead.
"""

from __future__ import annotations

import dataclasses

from ..gpusim.config import A100, GpuSpec

__all__ = ["MemoryBoundOp", "memory_bound_latency"]

#: Achievable fraction of peak DRAM bandwidth for simple elementwise
#: kernels (uncoalesced tails, read+write turnaround).
_EFFICIENCY = 0.75


@dataclasses.dataclass(frozen=True)
class MemoryBoundOp:
    """One memory-bound operator instance.

    ``bytes_read`` / ``bytes_written`` describe one execution; ``count``
    repeats it (e.g. per transformer layer).
    """

    name: str
    bytes_read: int
    bytes_written: int
    count: int = 1

    @property
    def total_bytes(self) -> int:
        return (self.bytes_read + self.bytes_written) * self.count


def memory_bound_latency(
    op: MemoryBoundOp, gpu: GpuSpec = A100, launch_overhead: float = 3.0
) -> float:
    """Latency (us) of all ``count`` executions of a memory-bound op."""
    per_call = (op.bytes_read + op.bytes_written) / (gpu.dram_bw * _EFFICIENCY)
    return op.count * (per_call + launch_overhead)

"""MatMul operator definition: ``C[m, n] = sum_k A[m, k] * B[n, k]``."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor.operation import GemmSpec, Tensor, contraction, elementwise, placeholder

__all__ = ["matmul_spec", "build_matmul_graph", "reference_matmul"]


def matmul_spec(name: str, m: int, n: int, k: int, dtype: str = "float16") -> GemmSpec:
    """A plain (batch-1) matrix multiplication problem."""
    return GemmSpec(name, batch=1, m=m, n=n, k=k, dtype=dtype)


def build_matmul_graph(
    spec: GemmSpec, a_elementwise: Optional[str] = None, b_elementwise: Optional[str] = None
) -> Tuple[Tensor, Tensor, Tensor]:
    """Dataflow graph (A, B, C) for a matmul, optionally with elementwise
    producers on the operands (the paper's Fig. 5 scenario)."""
    if spec.batch != 1:
        raise ValueError("build_matmul_graph requires a batch-1 spec; use bmm for batches")
    a = placeholder("A", (spec.m, spec.k), dtype=spec.dtype)
    b = placeholder("B", (spec.n, spec.k), dtype=spec.dtype)
    if a_elementwise:
        a = elementwise(a, a_elementwise, name="A_f")
    if b_elementwise:
        b = elementwise(b, b_elementwise, name="B_f")
    return a, b, contraction(a, b, spec)


def reference_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gold-standard numpy semantics (fp32 accumulation, fp16 output)."""
    return (a.astype(np.float32) @ b.astype(np.float32).T).astype(np.float16)

"""Deterministic, seedable fault injection for the compile/tune stack.

Chaos engineering for the ALCOP flow: a :class:`FaultPlan` names *where*
(injection sites wired into the compile path, the measurement pool worker,
the simulator and the compiler driver) and *what* (``crash``, ``hang``,
``corrupt-latency``, ``worker-death``) goes wrong, deterministically.
Every recovery path of the fault-tolerance layer — worker respawn, trial
timeout, retry-with-backoff, quarantine, the degradation ladder, journal
resume — can then be exercised in tests and CI without flakiness.

Injection sites
---------------
``compile``
    Inside :meth:`repro.tuning.measure.Measurer._compile_and_time`, i.e.
    the schedule→lower→transform→simulate path of one measurement trial.
``worker``
    At entry of a measurement pool worker process (before it compiles).
    ``worker-death`` here hard-kills the process (``os._exit``), the way a
    segfaulting compiler would.
``simulate``
    Inside :func:`repro.gpusim.engine.simulate_kernel`; ``corrupt-latency``
    multiplies the simulated latency, modelling a misbehaving runner.
``build``
    Inside :meth:`repro.core.compiler.AlcopCompiler` builds, tokenized by
    ``variant=<v>;op=<name>`` so chaos tests can fail one rung of the
    degradation ladder and watch the compiler step down.
``registry``
    Inside the kernel artifact registry (:mod:`repro.serve.registry`),
    between writing an artifact's temp file and publishing it (token
    ``put:<key>``) and on artifact reads (token ``get:<key>``). A
    ``crash`` at the put site models a daemon dying mid-write: the orphan
    temp file must be quarantined — never served — by the next open.
``disk``
    On the write paths of the measurement cache, the artifact registry
    and the session journal (tokens ``cache:<key>``, ``registry:<key>``,
    ``journal:<path>``). A ``crash`` here raises ``OSError(ENOSPC)`` —
    a real disk error, not :class:`FaultInjected` — so the degrade-to-
    memory-only recovery paths are exercised exactly as a full disk
    would exercise them.
``fleet``
    Inside the distributed tuning fleet (:mod:`repro.tuning.fleet`).
    Two token families distinguish where the fault lands:

    * ``coordinator|shard=<sid>|attempt=<k>`` — in the coordinator, just
      before a shard is dispatched to a worker. A ``crash`` here models a
      lost dispatch (shard-loss): the shard must be requeued, never
      dropped.
    * ``worker|shard=<sid>|attempt=<k>|<config-token>`` — in a fleet
      worker process, before each trial of a shard. ``worker-death``
      hard-kills the worker mid-shard (``os._exit``); ``crash`` fails the
      worker loop softly. Either way the coordinator must respawn the
      worker and requeue the shard's unmeasured remainder.

Determinism
-----------
Whether a rule fires for a given event is a pure function of
``(plan.seed, site, kind, token)`` — the *token* identifies the event
(config key, attempt number). The same plan over the same work always
fails the same trials, regardless of pool width or scheduling order.
Rules can also pin an exact token substring (``match``) for surgically
targeted chaos, and bound themselves with ``max_hits`` (per process).

Activation
----------
Programmatic (``activate(plan)`` / ``with injected(plan): ...``) or via
the ``REPRO_FAULT_PLAN`` environment variable, which is how fresh worker
processes and CI jobs pick the plan up. ``activate`` exports the plan to
``os.environ`` so spawned children inherit it.

Example::

    plan = FaultPlan([FaultRule("worker", "worker-death", match="#a0")])
    with injected(plan):
        measurer.sweep(spec, space)   # first attempt of every trial dies;
                                      # retries succeed, sweep completes
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from .core.errors import FaultInjected, SimulationError

__all__ = [
    "ENV_VAR",
    "SITES",
    "KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultInjected",
    "activate",
    "deactivate",
    "active_plan",
    "ensure_env_plan",
    "injected",
    "inject",
    "corrupt",
    "push_token",
    "current_token",
]

ENV_VAR = "REPRO_FAULT_PLAN"

#: Named injection sites (``"*"`` in a rule matches any site).
SITES = ("compile", "worker", "simulate", "build", "registry", "fleet", "disk")

#: Fault kinds.
KINDS = ("crash", "hang", "corrupt-latency", "worker-death", "delay")


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One kind of fault at one site.

    Parameters
    ----------
    site:
        Injection site name, or ``"*"`` for every site.
    kind:
        ``crash`` (raise :class:`FaultInjected`; at the ``disk`` site,
        ``OSError(ENOSPC)`` instead), ``hang`` (sleep ``hang_s`` — rely
        on the trial timeout to recover), ``corrupt-latency`` (multiply
        reported latency by ``corrupt_factor``), ``worker-death``
        (``os._exit`` the process), ``delay`` (sleep ``delay_s`` with
        deterministic per-event jitter — injected latency for overload
        and soak testing, the event otherwise proceeds normally).
    rate:
        Probability a matching event fires, decided deterministically from
        ``(seed, site, kind, token)``. 1.0 = always.
    match:
        Optional substring the event token must contain; lets tests target
        e.g. only first attempts (``"#a0"``) or one config.
    max_hits:
        Stop firing after this many injections *in this process*.
    ignore_sigterm:
        ``hang`` only: the hanging process first installs a SIGTERM
        ignorer, modelling a worker wedged somewhere ``terminate()``
        cannot reach. Recovery then requires the measurer's SIGKILL
        escalation — the zombie-reap regression tests depend on this.
    """

    site: str
    kind: str
    rate: float = 1.0
    match: Optional[str] = None
    max_hits: Optional[int] = None
    hang_s: float = 3600.0
    corrupt_factor: float = 1000.0
    ignore_sigterm: bool = False
    delay_s: float = 0.05
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.site != "*" and self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; choose from {SITES} or '*'")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_s < 0.0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s."""

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self._hits: Dict[int, int] = {}

    # ------------------------------------------------------------ decisions
    def _fires(self, rule_id: int, rule: FaultRule, site: str, token: str) -> bool:
        if rule.site != "*" and rule.site != site:
            return False
        if rule.match is not None and rule.match not in token:
            return False
        if rule.max_hits is not None and self._hits.get(rule_id, 0) >= rule.max_hits:
            return False
        if rule.rate < 1.0:
            payload = f"{self.seed}:{site}:{rule.kind}:{rule.match}:{token}"
            h = int.from_bytes(hashlib.sha256(payload.encode()).digest()[:8], "big")
            if (h % 1_000_000) / 1_000_000 >= rule.rate:
                return False
        self._hits[rule_id] = self._hits.get(rule_id, 0) + 1
        return True

    def matching(self, site: str, token: str, kinds: Sequence[str]) -> Optional[FaultRule]:
        """First rule of one of ``kinds`` that fires for this event."""
        for i, rule in enumerate(self.rules):
            if rule.kind in kinds and self._fires(i, rule, site, token):
                return rule
        return None

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [
                    {k: v for k, v in dataclasses.asdict(r).items() if v is not None}
                    for r in self.rules
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls([FaultRule(**r) for r in data.get("rules", [])], seed=data.get("seed", 0))

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse either the JSON form or the compact CLI form
        ``site:kind[:rate][,site:kind[:rate]...]``."""
        text = text.strip()
        if not text:
            return cls([], seed=seed)
        if text.startswith("{"):
            return cls.from_json(text)
        rules = []
        for part in text.split(","):
            fields = part.strip().split(":")
            if len(fields) not in (2, 3):
                raise ValueError(
                    f"bad fault spec {part!r}: expected site:kind[:rate]"
                )
            rate = float(fields[2]) if len(fields) == 3 else 1.0
            rules.append(FaultRule(fields[0], fields[1], rate=rate))
        return cls(rules, seed=seed)


# ------------------------------------------------------------------ activation
_active: Optional[FaultPlan] = None
_env_checked = False
_lock = threading.Lock()


def activate(plan: FaultPlan, export_env: bool = True) -> None:
    """Install ``plan`` process-wide; with ``export_env`` the plan is also
    placed in ``os.environ`` so child processes (fork or spawn) inherit it."""
    global _active, _env_checked
    with _lock:
        _active = plan
        _env_checked = True
        if export_env:
            os.environ[ENV_VAR] = plan.to_json()


def deactivate() -> None:
    """Remove the active plan (and its environment export)."""
    global _active, _env_checked
    with _lock:
        _active = None
        _env_checked = True
        os.environ.pop(ENV_VAR, None)


def ensure_env_plan() -> None:
    """In a fresh process: adopt the plan from ``REPRO_FAULT_PLAN`` if no
    plan is active yet. Called at worker entry points; cheap when already
    resolved."""
    global _active, _env_checked
    if _env_checked:
        return
    with _lock:
        if not _env_checked:
            text = os.environ.get(ENV_VAR)
            if text:
                _active = FaultPlan.parse(text)
            _env_checked = True


def active_plan() -> Optional[FaultPlan]:
    ensure_env_plan()
    return _active


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped activation for tests: ``with injected(plan): ...``."""
    prev, prev_env = _active, os.environ.get(ENV_VAR)
    activate(plan)
    try:
        yield plan
    finally:
        if prev is None:
            deactivate()
            if prev_env is not None:
                os.environ[ENV_VAR] = prev_env
        else:
            activate(prev, export_env=prev_env is not None)


# ---------------------------------------------------------------- event token
_context = threading.local()


@contextmanager
def push_token(token: str) -> Iterator[None]:
    """Set the ambient event token (config identity + attempt) so nested
    injection sites — e.g. ``simulate`` deep inside a trial — make
    deterministic per-trial decisions without plumbing the token through
    every call signature."""
    prev = getattr(_context, "token", "")
    _context.token = token
    try:
        yield
    finally:
        _context.token = prev


def current_token() -> str:
    return getattr(_context, "token", "")


# ------------------------------------------------------------------ injection
def _delay_seconds(rule: FaultRule, seed: int, site: str, token: str) -> float:
    """Deterministic jittered sleep for a ``delay`` rule: the jitter factor
    is a pure hash of the event identity, so the same plan over the same
    traffic always injects the same latencies."""
    if rule.jitter <= 0.0:
        return rule.delay_s
    payload = f"{seed}:{site}:delay-jitter:{rule.match}:{token}"
    h = int.from_bytes(hashlib.sha256(payload.encode()).digest()[:8], "big")
    frac = (h % 1_000_000) / 1_000_000  # uniform in [0, 1)
    return rule.delay_s * (1.0 + rule.jitter * (2.0 * frac - 1.0))


def inject(site: str, token: Optional[str] = None,
           kinds: Sequence[str] = ("crash", "hang", "worker-death", "delay")) -> None:
    """Fire any matching ``crash``/``hang``/``worker-death``/``delay`` rule
    at ``site``. No-op without an active plan (the production fast path is
    one None-check). ``kinds`` narrows which fault kinds may fire —
    injection points in a *coordinating* process (e.g. the fleet dispatch
    site) pass ``("crash",)`` so a broadly-scoped ``worker-death`` rule can
    only kill workers, never the coordinator itself."""
    plan = _active if _env_checked else active_plan()
    if plan is None:
        return
    tok = token if token is not None else current_token()
    rule = plan.matching(site, tok, kinds)
    if rule is None:
        return
    if rule.kind == "delay":
        time.sleep(_delay_seconds(rule, plan.seed, site, tok))
        return
    if rule.kind == "worker-death":
        os._exit(17)
    if rule.kind == "hang":
        if rule.ignore_sigterm:
            # A hang terminate() cannot interrupt: only SIGKILL recovers.
            try:
                import signal

                signal.signal(signal.SIGTERM, signal.SIG_IGN)
            except (ValueError, OSError):
                pass  # non-main thread: the plain hang still exercises timeout
        time.sleep(rule.hang_s)
        return
    if site == "disk":
        # Real disk errors, not FaultInjected: the degrade-to-memory-only
        # recovery paths catch OSError, exactly as a full disk raises it.
        raise OSError(errno.ENOSPC,
                      f"injected disk fault (token {tok!r}): no space left on device")
    err = FaultInjected(
        f"injected {rule.kind} at site {site!r} (token {tok!r})",
        site=site,
        kind=rule.kind,
    )
    if site == "simulate":
        raise SimulationError(str(err), diagnostic=err)
    raise err


def corrupt(site: str, value: float, token: Optional[str] = None) -> float:
    """Apply any matching ``corrupt-latency`` rule to ``value``."""
    plan = _active if _env_checked else active_plan()
    if plan is None:
        return value
    tok = token if token is not None else current_token()
    rule = plan.matching(site, tok, ("corrupt-latency",))
    if rule is None:
        return value
    return value * rule.corrupt_factor

"""Client for the ``repro serve`` daemon.

:class:`ServeClient` speaks both transports — newline-JSON over the Unix
socket, HTTP POST over TCP — one short-lived connection per request, so N
client instances (or one instance across N threads) exercise the daemon's
concurrent path naturally. Server-side failures arrive as structured
error envelopes and are re-raised as taxonomy exceptions
(:class:`~repro.core.errors.ServeError` /
:class:`~repro.core.errors.ProtocolError` /
:class:`~repro.core.errors.OverloadedError` /
:class:`~repro.core.errors.DeadlineExceededError`); transport failures
(daemon not up, connection reset) are wrapped in :class:`ServeError` so
callers catch one family.

Overload behaviour: ``deadline_s`` stamps a per-request budget onto every
envelope (the server rejects expired work and aborts over-budget sweeps);
``retries`` enables bounded retry with exponential backoff + jitter on
*transient* failures only — connect-refused/connection-reset transport
errors and ``OverloadedError`` envelopes (honouring the server's
``retry_after_s`` hint). Protocol errors and expired deadlines never
retry: the former is a caller bug, the latter would just expire again.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Dict, Optional

from ..core.errors import DeadlineExceededError, OverloadedError, ProtocolError, ServeError
from ..obs import trace as obs_trace
from . import protocol
from .protocol import decode_message, encode_message, raise_remote_error

__all__ = ["ServeClient"]

#: Deterministically seeded jitter source for retry backoff. Spreads the
#: retry stampede of N clients without making tests time-flaky (no wall
#: clock involved).
_jitter_rng = random.Random(0x0A1C09)


class ServeClient:
    """Talk to a running daemon over its Unix socket or TCP port.

    Exactly one of ``socket_path`` / ``port`` must be given. ``timeout``
    bounds each whole request round-trip (a cold tune compiles a design
    space, so the default is generous).

    ``deadline_s`` (optional) is stamped onto every request envelope as
    the server-side budget. ``retries`` bounds how many times a transient
    failure (connection refused/reset, shed by admission control) is
    retried with exponential backoff (``backoff_s * 2**attempt``, jittered
    ±50%, capped at ``max_backoff_s``); an ``OverloadedError`` carrying
    ``retry_after_s`` uses the server's hint instead of the schedule.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 300.0,
        deadline_s: Optional[float] = None,
        retries: int = 0,
        backoff_s: float = 0.25,
        max_backoff_s: float = 5.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("give exactly one of socket_path or port")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.deadline_s = deadline_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s

    # ------------------------------------------------------------- transport
    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target = str(self.socket_path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = f"{self.host}:{self.port}"
        sock.settimeout(self.timeout)
        try:
            sock.connect(target if self.socket_path is not None else (self.host, self.port))
        except OSError as e:
            sock.close()
            err = ServeError(
                f"cannot reach repro serve at {target}: {e} "
                "(is the daemon running?)"
            )
            err.transient = True  # connect-refused: retryable
            raise err from e
        return sock

    def _roundtrip(self, message: Dict) -> Dict:
        payload = encode_message(message)
        sock = self._connect()
        try:
            # A daemon shedding under overload answers and closes before
            # reading the request; the write then breaks even though the
            # error envelope is already buffered locally. Swallow the
            # write-side pipe error and try the read — only an empty
            # response means the connection truly dropped.
            if self.socket_path is not None:
                write_error: Optional[OSError] = None
                try:
                    sock.sendall(payload)
                except (BrokenPipeError, ConnectionResetError) as e:
                    write_error = e
                f = sock.makefile("rb")
                line = f.readline(protocol.MAX_MESSAGE_BYTES + 2)
                f.close()
                if not line:
                    err = ServeError("daemon closed the connection without replying")
                    err.transient = True  # reset/drop mid-exchange: retryable
                    raise err from write_error
                return decode_message(line)
            write_error = None
            try:
                sock.sendall(protocol.http_request_bytes(payload, self.host))
            except (BrokenPipeError, ConnectionResetError) as e:
                write_error = e
            rfile = sock.makefile("rb")
            try:
                _, headers = protocol.read_http_head(rfile)
                body = protocol.read_http_body(rfile, headers)
            except (ProtocolError, OSError, EOFError):
                if write_error is not None:
                    err = ServeError(
                        f"connection to repro serve failed: {write_error}"
                    )
                    err.transient = True
                    raise err from write_error
                raise
            rfile.close()
            return decode_message(body)
        except socket.timeout as e:
            # Not marked transient: the daemon is up but slow; hammering it
            # with retries would add load exactly when it hurts most.
            raise ServeError(
                f"request timed out after {self.timeout}s (op {message.get('op')!r})"
            ) from e
        except OSError as e:
            err = ServeError(f"connection to repro serve failed: {e}")
            err.transient = True  # connection reset mid-exchange: retryable
            raise err from e
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------- api
    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with ±50% jitter, capped."""
        base = self.backoff_s * (2 ** attempt)
        return min(base * _jitter_rng.uniform(0.5, 1.5), self.max_backoff_s)

    def _request_once(self, op: str, params: Optional[Dict]) -> Dict:
        envelope: Dict = {"op": op, "params": params or {}, "id": uuid.uuid4().hex[:8]}
        if self.deadline_s is not None:
            envelope["deadline_s"] = self.deadline_s
        # Distributed tracing: when a tracer is active on this thread the
        # request gets a client span and carries its context on the
        # envelope; the server ships its spans back on the result and we
        # adopt them, stitching one tree across the process boundary. With
        # no tracer active, span() yields None and nothing is stamped.
        with obs_trace.span(f"client:{op}") as client_span:
            if client_span is not None:
                obs_trace.inject_context(envelope)
            response = self._roundtrip(envelope)
        if not response.get("ok"):
            raise_remote_error(response.get("error") or {})
        result = response.get("result")
        if not isinstance(result, dict):
            return {}
        if client_span is not None:
            remote_spans = result.pop("spans", None)
            for tracer in obs_trace.active_tracers():
                tracer.import_spans(remote_spans)
        return result

    def request(self, op: str, params: Optional[Dict] = None) -> Dict:
        """One request/response cycle (with up to ``retries`` retries on
        transient failures); returns the ``result`` payload or re-raises
        the server's error envelope."""
        attempt = 0
        while True:
            try:
                return self._request_once(op, params)
            except OverloadedError as e:
                # Shed by admission control: always safe to retry, and the
                # server told us when. Fall back to our schedule if not.
                if attempt >= self.retries:
                    raise
                delay = e.retry_after_s if e.retry_after_s else self._backoff(attempt)
            except (ProtocolError, DeadlineExceededError):
                raise  # caller bug / expired budget: retrying cannot help
            except ServeError as e:
                if attempt >= self.retries or not getattr(e, "transient", False):
                    raise
                delay = self._backoff(attempt)
            time.sleep(min(float(delay), self.max_backoff_s))
            attempt += 1

    def ping(self) -> Dict:
        return self.request("ping")

    def health(self) -> Dict:
        """The daemon's overload state: ``ready``/``overloaded``/
        ``draining``, queue depth, shed counters."""
        return self.request("health")

    def compile(self, **params) -> Dict:
        """Full artifact for a problem: config, latency, IR text, CUDA
        source, provenance, the stages this request paid for, and where it
        was served from (``registry`` / ``inflight`` / ``fresh``)."""
        return self.request("compile", params)

    def tune(self, **params) -> Dict:
        """Like :meth:`compile` but without the kernel text payload."""
        return self.request("tune", params)

    def measure(self, spec, configs, **extra) -> Dict:
        """Fleet-worker shard measurement (docs/distributed.md): time each
        config of ``configs`` (TileConfigs or field dicts) for ``spec`` (a
        GemmSpec or problem-field dict) on the daemon. The result carries
        ``latencies`` (request order; ``inf`` decoded from the wire form),
        ``persist`` flags, and the daemon's ``via_ir``/``gpu`` identity so
        the coordinator can refuse a mismatched worker."""
        from .protocol import decode_latency

        if hasattr(spec, "m"):  # a GemmSpec-like object
            params = {
                "name": spec.name, "batch": spec.batch, "m": spec.m,
                "n": spec.n, "k": spec.k, "dtype": spec.dtype,
            }
        else:
            params = dict(spec)
        params["configs"] = [
            cfg if isinstance(cfg, dict) else cfg.as_dict() for cfg in configs
        ]
        params.update(extra)
        result = self.request("measure", params)
        result["latencies"] = [
            decode_latency(x) for x in result.get("latencies", [])
        ]
        return result

    def status(self) -> Dict:
        return self.request("status")

    def metrics(self) -> Dict:
        """The daemon's metrics page (Prometheus text exposition under the
        ``text`` key), for clients on the jsonl transport where there is
        no ``GET /metrics`` to curl."""
        return self.request("metrics")

    def shutdown(self) -> Dict:
        """Ask the daemon to stop gracefully (drains, flushes registry)."""
        return self.request("shutdown")

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.1) -> bool:
        """Poll ``ping`` until the daemon answers or ``timeout`` passes."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.ping()
                return True
            except ServeError:
                time.sleep(interval)
        return False

"""Client for the ``repro serve`` daemon.

:class:`ServeClient` speaks both transports — newline-JSON over the Unix
socket, HTTP POST over TCP — one short-lived connection per request, so N
client instances (or one instance across N threads) exercise the daemon's
concurrent path naturally. Server-side failures arrive as structured
error envelopes and are re-raised as taxonomy exceptions
(:class:`~repro.core.errors.ServeError` /
:class:`~repro.core.errors.ProtocolError`); transport failures (daemon not
up, connection reset) are wrapped in :class:`ServeError` so callers catch
one family.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Dict, Optional

from ..core.errors import ServeError
from . import protocol
from .protocol import decode_message, encode_message, raise_remote_error

__all__ = ["ServeClient"]


class ServeClient:
    """Talk to a running daemon over its Unix socket or TCP port.

    Exactly one of ``socket_path`` / ``port`` must be given. ``timeout``
    bounds each whole request round-trip (a cold tune compiles a design
    space, so the default is generous).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 300.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("give exactly one of socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------- transport
    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target = str(self.socket_path)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = f"{self.host}:{self.port}"
        sock.settimeout(self.timeout)
        try:
            sock.connect(target if self.socket_path is not None else (self.host, self.port))
        except OSError as e:
            sock.close()
            raise ServeError(
                f"cannot reach repro serve at {target}: {e} "
                "(is the daemon running?)"
            ) from e
        return sock

    def _roundtrip(self, message: Dict) -> Dict:
        payload = encode_message(message)
        sock = self._connect()
        try:
            if self.socket_path is not None:
                f = sock.makefile("rwb")
                f.write(payload)
                f.flush()
                line = f.readline(protocol.MAX_MESSAGE_BYTES + 2)
                f.close()
                if not line:
                    raise ServeError("daemon closed the connection without replying")
                return decode_message(line)
            sock.sendall(protocol.http_request_bytes(payload, self.host))
            rfile = sock.makefile("rb")
            _, headers = protocol.read_http_head(rfile)
            body = protocol.read_http_body(rfile, headers)
            rfile.close()
            return decode_message(body)
        except socket.timeout as e:
            raise ServeError(
                f"request timed out after {self.timeout}s (op {message.get('op')!r})"
            ) from e
        except OSError as e:
            raise ServeError(f"connection to repro serve failed: {e}") from e
        finally:
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------- api
    def request(self, op: str, params: Optional[Dict] = None) -> Dict:
        """One request/response cycle; returns the ``result`` payload or
        re-raises the server's error envelope."""
        response = self._roundtrip(
            {"op": op, "params": params or {}, "id": uuid.uuid4().hex[:8]}
        )
        if not response.get("ok"):
            raise_remote_error(response.get("error") or {})
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def ping(self) -> Dict:
        return self.request("ping")

    def compile(self, **params) -> Dict:
        """Full artifact for a problem: config, latency, IR text, CUDA
        source, provenance, the stages this request paid for, and where it
        was served from (``registry`` / ``inflight`` / ``fresh``)."""
        return self.request("compile", params)

    def tune(self, **params) -> Dict:
        """Like :meth:`compile` but without the kernel text payload."""
        return self.request("tune", params)

    def measure(self, spec, configs, **extra) -> Dict:
        """Fleet-worker shard measurement (docs/distributed.md): time each
        config of ``configs`` (TileConfigs or field dicts) for ``spec`` (a
        GemmSpec or problem-field dict) on the daemon. The result carries
        ``latencies`` (request order; ``inf`` decoded from the wire form),
        ``persist`` flags, and the daemon's ``via_ir``/``gpu`` identity so
        the coordinator can refuse a mismatched worker."""
        from .protocol import decode_latency

        if hasattr(spec, "m"):  # a GemmSpec-like object
            params = {
                "name": spec.name, "batch": spec.batch, "m": spec.m,
                "n": spec.n, "k": spec.k, "dtype": spec.dtype,
            }
        else:
            params = dict(spec)
        params["configs"] = [
            cfg if isinstance(cfg, dict) else cfg.as_dict() for cfg in configs
        ]
        params.update(extra)
        result = self.request("measure", params)
        result["latencies"] = [
            decode_latency(x) for x in result.get("latencies", [])
        ]
        return result

    def status(self) -> Dict:
        return self.request("status")

    def shutdown(self) -> Dict:
        """Ask the daemon to stop gracefully (drains, flushes registry)."""
        return self.request("shutdown")

    def wait_until_ready(self, timeout: float = 30.0, interval: float = 0.1) -> bool:
        """Poll ``ping`` until the daemon answers or ``timeout`` passes."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.ping()
                return True
            except ServeError:
                time.sleep(interval)
        return False

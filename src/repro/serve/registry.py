"""Content-addressed kernel artifact registry.

The registry is the durable half of compile-as-a-service: one
:class:`KernelArtifact` per *solved problem* — transformed IR text,
generated CUDA source, the best :class:`~repro.schedule.config.TileConfig`,
its measured latency and full provenance (GPU fingerprint,
compiler-version hash, tune session id) — keyed by the same content
address anatomy as :mod:`repro.tuning.cache`. Both stores fold
:func:`~repro.tuning.cache.compiler_version_hash` and
:func:`~repro.tuning.cache.gpu_fingerprint` into their keys, so editing a
compile-path package orphans measurements *and* artifacts together: the
daemon can never serve a kernel the current compiler would not produce.

Layout (``docs/serving.md``)::

    <root>/
      artifacts/<key>.json       one artifact per content address
      quarantine/                corrupt/orphaned files, moved not deleted
      index.json                 advisory summary, rewritten by flush()

Durability and corruption: artifacts are published atomically (temp file +
``fsync`` + ``os.replace``), so a reader never observes a half-written
artifact under its final name. A daemon that dies mid-write leaves only a
``*.tmp`` orphan, which the next :class:`ArtifactRegistry` open sweeps
into ``quarantine/``. Unparseable or structurally invalid artifact files
discovered on read are likewise quarantined and reported as misses —
corruption is never fatal and never served. The ``registry`` fault site
(:mod:`repro.faults`) fires between write and publish (token
``put:<key>``) and on reads (token ``get:<key>``) so the chaos suite can
exercise both paths deterministically.

Concurrency: one lock serializes index mutation and publication. Two
threads racing to insert the same key converge to a single artifact —
the second writer adopts the first's published file (first-writer-wins,
matching :class:`~repro.tuning.cache.MeasurementCache`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import threading
import time
from typing import Dict, List, Optional, Union

from .. import faults
from ..core.degrade import DiskDegrade
from ..core.errors import RegistryError
from ..gpusim.config import GpuSpec
from ..obs import metrics as obs_metrics
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec
from ..tuning.cache import compiler_version_hash, gpu_fingerprint

__all__ = ["KernelArtifact", "ArtifactRegistry", "artifact_key"]

_REGISTRY_HITS = obs_metrics.counter(
    "repro_registry_hits_total", "Artifact-registry lookups that hit.")
_REGISTRY_MISSES = obs_metrics.counter(
    "repro_registry_misses_total", "Artifact-registry lookups that missed.")

#: Bumped when the on-disk artifact schema changes shape.
SCHEMA_VERSION = 1

ARTIFACT_DIR = "artifacts"
QUARANTINE_DIR = "quarantine"
INDEX_FILE = "index.json"


def artifact_key(
    gpu: GpuSpec,
    spec: GemmSpec,
    variant: str,
    via_ir: bool,
    space_max: Optional[int],
    version: Optional[str] = None,
) -> str:
    """Content address of one solved problem.

    Same anatomy as :func:`repro.tuning.cache.measurement_key` — GPU
    fingerprint, problem identity, measurement mode, compiler-version
    hash — plus the search inputs that determine *which* config wins
    (variant restriction and the design-space cap). Identical inputs on an
    identical compiler always map to the same artifact; any drift in
    either orphans the entry.
    """
    payload = {
        "gpu": gpu_fingerprint(gpu),
        "spec": dataclasses.asdict(spec),
        "variant": variant,
        "via_ir": bool(via_ir),
        "space": space_max,
        "version": version if version is not None else compiler_version_hash(),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class KernelArtifact:
    """One fully solved problem: the kernel, its schedule, and where it
    came from."""

    key: str
    spec: Dict[str, object]
    config: Dict[str, object]
    latency_us: float
    ir_text: str
    cuda_source: str
    #: gpu name+fingerprint, compiler-version hash, tune session id,
    #: created-at unix seconds, search inputs (variant, space cap, via_ir).
    provenance: Dict[str, object]

    def tile_config(self) -> TileConfig:
        return TileConfig(**self.config)

    def gemm_spec(self) -> GemmSpec:
        return GemmSpec(**self.spec)

    def to_payload(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        out["schema"] = SCHEMA_VERSION
        return out

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "KernelArtifact":
        """Parse a stored artifact; raises ``ValueError``/``KeyError``/
        ``TypeError`` on anything structurally off (the registry turns
        those into quarantine, not crashes)."""
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(f"unsupported artifact schema {payload.get('schema')!r}")
        art = cls(
            key=str(payload["key"]),
            spec=dict(payload["spec"]),
            config=dict(payload["config"]),
            latency_us=float(payload["latency_us"]),
            ir_text=str(payload["ir_text"]),
            cuda_source=str(payload["cuda_source"]),
            provenance=dict(payload["provenance"]),
        )
        # Round-trip the structured fields now, so a corrupt config is
        # caught at load time rather than at dispatch time.
        art.tile_config()
        art.gemm_spec()
        return art


class ArtifactRegistry:
    """Disk-backed (or in-memory) store of :class:`KernelArtifact`\\ s.

    Parameters
    ----------
    root:
        Registry directory. ``None`` keeps everything in memory — the
        daemon still deduplicates and serves warm requests, it just
        forgets on restart.
    version:
        Compiler-version hash recorded in new artifacts' provenance
        (defaults to the live :func:`compiler_version_hash`).
    """

    def __init__(
        self, root: Union[str, pathlib.Path, None] = None, version: Optional[str] = None
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else None
        self.version = version if version is not None else compiler_version_hash()
        self._lock = threading.RLock()
        self._memory: Dict[str, KernelArtifact] = {}
        self.hits = 0
        self.misses = 0
        self.n_quarantined = 0
        self.n_put = 0
        self._degrade = DiskDegrade(
            f"artifact registry at {self.root}",
            "artifacts from this run will not persist across restarts")
        if self.root is not None:
            try:
                (self.root / ARTIFACT_DIR).mkdir(parents=True, exist_ok=True)
                (self.root / QUARANTINE_DIR).mkdir(parents=True, exist_ok=True)
            except OSError as e:
                raise RegistryError(
                    f"cannot create registry directories under {self.root}: {e}"
                ) from e
            self._sweep_orphans()

    # ------------------------------------------------------------- internals
    def _artifact_path(self, key: str) -> pathlib.Path:
        return self.root / ARTIFACT_DIR / f"{key}.json"

    def _quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Move a sick file aside (never delete: it is forensic evidence).
        Filename collisions in quarantine get a counter suffix."""
        qdir = self.root / QUARANTINE_DIR
        target = qdir / path.name
        n = 0
        while target.exists():
            n += 1
            target = qdir / f"{path.name}.{n}"
        try:
            os.replace(path, target)
        except OSError:
            return  # racing quarantiner already moved it
        self.n_quarantined += 1

    def _sweep_orphans(self) -> None:
        """Quarantine ``*.tmp`` files left by a writer that died between
        write and publish (the ``registry`` fault site's crash point)."""
        for tmp in (self.root / ARTIFACT_DIR).glob("*.tmp"):
            self._quarantine(tmp, "orphaned temp file")

    def _load(self, key: str) -> Optional[KernelArtifact]:
        path = self._artifact_path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path, "unreadable")
            return None
        try:
            art = KernelArtifact.from_payload(json.loads(text))
            if art.key != key:
                raise ValueError(f"artifact self-identifies as {art.key[:12]}…")
        except (ValueError, KeyError, TypeError):
            # Truncated write, garbage bytes, schema drift, or a file
            # renamed onto the wrong key: quarantine and miss.
            self._quarantine(path, "corrupt artifact")
            return None
        return art

    @property
    def disk_errors(self) -> int:
        """Publishes/flushes absorbed by degrading to memory-only operation."""
        return self._degrade.disk_errors

    @property
    def degraded(self) -> bool:
        """True once a disk failure switched publishing to memory-only."""
        return self._degrade.degraded

    def _note_disk_error(self, action: str, exc: OSError) -> None:
        """Degrade to memory-only publishing: warn once, count always. The
        artifact still serves from memory for this daemon's lifetime — it
        just will not survive a restart."""
        self._degrade.note(action, exc)

    # ------------------------------------------------------------------ api
    def get(self, key: str) -> Optional[KernelArtifact]:
        """The artifact at ``key``, or None. Corrupt entries quarantine."""
        faults.inject("registry", token=f"get:{key}")
        with self._lock:
            art = self._memory.get(key)
            if art is None and self.root is not None:
                art = self._load(key)
                if art is not None:
                    self._memory[key] = art
            if art is None:
                self.misses += 1
                _REGISTRY_MISSES.inc()
            else:
                self.hits += 1
                _REGISTRY_HITS.inc()
            return art

    def put(self, artifact: KernelArtifact) -> KernelArtifact:
        """Publish ``artifact``; returns the canonical stored artifact.

        First writer wins: when the key is already present (another thread
        or an earlier daemon got there first), the existing artifact is
        returned and the new one is dropped — both callers converge on one
        stored kernel.
        """
        with self._lock:
            existing = self._memory.get(artifact.key)
            if existing is None and self.root is not None:
                existing = self._load(artifact.key)
            if existing is not None:
                self._memory[artifact.key] = existing
                return existing
            if self.root is not None and not self.degraded:
                path = self._artifact_path(artifact.key)
                tmp = path.with_name(path.name + ".tmp")
                try:
                    faults.inject("disk", token=f"registry:{artifact.key[:16]}",
                                  kinds=("crash",))
                    with tmp.open("w") as f:
                        f.write(json.dumps(artifact.to_payload(), sort_keys=True))
                        f.flush()
                        os.fsync(f.fileno())
                    # A crash here (the fault site) leaves only the tmp
                    # orphan; the published name never holds partial bytes.
                    faults.inject("registry", token=f"put:{artifact.key}")
                    os.replace(tmp, path)
                except OSError as e:
                    # ENOSPC/EIO mid-publish: keep the artifact in memory
                    # and degrade, never crash the request that built it.
                    try:
                        tmp.unlink(missing_ok=True)
                    except OSError:
                        pass
                    self._note_disk_error("publish an artifact", e)
            self._memory[artifact.key] = artifact
            self.n_put += 1
            return artifact

    def keys(self) -> List[str]:
        """Every published key (disk scan + memory), sorted."""
        with self._lock:
            found = set(self._memory)
            if self.root is not None:
                found.update(
                    p.stem for p in (self.root / ARTIFACT_DIR).glob("*.json")
                )
            return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "size": len(self.keys()),
                "hits": self.hits,
                "misses": self.misses,
                "inserted": self.n_put,
                "quarantined": self.n_quarantined,
                "disk_errors": self.disk_errors,
                "dir": str(self.root) if self.root is not None else None,
                "version": self.version,
            }

    def flush(self) -> None:
        """Durably rewrite the advisory index (size, keys, counters).

        Artifacts themselves are already durable at :meth:`put` time; the
        index exists so humans and monitoring can read the registry state
        without scanning, and graceful daemon shutdown calls this last.
        """
        if self.root is None or self.degraded:
            return
        with self._lock:
            payload = dict(self.stats())
            payload["keys"] = self.keys()
            payload["flushed_at"] = time.time()
            tmp = self.root / (INDEX_FILE + ".tmp")
            try:
                with tmp.open("w") as f:
                    f.write(json.dumps(payload, indent=1, sort_keys=True))
                    f.flush()
                    os.fsync(f.fileno())
                os.replace(tmp, self.root / INDEX_FILE)
            except OSError as e:
                self._note_disk_error("rewrite its index", e)

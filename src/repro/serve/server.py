"""The ``repro serve`` daemon: compile-as-a-service.

One long-running process pays the expensive state once — the measurer's
TE-graph cache, the memoized design-space enumeration, the disk
measurement cache, the artifact registry — and then answers compile/tune
requests for the cost of a registry lookup. The serving loop is:

1. **accept**: listener threads (Unix socket speaking newline-JSON, TCP
   speaking HTTP POST) push accepted connections onto a thread-safe
   request queue;
2. **handle**: a fixed pool of worker threads drains the queue; each
   request is dispatched to its operation handler under a per-request
   stage-profiling collector, so every response reports exactly which
   compile stages (if any) it paid for;
3. **dedup**: concurrent requests for the same artifact key share one
   in-flight solve through a futures map — N identical tune requests run
   exactly one sweep, and all N get the same artifact (or the same error);
4. **persist**: solved problems are published to the content-addressed
   :class:`~repro.serve.registry.ArtifactRegistry`; re-encounters are
   served from it without touching the compiler.

Graceful shutdown (``shutdown`` request or SIGINT/SIGTERM) stops
accepting, drains the workers, and flushes the registry index last.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import pathlib
import queue
import socket
import threading
import time
import uuid
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional, Tuple

from ..codegen import emit_cuda, lower
from ..core import profiling
from ..core.errors import (
    CompileError,
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
)
from ..gpusim.config import A100, GpuSpec
from ..ir.printer import format_kernel
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..schedule.auto import auto_schedule
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec, contraction, placeholder
from ..transform import apply_pipelining
from ..tuning.cache import MeasurementCache, compiler_version_hash, gpu_fingerprint
from ..tuning.measure import Measurer
from ..tuning.space import SpaceOptions, enumerate_space, restrict_space
from . import protocol
from .protocol import (
    OPS,
    PROTOCOL_VERSION,
    decode_message,
    encode_latency,
    encode_message,
    error_response,
    ok_response,
    parse_deadline,
    parse_measure_params,
    parse_problem_params,
)
from .registry import ArtifactRegistry, KernelArtifact, artifact_key

__all__ = [
    "ReproServer",
    "EndpointStats",
    "DEFAULT_SPACE",
    "DEFAULT_WORKERS",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_QUEUE",
]

#: Design-space cap used when a request does not name one (matches the
#: CLI's ``--space`` default so ``repro compile`` and a served compile
#: solve the same search problem).
DEFAULT_SPACE = 600

DEFAULT_WORKERS = 4

#: Seconds a keep-alive connection may sit idle between requests before
#: the daemon closes it. Each open connection pins one worker thread, so
#: without this bound ``workers`` idle clients would starve the pool and
#: park every new request (including ping) in the queue forever.
DEFAULT_IDLE_TIMEOUT = 120.0

#: Admission-control bound on the connection/work queue. When the queue is
#: full, new connections are shed with a fast ``OverloadedError`` envelope
#: (carrying ``retry_after_s``) instead of waiting unboundedly — a daemon
#: under 4x sustained load answers *something* to every client rather than
#: growing an invisible backlog of doomed requests.
DEFAULT_MAX_QUEUE = 64

#: Latency samples kept per endpoint for the p50/p95/p99 estimates.
_LATENCY_WINDOW = 2048

#: Cap on spans shipped back in a traced response envelope — a runaway
#: sweep must not balloon one response past MAX_MESSAGE_BYTES.
_MAX_RESPONSE_SPANS = 2048

#: Server counters and their Prometheus help text. The ``counters`` dict
#: on the instance stays the status-op surface; each name is mirrored
#: into the process-global registry as ``repro_<name>_total``.
_COUNTER_HELP = {
    "sweeps_run": "Design-space sweeps the daemon has run.",
    "artifacts_built": "Kernel artifacts built and published to the registry.",
    "dedup_hits": "Requests served by joining another request's in-flight solve.",
    "fleet_shards": "Fleet measure shards served.",
    "fleet_trials": "Individual fleet trials measured for coordinators.",
    "requests_shed": "Connections refused at admission because the queue was full.",
    "deadline_exceeded": "Requests rejected or aborted past their deadline_s budget.",
}


class EndpointStats:
    """Per-operation request telemetry: counts, errors, latency quantiles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        #: requests refused at admission (queue full)
        self.shed = 0
        #: requests rejected or aborted because their deadline_s expired
        self.deadline_exceeded = 0
        self._latencies: List[float] = []

    def record(self, seconds: float, ok: bool) -> None:
        with self._lock:
            self.requests += 1
            if not ok:
                self.errors += 1
            self._latencies.append(seconds)
            if len(self._latencies) > _LATENCY_WINDOW:
                del self._latencies[: len(self._latencies) - _LATENCY_WINDOW]

    def record_shed(self) -> None:
        """A connection refused at admission: counted as a request + error
        so overload is visible in the same place as everything else."""
        with self._lock:
            self.requests += 1
            self.errors += 1
            self.shed += 1

    def record_deadline_exceeded(self) -> None:
        with self._lock:
            self.deadline_exceeded += 1

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        if not ordered:
            return 0.0
        idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[idx]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            ordered = sorted(self._latencies)
            return {
                "requests": self.requests,
                "errors": self.errors,
                "shed": self.shed,
                "deadline_exceeded": self.deadline_exceeded,
                "p50_ms": round(self._quantile(ordered, 0.50) * 1e3, 3),
                "p95_ms": round(self._quantile(ordered, 0.95) * 1e3, 3),
                "p99_ms": round(self._quantile(ordered, 0.99) * 1e3, 3),
            }


class ReproServer:
    """The compile-as-a-service daemon (see module docstring).

    Parameters
    ----------
    gpu:
        Target hardware model every request compiles for.
    socket_path / port / host:
        At least one listener: a Unix socket (newline-JSON) and/or a TCP
        port (HTTP). ``port=0`` binds an ephemeral port (tests); the bound
        port is readable from :attr:`port` after :meth:`start`.
    registry:
        The artifact registry; defaults to an in-memory one.
    cache_dir:
        Optional disk measurement cache backing the shared measurer.
    jobs:
        Measurement pool width used by sweeps the daemon runs.
    workers:
        Request-handling threads draining the connection queue.
    via_ir:
        Measurement mode of the shared measurer (see ``Measurer``).
    idle_timeout:
        Seconds a keep-alive connection may sit idle between requests
        before the daemon closes it and returns its worker to the pool
        (``None`` or ``<= 0`` disables the bound — tests only).
    max_queue:
        Admission-control bound on the connection queue. An accepted
        connection that finds the queue full is shed immediately with an
        ``OverloadedError`` envelope carrying ``retry_after_s`` — never a
        hang, never a silently dropped socket.
    trace_dir / trace_sample_rate:
        When ``trace_dir`` is set, a deterministic fraction
        (``trace_sample_rate``, 0..1) of requests are traced server-side
        and each sampled request's span tree is written to one Chrome-trace
        JSON file under the directory. Independent of client-initiated
        tracing, which always rides back on the response envelope.
    """

    def __init__(
        self,
        gpu: GpuSpec = A100,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
        registry: Optional[ArtifactRegistry] = None,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        workers: int = DEFAULT_WORKERS,
        via_ir: bool = False,
        default_space: int = DEFAULT_SPACE,
        idle_timeout: Optional[float] = DEFAULT_IDLE_TIMEOUT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        trace_dir: Optional[str] = None,
        trace_sample_rate: float = 1.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("ReproServer needs a socket_path and/or a port to listen on")
        self.gpu = gpu
        self.socket_path = socket_path
        self.port = port
        self.host = host
        self.registry = registry if registry is not None else ArtifactRegistry()
        cache = MeasurementCache(cache_dir) if cache_dir else None
        self.measurer = Measurer(gpu, via_ir=via_ir, cache=cache, jobs=jobs)
        self.workers = max(1, int(workers))
        self.default_space = int(default_space)
        #: None (or <= 0) disables the idle bound — tests only; a shared
        #: daemon should always keep one so idle clients cannot pin workers.
        self.idle_timeout = idle_timeout if idle_timeout and idle_timeout > 0 else None
        #: tune session id stamped into every artifact this daemon builds.
        self.session_id = uuid.uuid4().hex[:12]
        self.started_at = time.time()

        self._stats: Dict[str, EndpointStats] = {op: EndpointStats() for op in OPS}
        self._stats["invalid"] = EndpointStats()
        #: connections shed at admission, before any op is known
        self._stats["admission"] = EndpointStats()
        self._counter_lock = threading.Lock()
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTER_HELP}
        self._obs_counters = {
            name: obs_metrics.counter(f"repro_{name}_total", help_text)
            for name, help_text in _COUNTER_HELP.items()
        }
        self._request_seconds = obs_metrics.histogram(
            "repro_request_seconds", "End-to-end request handling latency.")
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()

        self.trace_dir = trace_dir
        self.trace_sample_rate = max(0.0, min(1.0, float(trace_sample_rate)))
        self._trace_accum = 0.0  # deterministic sampling accumulator

        self.max_queue = max(1, int(max_queue))
        # (transport kind, connection, enqueue time) — the enqueue stamp
        # lets the first request on the connection charge its queue wait
        # against its deadline_s budget.
        self._conn_queue: "queue.Queue[Tuple[str, socket.socket, float]]" = queue.Queue(
            maxsize=self.max_queue
        )
        self._listeners: List[socket.socket] = []
        self._open_conns: set = set()
        self._open_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stop_event = threading.Event()
        self._started = False

        # Callback gauges: re-registering replaces the callback, so the
        # newest server instance in a process (tests spin up several) is
        # the one the exposition page reflects.
        obs_metrics.gauge(
            "repro_serve_queue_depth",
            "Connections waiting in the admission queue.",
            fn=self._conn_queue.qsize)
        obs_metrics.gauge(
            "repro_serve_inflight",
            "Deduplicated solves currently in flight.",
            fn=lambda: len(self._inflight))

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Bind listeners and start acceptor + worker threads (non-blocking)."""
        if self._started:
            return
        if self.socket_path is not None:
            path = str(self.socket_path)
            if os.path.exists(path):
                os.unlink(path)  # stale socket from a dead daemon
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.bind(path)
            sock.listen(64)
            sock.settimeout(0.25)  # bounded accept() so stop() is prompt
            self._listeners.append(sock)
            self._spawn(self._accept_loop, sock, "jsonl", name="repro-serve-accept-unix")
        if self.port is not None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            sock.listen(64)
            sock.settimeout(0.25)
            self.port = sock.getsockname()[1]
            self._listeners.append(sock)
            self._spawn(self._accept_loop, sock, "http", name="repro-serve-accept-http")
        for i in range(self.workers):
            self._spawn(self._worker_loop, name=f"repro-serve-worker-{i}")
        self._started = True

    def _spawn(self, target, *args, name: str) -> None:
        t = threading.Thread(target=target, args=args, name=name, daemon=True)
        t.start()
        self._threads.append(t)

    def serve_forever(self) -> None:
        """Start (if needed), block until :meth:`stop`, then shut down."""
        self.start()
        self._stop_event.wait()
        self.shutdown()

    def stop(self) -> None:
        """Signal shutdown: stop accepting, let workers drain. Safe to call
        from a request handler (never joins the calling thread)."""
        self._stop_event.set()
        for sock in self._listeners:
            try:
                sock.close()
            except OSError:
                pass
        # Wake workers parked in readline() on idle keep-alive connections:
        # SHUT_RD gives them EOF while an in-flight response stays writable.
        with self._open_lock:
            open_conns = list(self._open_conns)
        for conn in open_conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass

    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: drain workers, then flush the registry last so
        everything solved before the stop signal is durably indexed."""
        self.stop()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            if t is threading.current_thread():
                continue
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        if self.socket_path is not None and os.path.exists(str(self.socket_path)):
            try:
                os.unlink(str(self.socket_path))
            except OSError:
                pass
        self.registry.flush()

    @property
    def running(self) -> bool:
        return self._started and not self._stop_event.is_set()

    def _count(self, name: str, n: int = 1) -> None:
        """Increment a server counter and its process-global obs mirror."""
        with self._counter_lock:
            self.counters[name] += n
        self._obs_counters[name].inc(n)

    # ------------------------------------------------------------- networking
    def _accept_loop(self, listener: socket.socket, kind: str) -> None:
        while not self._stop_event.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue  # periodic stop_event check
            except OSError:
                return  # listener closed by stop()
            # Accepted sockets inherit the listener's 0.25s timeout; replace
            # it with the idle bound so a silent keep-alive client eventually
            # returns its worker to the pool (the timeout lands in readline()
            # as a socket.timeout, which the serve loops answer or close on).
            conn.settimeout(self.idle_timeout)
            try:
                self._conn_queue.put_nowait((kind, conn, time.monotonic()))
            except queue.Full:
                self._shed(kind, conn)

    def _retry_after_s(self) -> float:
        """Backoff hint for a shed client: scales with how many queued
        requests each worker would have to clear first, capped so a client
        never parks for long on a hint that may already be stale."""
        backlog = self._conn_queue.qsize() / max(1, self.workers)
        return round(min(5.0, 0.1 * (1.0 + backlog)), 3)

    def _shed(self, kind: str, conn: socket.socket) -> None:
        """Admission control: the queue is full, so answer a fast
        ``OverloadedError`` envelope (jsonl line or HTTP 503) and close —
        never a hang, never a silently dropped socket. Runs on the acceptor
        thread; the 1s send timeout bounds how long a slow shed client can
        stall further accepts."""
        retry_after = self._retry_after_s()
        self._count("requests_shed")
        self._stats["admission"].record_shed()
        err = OverloadedError(
            f"daemon is overloaded ({self.max_queue} connections queued); "
            f"retry in {retry_after}s",
            retry_after_s=retry_after,
        )
        payload = encode_message(error_response(err))
        try:
            conn.settimeout(1.0)
            if kind == "jsonl":
                conn.sendall(payload)
            else:
                conn.sendall(
                    protocol.http_response_bytes(payload, 503, "Service Unavailable")
                )
        except OSError:
            pass  # the client vanished first; shedding still succeeded
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _worker_loop(self) -> None:
        while True:
            try:
                kind, conn, enqueued_at = self._conn_queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop_event.is_set():
                    return
                continue
            with self._open_lock:
                self._open_conns.add(conn)
            try:
                if kind == "jsonl":
                    self._serve_jsonl(conn, enqueued_at)
                else:
                    self._serve_http(conn, enqueued_at)
            finally:
                with self._open_lock:
                    self._open_conns.discard(conn)
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_jsonl(self, conn: socket.socket,
                     enqueued_at: Optional[float] = None) -> None:
        """Newline-JSON framing: many requests per connection, until EOF.

        The first message on the connection is charged the time the
        connection spent in the admission queue (``enqueued_at``) against
        its ``deadline_s``; later keep-alive messages waited for nothing.
        """
        f = conn.makefile("rwb")
        try:
            while True:
                line = f.readline(protocol.MAX_MESSAGE_BYTES + 2)
                if not line:
                    return
                if len(line) >= protocol.MAX_MESSAGE_BYTES + 2 and not line.endswith(b"\n"):
                    # readline() hit its size cap mid-line: the rest of this
                    # oversized message is still buffered and would be parsed
                    # as garbage "messages". Answer once, then close the
                    # connection rather than desync the stream.
                    self._stats["invalid"].record(0.0, ok=False)
                    err = ProtocolError(
                        f"message exceeds {protocol.MAX_MESSAGE_BYTES} bytes; "
                        "closing connection"
                    )
                    f.write(encode_message(error_response(err)))
                    f.flush()
                    return
                try:
                    message = decode_message(line)
                except ProtocolError as e:
                    self._stats["invalid"].record(0.0, ok=False)
                    f.write(encode_message(error_response(e)))
                    f.flush()
                    continue
                queue_wait_s = 0.0
                if enqueued_at is not None:
                    queue_wait_s = max(0.0, time.monotonic() - enqueued_at)
                    enqueued_at = None
                response = self.handle(message, queue_wait_s=queue_wait_s)
                f.write(encode_message(response))
                f.flush()
                if message.get("op") == "shutdown" and response.get("ok"):
                    self.stop()
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away mid-exchange; nothing to salvage
        finally:
            try:
                f.close()
            except OSError:
                pass

    def _serve_http(self, conn: socket.socket,
                    enqueued_at: Optional[float] = None) -> None:
        """HTTP framing: one ``POST /rpc`` request per connection."""
        rfile = conn.makefile("rb")
        try:
            try:
                first, headers = protocol.read_http_head(rfile)
                method, path, *_ = first.split(" ") + ["", ""]
                if method == "GET" and path == protocol.HTTP_METRICS_PATH:
                    # Prometheus scrape: plain exposition text, no envelope.
                    conn.sendall(protocol.http_response_bytes(
                        obs_metrics.render().encode(),
                        content_type="text/plain; version=0.0.4; charset=utf-8",
                    ))
                    return
                if method != "POST" or path != protocol.HTTP_PATH:
                    raise ProtocolError(
                        f"unsupported HTTP request {method} {path}; "
                        f"use POST {protocol.HTTP_PATH}"
                    )
                body = protocol.read_http_body(rfile, headers)
                message = decode_message(body)
            except socket.timeout:
                # The client promised Content-Length bytes, sent fewer, and
                # kept the connection open: the read idled out. Answer an
                # error envelope (never a silent drop) and free the worker.
                self._stats["invalid"].record(0.0, ok=False)
                err = ProtocolError(
                    "timed out waiting for the full HTTP body "
                    "(short or truncated Content-Length)"
                )
                payload = encode_message(error_response(err))
                conn.sendall(
                    protocol.http_response_bytes(payload, 408, "Request Timeout")
                )
                return
            except ProtocolError as e:
                self._stats["invalid"].record(0.0, ok=False)
                payload = encode_message(error_response(e))
                conn.sendall(protocol.http_response_bytes(payload, 400, "Bad Request"))
                return
            queue_wait_s = 0.0
            if enqueued_at is not None:
                queue_wait_s = max(0.0, time.monotonic() - enqueued_at)
            response = self.handle(message, queue_wait_s=queue_wait_s)
            conn.sendall(protocol.http_response_bytes(encode_message(response)))
            if message.get("op") == "shutdown" and response.get("ok"):
                self.stop()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return
        finally:
            try:
                rfile.close()
            except OSError:
                pass

    # --------------------------------------------------------------- dispatch
    def handle(self, message: Dict, queue_wait_s: float = 0.0) -> Dict:
        """Dispatch one decoded request envelope to its operation handler.

        Transport-independent (tests and the latency benchmark call it
        directly). Every request runs under its own stage-profiling
        collector; compile/tune responses report the stages they paid for,
        which is how the warm path proves it never touched the compiler.

        A ``deadline_s`` budget on the envelope is charged ``queue_wait_s``
        (time already spent in the admission queue) up front: work whose
        budget is gone before it starts is rejected with a
        ``DeadlineExceededError`` envelope, and the remaining budget rides
        into the measurement layer so an in-flight sweep aborts cleanly
        instead of burning a worker thread past the client's patience.
        """
        request_id = message.get("id")
        op = message.get("op")
        t0 = time.perf_counter()
        # `op` is attacker-controlled JSON: an unhashable value (list/dict)
        # would raise from a bare `op in self._stats`, so type-check first.
        stats_key = op if isinstance(op, str) and op in self._stats else "invalid"
        # Trace context on the envelope is optional and tolerant: garbage
        # ids mean "untraced", never an error (old-client compatibility).
        ctx = obs_trace.extract_context(message)
        tracer, to_file = self._request_tracer(ctx)
        root_span = None
        with contextlib.ExitStack() as obs_scope:
            if tracer is not None:
                obs_scope.enter_context(obs_trace.activate(tracer))
                root_span = obs_scope.enter_context(obs_trace.span(
                    f"serve:{op if isinstance(op, str) else 'invalid'}",
                    parent=ctx,
                    attrs={"session": self.session_id},
                ))
                if queue_wait_s > 0.0:
                    # The queue wait elapsed before any tracer existed;
                    # record it retroactively under the root span.
                    now = time.perf_counter()
                    obs_trace.record_span("queue-wait", now - queue_wait_s, now)
            try:
                if not isinstance(op, str) or op not in OPS:
                    raise ProtocolError(f"unknown op {op!r}; choose from {OPS}")
                params = message.get("params") or {}
                deadline = None
                budget = parse_deadline(message)
                if budget is not None:
                    remaining = budget - queue_wait_s
                    if remaining <= 0:
                        raise DeadlineExceededError(
                            f"request spent {queue_wait_s:.3f}s queued, past its "
                            f"{budget}s deadline; rejected before any work started"
                        )
                    deadline = time.monotonic() + remaining
                stages = profiling.StageTimes()
                with profiling.collect(stages):
                    result = self._dispatch(op, params, deadline)
                if op in ("compile", "tune"):
                    result["stages"] = {name: round(t, 6) for name, t in stages.ordered()}
                response = ok_response(result, request_id)
                ok = True
            except Exception as e:  # every failure becomes a structured envelope
                if isinstance(e, DeadlineExceededError):
                    self._stats[stats_key].record_deadline_exceeded()
                    self._count("deadline_exceeded")
                response = error_response(e, request_id)
                ok = False
        duration = time.perf_counter() - t0
        self._request_seconds.observe(duration)
        self._stats[stats_key].record(duration, ok)
        if root_span is not None:
            if ctx is not None and ok:
                # Client-initiated trace: ship the server-side spans back
                # on the result so the client stitches one tree.
                response["result"]["spans"] = [
                    s.as_dict() for s in tracer.spans()[:_MAX_RESPONSE_SPANS]
                ]
                response["result"]["trace_id"] = root_span.trace_id
            if to_file:
                self._write_trace(tracer, root_span)
        return response

    def _request_tracer(self, ctx) -> Tuple[Optional[obs_trace.Tracer], bool]:
        """Decide whether this request is traced: always when the envelope
        carries context (the client asked), or when ``--trace-dir``
        sampling picks it. The sampler is a deterministic accumulator —
        rate 0.25 traces exactly every 4th request — so smoke tests and
        reproductions see stable behavior."""
        to_file = False
        if self.trace_dir is not None and self.trace_sample_rate > 0.0:
            with self._counter_lock:
                self._trace_accum += self.trace_sample_rate
                if self._trace_accum >= 1.0:
                    self._trace_accum -= 1.0
                    to_file = True
        if ctx is None and not to_file:
            return None, False
        return obs_trace.Tracer(capacity=4096), to_file

    def _write_trace(self, tracer: obs_trace.Tracer, root_span) -> None:
        """Dump one sampled request's spans to ``trace_dir``. Tracing must
        never fail a request, so disk errors are swallowed."""
        try:
            d = pathlib.Path(self.trace_dir)
            d.mkdir(parents=True, exist_ok=True)
            name = f"trace-{root_span.trace_id}-{root_span.span_id}.json"
            tracer.write_chrome_trace(d / name)
        except OSError:
            pass

    def _dispatch(self, op: str, params: Dict,
                  deadline: Optional[float] = None) -> Dict:
        if op == "ping":
            return {"protocol": PROTOCOL_VERSION, "session": self.session_id}
        if op == "status":
            return self._op_status()
        if op == "health":
            return self._op_health()
        if op == "metrics":
            return self._op_metrics()
        if op == "shutdown":
            return {"stopping": True, "session": self.session_id}
        if op == "measure":
            return self._op_measure(params, deadline)
        p = parse_problem_params(params)
        artifact, served_from = self._ensure_artifact(p, deadline)
        result: Dict[str, object] = {
            "key": artifact.key,
            "spec": dict(artifact.spec),
            "config": dict(artifact.config),
            "latency_us": artifact.latency_us,
            "provenance": dict(artifact.provenance),
            "served_from": served_from,
        }
        if op == "compile":
            result["ir_text"] = artifact.ir_text
            result["cuda_source"] = artifact.cuda_source
        return result

    # ------------------------------------------------------------------ health
    def _op_health(self) -> Dict:
        """Lightweight overload probe: no compiler, no registry, no locks
        beyond the counters — cheap enough for a load balancer to poll."""
        queue_depth = self._conn_queue.qsize()
        if self._stop_event.is_set():
            state = "draining"
        elif 2 * queue_depth >= self.max_queue:
            state = "overloaded"
        else:
            state = "ready"
        with self._counter_lock:
            shed = self.counters["requests_shed"]
            expired = self.counters["deadline_exceeded"]
        return {
            "state": state,
            "queue_depth": queue_depth,
            "max_queue": self.max_queue,
            "workers": self.workers,
            "shed": shed,
            "deadline_exceeded": expired,
            "protocol": PROTOCOL_VERSION,
            "session": self.session_id,
        }

    def _op_metrics(self) -> Dict:
        """The process-global metrics page, as Prometheus text exposition.
        Same content as ``GET /metrics`` on the HTTP transport, wrapped in
        an envelope for jsonl clients."""
        return {
            "text": obs_metrics.render(),
            "protocol": PROTOCOL_VERSION,
            "session": self.session_id,
        }

    # ----------------------------------------------------------- fleet worker
    def _op_measure(self, params: Dict, deadline: Optional[float] = None) -> Dict:
        """One fleet shard (docs/distributed.md): measure a batch of
        configs for a problem and answer the latencies in request order.

        The daemon's shared measurer serves the shard, so its memory/disk
        caches warm across shards and fleets exactly as across compile
        requests. ``persist`` marks which FAILED entries are genuine
        compile failures (cacheable) vs. crash placeholders (run
        properties a coordinator must not persist)."""
        p = parse_measure_params(params)
        spec = GemmSpec(
            p["name"], batch=p["batch"], m=p["m"], n=p["n"], k=p["k"], dtype=p["dtype"]
        )
        cfgs = p["configs"]
        with obs_trace.span("measure-shard", attrs={"configs": len(cfgs)}):
            latencies = self.measurer.measure_many(spec, cfgs, deadline=deadline)
        self._count("fleet_shards")
        self._count("fleet_trials", len(cfgs))
        persist = [
            self.measurer._key(spec, cfg) not in self.measurer.quarantined
            for cfg in cfgs
        ]
        return {
            "latencies": [encode_latency(x) for x in latencies],
            "persist": persist,
            "via_ir": self.measurer.via_ir,
            "gpu": self.gpu.name,
            "session": self.session_id,
        }

    # ------------------------------------------------------------ the service
    def _ensure_artifact(self, p: Dict,
                         deadline: Optional[float] = None) -> Tuple[KernelArtifact, str]:
        """Registry, then the in-flight dedup map, then a fresh solve."""
        spec = GemmSpec(
            p["name"], batch=p["batch"], m=p["m"], n=p["n"], k=p["k"], dtype=p["dtype"]
        )
        space_cap = p["space"] if p["space"] is not None else self.default_space
        key = artifact_key(self.gpu, spec, p["variant"], self.measurer.via_ir, space_cap)
        artifact = self.registry.get(key)
        if artifact is not None:
            return artifact, "registry"
        with self._inflight_lock:
            fut = self._inflight.get(key)
            owner = fut is None
            if owner:
                # Re-check the registry before becoming owner: the previous
                # owner publishes (registry.put) *before* popping its future,
                # so a thread whose lock-free registry miss raced the publish
                # and whose map lookup raced the pop must find it here —
                # otherwise it would run a duplicate sweep for the same key.
                artifact = self.registry.get(key)
                if artifact is not None:
                    return artifact, "registry"
                fut = Future()
                self._inflight[key] = fut
        if not owner:
            self._count("dedup_hits")
            # Someone else is already solving this exact problem; share
            # their result (or their exception — both callers see it). A
            # deadline bounds the wait: the solve itself keeps running for
            # whoever still has budget, this waiter just stops caring.
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            try:
                with obs_trace.span("dedup-wait"):
                    return fut.result(timeout=timeout), "inflight"
            except FutureTimeoutError:
                raise DeadlineExceededError(
                    "deadline expired while waiting on another request's "
                    "in-flight solve of the same problem"
                ) from None
        try:
            artifact = self._solve(spec, p["variant"], space_cap, key, deadline)
        except BaseException as e:
            fut.set_exception(e)
            raise
        else:
            fut.set_result(artifact)
            return artifact, "fresh"
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def _solve(self, spec: GemmSpec, variant: str, space_cap: int, key: str,
               deadline: Optional[float] = None) -> KernelArtifact:
        """The cold path: search the space, build the winning kernel, and
        publish the artifact. ``deadline`` aborts the sweep mid-flight
        (committed trials stay cached, so a retry resumes warm)."""
        space = restrict_space(
            enumerate_space(spec, self.gpu, SpaceOptions(max_size=space_cap)), variant
        )
        if not space:
            raise CompileError(
                f"design space for {spec.name} is empty under the {variant!r} "
                f"variant restriction (cap {space_cap})"
            )
        with obs_trace.span("sweep", attrs={"space": len(space)}):
            cfg, latency = self.measurer.best(spec, space, deadline=deadline)
        self._count("sweeps_run")
        with obs_trace.span("build-kernel"):
            kernel = self._build_kernel(spec, cfg)
        artifact = KernelArtifact(
            key=key,
            spec=dataclasses.asdict(spec),
            config=cfg.as_dict(),
            latency_us=latency,
            ir_text=format_kernel(kernel),
            cuda_source=emit_cuda(kernel),
            provenance={
                "gpu": self.gpu.name,
                "gpu_fingerprint": gpu_fingerprint(self.gpu),
                "compiler_version": compiler_version_hash(),
                "session": self.session_id,
                "created_s": time.time(),
                "variant": variant,
                "space": space_cap,
                "via_ir": self.measurer.via_ir,
                "space_size": len(space),
            },
        )
        stored = self.registry.put(artifact)
        self._count("artifacts_built")
        return stored

    def _build_kernel(self, spec: GemmSpec, cfg: TileConfig):
        """Schedule/lower/pipeline the winning config (sync-verified), with
        the same stage annotations as the measurement path so per-request
        profiles account for it."""
        a_shape = (spec.batch, spec.m, spec.k) if spec.batch > 1 else (spec.m, spec.k)
        b_shape = (spec.batch, spec.n, spec.k) if spec.batch > 1 else (spec.n, spec.k)
        a = placeholder("A", a_shape, dtype=spec.dtype)
        b = placeholder("B", b_shape, dtype=spec.dtype)
        c = contraction(a, b, spec)
        with profiling.stage("schedule"):
            sched = auto_schedule(c, cfg)
        with profiling.stage("lower"):
            kernel = lower(sched)
        with profiling.stage("transform"):
            kernel = apply_pipelining(kernel, verify_sync=True)
        return kernel

    # ------------------------------------------------------------------ status
    def _op_status(self) -> Dict:
        telemetry = self.measurer.telemetry
        registry_stats = self.registry.stats()
        with self._counter_lock:
            counters = dict(self.counters)
        counters["registry_hits"] = registry_stats["hits"]
        counters["registry_misses"] = registry_stats["misses"]
        with self._inflight_lock:
            inflight = len(self._inflight)
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "session": self.session_id,
            "uptime_s": round(time.time() - self.started_at, 3),
            "gpu": self.gpu.name,
            "via_ir": self.measurer.via_ir,
            "workers": self.workers,
            "queue_depth": self._conn_queue.qsize(),
            "max_queue": self.max_queue,
            "inflight": inflight,
            "counters": counters,
            "registry": registry_stats,
            "measurer": {
                "n_compiled": telemetry.n_compiled,
                "memory_hits": telemetry.memory_hits,
                "disk_hits": telemetry.disk_hits,
                "compile_time_s": round(telemetry.compile_time_s, 6),
                "n_crashes": telemetry.n_crashes,
                "n_timeouts": telemetry.n_timeouts,
                "disk_errors": telemetry.disk_errors,
            },
            "incremental": (
                self.measurer.engine.stats()
                if self.measurer.engine is not None else None
            ),
            "endpoints": {op: s.snapshot() for op, s in self._stats.items()},
        }

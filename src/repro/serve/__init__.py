"""Compile-as-a-service: the ``repro serve`` daemon, its client, and the
content-addressed kernel artifact registry.

The batch CLI pays process startup and cold caches on every invocation;
this package keeps that state resident. See ``docs/serving.md`` for the
protocol, registry layout, telemetry fields and dedup semantics.
"""

from .client import ServeClient
from .protocol import OPS, PROTOCOL_VERSION
from .registry import ArtifactRegistry, KernelArtifact, artifact_key
from .server import (
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_SPACE,
    DEFAULT_WORKERS,
    EndpointStats,
    ReproServer,
)

__all__ = [
    "ArtifactRegistry",
    "KernelArtifact",
    "artifact_key",
    "ReproServer",
    "EndpointStats",
    "ServeClient",
    "OPS",
    "PROTOCOL_VERSION",
    "DEFAULT_SPACE",
    "DEFAULT_WORKERS",
    "DEFAULT_IDLE_TIMEOUT",
]

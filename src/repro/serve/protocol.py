"""Wire protocol of the ``repro serve`` daemon.

Requests and responses are single JSON objects. Two framings carry them:

* **jsonl** (Unix domain socket, ``repro serve --socket PATH``): one
  newline-terminated JSON document per message, many requests per
  connection. The native, lowest-latency transport.
* **HTTP** (TCP, ``repro serve --port N``): ``POST /rpc`` with a JSON
  body; the response body is the same JSON envelope. Lets anything that
  can speak HTTP — curl, a load balancer health check — talk to the
  daemon without a client library.

Request envelope::

    {"op": "compile", "id": "optional-correlation-id", "params": {...}}

Response envelope::

    {"id": ..., "ok": true,  "result": {...}}
    {"id": ..., "ok": false, "error": {"type": ..., "stage": ..., "message": ...}}

Operations (``docs/serving.md`` documents every field):

``ping``      liveness probe; result echoes the server's protocol version.
``compile``   ensure the artifact for a problem exists and return it whole
              (config, latency, IR text, CUDA source, provenance).
``tune``      same artifact-ensuring path, but the result carries only the
              schedule + latency + search metadata (no kernel text).
``status``    telemetry snapshot: per-endpoint request counts and p50/p95
              latencies, dedup/registry counters, queue depth, measurer
              telemetry, uptime.
``measure``   fleet-worker endpoint (docs/distributed.md): measure one
              shard of configs for a problem and return the latencies —
              the daemon as one seat of a distributed tuning fleet.
``health``    lightweight overload probe: ``state`` is ``ready``,
              ``overloaded`` (work queue at least half full) or
              ``draining`` (shutdown in progress), plus queue depth and
              shed counters. Never touches the compiler; safe for load
              balancers to poll at high frequency.
``shutdown``  graceful stop: drain in-flight work, flush the registry,
              acknowledge, exit.

Overload fields
---------------
A request envelope may carry a top-level ``deadline_s`` — the client's
remaining budget in seconds. The server subtracts queue wait before
dispatching, rejects already-expired work with a ``DeadlineExceededError``
envelope, and aborts an in-flight sweep when the budget runs out. A shed
request (bounded work queue full) is answered with an ``OverloadedError``
envelope whose payload carries ``retry_after_s``, the server's backoff
hint; :func:`raise_remote_error` reconstructs both types client-side.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ..core.errors import ProtocolError, ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "encode_message",
    "decode_message",
    "ok_response",
    "error_response",
    "error_payload",
    "parse_deadline",
    "parse_problem_params",
    "parse_measure_params",
    "encode_latency",
    "decode_latency",
    "MAX_SHARD_CONFIGS",
]

# Version 2 adds the ``metrics`` op and optional ``trace_id`` /
# ``parent_span_id`` envelope fields (ignored by version-1 servers, which
# tolerate unknown fields by design).
PROTOCOL_VERSION = 2

OPS = ("ping", "compile", "tune", "status", "metrics", "measure", "health",
       "shutdown")

#: Upper bound on one serialized message; a registry artifact (IR + CUDA
#: text) is tens of KB, so this is generous while still refusing abuse.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


def encode_message(obj: Dict) -> bytes:
    """One newline-terminated JSON document."""
    return json.dumps(obj, sort_keys=True).encode() + b"\n"


def decode_message(raw: bytes) -> Dict:
    """Parse one message; malformed bytes raise :class:`ProtocolError`."""
    if len(raw) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    try:
        obj = json.loads(raw.decode("utf-8", errors="strict"))
    except (ValueError, UnicodeDecodeError) as e:
        raise ProtocolError(f"unparseable message: {e}") from e
    if not isinstance(obj, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(obj).__name__}")
    return obj


def ok_response(result: Dict, request_id: Optional[object] = None) -> Dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(exc: BaseException, request_id: Optional[object] = None) -> Dict:
    return {"id": request_id, "ok": False, "error": error_payload(exc)}


def error_payload(exc: BaseException) -> Dict:
    """The structured error envelope: taxonomy type + stage + message, so
    clients can re-raise without string matching. An exception carrying a
    ``retry_after_s`` hint (:class:`~repro.core.errors.OverloadedError`)
    ships it in the payload so clients can honour the server's backoff."""
    payload = {
        "type": type(exc).__name__,
        "stage": getattr(exc, "stage", "unknown"),
        "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        payload["retry_after_s"] = round(float(retry_after), 3)
    return payload


def parse_deadline(message: Dict) -> Optional[float]:
    """Validate the optional top-level ``deadline_s`` of a request
    envelope. Returns the budget in seconds, or ``None`` when absent."""
    budget = message.get("deadline_s")
    if budget is None:
        return None
    if isinstance(budget, bool) or not isinstance(budget, (int, float)):
        raise ProtocolError("deadline_s must be a number of seconds")
    budget = float(budget)
    if budget <= 0:
        raise ProtocolError("deadline_s must be positive")
    return budget


_REQUIRED_DIMS = ("m", "n", "k")


def parse_problem_params(params: Dict) -> Dict:
    """Validate and normalize the problem fields of a compile/tune request.

    Returns a dict with ``name, batch, m, n, k, dtype, variant, space`` —
    everything :mod:`repro.serve.server` needs to build the spec and the
    artifact key. Raises :class:`ProtocolError` on anything missing or
    non-positive, so a bad request is answered, never crashes a worker.
    """
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")
    out: Dict = {}
    for dim in _REQUIRED_DIMS:
        if dim not in params:
            raise ProtocolError(f"missing required problem dimension {dim!r}")
        try:
            out[dim] = int(params[dim])
        except (TypeError, ValueError):
            raise ProtocolError(f"problem dimension {dim!r} must be an integer") from None
        if out[dim] <= 0:
            raise ProtocolError(f"problem dimension {dim!r} must be positive")
    try:
        out["batch"] = int(params.get("batch", 1))
    except (TypeError, ValueError):
        raise ProtocolError("batch must be an integer") from None
    if out["batch"] <= 0:
        raise ProtocolError("batch must be positive")
    out["name"] = str(params.get("name", "serve"))
    out["dtype"] = str(params.get("dtype", "float16"))
    space = params.get("space", None)
    if space is not None:
        try:
            space = int(space)
        except (TypeError, ValueError):
            raise ProtocolError("space must be an integer cap") from None
        if space <= 0:
            raise ProtocolError("space must be positive")
    out["space"] = space
    out["variant"] = str(params.get("variant", "alcop"))
    return out


#: Upper bound on configs per measure request; a fleet shard is tens of
#: trials, so this is generous while refusing a request that would pin a
#: worker thread for minutes.
MAX_SHARD_CONFIGS = 4096


def encode_latency(latency: float) -> object:
    """JSON-safe latency: ``inf`` (the FAILED sentinel) becomes the string
    ``"inf"`` so strict JSON parsers on either end never choke."""
    import math

    return "inf" if math.isinf(latency) else float(latency)


def decode_latency(value: object) -> float:
    import math

    return math.inf if value == "inf" else float(value)


def parse_measure_params(params: Dict) -> Dict:
    """Validate the fleet-worker ``measure`` request: the problem fields of
    :func:`parse_problem_params` plus ``configs``, a non-empty list of
    TileConfig field dicts. Returns the normalized problem dict with a
    ``configs`` list of validated :class:`~repro.schedule.config.TileConfig`.
    """
    from ..schedule.config import TileConfig

    out = parse_problem_params(params)
    raw = params.get("configs")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("measure needs a non-empty 'configs' list")
    if len(raw) > MAX_SHARD_CONFIGS:
        raise ProtocolError(
            f"refusing a {len(raw)}-config shard (cap {MAX_SHARD_CONFIGS})"
        )
    configs = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ProtocolError(f"configs[{i}] must be a JSON object of TileConfig fields")
        try:
            configs.append(TileConfig(**entry))
        except (TypeError, ValueError) as e:
            raise ProtocolError(f"configs[{i}] is not a valid TileConfig: {e}") from None
    out["configs"] = configs
    return out


# --------------------------------------------------------------- HTTP framing
#
# Deliberately minimal HTTP/1.1: exactly what the daemon's TCP mode needs
# (Content-Length framed POST bodies, close-delimited responses), with no
# dependency beyond the socket. Both ends send ``Connection: close``.

HTTP_PATH = "/rpc"

#: Prometheus scrape endpoint on the HTTP transport (GET, no envelope).
HTTP_METRICS_PATH = "/metrics"


def http_request_bytes(body: bytes, host: str) -> bytes:
    head = (
        f"POST {HTTP_PATH} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


def http_response_bytes(
    body: bytes,
    status: int = 200,
    reason: str = "OK",
    content_type: str = "application/json",
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode() + body


def read_http_head(rfile) -> Tuple[str, Dict[str, str]]:
    """Read the request/status line and headers from a file-like socket
    reader. Returns ``(first_line, lower-cased headers)``."""
    first = rfile.readline(65536).decode("latin-1").rstrip("\r\n")
    if not first:
        raise ProtocolError("empty HTTP message")
    headers: Dict[str, str] = {}
    while True:
        line = rfile.readline(65536).decode("latin-1")
        if line in ("\r\n", "\n", ""):
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return first, headers


def read_http_body(rfile, headers: Dict[str, str]) -> bytes:
    length = headers.get("content-length")
    if length is None:
        raise ProtocolError("HTTP message lacks Content-Length")
    try:
        n = int(length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length {length!r}") from None
    if n < 0 or n > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"refusing HTTP body of {n} bytes")
    body = rfile.read(n)
    if len(body) != n:
        raise ProtocolError("truncated HTTP body")
    return body


def raise_remote_error(payload: Dict) -> None:
    """Re-raise a server error envelope client-side as the closest
    taxonomy class: :class:`ProtocolError` for protocol faults,
    :class:`~repro.core.errors.OverloadedError` for shed requests (with
    ``retry_after_s`` reconstructed from the payload),
    :class:`~repro.core.errors.DeadlineExceededError` for expired budgets,
    a generic :class:`~repro.core.errors.ServeError` otherwise."""
    from ..core.errors import DeadlineExceededError, OverloadedError, ServeError

    err = payload or {}
    name = err.get("type", "ServeError")
    message = err.get("message", "server reported an error")
    if name == "OverloadedError":
        retry_after = err.get("retry_after_s")
        raise OverloadedError(
            f"{name}: {message}",
            retry_after_s=float(retry_after) if retry_after is not None else None,
            diagnostic=err,
        )
    if name == "ProtocolError":
        cls = ProtocolError
    elif name == "DeadlineExceededError":
        cls = DeadlineExceededError
    else:
        cls = ServeError
    exc: ReproError = cls(f"{name}: {message}", diagnostic=err)
    raise exc

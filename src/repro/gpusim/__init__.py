"""Deterministic A100-like GPU timing simulator (the evaluation substrate).

See DESIGN.md: this package substitutes for the paper's physical A100 —
it executes the *compiled kernel IR* (via :func:`extract_timing_spec`) under
a discrete-event model of the memory/computation pipeline."""

from .config import A100, A100_NO_ASYNC, H100, V100, GpuSpec
from .engine import SimResult, simulate_kernel, simulate_wave
from .events import FifoServer, Simulator
from .occupancy import CompileError, check_launchable, tb_per_sm
from .spec import KernelTimingSpec, extract_timing_spec
from .trace import format_timeline, stall_time

__all__ = [
    "A100",
    "A100_NO_ASYNC",
    "H100",
    "V100",
    "GpuSpec",
    "SimResult",
    "simulate_kernel",
    "simulate_wave",
    "FifoServer",
    "Simulator",
    "CompileError",
    "check_launchable",
    "tb_per_sm",
    "KernelTimingSpec",
    "extract_timing_spec",
    "format_timeline",
    "stall_time",
]

"""Threadblock occupancy: how many threadblocks co-reside on one SM.

This is the simulated GPU scheduling policy the paper's Sec. IV-A refers
to: occupancy is the minimum over the shared-memory, register-file, thread
and hard threadblock limits. Occupancy matters twice — it multiplies the
available latency-hiding parallelism (``N_mplx`` in the pipeline latency
model) and it divides the per-threadblock bandwidth share.
"""

from __future__ import annotations

from ..core.errors import CompileError
from .config import GpuSpec

#: Back-compat re-export: the canonical class now lives in the unified
#: error taxonomy (:mod:`repro.core.errors`); existing imports of
#: ``repro.gpusim.occupancy.CompileError`` keep working unchanged.
__all__ = ["CompileError", "tb_per_sm", "check_launchable"]


def check_launchable(gpu: GpuSpec, smem_bytes: int, regs_per_thread: int, threads: int) -> None:
    """Raise :class:`CompileError` if a threadblock cannot be launched."""
    if smem_bytes > gpu.max_smem_per_tb:
        raise CompileError(
            f"shared memory {smem_bytes} B exceeds the {gpu.max_smem_per_tb} B "
            "per-threadblock limit"
        )
    if regs_per_thread > gpu.max_regs_per_thread:
        raise CompileError(
            f"{regs_per_thread} registers per thread exceed the "
            f"{gpu.max_regs_per_thread} architectural limit (register overflow)"
        )
    if threads > gpu.max_threads_per_sm:
        raise CompileError(f"{threads} threads exceed the per-SM thread limit")
    if regs_per_thread * threads > gpu.regs_per_sm:
        raise CompileError(
            f"one threadblock needs {regs_per_thread * threads} registers, "
            f"more than the {gpu.regs_per_sm}-register file"
        )


def tb_per_sm(gpu: GpuSpec, smem_bytes: int, regs_per_thread: int, threads: int) -> int:
    """Number of co-resident threadblocks per SM (>= 1, else CompileError)."""
    check_launchable(gpu, smem_bytes, regs_per_thread, threads)
    limits = [gpu.max_tb_per_sm, gpu.max_threads_per_sm // threads]
    if smem_bytes > 0:
        limits.append(gpu.smem_per_sm // smem_bytes)
    if regs_per_thread > 0:
        limits.append(gpu.regs_per_sm // (regs_per_thread * threads))
    occ = min(limits)
    if occ < 1:
        raise CompileError("threadblock resources exceed one SM; kernel cannot launch")
    return occ

"""A minimal deterministic discrete-event scheduler.

Processes are Python generators that yield scheduling commands:

* ``("delay", dt)`` — resume the process ``dt`` later;
* ``("wait_until", t)`` — resume at absolute time ``t`` (immediately if in
  the past).

Shared hardware resources are :class:`FifoServer` objects: a request made at
the current simulation time is serviced after all earlier requests
(store-and-forward pipe with a fixed added latency that does not occupy the
server). Because the scheduler always resumes the globally earliest
process, server requests arrive in nondecreasing time order, which keeps
the FIFO discipline sound without modelling the servers as processes.
"""

from __future__ import annotations

import heapq
from typing import Generator, List, Tuple

__all__ = ["FifoServer", "Simulator"]


class FifoServer:
    """A pipelined bandwidth resource serving requests in arrival order."""

    __slots__ = ("name", "free_at", "busy_time")

    def __init__(self, name: str) -> None:
        self.name = name
        self.free_at = 0.0
        self.busy_time = 0.0

    def request(self, now: float, service: float, latency: float = 0.0) -> float:
        """Post a request at time ``now``; returns its completion time."""
        if service < 0 or latency < 0:
            raise ValueError("service and latency must be non-negative")
        start = max(now, self.free_at)
        self.free_at = start + service
        self.busy_time += service
        return self.free_at + latency

    @property
    def utilization_until(self) -> float:
        """Busy time accumulated so far (utilization = busy / horizon)."""
        return self.busy_time


class Simulator:
    """Run a set of generator processes to completion."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Generator]] = []
        self._seq = 0

    def add_process(self, proc: Generator, start_time: float = 0.0) -> None:
        heapq.heappush(self._heap, (start_time, self._seq, proc))
        self._seq += 1

    def run(self, max_events: int = 10_000_000) -> float:
        """Advance all processes to completion; returns the final time."""
        events = 0
        while self._heap:
            events += 1
            if events > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
            t, _, proc = heapq.heappop(self._heap)
            if t < self.now - 1e-12:
                raise RuntimeError("event scheduled in the past; scheduler bug")
            self.now = max(self.now, t)
            try:
                cmd = next(proc)
            except StopIteration:
                continue
            kind = cmd[0]
            if kind == "delay":
                when = self.now + float(cmd[1])
            elif kind == "wait_until":
                when = max(self.now, float(cmd[1]))
            else:
                raise ValueError(f"unknown scheduler command {cmd!r}")
            heapq.heappush(self._heap, (when, self._seq, proc))
            self._seq += 1
        return self.now

"""Timeline trace utilities: render per-threadblock pipeline activity.

Used by the ablation benches and examples to visualize how multi-stage /
multi-level pipelining removes stalls — the quantitative counterpart of
the paper's Figs. 2 and 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["stall_time", "format_timeline"]

TraceEvent = Tuple[int, str, float, float]


def stall_time(trace: List[TraceEvent]) -> Dict[int, float]:
    """Total time each threadblock spent blocked in ``smem_wait`` events."""
    out: Dict[int, float] = {}
    for tb, name, start, end in trace:
        if name.startswith("smem_wait"):
            out[tb] = out.get(tb, 0.0) + (end - start)
    return out


def format_timeline(trace: List[TraceEvent], width: int = 72) -> str:
    """Render an ASCII Gantt chart: one row per (threadblock, activity kind).

    ``#`` marks compute (``use``), ``.`` marks waiting on data
    (``smem_wait``), ``=`` marks the epilogue write.
    """
    if not trace:
        return "(empty trace)"
    t_end = max(e[3] for e in trace)
    if t_end <= 0:
        return "(zero-length trace)"
    scale = width / t_end
    rows: Dict[Tuple[int, str], List[str]] = {}
    glyph = {"use": "#", "smem_wait": ".", "epilogue": "="}
    for tb, name, start, end in trace:
        kind = name.split("[")[0]
        key = (tb, kind)
        row = rows.setdefault(key, [" "] * width)
        a = min(width - 1, int(start * scale))
        b = min(width, max(a + 1, int(end * scale)))
        for i in range(a, b):
            row[i] = glyph.get(kind, "?")
    lines = [f"timeline ({t_end:.1f} us total; '#'=compute '.'=stall '='=epilogue)"]
    for (tb, kind) in sorted(rows):
        lines.append(f"  tb{tb} {kind:9s} |{''.join(rows[(tb, kind)])}|")
    return "\n".join(lines)

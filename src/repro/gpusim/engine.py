"""The kernel timing engine: a per-SM discrete-event pipeline simulation.

One *wave* of co-resident threadblocks on a single representative SM is
simulated event-by-event (all SMs execute the same program on symmetric
tiles, so one SM with its fair bandwidth share represents the machine). A
threadblock is one sequential process — exactly like the instruction stream
of the transformed kernel:

* prologue: issue the first ``smem_stages - 1`` asynchronous chunk copies;
* each outer iteration: issue the copy for iteration ``ko + stages - 1``,
  wait for chunk ``ko`` to arrive, run the inner (register-level) pipeline
  on the SM's tensor-core server, release the stage;
* epilogue: write the output tile through DRAM.

Asynchronous copies are posted to FIFO bandwidth servers (L2 and DRAM with
a working-set-derived DRAM fraction) and complete in the background; the
pipeline depth manifests as slack between a copy's issue and its wait —
precisely the mechanism ALCOP exploits. Contention between co-resident
threadblocks (``N_mplx``), wave quantization, bank conflicts and exposed
shared-memory latency are modelled here but deliberately *not* in the
analytical model, which keeps the model's best-in-top-k below 100% as in
the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .config import A100, GpuSpec
from .events import FifoServer, Simulator
from .occupancy import CompileError, tb_per_sm
from .spec import KernelTimingSpec

__all__ = ["SimResult", "simulate_kernel", "simulate_wave"]

#: Fixed kernel launch overhead (us).
_LAUNCH_OVERHEAD = 3.0
#: Bank-conflict slowdown of shared-memory traffic without swizzling.
_BANK_CONFLICT_FACTOR = 1.8
#: Stagger between threadblock starts on one SM (us) — breaks ties
#: deterministically, like staggered warp scheduling on hardware.
_TB_STAGGER = 0.01
#: Fraction of the register-staged store (LDG+STS) cost that is exposed on
#: the SM's issue/shared-memory ports when copies are not cp.async; the
#: remainder overlaps with math under warp scheduling.
_STORE_THROUGH_FACTOR = 0.5


@dataclasses.dataclass
class SimResult:
    """Outcome of simulating one kernel launch."""

    latency_us: float
    tb_per_sm: int
    waves: int
    wave_latency_us: float
    tail_latency_us: float
    dram_fraction: float
    total_flops: int
    trace: Optional[List[Tuple[int, str, float, float]]] = None

    @property
    def tflops(self) -> float:
        """Achieved throughput in TFLOP/s."""
        return self.total_flops / self.latency_us / 1e6


def _dram_fraction(ts: KernelTimingSpec, gpu: GpuSpec, wave_tbs: int) -> float:
    """Fraction of the wave's load traffic that misses L2 and hits DRAM.

    Derived from the working set of one threadblock-batch, as in the
    paper's memory latency model: tiles sharing a row re-use the A chunk,
    tiles sharing a column re-use the B chunk.
    """
    if ts.a_chunk_bytes + ts.b_chunk_bytes == 0:
        return 1.0
    tiles_per_batch = ts.m_tiles * ts.n_tiles
    covered = min(wave_tbs, ts.grid)
    batches_covered = max(1, -(-covered // tiles_per_batch))
    # Raster order: n (column) index varies fastest.
    unique_a_tiles = min(covered, -(-covered // ts.n_tiles) if ts.n_tiles else covered)
    unique_b_tiles = min(covered, ts.n_tiles * batches_covered)
    requested = covered * (ts.a_chunk_bytes + ts.b_chunk_bytes)
    unique = (
        unique_a_tiles * ts.a_chunk_bytes * ts.a_footprint_ratio
        + unique_b_tiles * ts.b_chunk_bytes * ts.b_footprint_ratio
    )
    # If the live working set overflows L2, re-reads also go to DRAM.
    resident = unique * (ts.smem_stages + 1)
    if resident > gpu.l2_size:
        return 1.0
    return min(1.0, unique / requested)


def simulate_wave(
    ts: KernelTimingSpec,
    gpu: GpuSpec,
    n_tb_on_sm: int,
    active_sms: int,
    collect_trace: bool = False,
    outer_extent: Optional[int] = None,
) -> Tuple[float, float, Optional[list]]:
    """Simulate one wave on a representative SM.

    Returns ``(wave_latency, dram_fraction, trace)``.
    """
    E_o = outer_extent if outer_extent is not None else ts.outer_extent
    E_i = ts.inner_extent
    S = ts.smem_stages
    wave_tbs = n_tb_on_sm * active_sms
    dram_frac = _dram_fraction(ts, gpu, wave_tbs)

    l2_rate = gpu.l2_bw / active_sms  # bytes/us available to this SM's TBs
    dram_rate = gpu.dram_bw / active_sms
    mem_latency = gpu.l2_latency + dram_frac * (gpu.dram_latency - gpu.l2_latency)

    bank = 1.0 if ts.swizzle else _BANK_CONFLICT_FACTOR
    t_load = ts.frag_bytes_tb * bank / gpu.smem_bw_per_sm
    # One hmma.16816-class instruction covers 2*16^3 FLOPs; its issue slots
    # are not free, which caps achievable utilization below nominal peak.
    mma_ops = ts.flops_chunk_tb / (2 * 16 * 16 * 16)
    t_math = ts.flops_chunk_tb / gpu.tc_flops_per_sm + mma_ops * gpu.mma_issue_cost
    # Without cp.async, global->shared copies stage through registers
    # (LDG + STS): the store half occupies the SM's shared-memory ports and
    # issue slots, contending with compute. cp.async bypasses this path —
    # a real Ampere advantage of asynchronous copies.
    if ts.async_smem_copy:
        t_store_through = 0.0
    else:
        t_store_through = _STORE_THROUGH_FACTOR * ts.smem_chunk_bytes * bank / gpu.smem_bw_per_sm
    if ts.reg_stages >= 2:
        # Register double-buffering overlaps the fragment load (and its
        # latency) with the previous chunk's math.
        inner_service = max(t_load, t_math) + gpu.issue_overhead
    else:
        inner_service = t_load + gpu.smem_latency + t_math + 2 * gpu.issue_overhead

    sim = Simulator()
    l2_server = FifoServer("l2")
    dram_server = FifoServer("dram")
    math_server = FifoServer("tensorcore")
    trace: Optional[list] = [] if collect_trace else None
    finish: Dict[int, float] = {}

    def issue_chunk(now: float) -> float:
        """Post one outer chunk's copies; returns their completion time."""
        done = 0.0
        for nbytes in (ts.a_chunk_bytes, ts.b_chunk_bytes):
            if nbytes <= 0:
                continue
            t_l2 = l2_server.request(now, nbytes / l2_rate)
            t_dram = dram_server.request(now, nbytes * dram_frac / dram_rate)
            done = max(done, t_l2, t_dram)
        return done + mem_latency

    def tb_process(tb_idx: int):
        smem_done: Dict[int, float] = {}
        # Prologue: the first S-1 chunks are issued ahead of the loop.
        for p in range(S - 1):
            smem_done[p] = issue_chunk(sim.now)
            yield ("delay", 2 * gpu.issue_overhead)
        if ts.reg_stages >= 2 and S >= 2:
            # Hoisted inner-pipeline prologue (holistic pipeline): one
            # fragment load after the first chunk lands.
            yield ("wait_until", smem_done[0])
            yield ("delay", t_load + gpu.smem_latency)
        for ko in range(E_o):
            issue_at = sim.now
            smem_done[ko + S - 1] = issue_chunk(sim.now)
            yield ("delay", 2 * gpu.issue_overhead)
            wait_start = sim.now
            yield ("wait_until", smem_done[ko])
            if trace is not None:
                trace.append((tb_idx, f"smem_wait[{ko}]", wait_start, sim.now))
            if t_store_through > 0.0:
                # Register-staged stores into shared memory occupy the SM.
                done = math_server.request(sim.now, t_store_through)
                yield ("wait_until", done)
            if ts.reg_stages >= 2 and S == 1:
                # Recursive (non-fused) inner pipeline refills each chunk.
                yield ("delay", t_load + gpu.smem_latency)
            use_start = sim.now
            for ki in range(E_i):
                done = math_server.request(sim.now, inner_service)
                yield ("wait_until", done)
            if trace is not None:
                trace.append((tb_idx, f"use[{ko}]", use_start, sim.now))
            yield ("delay", gpu.sync_overhead)
        # Epilogue write-back.
        ep_start = sim.now
        t_dram = dram_server.request(sim.now, ts.epilogue_bytes / dram_rate)
        yield ("wait_until", t_dram + gpu.dram_write_latency)
        if trace is not None:
            trace.append((tb_idx, "epilogue", ep_start, sim.now))
        finish[tb_idx] = sim.now

    for i in range(n_tb_on_sm):
        sim.add_process(tb_process(i), start_time=i * _TB_STAGGER)
    sim.run()
    return max(finish.values()), dram_frac, trace


def _wave_latency_extrapolated(
    ts: KernelTimingSpec,
    gpu: GpuSpec,
    n_tb: int,
    active: int,
    collect_trace: bool,
    max_outer_iters: Optional[int],
) -> Tuple[float, float, Optional[list]]:
    """Simulate the wave, extrapolating long reduction loops from the
    steady-state rate measured over two truncated runs."""
    if max_outer_iters is None or ts.outer_extent <= max_outer_iters:
        return simulate_wave(ts, gpu, n_tb, active, collect_trace)
    e_long = max_outer_iters
    e_short = max(ts.smem_stages + 1, max_outer_iters // 2)
    t_long, frac, trace = simulate_wave(ts, gpu, n_tb, active, collect_trace, outer_extent=e_long)
    t_short, _, _ = simulate_wave(ts, gpu, n_tb, active, False, outer_extent=e_short)
    rate = (t_long - t_short) / (e_long - e_short)
    return t_long + rate * (ts.outer_extent - e_long), frac, trace


def simulate_kernel(
    ts: KernelTimingSpec,
    gpu: GpuSpec = A100,
    collect_trace: bool = False,
    max_outer_iters: Optional[int] = 64,
) -> SimResult:
    """Simulate a full kernel launch; raises :class:`CompileError` when the
    kernel cannot be built or launched on ``gpu``.

    Carries the ``simulate`` fault-injection site (:mod:`repro.faults`):
    chaos plans can crash the simulator (:class:`SimulationError`) or
    corrupt the reported latency here.
    """
    from .. import faults

    faults.inject("simulate")
    ts.validate()
    if ts.async_smem_copy and not gpu.has_async_copy:
        raise CompileError(
            f"{gpu.name} lacks asynchronous copy hardware (cp.async); the "
            "pipelined kernel cannot be compiled for it"
        )
    occ = tb_per_sm(gpu, ts.smem_bytes_per_tb, ts.regs_per_thread, ts.threads_per_tb)

    tbs_per_wave = occ * gpu.num_sms
    full_waves = ts.grid // tbs_per_wave
    remainder = ts.grid - full_waves * tbs_per_wave

    wave_lat = 0.0
    dram_frac = 1.0
    trace = None
    if full_waves:
        wave_lat, dram_frac, trace = _wave_latency_extrapolated(
            ts, gpu, occ, gpu.num_sms, collect_trace, max_outer_iters
        )

    tail_lat = 0.0
    if remainder:
        tail_occ = min(occ, -(-remainder // gpu.num_sms))
        tail_active = min(gpu.num_sms, -(-remainder // tail_occ))
        tail_lat, tail_frac, tail_trace = _wave_latency_extrapolated(
            ts, gpu, tail_occ, tail_active, collect_trace and trace is None, max_outer_iters
        )
        if trace is None:
            trace = tail_trace
        if not full_waves:
            dram_frac = tail_frac

    latency = faults.corrupt("simulate", _LAUNCH_OVERHEAD + full_waves * wave_lat + tail_lat)
    return SimResult(
        latency_us=latency,
        tb_per_sm=occ,
        waves=full_waves + (1 if remainder else 0),
        wave_latency_us=wave_lat,
        tail_latency_us=tail_lat,
        dram_fraction=dram_frac,
        total_flops=ts.total_flops,
        trace=trace,
    )

"""Extraction of a timing specification from compiled kernel IR.

The simulator does not re-read the schedule knobs — it measures the
*compiled artifact*. :func:`extract_timing_spec` walks the (possibly
pipelined) kernel IR and recovers launch geometry, per-iteration data
movement and compute volumes, loop extents, and pipeline stage counts.
A mis-transformed kernel therefore yields mis-timed simulation, keeping the
simulator honest as the ground truth for tuning experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..ir.analysis import loop_extent_int
from ..ir.buffer import Scope
from ..ir.stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    SeqStmt,
)
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["KernelTimingSpec", "extract_timing_spec"]


@dataclasses.dataclass
class KernelTimingSpec:
    """Everything the timing engine needs to simulate one kernel."""

    name: str
    grid: int
    threads_per_tb: int
    warps_per_tb: int
    smem_bytes_per_tb: int
    regs_per_thread: int
    #: outer (shared-memory level) load-and-use loop
    outer_extent: int
    smem_chunk_bytes: int  # bytes copied into shared memory per outer iteration
    smem_stages: int
    #: inner (register level) load-and-use loop
    inner_extent: int
    frag_bytes_tb: int  # bytes loaded into registers per inner iteration (whole TB)
    flops_chunk_tb: int  # FLOPs per inner iteration (whole TB)
    reg_stages: int
    #: epilogue write-back volume per threadblock
    epilogue_bytes: int
    swizzle: bool = True
    #: problem geometry for the L2 working-set model
    batch: int = 1
    m_tiles: int = 1
    n_tiles: int = 1
    a_chunk_bytes: int = 0
    b_chunk_bytes: int = 0
    a_footprint_ratio: float = 1.0
    b_footprint_ratio: float = 1.0
    #: whether the smem copies are hardware asynchronous
    async_smem_copy: bool = True

    @property
    def total_flops(self) -> int:
        return self.flops_chunk_tb * self.inner_extent * self.outer_extent * self.grid

    def validate(self) -> None:
        if self.grid < 1 or self.outer_extent < 1 or self.inner_extent < 1:
            raise ValueError("timing spec extents must be positive")
        if self.smem_stages < 1 or self.reg_stages < 1:
            raise ValueError("stage counts must be >= 1")
        if self.flops_chunk_tb <= 0:
            raise ValueError("kernel performs no compute; nothing to simulate")


class _IRScan:
    """One specialized pre-order traversal replacing the generic
    ``walk_with_path`` loop: serial-loop depth, innermost serial loop and
    the thread-loop extent product are carried down the recursion instead
    of being recomputed from ancestor paths at every node. Visit order —
    hence every accumulation order and error behavior — matches the
    generic walk exactly; this is the measurement path's hottest read-only
    pass, run once per sweep trial."""

    __slots__ = (
        "grid", "smem_bytes", "epilogue_bytes", "flops_chunk",
        "smem_copies", "reg_copies",
    )

    def __init__(self) -> None:
        self.grid = 1
        self.smem_bytes = 0
        self.epilogue_bytes = 0
        self.flops_chunk = 0
        # (depth, loop, bytes, swizzle, is_async) per shared copy;
        # (depth, loop, bytes) per register copy. Prologue copies sit at a
        # shallower serial depth than the main-loop copies (or outside any
        # serial loop entirely) and are dropped in favour of the deepest
        # level.
        self.smem_copies = []
        self.reg_copies = []

    def scan(self, node, serial_depth: int, serial_loop, thread_mult: int) -> None:
        if isinstance(node, SeqStmt):
            for s in node.stmts:
                self.scan(s, serial_depth, serial_loop, thread_mult)
        elif isinstance(node, For):
            kind = node.kind
            if kind is ForKind.SERIAL:
                self.scan(node.body, serial_depth + 1, node, thread_mult)
                return
            if kind is ForKind.BLOCK:
                self.grid *= loop_extent_int(node)
            elif kind is ForKind.THREAD:
                thread_mult *= loop_extent_int(node)
            self.scan(node.body, serial_depth, serial_loop, thread_mult)
        elif isinstance(node, MemCopy):
            scope = node.dst.buffer.scope
            if scope is Scope.SHARED:
                if serial_depth:  # depth 0 = hoisted prologue: pipeline fill
                    self.smem_copies.append(
                        (
                            serial_depth,
                            serial_loop,
                            node.bytes,
                            bool(node.annotations.get("swizzle", True)),
                            node.is_async,
                        )
                    )
            elif scope is Scope.REGISTER:
                if serial_depth:
                    self.reg_copies.append(
                        (serial_depth, serial_loop, node.bytes * thread_mult)
                    )
            elif scope is Scope.GLOBAL:
                # DRAM sees the *output* bytes (the accumulator is wider).
                self.epilogue_bytes += node.dst.size_bytes * thread_mult
        elif isinstance(node, ComputeStmt):
            if node.flops > 0:
                if not serial_depth:
                    raise ValueError("compute statement outside any serial loop")
                self.flops_chunk += node.flops * thread_mult
        elif isinstance(node, Allocate):
            if node.buffer.scope is Scope.SHARED:
                self.smem_bytes += node.buffer.size_bytes
            self.scan(node.body, serial_depth, serial_loop, thread_mult)
        elif isinstance(node, IfThenElse):
            self.scan(node.then_body, serial_depth, serial_loop, thread_mult)
            if node.else_body is not None:
                self.scan(node.else_body, serial_depth, serial_loop, thread_mult)
        # PipelineSync and anything else without children: nothing to read.


def extract_timing_spec(kernel: Kernel) -> KernelTimingSpec:
    """Recover a :class:`KernelTimingSpec` from a lowered kernel."""
    spec: Optional[GemmSpec] = kernel.attrs.get("spec")
    config: Optional[TileConfig] = kernel.attrs.get("config")

    warps = 1
    outer_loop: Optional[For] = None
    inner_loop: Optional[For] = None
    smem_chunk = 0
    a_chunk = 0
    b_chunk = 0
    frag_bytes = 0
    swizzle = True
    async_smem = False

    scan = _IRScan()
    scan.scan(kernel.body, 0, None, 1)
    grid = scan.grid
    smem_bytes = scan.smem_bytes
    epilogue_bytes = scan.epilogue_bytes
    flops_chunk = scan.flops_chunk
    smem_copies = scan.smem_copies
    reg_copies = scan.reg_copies

    if not smem_copies:
        raise ValueError("kernel has no shared-memory load-and-use loop")
    if not reg_copies:
        raise ValueError("kernel has no register-level load-and-use loop")
    if flops_chunk == 0:
        raise ValueError("kernel performs no tensor-core compute")

    smem_depth = max(c[0] for c in smem_copies)
    for depth, loop, nbytes, sw, is_async in smem_copies:
        if depth != smem_depth:
            continue
        if outer_loop is None:
            outer_loop = loop
        elif outer_loop is not loop:
            raise ValueError("shared-memory copies span multiple serial loops")
        smem_chunk += nbytes
        swizzle = sw
        async_smem = async_smem or is_async
        # Heuristic operand split for the working-set model: the first copy
        # loads operand A, the second operand B.
        if a_chunk == 0:
            a_chunk = nbytes
        else:
            b_chunk += nbytes

    reg_depth = max(c[0] for c in reg_copies)
    for depth, loop, nbytes in reg_copies:
        if depth != reg_depth:
            continue
        if inner_loop is None:
            inner_loop = loop
        elif inner_loop is not loop:
            raise ValueError("register copies span multiple serial loops")
        frag_bytes += nbytes

    # Stage counts from the published pipeline groups (1 = not pipelined).
    smem_stages = 1
    reg_stages = 1
    for info in kernel.attrs.get("pipeline_groups", []) or []:
        if info.scope is Scope.SHARED:
            smem_stages = info.stages
        elif info.scope is Scope.REGISTER:
            reg_stages = info.stages

    if config is not None:
        threads = config.threads_per_block
        warps = config.warps_per_block
        # Register budget follows the *realized* stage counts in the IR.
        if config.smem_stages == smem_stages and config.reg_stages == reg_stages:
            effective = config
        else:
            effective = config.with_stages(smem_stages, reg_stages)
        regs = effective.resource_usage(spec.dtype if spec else "float16").regs_per_thread
        m_tiles = (spec.m // config.block_m) if spec else 1
        n_tiles = (spec.n // config.block_n) if spec else 1
    else:
        threads = 128
        warps = 4
        regs = 64
        m_tiles = n_tiles = 1

    ts = KernelTimingSpec(
        name=kernel.name,
        grid=grid,
        threads_per_tb=threads,
        warps_per_tb=warps,
        smem_bytes_per_tb=smem_bytes,
        regs_per_thread=regs,
        outer_extent=loop_extent_int(outer_loop),
        smem_chunk_bytes=smem_chunk,
        smem_stages=smem_stages,
        inner_extent=loop_extent_int(inner_loop),
        frag_bytes_tb=frag_bytes,
        flops_chunk_tb=flops_chunk,
        reg_stages=reg_stages,
        epilogue_bytes=epilogue_bytes,
        swizzle=swizzle,
        batch=spec.batch if spec else 1,
        m_tiles=m_tiles,
        n_tiles=n_tiles,
        a_chunk_bytes=a_chunk,
        b_chunk_bytes=b_chunk,
        a_footprint_ratio=spec.a_footprint_ratio if spec else 1.0,
        b_footprint_ratio=spec.b_footprint_ratio if spec else 1.0,
        async_smem_copy=async_smem,
    )
    ts.validate()
    return ts

"""Extraction of a timing specification from compiled kernel IR.

The simulator does not re-read the schedule knobs — it measures the
*compiled artifact*. :func:`extract_timing_spec` walks the (possibly
pipelined) kernel IR and recovers launch geometry, per-iteration data
movement and compute volumes, loop extents, and pipeline stage counts.
A mis-transformed kernel therefore yields mis-timed simulation, keeping the
simulator honest as the ground truth for tuning experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..ir.analysis import enclosing_loops, loop_extent_int, walk_with_path
from ..ir.buffer import Scope
from ..ir.stmt import Allocate, ComputeStmt, For, ForKind, Kernel, MemCopy
from ..schedule.config import TileConfig
from ..tensor.operation import GemmSpec

__all__ = ["KernelTimingSpec", "extract_timing_spec"]


@dataclasses.dataclass
class KernelTimingSpec:
    """Everything the timing engine needs to simulate one kernel."""

    name: str
    grid: int
    threads_per_tb: int
    warps_per_tb: int
    smem_bytes_per_tb: int
    regs_per_thread: int
    #: outer (shared-memory level) load-and-use loop
    outer_extent: int
    smem_chunk_bytes: int  # bytes copied into shared memory per outer iteration
    smem_stages: int
    #: inner (register level) load-and-use loop
    inner_extent: int
    frag_bytes_tb: int  # bytes loaded into registers per inner iteration (whole TB)
    flops_chunk_tb: int  # FLOPs per inner iteration (whole TB)
    reg_stages: int
    #: epilogue write-back volume per threadblock
    epilogue_bytes: int
    swizzle: bool = True
    #: problem geometry for the L2 working-set model
    batch: int = 1
    m_tiles: int = 1
    n_tiles: int = 1
    a_chunk_bytes: int = 0
    b_chunk_bytes: int = 0
    a_footprint_ratio: float = 1.0
    b_footprint_ratio: float = 1.0
    #: whether the smem copies are hardware asynchronous
    async_smem_copy: bool = True

    @property
    def total_flops(self) -> int:
        return self.flops_chunk_tb * self.inner_extent * self.outer_extent * self.grid

    def validate(self) -> None:
        if self.grid < 1 or self.outer_extent < 1 or self.inner_extent < 1:
            raise ValueError("timing spec extents must be positive")
        if self.smem_stages < 1 or self.reg_stages < 1:
            raise ValueError("stage counts must be >= 1")
        if self.flops_chunk_tb <= 0:
            raise ValueError("kernel performs no compute; nothing to simulate")


def _thread_multiplier(path: Tuple) -> int:
    mult = 1
    for loop in enclosing_loops(path):
        if loop.kind is ForKind.THREAD:
            mult *= loop_extent_int(loop)
    return mult


def extract_timing_spec(kernel: Kernel) -> KernelTimingSpec:
    """Recover a :class:`KernelTimingSpec` from a lowered kernel."""
    spec: Optional[GemmSpec] = kernel.attrs.get("spec")
    config: Optional[TileConfig] = kernel.attrs.get("config")

    grid = 1
    warps = 1
    smem_bytes = 0
    outer_loop: Optional[For] = None
    inner_loop: Optional[For] = None
    smem_chunk = 0
    a_chunk = 0
    b_chunk = 0
    frag_bytes = 0
    flops_chunk = 0
    epilogue_bytes = 0
    swizzle = True
    async_smem = False

    # (depth, loop, bytes, is_a_side, swizzle, is_async) per shared copy;
    # (depth, loop, bytes) per register copy. Prologue copies sit at a
    # shallower serial depth than the main-loop copies (or outside any
    # serial loop entirely) and are dropped in favour of the deepest level.
    smem_copies = []
    reg_copies = []
    for node, path in walk_with_path(kernel.body):
        if isinstance(node, For):
            if node.kind is ForKind.BLOCK:
                grid *= loop_extent_int(node)
        elif isinstance(node, Allocate):
            if node.buffer.scope is Scope.SHARED:
                smem_bytes += node.buffer.size_bytes
        elif isinstance(node, MemCopy):
            serial = [lp for lp in enclosing_loops(path) if lp.kind is ForKind.SERIAL]
            if node.dst.buffer.scope is Scope.SHARED:
                if not serial:
                    continue  # hoisted prologue: accounted for by pipeline fill
                smem_copies.append(
                    (
                        len(serial),
                        serial[-1],
                        node.bytes,
                        bool(node.annotations.get("swizzle", True)),
                        node.is_async,
                    )
                )
            elif node.dst.buffer.scope is Scope.REGISTER:
                if not serial:
                    continue
                reg_copies.append(
                    (len(serial), serial[-1], node.bytes * _thread_multiplier(path))
                )
            elif node.dst.buffer.scope is Scope.GLOBAL:
                # DRAM sees the *output* bytes (the accumulator is wider).
                epilogue_bytes += node.dst.size_bytes * _thread_multiplier(path)
        elif isinstance(node, ComputeStmt) and node.flops > 0:
            serial = [lp for lp in enclosing_loops(path) if lp.kind is ForKind.SERIAL]
            if not serial:
                raise ValueError("compute statement outside any serial loop")
            flops_chunk += node.flops * _thread_multiplier(path)

    if not smem_copies:
        raise ValueError("kernel has no shared-memory load-and-use loop")
    if not reg_copies:
        raise ValueError("kernel has no register-level load-and-use loop")
    if flops_chunk == 0:
        raise ValueError("kernel performs no tensor-core compute")

    smem_depth = max(c[0] for c in smem_copies)
    for depth, loop, nbytes, sw, is_async in smem_copies:
        if depth != smem_depth:
            continue
        if outer_loop is None:
            outer_loop = loop
        elif outer_loop is not loop:
            raise ValueError("shared-memory copies span multiple serial loops")
        smem_chunk += nbytes
        swizzle = sw
        async_smem = async_smem or is_async
        # Heuristic operand split for the working-set model: the first copy
        # loads operand A, the second operand B.
        if a_chunk == 0:
            a_chunk = nbytes
        else:
            b_chunk += nbytes

    reg_depth = max(c[0] for c in reg_copies)
    for depth, loop, nbytes in reg_copies:
        if depth != reg_depth:
            continue
        if inner_loop is None:
            inner_loop = loop
        elif inner_loop is not loop:
            raise ValueError("register copies span multiple serial loops")
        frag_bytes += nbytes

    # Stage counts from the published pipeline groups (1 = not pipelined).
    smem_stages = 1
    reg_stages = 1
    for info in kernel.attrs.get("pipeline_groups", []) or []:
        if info.scope is Scope.SHARED:
            smem_stages = info.stages
        elif info.scope is Scope.REGISTER:
            reg_stages = info.stages

    if config is not None:
        threads = config.threads_per_block
        warps = config.warps_per_block
        # Register budget follows the *realized* stage counts in the IR.
        effective = config.with_stages(smem_stages, reg_stages)
        regs = effective.resource_usage(spec.dtype if spec else "float16").regs_per_thread
        m_tiles = (spec.m // config.block_m) if spec else 1
        n_tiles = (spec.n // config.block_n) if spec else 1
    else:
        threads = 128
        warps = 4
        regs = 64
        m_tiles = n_tiles = 1

    ts = KernelTimingSpec(
        name=kernel.name,
        grid=grid,
        threads_per_tb=threads,
        warps_per_tb=warps,
        smem_bytes_per_tb=smem_bytes,
        regs_per_thread=regs,
        outer_extent=loop_extent_int(outer_loop),
        smem_chunk_bytes=smem_chunk,
        smem_stages=smem_stages,
        inner_extent=loop_extent_int(inner_loop),
        frag_bytes_tb=frag_bytes,
        flops_chunk_tb=flops_chunk,
        reg_stages=reg_stages,
        epilogue_bytes=epilogue_bytes,
        swizzle=swizzle,
        batch=spec.batch if spec else 1,
        m_tiles=m_tiles,
        n_tiles=n_tiles,
        a_chunk_bytes=a_chunk,
        b_chunk_bytes=b_chunk,
        a_footprint_ratio=spec.a_footprint_ratio if spec else 1.0,
        b_footprint_ratio=spec.b_footprint_ratio if spec else 1.0,
        async_smem_copy=async_smem,
    )
    ts.validate()
    return ts

"""GPU hardware descriptions for the timing simulator.

:data:`A100` approximates an NVIDIA A100-SXM4-40GB — the paper's evaluation
platform. Only parameters that influence load-compute pipelining behaviour
are modelled: tensor-core throughput, the DRAM/L2/shared-memory bandwidth
and latency ladder, and the occupancy-limiting resources.

All times are in **microseconds**, all sizes in bytes.
"""

from __future__ import annotations

import dataclasses

__all__ = ["GpuSpec", "A100", "A100_NO_ASYNC"]


@dataclasses.dataclass(frozen=True)
class GpuSpec:
    """Hardware parameters consumed by the simulator and analytical model."""

    name: str
    num_sms: int
    #: fp16 tensor-core throughput of one SM (FLOP/us = MFLOP/s).
    tc_flops_per_sm: float
    #: DRAM bandwidth (bytes/us) and read latency (us).
    dram_bw: float
    dram_latency: float
    dram_write_latency: float
    #: L2 bandwidth (bytes/us), latency (us) and capacity (bytes).
    l2_bw: float
    l2_latency: float
    l2_size: int
    #: shared-memory bandwidth of one SM (bytes/us) and access latency (us).
    smem_bw_per_sm: float
    smem_latency: float
    #: occupancy limits.
    smem_per_sm: int
    max_smem_per_tb: int
    regs_per_sm: int
    max_regs_per_thread: int
    max_threads_per_sm: int
    max_tb_per_sm: int
    #: per-instruction issue overhead (us) and per-barrier overhead (us).
    issue_overhead: float
    sync_overhead: float
    #: issue cost of one 16x16x16 mma instruction (us, per SM after the four
    #: sub-partition schedulers are accounted). Small warp tiles execute
    #: many more mma instructions per FLOP and pay proportionally.
    mma_issue_cost: float = 0.0
    #: whether the hardware supports asynchronous global->shared copies
    #: (``cp.async``); pre-Ampere GPUs do not, which is why the paper's
    #: evaluation requires Ampere.
    has_async_copy: bool = True

    @property
    def tc_flops_total(self) -> float:
        return self.tc_flops_per_sm * self.num_sms


#: NVIDIA A100-SXM4-40GB (approximate public numbers).
#: 312 TFLOP/s fp16 tensor core, 1555 GB/s HBM2, ~4.8 TB/s L2, 40 MB L2,
#: 108 SMs, 164 KB smem/SM, 64K regs/SM. Bandwidths converted to bytes/us.
A100 = GpuSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    tc_flops_per_sm=312e6 / 108,  # FLOP per us per SM
    dram_bw=1.555e6,  # bytes per us
    dram_latency=0.45,
    dram_write_latency=0.35,
    l2_bw=4.8e6,
    l2_latency=0.18,
    l2_size=40 * 1024 * 1024,
    smem_bw_per_sm=128 * 1410,  # 128 B/cycle @ 1.41 GHz -> bytes/us
    smem_latency=0.022,
    smem_per_sm=164 * 1024,
    max_smem_per_tb=163 * 1024,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_tb_per_sm=32,
    issue_overhead=0.004,
    sync_overhead=0.015,
    mma_issue_cost=0.0004,
    has_async_copy=True,
)

#: The same chip with ``cp.async`` disabled — used in tests to exercise the
#: pre-Ampere rule-1 path (no asynchronous copies, no pipelining).
A100_NO_ASYNC = dataclasses.replace(A100, name="A100-no-async", has_async_copy=False)

#: NVIDIA V100-SXM2-16GB (Volta): the pre-Ampere generation the paper's
#: evaluation excludes — no asynchronous copy hardware, so automatic
#: pipelining cannot be compiled at all. 125 TFLOP/s fp16 tensor core,
#: 900 GB/s HBM2, 80 SMs, 96 KB smem/SM, 6 MB L2.
V100 = GpuSpec(
    name="V100-SXM2-16GB",
    num_sms=80,
    tc_flops_per_sm=125e6 / 80,
    dram_bw=0.9e6,
    dram_latency=0.5,
    dram_write_latency=0.4,
    l2_bw=2.5e6,
    l2_latency=0.2,
    l2_size=6 * 1024 * 1024,
    smem_bw_per_sm=128 * 1380,
    smem_latency=0.025,
    smem_per_sm=96 * 1024,
    max_smem_per_tb=96 * 1024,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_tb_per_sm=32,
    issue_overhead=0.004,
    sync_overhead=0.018,
    mma_issue_cost=0.0006,
    has_async_copy=False,
)

#: An H100-SXM5-like Hopper part: tensor-core throughput grows ~3.2x over
#: A100 while DRAM bandwidth grows only ~2.2x, widening the compute:memory
#: gap — the trend the paper argues makes pipelining ever more essential.
H100 = GpuSpec(
    name="H100-SXM5-80GB",
    num_sms=132,
    tc_flops_per_sm=989e6 / 132,
    dram_bw=3.35e6,
    dram_latency=0.4,
    dram_write_latency=0.3,
    l2_bw=8.0e6,
    l2_latency=0.16,
    l2_size=50 * 1024 * 1024,
    smem_bw_per_sm=128 * 1830,
    smem_latency=0.02,
    smem_per_sm=228 * 1024,
    max_smem_per_tb=227 * 1024,
    regs_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_tb_per_sm=32,
    issue_overhead=0.003,
    sync_overhead=0.012,
    mma_issue_cost=0.0002,
    has_async_copy=True,
)

"""Statement IR.

The statement language is a chunk-granularity tensor IR: loops, allocations
and whole-region data movement / compute statements. It is the level at which
ALCOP's program transformation (paper Sec. III, Figs. 6-7) operates:

* :class:`MemCopy` — ``memcpy`` / ``async_memcpy`` of a box region,
* :class:`ComputeStmt` — a tensor-core fragment computation (``wmma``),
* :class:`PipelineSync` — the four pipeline guard primitives
  (``producer_acquire``, ``producer_commit``, ``consumer_wait``,
  ``consumer_release``),
* :class:`For` / :class:`SeqStmt` / :class:`IfThenElse` / :class:`Allocate`
  for structure.

All statements are immutable; passes rebuild trees via
:class:`~repro.ir.visitor.StmtMutator`.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .buffer import Buffer, BufferRegion
from .expr import Expr, ExprLike, Var, as_expr

__all__ = [
    "Stmt",
    "ForKind",
    "For",
    "SeqStmt",
    "IfThenElse",
    "Allocate",
    "MemCopy",
    "ComputeStmt",
    "PipelineSync",
    "SyncKind",
    "Kernel",
    "seq",
]


class Stmt:
    """Base class for statements."""

    __slots__ = ()


class ForKind(enum.Enum):
    """How a loop's iterations map onto the GPU execution hierarchy."""

    SERIAL = "serial"  # sequential loop inside one thread of control
    BLOCK = "blockIdx"  # parallel across threadblocks (grid dimension)
    THREAD = "threadIdx"  # parallel across warps within a threadblock
    UNROLLED = "unroll"  # fully unrolled at codegen
    VECTORIZED = "vectorize"

    @property
    def is_parallel(self) -> bool:
        return self in (ForKind.BLOCK, ForKind.THREAD)


class For(Stmt):
    """``for var in range(extent)`` with an execution-mapping kind.

    ``annotations`` is a free-form dict used to carry scheduling hints (the
    pipelining pass does not rely on it; hints live on :class:`Allocate`).
    """

    __slots__ = ("var", "extent", "kind", "body", "annotations")

    def __init__(
        self,
        var: Var,
        extent: ExprLike,
        body: Stmt,
        kind: ForKind = ForKind.SERIAL,
        annotations: Optional[Dict[str, object]] = None,
    ) -> None:
        if not isinstance(var, Var):
            raise TypeError("For.var must be a Var")
        extent = as_expr(extent)
        from .expr import IntImm

        if isinstance(extent, IntImm) and extent.value <= 0:
            raise ValueError(f"loop {var.name} has non-positive extent {extent.value}")
        self.var = var
        self.extent: Expr = extent
        self.kind = kind
        self.body = body
        self.annotations = dict(annotations or {})

    def with_body(self, body: Stmt) -> "For":
        return For(self.var, self.extent, body, self.kind, self.annotations)


class SeqStmt(Stmt):
    """A sequence of statements, flattened on construction."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]) -> None:
        flat: List[Stmt] = []
        for s in stmts:
            if s is None:
                continue
            if isinstance(s, SeqStmt):
                flat.extend(s.stmts)
            elif isinstance(s, Stmt):
                flat.append(s)
            else:
                raise TypeError(f"not a Stmt: {s!r}")
        if not flat:
            raise ValueError("SeqStmt requires at least one statement")
        self.stmts: Tuple[Stmt, ...] = tuple(flat)


def seq(*stmts: Optional[Stmt]) -> Stmt:
    """Sequence builder that collapses a single statement to itself."""
    flat = [s for s in stmts if s is not None]
    if len(flat) == 1 and not isinstance(flat[0], SeqStmt):
        return flat[0]
    return SeqStmt(flat)


class IfThenElse(Stmt):
    """Conditional statement; ``else_body`` may be ``None``."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: ExprLike, then_body: Stmt, else_body: Optional[Stmt] = None) -> None:
        self.cond: Expr = as_expr(cond)
        self.then_body = then_body
        self.else_body = else_body


class Allocate(Stmt):
    """Allocate ``buffer`` for the duration of ``body``.

    ``attrs`` carries schedule hints consumed by the pipelining pass:

    * ``"pipeline_stages"``: int — requested number of pipeline stages
      (attached by ``Schedule.pipeline``; absent means not pipelined).
    """

    __slots__ = ("buffer", "body", "attrs")

    def __init__(
        self, buffer: Buffer, body: Stmt, attrs: Optional[Dict[str, object]] = None
    ) -> None:
        if not isinstance(buffer, Buffer):
            raise TypeError("Allocate.buffer must be a Buffer")
        self.buffer = buffer
        self.body = body
        self.attrs = dict(attrs or {})

    def with_body(self, body: Stmt) -> "Allocate":
        return Allocate(self.buffer, body, self.attrs)


class MemCopy(Stmt):
    """Copy ``src`` region into ``dst`` region (extents must match).

    ``is_async`` marks the copy as a hardware asynchronous copy
    (``cp.async`` on Ampere): it does not block, and its effects become
    visible to consumers only after a matching ``consumer_wait``.
    """

    __slots__ = ("dst", "src", "is_async", "annotations")

    def __init__(
        self,
        dst: BufferRegion,
        src: BufferRegion,
        is_async: bool = False,
        annotations: Optional[Dict[str, object]] = None,
    ) -> None:
        if dst.size_elems != src.size_elems:
            raise ValueError(
                f"MemCopy size mismatch: dst {dst.extents} vs src {src.extents}"
            )
        self.dst = dst
        self.src = src
        self.is_async = bool(is_async)
        self.annotations = dict(annotations or {})

    @property
    def bytes(self) -> int:
        return self.src.size_bytes


class ComputeStmt(Stmt):
    """A chunk-level compute statement (e.g. a ``wmma`` fragment op).

    Parameters
    ----------
    kind:
        A short tag such as ``"mma"`` or ``"elementwise"``, used by printers
        and the simulator.
    out:
        Output region (an accumulator fragment for ``mma``).
    inputs:
        Input regions, read in full.
    fn:
        Python semantics: ``fn(out_view, *input_views)`` mutates ``out_view``
        in place. Used by the interpreters; ignored by timing models.
    flops:
        Floating-point operations performed, used by timing models.
    """

    __slots__ = ("kind", "out", "inputs", "fn", "flops", "annotations")

    def __init__(
        self,
        kind: str,
        out: BufferRegion,
        inputs: Sequence[BufferRegion],
        fn: Optional[Callable] = None,
        flops: int = 0,
        annotations: Optional[Dict[str, object]] = None,
    ) -> None:
        self.kind = kind
        self.out = out
        self.inputs: Tuple[BufferRegion, ...] = tuple(inputs)
        self.fn = fn
        self.flops = int(flops)
        self.annotations = dict(annotations or {})


class SyncKind(enum.Enum):
    """The four pipeline guard primitives (paper Sec. III-B, step five)."""

    PRODUCER_ACQUIRE = "producer_acquire"
    PRODUCER_COMMIT = "producer_commit"
    CONSUMER_WAIT = "consumer_wait"
    CONSUMER_RELEASE = "consumer_release"


class PipelineSync(Stmt):
    """A pipeline synchronization primitive bound to one pipelined buffer."""

    __slots__ = ("buffer", "kind")

    def __init__(self, buffer: Buffer, kind: SyncKind) -> None:
        if not isinstance(kind, SyncKind):
            raise TypeError("PipelineSync.kind must be a SyncKind")
        self.buffer = buffer
        self.kind = kind


class Kernel:
    """A complete GPU kernel: parameter buffers plus a statement body.

    ``params`` are the global-scope input/output buffers in call order.
    ``attrs`` carries kernel-level metadata (e.g. launch geometry hints,
    the originating schedule config).
    """

    __slots__ = ("name", "params", "body", "attrs")

    def __init__(
        self,
        name: str,
        params: Sequence[Buffer],
        body: Stmt,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.params: Tuple[Buffer, ...] = tuple(params)
        self.body = body
        self.attrs = dict(attrs or {})

    def with_body(self, body: Stmt) -> "Kernel":
        return Kernel(self.name, self.params, body, self.attrs)

    def __repr__(self) -> str:
        return f"Kernel({self.name}, params=[{', '.join(p.name for p in self.params)}])"

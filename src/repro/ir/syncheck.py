"""Static pipeline-synchronization race checking.

The pipelining program transformation (paper Sec. III-B) injects the four
guard primitives (``producer_acquire`` / ``producer_commit`` /
``consumer_wait`` / ``consumer_release``) and rewrites hinted buffers into
circular multi-stage form. A compiler bug in that step — a mis-paired
commit/wait, a dropped prologue chunk, an aliased circular index — produces
IR that is structurally valid (:mod:`repro.ir.validate` passes) yet racy on
real hardware, where it manifests as flaky wrong answers rather than a
clean failure.

:func:`check_kernel` closes that gap: it symbolically walks the control
flow of a *transformed* kernel, maintaining an abstract pipeline state per
pipeline group (mirroring the protocol the interpreter enforces
dynamically), and verifies five rules:

1. **Guarded production** — every asynchronous copy into a circular buffer
   executes between a ``producer_acquire`` and the matching
   ``producer_commit`` on the same buffer group.
2. **Arrival before read** — every read of a pipelined buffer stage is
   dominated by a ``consumer_wait`` that applied that stage, i.e. the
   stage distance between the producer's write and the consumer's read
   matches the buffer's stage count (no read-before-arrival).
3. **No stage aliasing** — circular-index rotation never lets an in-flight
   producer write alias a stage that is committed-but-unconsumed or still
   being consumed (write-after-read race across the wrap-around), and
   acquires never exceed stage capacity.
4. **Exact prologue** — at entry to each pipelined loop the pipeline holds
   exactly ``num_stages - 1`` in-flight chunks, so the steady-state loop
   never waits on an unfilled stage.
5. **Balanced synchronization** — commit/wait/release counts balance along
   every path through ``IfThenElse``/``SeqStmt``, including the epilogue
   drain; no dangling producer window survives to kernel end.

Loops with sequential semantics (``SERIAL``/``UNROLLED``) are walked
iteration by iteration (loop extents are static in this compiler); parallel
loops (``blockIdx``/``threadIdx``/vectorized) are walked once with a
representative iteration, matching the barrier semantics of the
interpreter: shared-scope pipelines are threadblock-wide, register-scope
pipelines are private per warp, and all lanes are symmetric. Conditionals
whose predicate depends on a parallel loop variable are *forked*: both arms
are walked from a copy of the state, and diverging pipeline states are
reported as rule-5 violations (some threadblocks would observe a different
barrier sequence than others — a deadlock on hardware).

Findings are reported as structured :class:`SyncDiagnostic` objects rather
than bare exceptions, so callers can render, count or filter them; the
transformation pass turns *error*-severity findings into a
:class:`SyncCheckError` when invoked with ``verify_sync=True``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..core.errors import SyncVerificationError
from .buffer import Buffer, BufferRegion
from .expr import evaluate, free_vars
from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
    SyncKind,
)

__all__ = [
    "RULE_UNGUARDED_COPY",
    "RULE_READ_BEFORE_ARRIVAL",
    "RULE_STAGE_ALIAS",
    "RULE_PROLOGUE_SHORTFALL",
    "RULE_UNBALANCED_SYNC",
    "ALL_RULES",
    "SyncDiagnostic",
    "SyncCheckError",
    "check_kernel",
    "format_diagnostics",
]

#: Rule 1 — async copy into a pipelined buffer outside an acquire/commit
#: window (or a commit with no open window).
RULE_UNGUARDED_COPY = "R1-unguarded-copy"
#: Rule 2 — read of a stage no ``consumer_wait`` has applied.
RULE_READ_BEFORE_ARRIVAL = "R2-read-before-arrival"
#: Rule 3 — producer write aliasing a live stage / acquire beyond capacity.
RULE_STAGE_ALIAS = "R3-stage-alias"
#: Rule 4 — pipeline not holding exactly ``stages - 1`` chunks at loop entry.
RULE_PROLOGUE_SHORTFALL = "R4-prologue-shortfall"
#: Rule 5 — unbalanced commit/wait/release along some path, divergent
#: branch states, or a dangling producer window at kernel end.
RULE_UNBALANCED_SYNC = "R5-unbalanced-sync"

ALL_RULES = (
    RULE_UNGUARDED_COPY,
    RULE_READ_BEFORE_ARRIVAL,
    RULE_STAGE_ALIAS,
    RULE_PROLOGUE_SHORTFALL,
    RULE_UNBALANCED_SYNC,
)


@dataclasses.dataclass(frozen=True)
class SyncDiagnostic:
    """One synchronization finding.

    Attributes
    ----------
    rule:
        One of the ``RULE_*`` identifiers.
    severity:
        ``"error"`` for findings that corrupt data or deadlock on hardware;
        ``"warning"`` for suspicious-but-survivable protocol deviations.
    buffer:
        Name of the pipelined buffer (group leader for group-wide findings).
    path:
        Human-readable statement path from the kernel body to the finding,
        with concrete loop iteration values (e.g. ``for ko@2 > seq[4]``).
    message:
        Human-readable explanation of the race.
    """

    rule: str
    severity: str
    buffer: str
    path: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule} on {self.buffer}: {self.message}\n    at {self.path}"


class SyncCheckError(SyncVerificationError):
    """Raised by ``apply_pipelining(..., verify_sync=True)`` when the static
    checker finds error-severity synchronization races. Part of the unified
    taxonomy via :class:`repro.core.errors.SyncVerificationError`."""

    def __init__(self, diagnostics: Sequence[SyncDiagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        super().__init__(
            f"{len(self.diagnostics)} pipeline synchronization race(s) detected:\n"
            + format_diagnostics(self.diagnostics),
            diagnostic=self.diagnostics,
        )


def format_diagnostics(diagnostics: Sequence[SyncDiagnostic]) -> str:
    """Render diagnostics one per paragraph, errors first."""
    ordered = sorted(diagnostics, key=lambda d: (d.severity != "error", d.rule))
    return "\n".join(str(d) for d in ordered)


#: (buffer name, stage index) — the granularity of arrival tracking.
_StageKey = Tuple[str, int]
_Batch = FrozenSet[_StageKey]


class _GroupState:
    """Abstract pipeline state of one group: the producer window, the FIFO
    of committed-but-unconsumed batches and the FIFO of applied (waited but
    not yet released) batches, each batch recording which circular stages
    it filled."""

    __slots__ = ("stages", "pending_open", "pending", "committed", "applied")

    def __init__(self, stages: int) -> None:
        self.stages = stages
        self.pending_open = False
        self.pending: List[_StageKey] = []
        self.committed: List[_Batch] = []
        self.applied: List[_Batch] = []

    @property
    def occupied(self) -> int:
        return len(self.committed) + len(self.applied) + (1 if self.pending_open else 0)

    def arrived(self) -> FrozenSet[_StageKey]:
        """Stages whose data a consumer may legally read right now."""
        out: set = set()
        for batch in self.applied:
            out |= batch
        return frozenset(out)

    def in_flight(self) -> FrozenSet[_StageKey]:
        """Stages committed (or being filled) but not yet applied."""
        out: set = set(self.pending)
        for batch in self.committed:
            out |= batch
        return frozenset(out)

    def snapshot(self) -> Tuple:
        return (
            self.pending_open,
            tuple(self.pending),
            tuple(self.committed),
            tuple(self.applied),
        )

    def clone(self) -> "_GroupState":
        st = _GroupState(self.stages)
        st.pending_open = self.pending_open
        st.pending = list(self.pending)
        st.committed = list(self.committed)
        st.applied = list(self.applied)
        return st


_PARALLEL_KINDS = (ForKind.BLOCK, ForKind.THREAD, ForKind.VECTORIZED)


class _Checker:
    """One symbolic walk over a transformed kernel body."""

    def __init__(self, kernel: Kernel, groups: Sequence[object]) -> None:
        self.kernel = kernel
        self.diagnostics: List[SyncDiagnostic] = []
        #: Buffer (identity) -> its group info, for every expanded buffer.
        self.buffer_info: Dict[Buffer, object] = {}
        #: loop var name -> group infos pipelined at a loop of that name.
        self.loops_by_var: Dict[str, List[object]] = {}
        self.states: Dict[int, _GroupState] = {}
        for info in groups:
            for buf in info.buffers:
                self.buffer_info[buf] = info
            self.loops_by_var.setdefault(info.loop_var_name, []).append(info)
            self.states[id(info)] = _GroupState(info.stages)
        self.env: Dict = {}
        self.kinds: Dict = {}
        self.path: List[str] = []

    # ------------------------------------------------------------- reporting
    def report(self, rule: str, buffer: str, message: str, severity: str = "error") -> None:
        self.diagnostics.append(
            SyncDiagnostic(
                rule=rule,
                severity=severity,
                buffer=buffer,
                path=" > ".join(self.path) if self.path else "<kernel body>",
                message=message,
            )
        )

    # --------------------------------------------------------------- helpers
    def state_of(self, info) -> _GroupState:
        return self.states[id(info)]

    def _stage_of(self, region: BufferRegion) -> int:
        """Concrete circular-stage index of a region on an expanded buffer
        (the pipelining pass prepends the stage dimension)."""
        return int(evaluate(region.offsets[0], self.env)) % region.buffer.shape[0]

    def _has_parallel_var(self, expr) -> bool:
        for v in free_vars(expr):
            if self.kinds.get(v) in _PARALLEL_KINDS:
                return True
        return False

    # ----------------------------------------------------------------- walk
    def run(self) -> None:
        self.walk(self.kernel.body)
        self.finish()

    def walk(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.walk(s)
        elif isinstance(stmt, For):
            self._walk_for(stmt)
        elif isinstance(stmt, IfThenElse):
            self._walk_if(stmt)
        elif isinstance(stmt, Allocate):
            self.path.append(f"alloc {stmt.buffer.name}")
            self.walk(stmt.body)
            self.path.pop()
        elif isinstance(stmt, MemCopy):
            self._walk_copy(stmt)
        elif isinstance(stmt, ComputeStmt):
            self._walk_compute(stmt)
        elif isinstance(stmt, PipelineSync):
            self._walk_sync(stmt)
        # Unknown statement types are a structural problem for
        # ir.validate, not a synchronization one: ignore.

    def _walk_for(self, stmt: For) -> None:
        self._check_loop_entry(stmt)
        extent = int(evaluate(stmt.extent, self.env))
        self.kinds[stmt.var] = stmt.kind
        if stmt.kind in _PARALLEL_KINDS:
            # All iterations are symmetric with respect to pipeline state:
            # walk one representative lane. (Predicates that break the
            # symmetry are caught by the fork logic in ``_walk_if``.)
            iterations = [0]
        else:
            iterations = range(extent)
        for i in iterations:
            self.env[stmt.var] = i
            self.path.append(f"for {stmt.var.name}@{i}")
            self.walk(stmt.body)
            self.path.pop()
        del self.env[stmt.var]
        del self.kinds[stmt.var]

    def _check_loop_entry(self, stmt: For) -> None:
        """Rule 4: a software-pipelined loop must start with exactly
        ``stages - 1`` chunks in flight — fewer means the steady-state
        consumer outruns the producer and reads an unfilled stage; more
        means the prologue already aliased a live stage."""
        if not stmt.annotations.get("software_pipelined"):
            return
        for info in self.loops_by_var.get(stmt.var.name, []):
            st = self.state_of(info)
            expect = info.stages - 1
            if st.occupied != expect:
                self.report(
                    RULE_PROLOGUE_SHORTFALL,
                    info.buffers[0].name,
                    f"pipelined loop {stmt.var.name} entered with {st.occupied} "
                    f"in-flight chunk(s); the prologue must cover exactly "
                    f"{expect} iteration(s) (num_stages={info.stages}) so the "
                    "steady-state loop never reads an unfilled stage",
                )

    def _walk_if(self, stmt: IfThenElse) -> None:
        if self._has_parallel_var(stmt.cond):
            # The predicate distinguishes threadblocks/warps: pipeline state
            # must evolve identically on both arms or barrier sequences
            # diverge across lanes (rule 5). Fork, compare, merge.
            before = {k: st.clone() for k, st in self.states.items()}
            self.path.append(f"if {stmt.cond!r} (then)")
            self.walk(stmt.then_body)
            self.path.pop()
            then_states = self.states
            self.states = before
            if stmt.else_body is not None:
                self.path.append(f"if {stmt.cond!r} (else)")
                self.walk(stmt.else_body)
                self.path.pop()
            for key, then_st in then_states.items():
                if then_st.snapshot() != self.states[key].snapshot():
                    info = next(i for i in self.loops_by_var_values() if id(i) == key)
                    self.path.append(f"if {stmt.cond!r}")
                    self.report(
                        RULE_UNBALANCED_SYNC,
                        info.buffers[0].name,
                        "pipeline synchronization diverges across the arms of a "
                        "thread-dependent conditional: some lanes would observe "
                        "a different commit/wait/release sequence than others",
                    )
                    self.path.pop()
            self.states = then_states
            return
        if evaluate(stmt.cond, self.env):
            self.path.append("if-then")
            self.walk(stmt.then_body)
            self.path.pop()
        elif stmt.else_body is not None:
            self.path.append("if-else")
            self.walk(stmt.else_body)
            self.path.pop()

    def loops_by_var_values(self):
        seen = set()
        for infos in self.loops_by_var.values():
            for info in infos:
                if id(info) not in seen:
                    seen.add(id(info))
                    yield info

    # ----------------------------------------------------------- leaf stmts
    def _check_read(self, region: BufferRegion, what: str) -> None:
        """Rule 2: reads of a pipelined buffer must hit an arrived stage."""
        info = self.buffer_info.get(region.buffer)
        if info is None:
            return
        st = self.state_of(info)
        stage = self._stage_of(region)
        key = (region.buffer.name, stage)
        if key not in st.arrived():
            if key in st.in_flight():
                detail = (
                    "the stage is committed but no consumer_wait has applied "
                    "it yet (read-before-arrival)"
                )
            else:
                detail = (
                    "no in-flight chunk fills that stage — the read sees "
                    "stale data from a previous wrap-around"
                )
            self.report(
                RULE_READ_BEFORE_ARRIVAL,
                region.buffer.name,
                f"{what} reads stage {stage} of {region.buffer.name} "
                f"without a dominating consumer_wait: {detail}",
            )

    def _check_producer_write(self, region: BufferRegion, is_async: bool) -> None:
        info = self.buffer_info.get(region.buffer)
        if info is None:
            if is_async:
                # An async copy whose destination escaped buffer expansion
                # has no pipeline group to order it: its landing time is
                # undefined with respect to every consumer.
                self.report(
                    RULE_UNGUARDED_COPY,
                    region.buffer.name,
                    f"async_memcpy into {region.buffer.name}, which is not "
                    "part of any pipeline group; the copy is never ordered "
                    "by producer/consumer synchronization",
                )
            return
        st = self.state_of(info)
        stage = self._stage_of(region)
        key = (region.buffer.name, stage)
        if not is_async:
            self.report(
                RULE_UNGUARDED_COPY,
                region.buffer.name,
                f"synchronous copy writes stage {stage} of pipelined buffer "
                f"{region.buffer.name}, bypassing the producer protocol",
                severity="warning",
            )
            return
        if not st.pending_open:
            self.report(
                RULE_UNGUARDED_COPY,
                region.buffer.name,
                f"async_memcpy into {region.buffer.name} stage {stage} outside "
                "a producer_acquire/producer_commit window",
            )
            # Recover: treat as an unordered write so later rules still run.
            return
        if key in st.arrived():
            self.report(
                RULE_STAGE_ALIAS,
                region.buffer.name,
                f"producer writes stage {stage} of {region.buffer.name} while "
                "a consumer still holds it (waited but not released): "
                "write-after-read race across the circular wrap-around",
            )
        elif any(key in batch for batch in st.committed):
            self.report(
                RULE_STAGE_ALIAS,
                region.buffer.name,
                f"producer writes stage {stage} of {region.buffer.name} which "
                "already holds a committed, not-yet-consumed chunk: the "
                "rotation distance does not match num_stages",
            )
        st.pending.append(key)

    def _walk_copy(self, stmt: MemCopy) -> None:
        self._check_read(stmt.src, "memcpy")
        self._check_producer_write(stmt.dst, stmt.is_async)

    def _walk_compute(self, stmt: ComputeStmt) -> None:
        for region in stmt.inputs:
            self._check_read(region, f"compute '{stmt.kind}'")
        if stmt.annotations.get("accumulate", True):
            # Accumulating computes also read their output fragment.
            if stmt.out.buffer in self.buffer_info:
                self._check_read(stmt.out, f"compute '{stmt.kind}'")
        if stmt.out.buffer in self.buffer_info:
            self.report(
                RULE_UNGUARDED_COPY,
                stmt.out.buffer.name,
                f"compute '{stmt.kind}' writes pipelined buffer "
                f"{stmt.out.buffer.name} outside the producer protocol",
                severity="warning",
            )

    def _walk_sync(self, stmt: PipelineSync) -> None:
        info = self.buffer_info.get(stmt.buffer)
        if info is None:
            self.report(
                RULE_UNBALANCED_SYNC,
                stmt.buffer.name,
                f"{stmt.kind.value} on {stmt.buffer.name}, which is not part "
                "of any pipeline group",
            )
            return
        st = self.state_of(info)
        name = stmt.buffer.name
        if stmt.kind is SyncKind.PRODUCER_ACQUIRE:
            if st.pending_open:
                self.report(
                    RULE_UNBALANCED_SYNC,
                    name,
                    "producer_acquire while the previous producer window is "
                    "still open (missing producer_commit)",
                )
            elif st.occupied >= st.stages:
                self.report(
                    RULE_STAGE_ALIAS,
                    name,
                    f"producer_acquire with all {st.stages} stages occupied: "
                    "the next write must alias a live stage (on hardware the "
                    "producer blocks forever — deadlock)",
                )
            st.pending_open = True
            st.pending = []
        elif stmt.kind is SyncKind.PRODUCER_COMMIT:
            if not st.pending_open:
                self.report(
                    RULE_UNGUARDED_COPY,
                    name,
                    "producer_commit without a matching producer_acquire",
                )
                return
            st.committed.append(frozenset(st.pending))
            st.pending = []
            st.pending_open = False
        elif stmt.kind is SyncKind.CONSUMER_WAIT:
            if not st.committed:
                self.report(
                    RULE_READ_BEFORE_ARRIVAL,
                    name,
                    "consumer_wait with no committed chunk in flight: the "
                    "wait either deadlocks or admits an unfilled stage",
                )
                return
            st.applied.append(st.committed.pop(0))
        elif stmt.kind is SyncKind.CONSUMER_RELEASE:
            if not st.applied:
                self.report(
                    RULE_UNBALANCED_SYNC,
                    name,
                    "consumer_release without a waited (applied) chunk: "
                    "release/wait counts are unbalanced on this path",
                )
                return
            st.applied.pop(0)

    # ----------------------------------------------------------------- end
    def finish(self) -> None:
        """End-of-kernel balance checks (rule 5).

        A pipeline may legally end with up to ``stages - 1`` chunks still in
        flight (the natural steady-state leftover when the kernel exits
        right after its last loop), but a producer window must never remain
        open, and the total leftover must not exceed the steady-state
        amount — more means wait/release were skipped on some path.
        """
        self.path = ["<kernel end>"]
        for info in self.loops_by_var_values():
            st = self.state_of(info)
            name = info.buffers[0].name
            if st.pending_open:
                self.report(
                    RULE_UNBALANCED_SYNC,
                    name,
                    "producer window left open at kernel end (producer_acquire "
                    "without a matching producer_commit on some path)",
                )
            leftover = len(st.committed) + len(st.applied)
            if leftover > st.stages - 1:
                self.report(
                    RULE_UNBALANCED_SYNC,
                    name,
                    f"{leftover} chunk(s) still in flight at kernel end but "
                    f"the pipeline only sustains {st.stages - 1}: "
                    "consumer_wait/consumer_release were skipped on some path",
                )
        self.path = []


def check_kernel(kernel: Kernel) -> List[SyncDiagnostic]:
    """Statically check pipeline synchronization of a transformed kernel.

    Expects ``kernel.attrs['pipeline_groups']`` as published by
    :func:`repro.transform.apply_pipelining`; a kernel without pipeline
    groups trivially has no pipeline races and yields no diagnostics.
    """
    groups = kernel.attrs.get("pipeline_groups") or []
    if not groups:
        return []
    checker = _Checker(kernel, groups)
    checker.run()
    return checker.diagnostics

"""Scalar expression IR.

This module implements the integer/float scalar expression language used in
loop bounds and buffer indices, mirroring the role of ``tir.PrimExpr`` in TVM.
Expressions are immutable trees built from :class:`Var`, :class:`IntImm`,
:class:`FloatImm` and :class:`BinOp`.

Python operators on :class:`Expr` build new nodes with on-the-fly constant
folding, so ``(ko + 2) % 3`` written in pass code produces exactly the index
expressions shown in Fig. 7 of the ALCOP paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Union

__all__ = [
    "Expr",
    "Var",
    "IntImm",
    "FloatImm",
    "BinOp",
    "const",
    "as_expr",
    "evaluate",
    "substitute",
    "free_vars",
    "simplify",
    "struct_equal",
    "floordiv",
    "floormod",
    "imin",
    "imax",
]

ExprLike = Union["Expr", int, float]


class Expr:
    """Base class for all scalar expressions.

    Expressions are immutable; arithmetic operators return new trees with
    constant folding applied eagerly (e.g. ``IntImm(2) + IntImm(3)`` folds to
    ``IntImm(5)`` and ``x * 1`` folds to ``x``).
    """

    __slots__ = ()

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return _binop("add", self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return _binop("add", as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return _binop("sub", self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return _binop("sub", as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return _binop("mul", self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return _binop("mul", as_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return _binop("floordiv", self, as_expr(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return _binop("floordiv", as_expr(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return _binop("floormod", self, as_expr(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return _binop("floormod", as_expr(other), self)

    def __neg__(self) -> "Expr":
        return _binop("sub", IntImm(0), self)

    # -- comparisons (return Expr, so use struct_equal for identity) --------
    def lt(self, other: ExprLike) -> "Expr":
        return _binop("lt", self, as_expr(other))

    def le(self, other: ExprLike) -> "Expr":
        return _binop("le", self, as_expr(other))

    def gt(self, other: ExprLike) -> "Expr":
        return _binop("gt", self, as_expr(other))

    def ge(self, other: ExprLike) -> "Expr":
        return _binop("ge", self, as_expr(other))

    def equal(self, other: ExprLike) -> "Expr":
        return _binop("eq", self, as_expr(other))

    def not_equal(self, other: ExprLike) -> "Expr":
        return _binop("ne", self, as_expr(other))

    def logical_and(self, other: ExprLike) -> "Expr":
        return _binop("and", self, as_expr(other))

    def logical_or(self, other: ExprLike) -> "Expr":
        return _binop("or", self, as_expr(other))


#: Interned small-integer immediates. Lowering a kernel allocates the same
#: handful of extents/strides/offsets thousands of times; immediates are
#: immutable (compared structurally, never mutated after construction), so
#: sharing one node per small value cuts per-trial allocation churn.
_INT_INTERN: dict = {}
_INT_INTERN_MIN, _INT_INTERN_MAX = -16, 1024


class IntImm(Expr):
    """Integer immediate. Small values are interned: ``IntImm(4)`` returns
    a shared node, which is safe because immediates are immutable and all
    IR comparisons are structural."""

    __slots__ = ("value",)

    def __new__(cls, value: int = 0) -> "IntImm":
        if cls is IntImm and type(value) is int and _INT_INTERN_MIN <= value <= _INT_INTERN_MAX:
            cached = _INT_INTERN.get(value)
            if cached is None:
                cached = super().__new__(cls)
                _INT_INTERN[value] = cached
            return cached
        return super().__new__(cls)

    def __init__(self, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"IntImm requires an int, got {value!r}")
        self.value = value

    def __repr__(self) -> str:
        return str(self.value)


class FloatImm(Expr):
    """Floating-point immediate (used only in cost annotations)."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return repr(self.value)


class Var(Expr):
    """A named scalar variable (loop iteration variable or parameter).

    Identity-based: two ``Var`` objects with the same name are distinct
    variables. Names exist for printing only.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("Var requires a non-empty name")
        self.name = name

    def __repr__(self) -> str:
        return self.name


_OP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "floordiv": lambda a, b: a // b,
    "floormod": lambda a, b: a % b,
    "min": min,
    "max": max,
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
}

_OP_SYMBOLS: Dict[str, str] = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "floordiv": "//",
    "floormod": "%",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "eq": "==",
    "ne": "!=",
    "and": "&&",
    "or": "||",
}


class BinOp(Expr):
    """Binary operation node. ``op`` is one of the keys of ``_OP_FUNCS``."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr) -> None:
        if op not in _OP_FUNCS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.a!r}, {self.b!r})"
        return f"({self.a!r} {_OP_SYMBOLS[self.op]} {self.b!r})"


def const(value: int) -> IntImm:
    """Create an integer immediate."""
    return IntImm(value)


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python number into an :class:`Expr` (identity on Expr)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return IntImm(int(value))
    if isinstance(value, int):
        return IntImm(value)
    if isinstance(value, float):
        return FloatImm(value)
    raise TypeError(f"cannot convert {value!r} to Expr")


def _binop(op: str, a: Expr, b: Expr) -> Expr:
    """Build a binary op with eager constant folding and identity rules."""
    # Constant folding.
    if isinstance(a, IntImm) and isinstance(b, IntImm):
        if op in ("floordiv", "floormod") and b.value == 0:
            raise ZeroDivisionError(f"{op} by zero in constant fold")
        return IntImm(_OP_FUNCS[op](a.value, b.value))
    # Identity simplifications (integers only; they keep pass output tidy).
    if op == "add":
        if isinstance(a, IntImm) and a.value == 0:
            return b
        if isinstance(b, IntImm) and b.value == 0:
            return a
    elif op == "sub":
        if isinstance(b, IntImm) and b.value == 0:
            return a
    elif op == "mul":
        if isinstance(a, IntImm):
            if a.value == 0:
                return IntImm(0)
            if a.value == 1:
                return b
        if isinstance(b, IntImm):
            if b.value == 0:
                return IntImm(0)
            if b.value == 1:
                return a
    elif op == "floordiv":
        if isinstance(b, IntImm) and b.value == 1:
            return a
        if isinstance(a, IntImm) and a.value == 0:
            return IntImm(0)
    elif op == "floormod":
        if isinstance(b, IntImm) and b.value == 1:
            return IntImm(0)
        if isinstance(a, IntImm) and a.value == 0:
            return IntImm(0)
    return BinOp(op, a, b)


def floordiv(a: ExprLike, b: ExprLike) -> Expr:
    """Floor division node (Python ``//`` semantics)."""
    return _binop("floordiv", as_expr(a), as_expr(b))


def floormod(a: ExprLike, b: ExprLike) -> Expr:
    """Floor modulo node (Python ``%`` semantics)."""
    return _binop("floormod", as_expr(a), as_expr(b))


def imin(a: ExprLike, b: ExprLike) -> Expr:
    """Minimum of two expressions."""
    return _binop("min", as_expr(a), as_expr(b))


def imax(a: ExprLike, b: ExprLike) -> Expr:
    """Maximum of two expressions."""
    return _binop("max", as_expr(a), as_expr(b))


def evaluate(expr: ExprLike, env: Mapping[Var, int]) -> int:
    """Evaluate ``expr`` to a Python number under variable bindings ``env``.

    Raises ``KeyError`` if a free variable is unbound.
    """
    expr = as_expr(expr)
    if isinstance(expr, IntImm):
        return expr.value
    if isinstance(expr, FloatImm):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr]
        except KeyError:
            raise KeyError(f"unbound variable {expr.name!r} during evaluation") from None
    if isinstance(expr, BinOp):
        a = evaluate(expr.a, env)
        b = evaluate(expr.b, env)
        if expr.op in ("floordiv", "floormod") and b == 0:
            raise ZeroDivisionError(f"{expr.op} by zero evaluating {expr!r}")
        return _OP_FUNCS[expr.op](a, b)
    raise TypeError(f"cannot evaluate {expr!r}")


def substitute(expr: ExprLike, mapping: Mapping[Var, ExprLike]) -> Expr:
    """Substitute variables in ``expr`` according to ``mapping``.

    Re-folds constants as it rebuilds, so substituting concrete values
    simplifies the tree.
    """
    expr = as_expr(expr)
    if isinstance(expr, Var):
        if expr in mapping:
            return as_expr(mapping[expr])
        return expr
    if isinstance(expr, (IntImm, FloatImm)):
        return expr
    if isinstance(expr, BinOp):
        a = substitute(expr.a, mapping)
        b = substitute(expr.b, mapping)
        if a is expr.a and b is expr.b:
            return expr
        return _binop(expr.op, a, b)
    raise TypeError(f"cannot substitute into {expr!r}")


def free_vars(expr: ExprLike) -> set:
    """Return the set of :class:`Var` nodes appearing in ``expr``."""
    out: set = set()

    def walk(e: Expr) -> None:
        if isinstance(e, Var):
            out.add(e)
        elif isinstance(e, BinOp):
            walk(e.a)
            walk(e.b)

    walk(as_expr(expr))
    return out


def _iter_sum_terms(expr: Expr) -> Iterator[Expr]:
    """Yield the addends of a (possibly nested) sum."""
    if isinstance(expr, BinOp) and expr.op == "add":
        yield from _iter_sum_terms(expr.a)
        yield from _iter_sum_terms(expr.b)
    else:
        yield expr


def simplify(expr: ExprLike) -> Expr:
    """Light-weight algebraic simplifier.

    Applies constant folding bottom-up plus a few rewrite rules that matter
    for index expressions produced by the pipelining pass:

    * ``(x % n) % n  -> x % n``
    * ``(x % n) // n -> 0``
    * constant-term gathering in sums: ``(x + 1) + 2 -> x + 3``
    """
    expr = as_expr(expr)
    if not isinstance(expr, BinOp):
        return expr
    a = simplify(expr.a)
    b = simplify(expr.b)
    rebuilt = _binop(expr.op, a, b)
    if not isinstance(rebuilt, BinOp):
        return rebuilt
    a, b, op = rebuilt.a, rebuilt.b, rebuilt.op

    if op == "floormod" and isinstance(b, IntImm):
        # (x % n) % n -> x % n
        if isinstance(a, BinOp) and a.op == "floormod" and isinstance(a.b, IntImm):
            if a.b.value == b.value:
                return a
    if op == "floordiv" and isinstance(b, IntImm) and b.value > 0:
        # (x % n) // n -> 0   for 0 <= x % n < n
        if isinstance(a, BinOp) and a.op == "floormod" and isinstance(a.b, IntImm):
            if a.b.value == b.value:
                return IntImm(0)
    if op == "add":
        # Gather constant addends: rebuild sum with a single trailing IntImm.
        terms = list(_iter_sum_terms(rebuilt))
        const_total = sum(t.value for t in terms if isinstance(t, IntImm))
        sym_terms = [t for t in terms if not isinstance(t, IntImm)]
        if len(sym_terms) < len(terms) - 1 or (
            len(sym_terms) == len(terms) - 1 and isinstance(terms[-1], IntImm) is False
        ):
            out: Expr
            if not sym_terms:
                return IntImm(const_total)
            out = sym_terms[0]
            for t in sym_terms[1:]:
                out = _binop("add", out, t)
            if const_total != 0:
                out = _binop("add", out, IntImm(const_total))
            return out
    return rebuilt


def struct_equal(a: ExprLike, b: ExprLike) -> bool:
    """Structural equality of two expression trees (Var compared by identity)."""
    a = as_expr(a)
    b = as_expr(b)
    if type(a) is not type(b):
        return False
    if isinstance(a, IntImm):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, FloatImm):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, Var):
        return a is b
    if isinstance(a, BinOp):
        assert isinstance(b, BinOp)
        return a.op == b.op and struct_equal(a.a, b.a) and struct_equal(a.b, b.b)
    raise TypeError(f"unknown expr {a!r}")

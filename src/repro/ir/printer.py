"""Pretty-printer producing text in the style of the paper's Fig. 7."""

from __future__ import annotations

from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
)

__all__ = ["format_stmt", "format_kernel"]

_FOR_PREFIX = {
    ForKind.SERIAL: "for",
    ForKind.BLOCK: "parallel[blockIdx] for",
    ForKind.THREAD: "parallel[threadIdx] for",
    ForKind.UNROLLED: "unrolled for",
    ForKind.VECTORIZED: "vectorized for",
}


def _region(r) -> str:
    parts = []
    for off, ext in zip(r.offsets, r.extents):
        parts.append(f"{off!r}" if ext == 1 else f"{off!r}:+{ext}")
    return f"{r.buffer.name}[{', '.join(parts)}]"


def _lines(stmt: Stmt, indent: int, out: list) -> None:
    pad = "  " * indent
    if isinstance(stmt, SeqStmt):
        for s in stmt.stmts:
            _lines(s, indent, out)
    elif isinstance(stmt, For):
        ann = f"  # {stmt.annotations}" if stmt.annotations else ""
        out.append(f"{pad}{_FOR_PREFIX[stmt.kind]} {stmt.var.name} in 0..{stmt.extent!r}:{ann}")
        _lines(stmt.body, indent + 1, out)
    elif isinstance(stmt, IfThenElse):
        out.append(f"{pad}if {stmt.cond!r}:")
        _lines(stmt.then_body, indent + 1, out)
        if stmt.else_body is not None:
            out.append(f"{pad}else:")
            _lines(stmt.else_body, indent + 1, out)
    elif isinstance(stmt, Allocate):
        attrs = f"  # {stmt.attrs}" if stmt.attrs else ""
        shape = "][".join(str(s) for s in stmt.buffer.shape)
        out.append(f"{pad}alloc {stmt.buffer.name}[{shape}] @{stmt.buffer.scope.value}{attrs}")
        _lines(stmt.body, indent, out)
    elif isinstance(stmt, MemCopy):
        op = "async_memcpy" if stmt.is_async else "memcpy"
        out.append(f"{pad}{op}({_region(stmt.dst)}, {_region(stmt.src)})")
    elif isinstance(stmt, ComputeStmt):
        ins = ", ".join(_region(r) for r in stmt.inputs)
        out.append(f"{pad}{stmt.kind}({_region(stmt.out)}, {ins})")
    elif isinstance(stmt, PipelineSync):
        out.append(f"{pad}{stmt.buffer.name}.{stmt.kind.value}()")
    else:
        raise TypeError(f"unknown stmt {type(stmt).__name__}")


def format_stmt(stmt: Stmt) -> str:
    """Render a statement tree as indented pseudo-code."""
    out: list = []
    _lines(stmt, 0, out)
    return "\n".join(out)


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel with its signature."""
    params = ", ".join(repr(p) for p in kernel.params)
    header = f"kernel {kernel.name}({params}):"
    return header + "\n" + format_stmt(kernel.body)

"""A small imperative builder for constructing IR in lowering code and tests.

Example
-------
>>> from repro.ir import builder, buffer
>>> b = builder.IRBuilder()
>>> A = buffer.Buffer("A", (8, 8))
>>> with b.allocate(buffer.Buffer("A_sh", (4, 4), scope=buffer.Scope.SHARED)) as A_sh:
...     with b.serial_for("ko", 2) as ko:
...         b.copy(A_sh.full_region(), A.region((ko * 4, 4), (0, 4)), is_async=True)
>>> stmt = b.finish()
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional

from .buffer import Buffer, BufferRegion
from .expr import Var
from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    MemCopy,
    PipelineSync,
    Stmt,
    SyncKind,
    seq,
)

__all__ = ["IRBuilder"]


class _Frame:
    """One open structural scope collecting child statements."""

    def __init__(self, close) -> None:
        self.stmts: List[Stmt] = []
        self.close = close


class IRBuilder:
    """Collects statements into nested scopes; ``finish`` returns the tree."""

    def __init__(self) -> None:
        self._frames: List[_Frame] = [_Frame(close=None)]

    # -- scopes --------------------------------------------------------------
    @contextlib.contextmanager
    def for_loop(self, name: str, extent, kind: ForKind = ForKind.SERIAL, annotations=None):
        var = Var(name)
        frame = _Frame(close=lambda body: For(var, extent, body, kind, annotations))
        self._frames.append(frame)
        try:
            yield var
        finally:
            self._pop_frame()

    def serial_for(self, name: str, extent, annotations=None):
        return self.for_loop(name, extent, ForKind.SERIAL, annotations)

    def block_for(self, name: str, extent):
        return self.for_loop(name, extent, ForKind.BLOCK)

    def thread_for(self, name: str, extent):
        return self.for_loop(name, extent, ForKind.THREAD)

    def unrolled_for(self, name: str, extent):
        return self.for_loop(name, extent, ForKind.UNROLLED)

    @contextlib.contextmanager
    def allocate(self, buf: Buffer, attrs: Optional[Dict[str, object]] = None):
        frame = _Frame(close=lambda body: Allocate(buf, body, attrs))
        self._frames.append(frame)
        try:
            yield buf
        finally:
            self._pop_frame()

    @contextlib.contextmanager
    def if_then(self, cond):
        frame = _Frame(close=lambda body: IfThenElse(cond, body))
        self._frames.append(frame)
        try:
            yield
        finally:
            self._pop_frame()

    # -- leaves ---------------------------------------------------------------
    def emit(self, stmt: Stmt) -> None:
        self._frames[-1].stmts.append(stmt)

    def copy(
        self, dst: BufferRegion, src: BufferRegion, is_async: bool = False, **annotations
    ) -> None:
        self.emit(MemCopy(dst, src, is_async=is_async, annotations=annotations or None))

    def compute(self, kind: str, out: BufferRegion, inputs, fn=None, flops: int = 0, **ann) -> None:
        self.emit(ComputeStmt(kind, out, inputs, fn=fn, flops=flops, annotations=ann or None))

    def sync(self, buf: Buffer, kind: SyncKind) -> None:
        self.emit(PipelineSync(buf, kind))

    # -- assembly -------------------------------------------------------------
    def _pop_frame(self) -> None:
        frame = self._frames.pop()
        if not frame.stmts:
            raise ValueError("scope closed without emitting any statement")
        body = seq(*frame.stmts)
        self._frames[-1].stmts.append(frame.close(body))

    def finish(self) -> Stmt:
        """Return the assembled tree; the builder must be back at top level."""
        if len(self._frames) != 1:
            raise RuntimeError(f"{len(self._frames) - 1} scope(s) still open")
        frame = self._frames[0]
        if not frame.stmts:
            raise ValueError("no statements were emitted")
        return seq(*frame.stmts)

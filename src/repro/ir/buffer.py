"""Buffers and buffer regions.

A :class:`Buffer` is a named, scoped, dense multi-dimensional array — the IR
analogue of ``A_shared`` / ``A_reg`` in Fig. 7 of the ALCOP paper. A
:class:`BufferRegion` is a box-shaped window ``[offset, offset + extent)`` per
dimension; the chunk-level statements (:class:`~repro.ir.stmt.MemCopy`,
:class:`~repro.ir.stmt.ComputeStmt`) move and consume whole regions.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple

from .expr import Expr, ExprLike, as_expr, evaluate, free_vars, substitute

__all__ = ["Scope", "Buffer", "BufferRegion", "DTYPE_BYTES"]

#: Bytes per element for the dtypes the compiler understands.
DTYPE_BYTES = {
    "float16": 2,
    "float32": 4,
    "float64": 8,
    "int8": 1,
    "int32": 4,
}


class Scope(enum.Enum):
    """Memory scope of a buffer in the GPU hierarchy (Fig. 3a)."""

    GLOBAL = "global"
    SHARED = "shared"
    REGISTER = "register"
    ACCUMULATOR = "accumulator"

    @property
    def is_on_chip(self) -> bool:
        return self is not Scope.GLOBAL

    #: The scope an asynchronous copy into this scope reads from. On Ampere,
    #: ``cp.async`` moves global -> shared; register loads read shared memory.
    @property
    def async_source(self) -> "Scope | None":
        if self is Scope.SHARED:
            return Scope.GLOBAL
        if self is Scope.REGISTER:
            return Scope.SHARED
        return None


class Buffer:
    """A dense, scoped array.

    Parameters
    ----------
    name:
        Display name, e.g. ``"A_shared"``.
    shape:
        Static integer shape.
    dtype:
        Element type; must be a key of :data:`DTYPE_BYTES`.
    scope:
        Memory scope.

    Identity-based equality: two buffers with the same name are distinct.
    """

    __slots__ = ("name", "shape", "dtype", "scope")

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        dtype: str = "float16",
        scope: Scope = Scope.GLOBAL,
    ) -> None:
        if dtype not in DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {dtype!r}")
        shape = tuple(int(s) for s in shape)
        if not shape or any(s <= 0 for s in shape):
            raise ValueError(f"buffer {name!r} requires a positive shape, got {shape}")
        self.name = name
        self.shape: Tuple[int, ...] = shape
        self.dtype = dtype
        self.scope = scope

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def elem_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def size_elems(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def size_bytes(self) -> int:
        return self.size_elems * self.elem_bytes

    def with_shape(self, shape: Sequence[int]) -> "Buffer":
        """A new buffer object with the same name/dtype/scope but new shape.

        Used by the pipelining pass when prepending the stage dimension.
        """
        return Buffer(self.name, shape, self.dtype, self.scope)

    def region(self, *dims: "tuple[ExprLike, int] | ExprLike") -> "BufferRegion":
        """Build a region. Each dim is ``(offset, extent)`` or a bare offset
        (meaning extent 1)."""
        offsets = []
        extents = []
        for d in dims:
            if isinstance(d, tuple):
                off, ext = d
            else:
                off, ext = d, 1
            offsets.append(as_expr(off))
            extents.append(int(ext))
        return BufferRegion(self, offsets, extents)

    def full_region(self) -> "BufferRegion":
        """The region covering the whole buffer."""
        return BufferRegion(self, [as_expr(0)] * self.ndim, list(self.shape))

    def __repr__(self) -> str:
        dims = ", ".join(str(s) for s in self.shape)
        return f"{self.name}<{self.dtype}[{dims}], {self.scope.value}>"


class BufferRegion:
    """A box region of a buffer: per-dim ``[offset, offset + extent)``.

    Offsets are expressions over loop variables; extents are static ints
    (tile sizes are compile-time constants throughout this compiler).
    """

    __slots__ = ("buffer", "offsets", "extents")

    def __init__(
        self,
        buffer: Buffer,
        offsets: Sequence[ExprLike],
        extents: Sequence[int],
    ) -> None:
        offsets = [as_expr(o) for o in offsets]
        extents = [int(e) for e in extents]
        if len(offsets) != buffer.ndim or len(extents) != buffer.ndim:
            raise ValueError(
                f"region rank mismatch for {buffer.name}: buffer has "
                f"{buffer.ndim} dims, region has {len(offsets)}/{len(extents)}"
            )
        if any(e <= 0 for e in extents):
            raise ValueError(f"region extents must be positive, got {extents}")
        if any(e > s for e, s in zip(extents, buffer.shape)):
            raise ValueError(
                f"region extents {extents} exceed buffer shape {buffer.shape} "
                f"for {buffer.name}"
            )
        self.buffer = buffer
        self.offsets: Tuple[Expr, ...] = tuple(offsets)
        self.extents: Tuple[int, ...] = tuple(extents)

    @classmethod
    def _trusted(
        cls,
        buffer: Buffer,
        offsets: Tuple[Expr, ...],
        extents: Tuple[int, ...],
    ) -> "BufferRegion":
        """Construct without coercion or validation — for internal callers
        (region substitution, the pipelining rewrite) that derive the
        arguments from an already-validated region and pass proper tuples.
        The measurement sweep builds millions of regions; the public
        constructor's checks are pure overhead there."""
        self = object.__new__(cls)
        self.buffer = buffer
        self.offsets = offsets
        self.extents = extents
        return self

    @property
    def size_elems(self) -> int:
        n = 1
        for e in self.extents:
            n *= e
        return n

    @property
    def size_bytes(self) -> int:
        return self.size_elems * self.buffer.elem_bytes

    def free_vars(self) -> set:
        out: set = set()
        for off in self.offsets:
            out |= free_vars(off)
        return out

    def substitute(self, mapping) -> "BufferRegion":
        """Region with variables substituted in its offsets."""
        return BufferRegion._trusted(
            self.buffer,
            tuple(substitute(o, mapping) for o in self.offsets),
            self.extents,
        )

    def with_offsets(self, offsets: Sequence[ExprLike]) -> "BufferRegion":
        return BufferRegion(self.buffer, offsets, self.extents)

    def with_buffer(self, buffer: Buffer) -> "BufferRegion":
        """Rebind the region to a same-rank buffer (offsets/extents kept)."""
        return BufferRegion(buffer, self.offsets, self.extents)

    def concrete_slices(self, env) -> Tuple[slice, ...]:
        """Evaluate offsets under ``env`` and return numpy slices.

        Raises ``IndexError`` if the box falls outside the buffer.
        """
        slices = []
        for off_expr, ext, dim in zip(self.offsets, self.extents, self.buffer.shape):
            off = evaluate(off_expr, env)
            if off < 0 or off + ext > dim:
                raise IndexError(
                    f"region [{off}, {off + ext}) out of bounds for dim {dim} "
                    f"of {self.buffer.name}"
                )
            slices.append(slice(off, off + ext))
        return tuple(slices)

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{o!r}:+{e}" if e != 1 else f"{o!r}" for o, e in zip(self.offsets, self.extents)
        )
        return f"{self.buffer.name}[{dims}]"

"""IR analysis helpers shared by passes, validation and the simulator."""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Set, Tuple

from .buffer import Buffer, BufferRegion
from .expr import IntImm, Var
from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
)

__all__ = [
    "walk_with_path",
    "collect",
    "collect_allocates",
    "collect_copies",
    "collect_computes",
    "collect_syncs",
    "buffers_read",
    "buffers_written",
    "loop_extent_int",
    "enclosing_loops",
    "count_nodes",
    "stmt_regions_read",
    "stmt_regions_written",
]


def walk_with_path(
    stmt: Stmt, _path: Tuple[Stmt, ...] = ()
) -> Iterator[Tuple[Stmt, Tuple[Stmt, ...]]]:
    """Yield ``(node, path)`` for every statement, pre-order.

    ``path`` is the tuple of ancestor statements from the root down to (but
    excluding) the node itself.
    """
    yield stmt, _path
    child_path = _path + (stmt,)
    if isinstance(stmt, For):
        yield from walk_with_path(stmt.body, child_path)
    elif isinstance(stmt, SeqStmt):
        for s in stmt.stmts:
            yield from walk_with_path(s, child_path)
    elif isinstance(stmt, IfThenElse):
        yield from walk_with_path(stmt.then_body, child_path)
        if stmt.else_body is not None:
            yield from walk_with_path(stmt.else_body, child_path)
    elif isinstance(stmt, Allocate):
        yield from walk_with_path(stmt.body, child_path)


def collect(stmt: Stmt, pred: Callable[[Stmt], bool]) -> List[Stmt]:
    """All statements satisfying ``pred``, pre-order."""
    return [node for node, _ in walk_with_path(stmt) if pred(node)]


def collect_allocates(stmt: Stmt) -> List[Allocate]:
    return [s for s in collect(stmt, lambda n: isinstance(n, Allocate))]  # type: ignore[misc]


def collect_copies(stmt: Stmt) -> List[MemCopy]:
    return [s for s in collect(stmt, lambda n: isinstance(n, MemCopy))]  # type: ignore[misc]


def collect_computes(stmt: Stmt) -> List[ComputeStmt]:
    return [s for s in collect(stmt, lambda n: isinstance(n, ComputeStmt))]  # type: ignore[misc]


def collect_syncs(stmt: Stmt) -> List[PipelineSync]:
    return [s for s in collect(stmt, lambda n: isinstance(n, PipelineSync))]  # type: ignore[misc]


def stmt_regions_read(stmt: Stmt) -> List[BufferRegion]:
    """Regions read by a leaf statement (non-recursive)."""
    if isinstance(stmt, MemCopy):
        return [stmt.src]
    if isinstance(stmt, ComputeStmt):
        regions = list(stmt.inputs)
        if stmt.annotations.get("accumulate", True):
            regions.append(stmt.out)
        return regions
    return []


def stmt_regions_written(stmt: Stmt) -> List[BufferRegion]:
    """Regions written by a leaf statement (non-recursive)."""
    if isinstance(stmt, MemCopy):
        return [stmt.dst]
    if isinstance(stmt, ComputeStmt):
        return [stmt.out]
    return []


def buffers_read(stmt: Stmt) -> Set[Buffer]:
    """All buffers read anywhere under ``stmt``."""
    out: Set[Buffer] = set()
    for node, _ in walk_with_path(stmt):
        for r in stmt_regions_read(node):
            out.add(r.buffer)
    return out


def buffers_written(stmt: Stmt) -> Set[Buffer]:
    """All buffers written anywhere under ``stmt``."""
    out: Set[Buffer] = set()
    for node, _ in walk_with_path(stmt):
        for r in stmt_regions_written(node):
            out.add(r.buffer)
    return out


def loop_extent_int(loop: For) -> int:
    """The loop extent as an int; raises if it is not a constant."""
    if isinstance(loop.extent, IntImm):
        return loop.extent.value
    raise ValueError(
        f"loop {loop.var.name} has a non-constant extent {loop.extent!r}; "
        "this compiler requires static loop bounds"
    )


def enclosing_loops(path: Tuple[Stmt, ...]) -> List[For]:
    """The ``For`` ancestors in a path, outermost first."""
    return [s for s in path if isinstance(s, For)]


def count_nodes(stmt: Stmt) -> int:
    """Total number of statement nodes (used in tests and pass budgets)."""
    return sum(1 for _ in walk_with_path(stmt))


def loop_var_map(stmt: Stmt) -> Dict[Var, For]:
    """Map each loop variable to its ``For`` node. Raises on duplicates."""
    out: Dict[Var, For] = {}
    for node, _ in walk_with_path(stmt):
        if isinstance(node, For):
            if node.var in out:
                raise ValueError(f"loop variable {node.var.name} bound twice")
            out[node.var] = node
    return out


def kernel_flops(kernel: Kernel) -> int:
    """Total FLOPs executed by a kernel, assuming constant loop extents."""

    def rec(stmt: Stmt, mult: int) -> int:
        if isinstance(stmt, For):
            return rec(stmt.body, mult * loop_extent_int(stmt))
        if isinstance(stmt, SeqStmt):
            return sum(rec(s, mult) for s in stmt.stmts)
        if isinstance(stmt, IfThenElse):
            # Conservative: count the then-branch (guards in pipelined code
            # fire on a subset of iterations; FLOPs live outside guards).
            total = rec(stmt.then_body, mult)
            if stmt.else_body is not None:
                total += rec(stmt.else_body, mult)
            return total
        if isinstance(stmt, Allocate):
            return rec(stmt.body, mult)
        if isinstance(stmt, ComputeStmt):
            return stmt.flops * mult
        return 0

    return rec(kernel.body, 1)

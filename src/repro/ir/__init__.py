"""Chunk-granularity tensor IR: expressions, buffers, statements, tooling.

This package is the substrate the ALCOP pipelining transformation operates
on — the reproduction's stand-in for TVM's TensorIR. See ``DESIGN.md``.
"""

from .buffer import DTYPE_BYTES, Buffer, BufferRegion, Scope
from .builder import IRBuilder
from .expr import (
    BinOp,
    Expr,
    FloatImm,
    IntImm,
    Var,
    as_expr,
    const,
    evaluate,
    floordiv,
    floormod,
    free_vars,
    imax,
    imin,
    simplify,
    struct_equal,
    substitute,
)
from .printer import format_kernel, format_stmt
from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
    SyncKind,
    seq,
)
from .syncheck import (
    SyncCheckError,
    SyncDiagnostic,
    check_kernel,
    format_diagnostics,
)
from .validate import ValidationError, validate_kernel, validate_stmt
from .visitor import StmtMutator, StmtVisitor, post_order_visit, pre_order_find

__all__ = [
    # buffer
    "Buffer",
    "BufferRegion",
    "Scope",
    "DTYPE_BYTES",
    # expr
    "BinOp",
    "Expr",
    "FloatImm",
    "IntImm",
    "Var",
    "as_expr",
    "const",
    "evaluate",
    "floordiv",
    "floormod",
    "free_vars",
    "imax",
    "imin",
    "simplify",
    "struct_equal",
    "substitute",
    # stmt
    "Allocate",
    "ComputeStmt",
    "For",
    "ForKind",
    "IfThenElse",
    "Kernel",
    "MemCopy",
    "PipelineSync",
    "SeqStmt",
    "Stmt",
    "SyncKind",
    "seq",
    # tooling
    "StmtMutator",
    "StmtVisitor",
    "post_order_visit",
    "pre_order_find",
    "format_kernel",
    "format_stmt",
    "ValidationError",
    "validate_kernel",
    "validate_stmt",
    "SyncCheckError",
    "SyncDiagnostic",
    "check_kernel",
    "format_diagnostics",
    "IRBuilder",
]

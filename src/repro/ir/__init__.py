"""Chunk-granularity tensor IR: expressions, buffers, statements, tooling.

This package is the substrate the ALCOP pipelining transformation operates
on — the reproduction's stand-in for TVM's TensorIR. See ``DESIGN.md``.
"""

from .buffer import Buffer, BufferRegion, Scope, DTYPE_BYTES
from .expr import (
    BinOp,
    Expr,
    FloatImm,
    IntImm,
    Var,
    as_expr,
    const,
    evaluate,
    floordiv,
    floormod,
    free_vars,
    imax,
    imin,
    simplify,
    struct_equal,
    substitute,
)
from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
    SyncKind,
    seq,
)
from .visitor import StmtMutator, StmtVisitor, post_order_visit, pre_order_find
from .printer import format_kernel, format_stmt
from .validate import ValidationError, validate_kernel, validate_stmt
from .builder import IRBuilder

__all__ = [
    # buffer
    "Buffer",
    "BufferRegion",
    "Scope",
    "DTYPE_BYTES",
    # expr
    "BinOp",
    "Expr",
    "FloatImm",
    "IntImm",
    "Var",
    "as_expr",
    "const",
    "evaluate",
    "floordiv",
    "floormod",
    "free_vars",
    "imax",
    "imin",
    "simplify",
    "struct_equal",
    "substitute",
    # stmt
    "Allocate",
    "ComputeStmt",
    "For",
    "ForKind",
    "IfThenElse",
    "Kernel",
    "MemCopy",
    "PipelineSync",
    "SeqStmt",
    "Stmt",
    "SyncKind",
    "seq",
    # tooling
    "StmtMutator",
    "StmtVisitor",
    "post_order_visit",
    "pre_order_find",
    "format_kernel",
    "format_stmt",
    "ValidationError",
    "validate_kernel",
    "validate_stmt",
    "IRBuilder",
]

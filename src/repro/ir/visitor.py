"""Visitors and mutators over the statement IR.

:class:`StmtVisitor` walks a tree calling ``visit_<nodetype>`` hooks;
:class:`StmtMutator` rebuilds a tree bottom-up, preserving node identity when
nothing changed (so unchanged subtrees are shared, which keeps passes cheap
and makes "did anything change" checks trivial).
"""

from __future__ import annotations

from typing import Callable, Optional

from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
)

__all__ = ["StmtVisitor", "StmtMutator", "post_order_visit", "pre_order_find"]


class StmtVisitor:
    """Read-only traversal. Override ``visit_*`` methods; call ``visit``."""

    def visit(self, stmt: Stmt) -> None:
        method = getattr(self, f"visit_{type(stmt).__name__.lower()}", None)
        if method is not None:
            method(stmt)
        else:
            self.generic_visit(stmt)

    def generic_visit(self, stmt: Stmt) -> None:
        """Visit children of ``stmt``."""
        if isinstance(stmt, For):
            self.visit(stmt.body)
        elif isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.visit(s)
        elif isinstance(stmt, IfThenElse):
            self.visit(stmt.then_body)
            if stmt.else_body is not None:
                self.visit(stmt.else_body)
        elif isinstance(stmt, Allocate):
            self.visit(stmt.body)
        elif isinstance(stmt, (MemCopy, ComputeStmt, PipelineSync)):
            pass
        else:
            raise TypeError(f"unknown stmt {type(stmt).__name__}")

    # Default hooks simply recurse; subclasses override the ones they need
    # and are expected to call generic_visit (or visit children manually).
    def visit_for(self, stmt: For) -> None:
        self.generic_visit(stmt)

    def visit_seqstmt(self, stmt: SeqStmt) -> None:
        self.generic_visit(stmt)

    def visit_ifthenelse(self, stmt: IfThenElse) -> None:
        self.generic_visit(stmt)

    def visit_allocate(self, stmt: Allocate) -> None:
        self.generic_visit(stmt)

    def visit_memcopy(self, stmt: MemCopy) -> None:
        pass

    def visit_computestmt(self, stmt: ComputeStmt) -> None:
        pass

    def visit_pipelinesync(self, stmt: PipelineSync) -> None:
        pass


class StmtMutator:
    """Rebuild a statement tree. Override ``visit_*``; each must return a
    :class:`Stmt` (or ``None`` to delete the node where a deletion makes
    sense — inside a :class:`SeqStmt`)."""

    def visit(self, stmt: Stmt) -> Optional[Stmt]:
        method = getattr(self, f"visit_{type(stmt).__name__.lower()}", None)
        if method is not None:
            return method(stmt)
        return self.generic_visit(stmt)

    def generic_visit(self, stmt: Stmt) -> Optional[Stmt]:
        if isinstance(stmt, For):
            body = self.visit(stmt.body)
            if body is None:
                return None
            if body is stmt.body:
                return stmt
            return stmt.with_body(body)
        if isinstance(stmt, SeqStmt):
            new_stmts = []
            changed = False
            for s in stmt.stmts:
                ns = self.visit(s)
                if ns is not s:
                    changed = True
                if ns is not None:
                    new_stmts.append(ns)
            if not changed:
                return stmt
            if not new_stmts:
                return None
            if len(new_stmts) == 1:
                return new_stmts[0]
            return SeqStmt(new_stmts)
        if isinstance(stmt, IfThenElse):
            then_body = self.visit(stmt.then_body)
            else_body = self.visit(stmt.else_body) if stmt.else_body is not None else None
            if then_body is stmt.then_body and else_body is stmt.else_body:
                return stmt
            if then_body is None:
                if else_body is None:
                    return None
                raise ValueError("cannot delete then-branch while keeping else-branch")
            return IfThenElse(stmt.cond, then_body, else_body)
        if isinstance(stmt, Allocate):
            body = self.visit(stmt.body)
            if body is None:
                return None
            if body is stmt.body:
                return stmt
            return stmt.with_body(body)
        if isinstance(stmt, (MemCopy, ComputeStmt, PipelineSync)):
            return stmt
        raise TypeError(f"unknown stmt {type(stmt).__name__}")

    def visit_for(self, stmt: For) -> Optional[Stmt]:
        return self.generic_visit(stmt)

    def visit_seqstmt(self, stmt: SeqStmt) -> Optional[Stmt]:
        return self.generic_visit(stmt)

    def visit_ifthenelse(self, stmt: IfThenElse) -> Optional[Stmt]:
        return self.generic_visit(stmt)

    def visit_allocate(self, stmt: Allocate) -> Optional[Stmt]:
        return self.generic_visit(stmt)

    def visit_memcopy(self, stmt: MemCopy) -> Optional[Stmt]:
        return stmt

    def visit_computestmt(self, stmt: ComputeStmt) -> Optional[Stmt]:
        return stmt

    def visit_pipelinesync(self, stmt: PipelineSync) -> Optional[Stmt]:
        return stmt

    def mutate_kernel(self, kernel: Kernel) -> Kernel:
        body = self.visit(kernel.body)
        if body is None:
            raise ValueError("mutator deleted the whole kernel body")
        if body is kernel.body:
            return kernel
        return kernel.with_body(body)


def post_order_visit(stmt: Stmt, fn: Callable[[Stmt], None]) -> None:
    """Call ``fn`` on every statement in post-order."""

    class _V(StmtVisitor):
        def visit(self, s: Stmt) -> None:
            self.generic_visit(s)
            fn(s)

    _V().visit(stmt)


def pre_order_find(stmt: Stmt, pred: Callable[[Stmt], bool]) -> Optional[Stmt]:
    """Return the first statement (pre-order) satisfying ``pred``."""
    found: list = []

    class _V(StmtVisitor):
        def visit(self, s: Stmt) -> None:
            if found:
                return
            if pred(s):
                found.append(s)
                return
            self.generic_visit(s)

    _V().visit(stmt)
    return found[0] if found else None

"""IR well-formedness validation.

``validate_kernel`` checks the structural invariants every pass must
preserve. It is cheap enough to run after every transformation in tests.
"""

from __future__ import annotations

from typing import List, Set

from .buffer import Buffer
from .expr import Var, free_vars
from .stmt import (
    Allocate,
    ComputeStmt,
    For,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
)

__all__ = ["ValidationError", "validate_kernel", "validate_stmt"]


class ValidationError(Exception):
    """Raised when an IR tree violates a structural invariant."""


def _check(cond: bool, msg: str) -> None:
    if not cond:
        raise ValidationError(msg)


def validate_stmt(stmt: Stmt, visible_buffers: Set[Buffer], bound_vars: Set[Var]) -> None:
    """Recursively validate a statement subtree.

    Invariants checked:

    * every buffer referenced by a region is a parameter or allocated in an
      enclosing :class:`Allocate`;
    * every variable in region offsets / loop extents / conditions is bound
      by an enclosing :class:`For`;
    * loop variables are not rebound;
    * ``PipelineSync`` references a visible buffer;
    * region ranks already match their buffers (enforced by constructors).
    """
    if isinstance(stmt, For):
        _check(stmt.var not in bound_vars, f"loop var {stmt.var.name} rebound")
        for v in free_vars(stmt.extent):
            _check(v in bound_vars, f"unbound var {v.name} in extent of loop {stmt.var.name}")
        validate_stmt(stmt.body, visible_buffers, bound_vars | {stmt.var})
    elif isinstance(stmt, SeqStmt):
        for s in stmt.stmts:
            validate_stmt(s, visible_buffers, bound_vars)
    elif isinstance(stmt, IfThenElse):
        for v in free_vars(stmt.cond):
            _check(v in bound_vars, f"unbound var {v.name} in condition")
        validate_stmt(stmt.then_body, visible_buffers, bound_vars)
        if stmt.else_body is not None:
            validate_stmt(stmt.else_body, visible_buffers, bound_vars)
    elif isinstance(stmt, Allocate):
        _check(
            stmt.buffer not in visible_buffers,
            f"buffer {stmt.buffer.name} allocated twice",
        )
        stages = stmt.attrs.get("pipeline_stages")
        if stages is not None:
            _check(
                isinstance(stages, int) and stages >= 1,
                f"pipeline_stages on {stmt.buffer.name} must be a positive int",
            )
        validate_stmt(stmt.body, visible_buffers | {stmt.buffer}, bound_vars)
    elif isinstance(stmt, (MemCopy, ComputeStmt)):
        regions = []
        if isinstance(stmt, MemCopy):
            regions = [stmt.dst, stmt.src]
        else:
            regions = [stmt.out, *stmt.inputs]
        for r in regions:
            _check(
                r.buffer in visible_buffers,
                f"region references buffer {r.buffer.name} not visible here",
            )
            for v in r.free_vars():
                _check(v in bound_vars, f"unbound var {v.name} in region of {r.buffer.name}")
    elif isinstance(stmt, PipelineSync):
        _check(
            stmt.buffer in visible_buffers,
            f"sync references buffer {stmt.buffer.name} not visible here",
        )
    else:
        raise ValidationError(f"unknown statement type {type(stmt).__name__}")


def validate_kernel(kernel: Kernel) -> None:
    """Validate a complete kernel; raises :class:`ValidationError` on failure."""
    names: List[str] = [p.name for p in kernel.params]
    _check(len(names) == len(set(names)), f"duplicate parameter names in {names}")
    validate_stmt(kernel.body, set(kernel.params), set())

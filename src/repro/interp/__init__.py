"""IR interpreters (eager reference semantics and pipeline semantics)."""

from .executor import InterpreterError, PipelineHazardError, run_kernel

__all__ = ["InterpreterError", "PipelineHazardError", "run_kernel"]

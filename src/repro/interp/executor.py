"""IR interpreters: functional (eager) and pipeline-semantics execution.

Two execution modes over real numpy data:

* ``eager`` — asynchronous copies complete immediately and pipeline sync
  primitives are no-ops. This is the *reference semantics* of the
  untransformed IR.

* ``pipeline`` — asynchronous copies into pipelined buffers are **staged**:
  their writes are buffered per pipeline group and only become visible when
  a ``consumer_wait`` applies the oldest committed batch, faithfully
  modelling CUDA's ``cuda::pipeline`` (producer_acquire / producer_commit /
  consumer_wait / consumer_release). On-chip buffers start filled with NaN,
  so any read that on hardware would see stale or not-yet-arrived data
  poisons the output instead of silently succeeding. Capacity violations
  and waits on empty pipelines raise :class:`PipelineHazardError` — in a
  single thread of control they correspond to device-side deadlocks.

Barrier semantics mirror hardware: shared-memory pipelines are
threadblock-wide (one barrier per threadblock regardless of how many warps
execute the statement), while register pipelines are private to each warp.
The interpreter realizes this by keying each sync statement's effect on the
values of the non-``threadIdx`` loop variables for shared scope, and on all
loop variables for register scope.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..ir.buffer import Buffer, BufferRegion, Scope
from ..ir.expr import Var, evaluate
from ..ir.stmt import (
    Allocate,
    ComputeStmt,
    For,
    ForKind,
    IfThenElse,
    Kernel,
    MemCopy,
    PipelineSync,
    SeqStmt,
    Stmt,
    SyncKind,
)
from ..tensor.operation import ELEMENTWISE_FNS

__all__ = ["InterpreterError", "PipelineHazardError", "run_kernel"]

_NP_DTYPE = {
    "float16": np.float16,
    "float32": np.float32,
    "float64": np.float64,
    "int8": np.int8,
    "int32": np.int32,
}


class InterpreterError(Exception):
    """Generic interpretation failure (bad IR reaching the executor)."""


class PipelineHazardError(InterpreterError):
    """A pipeline protocol violation that would deadlock or corrupt data on
    hardware: acquire beyond capacity, wait on an empty pipeline, release
    without a waited batch, or an async copy outside any pipeline group."""


class _GroupState:
    """Runtime state of one pipeline group instance (one threadblock for
    shared scope; one warp for register scope)."""

    __slots__ = ("stages", "pending", "pending_open", "committed", "applied_unreleased")

    def __init__(self, stages: int) -> None:
        self.stages = stages
        self.pending: List[Tuple[np.ndarray, Tuple, np.ndarray]] = []
        self.pending_open = False
        self.committed: List[List[Tuple[np.ndarray, Tuple, np.ndarray]]] = []
        self.applied_unreleased = 0

    @property
    def occupied(self) -> int:
        return len(self.committed) + self.applied_unreleased + (1 if self.pending_open else 0)


class _Executor:
    def __init__(self, kernel: Kernel, arrays: Dict[Buffer, np.ndarray], mode: str) -> None:
        self.kernel = kernel
        self.arrays = arrays
        self.mode = mode
        self.env: Dict[Var, int] = {}
        self.kinds: Dict[Var, ForKind] = {}
        # Pipeline bookkeeping (pipeline mode only).
        self.buffer_group: Dict[Buffer, object] = {}
        self.group_scope: Dict[int, Scope] = {}
        self.group_stages: Dict[int, int] = {}
        self.states: Dict[Tuple, _GroupState] = {}
        self.fired: set = set()
        if mode == "pipeline":
            for info in kernel.attrs.get("pipeline_groups", []) or []:
                for b in info.buffers:
                    self.buffer_group[b] = info
                self.group_scope[id(info)] = info.scope
                self.group_stages[id(info)] = info.stages

    # ------------------------------------------------------------------ keys
    def _context_key(self, scope: Scope) -> Tuple:
        """Identity of the executing threadblock (shared scope) or warp
        (register scope)."""
        include_thread = scope is Scope.REGISTER
        items = []
        for var, value in self.env.items():
            kind = self.kinds[var]
            if kind is ForKind.BLOCK or (include_thread and kind is ForKind.THREAD):
                items.append((var.name, value))
        return tuple(sorted(items))

    def _barrier_key(self, stmt: PipelineSync, scope: Scope) -> Tuple:
        """Fire-once identity of a sync statement execution: hardware
        barriers execute once per threadblock (shared) / per warp (register)
        per surrounding sequential iteration."""
        include_thread = scope is Scope.REGISTER
        items = []
        for var, value in self.env.items():
            kind = self.kinds[var]
            if kind is ForKind.THREAD and not include_thread:
                continue
            items.append((var.name, value))
        return (id(stmt), tuple(sorted(items)))

    def _state_for(self, info) -> _GroupState:
        key = (id(info), self._context_key(info.scope))
        st = self.states.get(key)
        if st is None:
            st = _GroupState(info.stages)
            self.states[key] = st
        return st

    # ------------------------------------------------------------------ data
    def _region_index(self, region: BufferRegion) -> Tuple:
        """Concrete numpy index: extent-1 dims are squeezed to ints so
        compute functions see the natural fragment rank."""
        idx = []
        last = len(region.offsets) - 1
        for axis, (off_expr, ext, dim) in enumerate(
            zip(region.offsets, region.extents, region.buffer.shape)
        ):
            off = evaluate(off_expr, self.env)
            if off < 0 or off + ext > dim:
                raise InterpreterError(
                    f"region [{off}, {off + ext}) out of bounds for dim {dim} "
                    f"of {region.buffer.name}"
                )
            # Squeeze unit dims so compute fns see natural fragment ranks —
            # but keep the last axis a slice, or an all-unit region would
            # collapse to a 0-d scalar instead of a mutable view.
            if ext == 1 and axis != last:
                idx.append(off)
            else:
                idx.append(slice(off, off + ext))
        return tuple(idx)

    def _view(self, region: BufferRegion) -> np.ndarray:
        return self.arrays[region.buffer][self._region_index(region)]

    # ------------------------------------------------------------------ stmts
    def exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self.exec(s)
        elif isinstance(stmt, For):
            extent = evaluate(stmt.extent, self.env)
            self.kinds[stmt.var] = stmt.kind
            for i in range(extent):
                self.env[stmt.var] = i
                self.exec(stmt.body)
            del self.env[stmt.var]
            del self.kinds[stmt.var]
        elif isinstance(stmt, IfThenElse):
            if evaluate(stmt.cond, self.env):
                self.exec(stmt.then_body)
            elif stmt.else_body is not None:
                self.exec(stmt.else_body)
        elif isinstance(stmt, Allocate):
            arr = np.empty(stmt.buffer.shape, dtype=_NP_DTYPE[stmt.buffer.dtype])
            if arr.dtype.kind == "f":
                arr.fill(np.nan)  # stale reads must poison, not pass
            else:
                arr.fill(-(2**30))
            self.arrays[stmt.buffer] = arr
            self.exec(stmt.body)
            del self.arrays[stmt.buffer]
        elif isinstance(stmt, MemCopy):
            self._exec_copy(stmt)
        elif isinstance(stmt, ComputeStmt):
            out = self._view(stmt.out)
            ins = [self._view(r) for r in stmt.inputs]
            if stmt.fn is None:
                raise InterpreterError(f"compute statement {stmt.kind!r} has no semantics fn")
            stmt.fn(out, *ins)
        elif isinstance(stmt, PipelineSync):
            self._exec_sync(stmt)
        else:
            raise InterpreterError(f"unknown statement {type(stmt).__name__}")

    def _exec_copy(self, stmt: MemCopy) -> None:
        src = self._view(stmt.src)
        fused = stmt.annotations.get("fused_fn")
        if fused is not None:
            for fn_name in (fused,) if isinstance(fused, str) else fused:
                src = ELEMENTWISE_FNS[fn_name](src)
        dst_arr = self.arrays[stmt.dst.buffer]
        dst_idx = self._region_index(stmt.dst)
        data = np.asarray(src).reshape(dst_arr[dst_idx].shape).astype(dst_arr.dtype)

        if self.mode == "pipeline" and stmt.is_async:
            info = self.buffer_group.get(stmt.dst.buffer)
            if info is None:
                raise PipelineHazardError(
                    f"asynchronous copy into {stmt.dst.buffer.name} which is "
                    "not part of any pipeline group; did the pipelining pass run?"
                )
            st = self._state_for(info)
            if not st.pending_open:
                raise PipelineHazardError(
                    f"async copy into {stmt.dst.buffer.name} outside a "
                    "producer_acquire/commit window"
                )
            st.pending.append((dst_arr, dst_idx, data))
        else:
            dst_arr[dst_idx] = data

    def _exec_sync(self, stmt: PipelineSync) -> None:
        if self.mode != "pipeline":
            return
        info = self.buffer_group.get(stmt.buffer)
        if info is None:
            raise PipelineHazardError(
                f"sync on {stmt.buffer.name} which is not part of any pipeline group"
            )
        key = self._barrier_key(stmt, info.scope)
        if key in self.fired:
            return  # a TB-wide barrier executed by another warp
        self.fired.add(key)
        st = self._state_for(info)
        if stmt.kind is SyncKind.PRODUCER_ACQUIRE:
            if st.occupied >= st.stages:
                raise PipelineHazardError(
                    f"producer_acquire on {stmt.buffer.name}: all "
                    f"{st.stages} stages occupied; device would deadlock"
                )
            st.pending_open = True
            st.pending = []
        elif stmt.kind is SyncKind.PRODUCER_COMMIT:
            if not st.pending_open:
                raise PipelineHazardError(
                    f"producer_commit on {stmt.buffer.name} without a matching acquire"
                )
            st.committed.append(st.pending)
            st.pending = []
            st.pending_open = False
        elif stmt.kind is SyncKind.CONSUMER_WAIT:
            if not st.committed:
                raise PipelineHazardError(
                    f"consumer_wait on {stmt.buffer.name} with no committed "
                    "batch; device would deadlock"
                )
            for arr, idx, data in st.committed.pop(0):
                arr[idx] = data
            st.applied_unreleased += 1
        elif stmt.kind is SyncKind.CONSUMER_RELEASE:
            if st.applied_unreleased <= 0:
                raise PipelineHazardError(
                    f"consumer_release on {stmt.buffer.name} without a waited batch"
                )
            st.applied_unreleased -= 1


def run_kernel(
    kernel: Kernel,
    inputs: Dict[str, np.ndarray],
    mode: str = "eager",
) -> Dict[str, np.ndarray]:
    """Execute ``kernel`` on numpy inputs and return all parameter arrays.

    Parameters
    ----------
    kernel:
        A lowered (and possibly pipelined) kernel.
    inputs:
        Arrays for input parameters, keyed by buffer name. Output parameters
        may be omitted; they are allocated and NaN-filled.
    mode:
        ``"eager"`` or ``"pipeline"`` (see module docstring).
    """
    if mode not in ("eager", "pipeline"):
        raise ValueError(f"unknown mode {mode!r}")
    arrays: Dict[Buffer, np.ndarray] = {}
    for param in kernel.params:
        dtype = _NP_DTYPE[param.dtype]
        if param.name in inputs:
            arr = np.asarray(inputs[param.name], dtype=dtype)
            if arr.shape != param.shape:
                raise InterpreterError(
                    f"input {param.name} has shape {arr.shape}, expected {param.shape}"
                )
            arrays[param] = arr.copy()
        else:
            arr = np.empty(param.shape, dtype=dtype)
            arr.fill(np.nan if arr.dtype.kind == "f" else -(2**30))
            arrays[param] = arr
    ex = _Executor(kernel, arrays, mode)
    ex.exec(kernel.body)
    return {p.name: arrays[p] for p in kernel.params}

"""Aggregate experiment results into a single reproduction report.

``python -m repro.report`` collects the tables that the benchmark suite
wrote to ``benchmarks/results/`` and assembles one Markdown document with
the paper-vs-measured summary, suitable for pasting into an issue or
paper-reproduction registry entry.
"""

from __future__ import annotations

import datetime
import pathlib
import sys
from typing import Dict, List, Optional

__all__ = ["collect_results", "render_report", "main"]

#: Result files in presentation order: (file stem, paper artifact).
_SECTIONS = [
    ("fig1b_motivation", "Fig. 1b — motivating example"),
    ("fig10_single_op", "Fig. 10 — single-operator speedups"),
    ("table3_end_to_end", "Table III — end-to-end models"),
    ("fig11_vs_library", "Fig. 11 — versus vendor libraries"),
    ("fig12_model_accuracy", "Fig. 12 — performance-model accuracy"),
    ("fig13_search_efficiency", "Fig. 13 — search efficiency"),
    ("ablation_stages_levels", "Ablation — stages x levels (Figs. 2/3)"),
    ("ablation_gpu_generations", "Ablation — GPU generations"),
    ("ablation_splitk", "Ablation — split-K extension"),
]


def collect_results(results_dir: pathlib.Path) -> Dict[str, str]:
    """Read every known result table that exists under ``results_dir``."""
    out: Dict[str, str] = {}
    for stem, _ in _SECTIONS:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            out[stem] = path.read_text().rstrip()
    return out


def render_report(results: Dict[str, str], timestamp: Optional[str] = None) -> str:
    """Render collected tables as one Markdown document."""
    stamp = timestamp or datetime.datetime.now().isoformat(timespec="seconds")
    lines: List[str] = [
        "# ALCOP reproduction report",
        "",
        f"Generated {stamp} from `benchmarks/results/`. "
        "Regenerate the inputs with `pytest benchmarks/ --benchmark-only`; "
        "see EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    missing: List[str] = []
    for stem, title in _SECTIONS:
        if stem not in results:
            missing.append(title)
            continue
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(results[stem])
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Not yet generated")
        lines.append("")
        for title in missing:
            lines.append(f"* {title}")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    results_dir = pathlib.Path(argv[0]) if argv else (
        pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    )
    out_path = pathlib.Path(argv[1]) if len(argv) > 1 else None
    results = collect_results(results_dir)
    if not results:
        print(f"no result tables found under {results_dir}", file=sys.stderr)
        return 1
    report = render_report(results)
    if out_path:
        out_path.write_text(report)
        print(f"wrote {out_path} ({len(report.splitlines())} lines)")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Tensor expression layer: dataflow graph of placeholder / elementwise /
cache-read / contraction operations."""

from .operation import (
    ELEMENTWISE_FNS,
    CacheReadOp,
    ContractionOp,
    ElementwiseOp,
    GemmSpec,
    Operation,
    PlaceholderOp,
    Tensor,
    contraction,
    elementwise,
    placeholder,
)

__all__ = [
    "ELEMENTWISE_FNS",
    "CacheReadOp",
    "ContractionOp",
    "ElementwiseOp",
    "GemmSpec",
    "Operation",
    "PlaceholderOp",
    "Tensor",
    "contraction",
    "elementwise",
    "placeholder",
]

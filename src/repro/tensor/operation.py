"""Tensor-level dataflow graph (the compiler's "te" layer).

A :class:`Tensor` is a node in a dataflow graph whose producing
:class:`Operation` is one of:

* :class:`PlaceholderOp` — a kernel input,
* :class:`ElementwiseOp` — a lightweight map over one tensor (datatype cast,
  scaling, activation) — the kind of op the paper's Fig. 5 inlines,
* :class:`CacheReadOp` — an identical copy of its source into a buffer scope
  (the result of ``Schedule.cache_read``),
* :class:`ContractionOp` — a GEMM-family reduction (MatMul / batched MatMul /
  implicit-GEMM convolution) described by a :class:`GemmSpec`.

The schedule transformation (Sec. II) reasons about this graph: pipelining
applicability depends on what *produces* each buffer and where the buffer
sits relative to the sequential reduction loop.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..ir.buffer import DTYPE_BYTES, Scope

__all__ = [
    "GemmSpec",
    "Tensor",
    "Operation",
    "PlaceholderOp",
    "ElementwiseOp",
    "CacheReadOp",
    "ContractionOp",
    "ELEMENTWISE_FNS",
]

#: Registry of elementwise semantics by name. Each maps an ndarray to an
#: ndarray of the same shape.
ELEMENTWISE_FNS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "identity": lambda x: x,
    "cast_f32": lambda x: x.astype(np.float32),
    "cast_f16": lambda x: x.astype(np.float16),
    "relu": lambda x: np.maximum(x, 0),
    "scale2": lambda x: x * 2,
    "gelu": lambda x: 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3))),
}


@dataclasses.dataclass(frozen=True)
class GemmSpec:
    """A GEMM-family problem: ``C[b, m, n] = sum_k A[b, m, k] * B[b, n, k]``.

    Convolutions lower to this via implicit GEMM (im2col); their
    ``a_footprint_ratio`` records how much *unique* DRAM data backs the
    virtual im2col matrix (overlapping patches are re-reads served by cache).
    """

    name: str
    batch: int
    m: int
    n: int
    k: int
    dtype: str = "float16"
    #: unique-bytes / im2col-bytes for operand A (1.0 for plain GEMM).
    a_footprint_ratio: float = 1.0
    #: same for operand B (weights are always unique).
    b_footprint_ratio: float = 1.0

    def __post_init__(self) -> None:
        if min(self.batch, self.m, self.n, self.k) <= 0:
            raise ValueError(f"GemmSpec {self.name} requires positive dims")
        if self.dtype not in DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {self.dtype}")
        if not (0.0 < self.a_footprint_ratio <= 1.0 and 0.0 < self.b_footprint_ratio <= 1.0):
            raise ValueError("footprint ratios must be in (0, 1]")

    @property
    def flops(self) -> int:
        """Total floating point operations (multiply + add)."""
        return 2 * self.batch * self.m * self.n * self.k

    @property
    def elem_bytes(self) -> int:
        return DTYPE_BYTES[self.dtype]

    @property
    def a_bytes(self) -> int:
        return self.batch * self.m * self.k * self.elem_bytes

    @property
    def b_bytes(self) -> int:
        return self.batch * self.n * self.k * self.elem_bytes

    @property
    def c_bytes(self) -> int:
        return self.batch * self.m * self.n * self.elem_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of unique DRAM traffic."""
        unique = (
            self.a_bytes * self.a_footprint_ratio
            + self.b_bytes * self.b_footprint_ratio
            + self.c_bytes
        )
        return self.flops / unique


class Operation:
    """Base class of tensor-producing operations."""

    __slots__ = ("inputs",)

    def __init__(self, inputs: Sequence["Tensor"]) -> None:
        self.inputs: Tuple["Tensor", ...] = tuple(inputs)

    @property
    def is_pure_copy(self) -> bool:
        """True when this op is a verbatim memory copy (can be made async)."""
        return False


class PlaceholderOp(Operation):
    """A kernel input tensor."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(())


class ElementwiseOp(Operation):
    """``out[i] = fn(in[i])``. ``fn_name`` indexes :data:`ELEMENTWISE_FNS`."""

    __slots__ = ("fn_name",)

    def __init__(self, source: "Tensor", fn_name: str) -> None:
        if fn_name not in ELEMENTWISE_FNS:
            raise ValueError(f"unknown elementwise fn {fn_name!r}")
        super().__init__((source,))
        self.fn_name = fn_name

    @property
    def fn(self) -> Callable[[np.ndarray], np.ndarray]:
        return ELEMENTWISE_FNS[self.fn_name]


class CacheReadOp(Operation):
    """An identical copy of ``source`` into a buffer scope.

    ``fused_fn_name`` is set when an elementwise producer has been inlined
    *into* the copy (paper Fig. 5, case 1) — the copy then computes while
    copying and stops being a pure (async-capable) copy.
    """

    __slots__ = ("fused_fn_name",)

    def __init__(self, source: "Tensor", fused_fn_name: Optional[str] = None) -> None:
        super().__init__((source,))
        self.fused_fn_name = fused_fn_name

    @property
    def is_pure_copy(self) -> bool:
        return self.fused_fn_name is None


class ContractionOp(Operation):
    """The GEMM-family reduction over operand tensors A and B.

    ``a_fused_fn_name`` / ``b_fused_fn_name`` record elementwise functions
    fused into the operand *read* of the contraction (paper Fig. 5, case 2:
    pipeline first, then inline ``f`` into the consumer).
    """

    __slots__ = ("spec", "a_fused_fn_name", "b_fused_fn_name")

    def __init__(
        self,
        a: "Tensor",
        b: "Tensor",
        spec: GemmSpec,
        a_fused_fn_name: Optional[str] = None,
        b_fused_fn_name: Optional[str] = None,
    ) -> None:
        super().__init__((a, b))
        self.spec = spec
        self.a_fused_fn_name = a_fused_fn_name
        self.b_fused_fn_name = b_fused_fn_name


class Tensor:
    """A node in the dataflow graph.

    Tensors compare by identity. ``scope`` is GLOBAL for inputs/outputs and
    an on-chip scope for cache-read buffers.
    """

    __slots__ = ("name", "shape", "dtype", "op", "scope")

    _counter = 0

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        op: Operation,
        dtype: str = "float16",
        scope: Scope = Scope.GLOBAL,
    ) -> None:
        self.name = name
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.op = op
        self.scope = scope

    @property
    def producer(self) -> Optional["Tensor"]:
        """The single source tensor for copy/elementwise ops, else ``None``."""
        if isinstance(self.op, (CacheReadOp, ElementwiseOp)):
            return self.op.inputs[0]
        return None

    def __repr__(self) -> str:
        return f"Tensor({self.name}, {self.shape}, {self.scope.value})"


def placeholder(name: str, shape: Sequence[int], dtype: str = "float16") -> Tensor:
    """Create an input tensor."""
    return Tensor(name, shape, PlaceholderOp(), dtype=dtype)


def elementwise(source: Tensor, fn_name: str, name: Optional[str] = None) -> Tensor:
    """Apply an elementwise function, producing a new global tensor."""
    return Tensor(
        name or f"{source.name}_{fn_name}",
        source.shape,
        ElementwiseOp(source, fn_name),
        dtype=source.dtype,
        scope=Scope.GLOBAL,
    )


def contraction(a: Tensor, b: Tensor, spec: GemmSpec, name: str = "C") -> Tensor:
    """Create the contraction output tensor ``C`` of shape (batch, m, n)."""
    shape = (spec.batch, spec.m, spec.n) if spec.batch > 1 else (spec.m, spec.n)
    return Tensor(name, shape, ContractionOp(a, b, spec), dtype=spec.dtype)

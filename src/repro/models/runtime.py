"""End-to-end model latency estimation (paper Sec. V-B, Table III).

A model's inference latency is the sum of its GEMM-family kernels (each
compiled and timed by the backend under evaluation), its memory-bound
elementwise kernels (roofline; scaled by the backend's fusion quality),
and per-kernel launch overhead. Operators the tiled GEMM compiler cannot
express (3-channel stem convolutions, sub-tile classifier GEMMs) are
costed by a backend-independent roofline fallback.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Protocol

from ..core.errors import DegradationEvent, ReproError
from ..gpusim.config import A100, GpuSpec
from ..ops.elementwise import memory_bound_latency
from ..tensor.operation import GemmSpec
from .graph import ModelGraph

__all__ = ["Backend", "ModelLatency", "estimate_model_latency", "roofline_fallback_latency"]


class Backend(Protocol):
    """What the runtime needs from a compiler backend."""

    def gemm_latency(self, spec: GemmSpec) -> float: ...

    elementwise_factor: float
    launch_overhead: float
    fallback_factor: float


@dataclasses.dataclass
class ModelLatency:
    """Per-category latency breakdown of one model on one backend (us)."""

    model: str
    backend: str
    gemm_us: float
    fallback_us: float
    memory_us: float
    overhead_us: float
    per_op: Dict[str, float]
    #: every graceful-degradation step taken while estimating this model:
    #: ladder steps recorded by the backend plus runtime roofline
    #: fallbacks for ops no variant could compile.
    degradations: List[DegradationEvent] = dataclasses.field(default_factory=list)

    @property
    def total_us(self) -> float:
        return self.gemm_us + self.fallback_us + self.memory_us + self.overhead_us

    @property
    def n_degraded_ops(self) -> int:
        return len({ev.op for ev in self.degradations})


def roofline_fallback_latency(spec: GemmSpec, gpu: GpuSpec = A100) -> float:
    """Latency of an op compiled through a generic (untiled) path: the
    maximum of a half-efficiency compute roofline and a 70%-efficiency
    memory roofline."""
    t_compute = spec.flops / (0.5 * gpu.tc_flops_total)
    unique_bytes = (
        spec.a_bytes * spec.a_footprint_ratio + spec.b_bytes * spec.b_footprint_ratio + spec.c_bytes
    )
    t_memory = unique_bytes / (0.7 * gpu.dram_bw)
    return max(t_compute, t_memory)


def estimate_model_latency(
    graph: ModelGraph, backend: Backend, gpu: GpuSpec = A100, backend_name: str = ""
) -> ModelLatency:
    """Compile every operator of ``graph`` with ``backend`` and sum.

    Fault tolerance: a backend failure on one op (any
    :class:`~repro.core.errors.ReproError` — compile, transform,
    sync-verification or simulation) degrades that op to the roofline
    fallback instead of failing the model; every degradation (the
    backend's own ladder steps included) is recorded on the result.
    """
    label = backend_name or type(backend).__name__
    gemm_us = 0.0
    fallback_us = 0.0
    overhead_us = 0.0
    per_op: Dict[str, float] = {}
    degradations: List[DegradationEvent] = []
    for op in graph.gemm_ops:
        n_before = len(getattr(backend, "degradations", ()))
        try:
            per_call = backend.gemm_latency(op.spec)
            gemm_us += per_call * op.count
        except (ReproError, ValueError) as e:
            per_call = roofline_fallback_latency(op.spec, gpu) * backend.fallback_factor
            fallback_us += per_call * op.count
            backend_steps = list(getattr(backend, "degradations", ())[n_before:])
            degradations.extend(backend_steps)
            if not any(ev.to_variant == "roofline" for ev in backend_steps):
                # Backends without their own ladder (or errors thrown before
                # it engaged) still get the roofline step on the record.
                degradations.append(
                    DegradationEvent(
                        op=op.spec.name,
                        from_variant=label,
                        to_variant="roofline",
                        stage=getattr(e, "stage", "unknown"),
                        reason=str(e).splitlines()[0] if str(e) else repr(e),
                    )
                )
        else:
            # Success may still have stepped down the ladder en route.
            degradations.extend(getattr(backend, "degradations", ())[n_before:])
        per_op[op.spec.name] = per_call * op.count
        overhead_us += backend.launch_overhead * op.count

    memory_us = 0.0
    for mop in graph.memory_ops:
        memory_us += (
            memory_bound_latency(mop, gpu, launch_overhead=backend.launch_overhead)
            * backend.elementwise_factor
        )
    return ModelLatency(
        model=graph.name,
        backend=label,
        gemm_us=gemm_us,
        fallback_us=fallback_us,
        memory_us=memory_us,
        overhead_us=overhead_us,
        per_op=per_op,
        degradations=degradations,
    )

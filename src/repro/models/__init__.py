"""End-to-end model graphs and latency estimation (paper Table III)."""

from .graph import GemmOp, ModelGraph
from .runtime import Backend, ModelLatency, estimate_model_latency, roofline_fallback_latency
from .zoo import (
    MODEL_ZOO,
    build_bert,
    build_bert_large,
    build_gpt2,
    build_resnet18,
    build_resnet50,
    build_vgg16,
)

__all__ = [
    "GemmOp",
    "ModelGraph",
    "Backend",
    "ModelLatency",
    "estimate_model_latency",
    "roofline_fallback_latency",
    "MODEL_ZOO",
    "build_bert",
    "build_bert_large",
    "build_gpt2",
    "build_resnet18",
    "build_resnet50",
    "build_vgg16",
]

"""Model graphs: the operator inventory of one DNN inference pass."""

from __future__ import annotations

import dataclasses
from typing import List

from ..ops.elementwise import MemoryBoundOp
from ..tensor.operation import GemmSpec

__all__ = ["GemmOp", "ModelGraph"]


@dataclasses.dataclass(frozen=True)
class GemmOp:
    """One GEMM-family operator appearing ``count`` times in the model."""

    spec: GemmSpec
    count: int = 1
    kind: str = "matmul"  # matmul | bmm | conv


@dataclasses.dataclass
class ModelGraph:
    """A model as the multiset of its operators.

    End-to-end latency is dominated by GEMM-family kernels (where
    pipelining applies) plus bandwidth-bound elementwise/normalization
    kernels (identical across TVM-family backends, cheaper under XLA's
    fusion). This is the level at which the paper's Table III compares
    compilers.
    """

    name: str
    gemm_ops: List[GemmOp] = dataclasses.field(default_factory=list)
    memory_ops: List[MemoryBoundOp] = dataclasses.field(default_factory=list)

    def add_gemm(self, spec: GemmSpec, count: int = 1, kind: str = "matmul") -> None:
        self.gemm_ops.append(GemmOp(spec=spec, count=count, kind=kind))

    def add_memory_op(self, op: MemoryBoundOp) -> None:
        self.memory_ops.append(op)

    @property
    def total_gemm_flops(self) -> int:
        return sum(op.spec.flops * op.count for op in self.gemm_ops)

    @property
    def n_kernels(self) -> int:
        return sum(op.count for op in self.gemm_ops) + sum(m.count for m in self.memory_ops)

    def __repr__(self) -> str:
        return (
            f"ModelGraph({self.name}: {len(self.gemm_ops)} unique gemm ops, "
            f"{self.total_gemm_flops / 1e9:.1f} GFLOP)"
        )

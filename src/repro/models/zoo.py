"""The six evaluation models of paper Table III.

BERT, BERT-Large and GPT-2 use standard transformer dimensions; the
vision models use their published convolution stacks at inference batch
sizes typical of the paper's era (16 for ResNets, 8 for VGG). Shapes feed
the implicit-GEMM compiler; layers it cannot tile (the 3-channel stem
convolution, tiny classifier GEMMs) are costed through a roofline fallback
identical across TVM-family backends.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..ops.bmm import bmm_spec
from ..ops.conv2d import Conv2dShape, conv2d_spec
from ..ops.elementwise import MemoryBoundOp
from ..ops.matmul import matmul_spec
from .graph import ModelGraph

__all__ = [
    "build_bert",
    "build_bert_large",
    "build_gpt2",
    "build_resnet18",
    "build_resnet50",
    "build_vgg16",
    "MODEL_ZOO",
]

_F16 = 2  # bytes per element


def _transformer(
    name: str, layers: int, hidden: int, heads: int, seq: int, batch: int = 1
) -> ModelGraph:
    g = ModelGraph(name)
    m = batch * seq
    head_dim = hidden // heads
    ffn = 4 * hidden
    g.add_gemm(matmul_spec(f"{name}_QKV", m, 3 * hidden, hidden), count=layers)
    g.add_gemm(matmul_spec(f"{name}_ATTN_OUT", m, hidden, hidden), count=layers)
    g.add_gemm(matmul_spec(f"{name}_FC1", m, ffn, hidden), count=layers)
    g.add_gemm(matmul_spec(f"{name}_FC2", m, hidden, ffn), count=layers)
    g.add_gemm(bmm_spec(f"{name}_QK", batch * heads, seq, seq, head_dim), count=layers, kind="bmm")
    g.add_gemm(bmm_spec(f"{name}_SV", batch * heads, seq, head_dim, seq), count=layers, kind="bmm")

    act_bytes = m * hidden * _F16
    # Two layer norms per layer: read activation (+params), write normalized.
    g.add_memory_op(MemoryBoundOp("layernorm", 2 * act_bytes, act_bytes, count=2 * layers))
    # Softmax over attention scores.
    score_bytes = batch * heads * seq * seq * _F16
    g.add_memory_op(MemoryBoundOp("softmax", score_bytes, score_bytes, count=layers))
    # GELU on the FFN intermediate.
    ffn_bytes = m * ffn * _F16
    g.add_memory_op(MemoryBoundOp("gelu", ffn_bytes, ffn_bytes, count=layers))
    # Two residual additions per layer.
    g.add_memory_op(MemoryBoundOp("residual", 2 * act_bytes, act_bytes, count=2 * layers))
    return g


def build_bert() -> ModelGraph:
    """BERT-base: 12 layers, hidden 768, 12 heads, seq 512."""
    return _transformer("BERT", layers=12, hidden=768, heads=12, seq=512)


def build_bert_large() -> ModelGraph:
    """BERT-Large: 24 layers, hidden 1024, 16 heads, seq 512."""
    return _transformer("BERT-Large", layers=24, hidden=1024, heads=16, seq=512)


def build_gpt2() -> ModelGraph:
    """GPT-2 (124M): 12 layers, hidden 768, 12 heads, seq 1024."""
    return _transformer("GPT-2", layers=12, hidden=768, heads=12, seq=1024)


def _add_conv(g: ModelGraph, name: str, shape: Conv2dShape, count: int = 1) -> None:
    g.add_gemm(conv2d_spec(name, shape), count=count, kind="conv")
    out_bytes = shape.n * shape.k * shape.p * shape.q * _F16
    # BatchNorm + ReLU per convolution (read conv output, write activated).
    g.add_memory_op(MemoryBoundOp(f"{name}_bn_relu", out_bytes, out_bytes, count=count))


def build_resnet18(batch: int = 16) -> ModelGraph:
    """ResNet-18 at 224x224: basic blocks [2, 2, 2, 2]."""
    g = ModelGraph("ResNet-18")
    # Stem: 7x7/2 conv on 3 channels — reduction 147 is untileable, costed
    # via the roofline fallback path.
    _add_conv(g, "rn18_stem", Conv2dShape(batch, 3, 224, 224, 64, 7, 7, stride=2, padding=3))
    stages: List[Tuple[int, int, int]] = [(64, 56, 2), (128, 28, 2), (256, 14, 2), (512, 7, 2)]
    prev_c = 64
    for c, hw, blocks in stages:
        for b in range(blocks):
            stride = 2 if (b == 0 and c != 64) else 1
            in_c = prev_c if b == 0 else c
            in_hw = hw * stride
            _add_conv(
                g,
                f"rn18_{c}_{b}a",
                Conv2dShape(batch, in_c, in_hw, in_hw, c, 3, 3, stride=stride, padding=1),
            )
            _add_conv(g, f"rn18_{c}_{b}b", Conv2dShape(batch, c, hw, hw, c, 3, 3, padding=1))
            if b == 0 and c != 64:
                _add_conv(
                    g,
                    f"rn18_{c}_down",
                    Conv2dShape(batch, in_c, in_hw, in_hw, c, 1, 1, stride=2),
                )
        prev_c = c
    g.add_gemm(matmul_spec("rn18_fc", batch, 1000, 512))
    return g


def build_resnet50(batch: int = 16) -> ModelGraph:
    """ResNet-50 at 224x224: bottleneck blocks [3, 4, 6, 3]."""
    g = ModelGraph("ResNet-50")
    _add_conv(g, "rn50_stem", Conv2dShape(batch, 3, 224, 224, 64, 7, 7, stride=2, padding=3))
    # (mid channels, out channels, spatial, blocks)
    stages = [(64, 256, 56, 3), (128, 512, 28, 4), (256, 1024, 14, 6), (512, 2048, 7, 3)]
    prev_c = 64
    for mid, out, hw, blocks in stages:
        for b in range(blocks):
            stride = 2 if (b == 0 and mid != 64) else 1
            in_c = prev_c if b == 0 else out
            in_hw = hw * stride
            _add_conv(g, f"rn50_{mid}_{b}r", Conv2dShape(batch, in_c, in_hw, in_hw, mid, 1, 1))
            _add_conv(
                g,
                f"rn50_{mid}_{b}c",
                Conv2dShape(batch, mid, in_hw, in_hw, mid, 3, 3, stride=stride, padding=1),
            )
            _add_conv(g, f"rn50_{mid}_{b}e", Conv2dShape(batch, mid, hw, hw, out, 1, 1))
            if b == 0:
                _add_conv(
                    g,
                    f"rn50_{mid}_down",
                    Conv2dShape(batch, in_c, in_hw, in_hw, out, 1, 1, stride=stride),
                )
        prev_c = out
    g.add_gemm(matmul_spec("rn50_fc", batch, 1000, 2048))
    return g


def build_vgg16(batch: int = 8) -> ModelGraph:
    """VGG-16 at 224x224: 13 convs + 3 FCs."""
    g = ModelGraph("VGG-16")
    plan = [
        (3, 64, 224),
        (64, 64, 224),
        (64, 128, 112),
        (128, 128, 112),
        (128, 256, 56),
        (256, 256, 56),
        (256, 256, 56),
        (256, 512, 28),
        (512, 512, 28),
        (512, 512, 28),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
    ]
    for i, (c_in, c_out, hw) in enumerate(plan):
        _add_conv(g, f"vgg_conv{i}", Conv2dShape(batch, c_in, hw, hw, c_out, 3, 3, padding=1))
    g.add_gemm(matmul_spec("vgg_fc1", batch, 4096, 25088))
    g.add_gemm(matmul_spec("vgg_fc2", batch, 4096, 4096))
    g.add_gemm(matmul_spec("vgg_fc3", batch, 1000, 4096))
    return g


MODEL_ZOO: Dict[str, Callable[[], ModelGraph]] = {
    "BERT": build_bert,
    "BERT-Large": build_bert_large,
    "GPT-2": build_gpt2,
    "ResNet-18": build_resnet18,
    "ResNet-50": build_resnet50,
    "VGG-16": build_vgg16,
}

"""Lowering from schedules to loop-nest IR, plus the CUDA source backend."""

from .cuda import CudaEmitError, emit_cuda
from .lower import LoweringError, lower

__all__ = ["CudaEmitError", "emit_cuda", "LoweringError", "lower"]

"""Lowering: schedule -> loop-nest IR (the *Input IR* of paper Fig. 7).

The lowered kernel has the canonical pipelinable structure::

    parallel[blockIdx] bb, bm, bn:              # grid
      alloc A_shared, B_shared                  # one stage each (pre-pipeline)
      alloc A_reg, B_reg, C_acc
      parallel[threadIdx] wm, wn: fill C_acc    # accumulator init
      for ko in 0..K/BK:                        # sequential smem load-and-use
        memcpy(A_shared, A[block tile, chunk ko])       (async if pipelined)
        memcpy(B_shared, B[block tile, chunk ko])
        parallel[threadIdx] wm, wn:
          for ki in 0..BK/CK:                   # sequential reg load-and-use
            memcpy(A_reg[warp rows], A_shared[warp rows, chunk ki])
            memcpy(B_reg[warp cols], B_shared[warp cols, chunk ki])
            mma(C_acc[warp tile], A_reg, B_reg)
      parallel[threadIdx] wm, wn:               # epilogue
        memcpy(C[block+warp tile], C_acc[warp tile])

Pipeline hints are attached as ``pipeline_stages`` attrs on the
:class:`~repro.ir.stmt.Allocate` nodes; the program transformation pass
(:mod:`repro.transform`) later rewrites the loops into their pipelined form.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..ir import Buffer, IRBuilder, Kernel, Scope
from ..schedule.schedule import Schedule
from ..tensor.operation import ELEMENTWISE_FNS, CacheReadOp, PlaceholderOp

__all__ = ["LoweringError", "lower"]


class LoweringError(Exception):
    """Raised when a schedule cannot be lowered to the canonical structure."""


def _np_dtype(dtype: str):
    return {"float16": np.float16, "float32": np.float32, "float64": np.float64,
            "int8": np.int8, "int32": np.int32}[dtype]


def _make_fill_zero() -> Callable:
    def fill_zero(out: np.ndarray) -> None:
        out[...] = 0

    return fill_zero


def _make_mma_fn(a_fn_name: Optional[str], b_fn_name: Optional[str]) -> Callable:
    """``out += f_a(a) @ f_b(b).T`` with fp32 accumulation.

    The fused elementwise reads implement the paper's Fig. 5 case 2, where
    an inlined function is applied at the operand read of the contraction.
    """
    a_fn = ELEMENTWISE_FNS[a_fn_name] if a_fn_name else None
    b_fn = ELEMENTWISE_FNS[b_fn_name] if b_fn_name else None

    def mma(out: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
        av = a_fn(a) if a_fn else a
        bv = b_fn(b) if b_fn else b
        out += av.astype(np.float32) @ bv.astype(np.float32).T

    return mma


def lower(sch: Schedule, name: Optional[str] = None) -> Kernel:
    """Lower a scheduled contraction to the canonical loop-nest IR."""
    if sch.contraction is None or sch.spec is None:
        raise LoweringError("lower() requires a schedule over a contraction output")
    if sch.tile_config is None:
        raise LoweringError("tile() must be applied before lowering")
    spec, cfg = sch.spec, sch.tile_config

    if spec.m % cfg.block_m or spec.n % cfg.block_n or spec.k % cfg.block_k:
        raise LoweringError(
            f"problem ({spec.m}x{spec.n}x{spec.k}) not divisible by tile "
            f"({cfg.block_m}x{cfg.block_n}x{cfg.block_k})"
        )

    chains = {side: sch.chain(side) for side in ("a", "b")}
    for side, chain in chains.items():
        if not isinstance(chain[0].op, PlaceholderOp):
            raise LoweringError(
                f"operand {side} chain starts with {type(chain[0].op).__name__}; "
                "inline elementwise producers before lowering"
            )
        if sch.buffer_at(side, Scope.SHARED) is None or sch.buffer_at(side, Scope.REGISTER) is None:
            raise LoweringError(
                f"operand {side} lacks the shared+register cache-read chain; "
                "apply cache_read for both levels before lowering"
            )

    batched = spec.batch > 1
    a_glb = Buffer("A", (spec.batch, spec.m, spec.k) if batched else (spec.m, spec.k), spec.dtype)
    b_glb = Buffer("B", (spec.batch, spec.n, spec.k) if batched else (spec.n, spec.k), spec.dtype)
    c_glb = Buffer("C", (spec.batch, spec.m, spec.n) if batched else (spec.m, spec.n), spec.dtype)

    a_sh_t = sch.buffer_at("a", Scope.SHARED)
    b_sh_t = sch.buffer_at("b", Scope.SHARED)
    a_rf_t = sch.buffer_at("a", Scope.REGISTER)
    b_rf_t = sch.buffer_at("b", Scope.REGISTER)

    a_sh = Buffer(a_sh_t.name, (cfg.block_m, cfg.block_k), spec.dtype, Scope.SHARED)
    b_sh = Buffer(b_sh_t.name, (cfg.block_n, cfg.block_k), spec.dtype, Scope.SHARED)
    a_rf = Buffer(a_rf_t.name, (cfg.block_m, cfg.chunk_k), spec.dtype, Scope.REGISTER)
    b_rf = Buffer(b_rf_t.name, (cfg.block_n, cfg.chunk_k), spec.dtype, Scope.REGISTER)
    c_acc = Buffer("C_acc", (cfg.block_m, cfg.block_n), "float32", Scope.ACCUMULATOR)

    def alloc_attrs(tensor) -> Dict[str, object]:
        attrs: Dict[str, object] = {"level": sch.level_of(tensor)}
        stages = sch.stages_for(tensor)
        if stages >= 2:
            attrs["pipeline_stages"] = stages
        return attrs

    def copy_annotations(tensor) -> Dict[str, object]:
        ann: Dict[str, object] = {"swizzle": cfg.swizzle}
        op = tensor.op
        if isinstance(op, CacheReadOp) and op.fused_fn_name is not None:
            ann["fused_fn"] = op.fused_fn_name
        return ann

    wm_extent = cfg.block_m // cfg.warp_m
    wn_extent = cfg.block_n // cfg.warp_n
    ko_extent = spec.k // cfg.block_k
    ki_extent = cfg.block_k // cfg.chunk_k
    mma_flops = 2 * cfg.warp_m * cfg.warp_n * cfg.chunk_k
    mma_fn = _make_mma_fn(sch.operand_fused_fn["a"], sch.operand_fused_fn["b"])
    fill_zero = _make_fill_zero()

    def a_region(bb, bm, ko):
        dims = [((bm * cfg.block_m), cfg.block_m), ((ko * cfg.block_k), cfg.block_k)]
        return a_glb.region(*([(bb, 1)] + dims if batched else dims))

    def b_region(bb, bn, ko):
        dims = [((bn * cfg.block_n), cfg.block_n), ((ko * cfg.block_k), cfg.block_k)]
        return b_glb.region(*([(bb, 1)] + dims if batched else dims))

    def c_region(bb, bm, bn, wm, wn):
        dims = [
            ((bm * cfg.block_m + wm * cfg.warp_m), cfg.warp_m),
            ((bn * cfg.block_n + wn * cfg.warp_n), cfg.warp_n),
        ]
        return c_glb.region(*([(bb, 1)] + dims if batched else dims))

    b_ = IRBuilder()

    def emit_block_body(bb, bm, bn):
        with b_.allocate(a_sh, attrs=alloc_attrs(a_sh_t)), b_.allocate(
            b_sh, attrs=alloc_attrs(b_sh_t)
        ), b_.allocate(a_rf, attrs=alloc_attrs(a_rf_t)), b_.allocate(
            b_rf, attrs=alloc_attrs(b_rf_t)
        ), b_.allocate(c_acc):
            # Accumulator initialization, one fragment per warp.
            with b_.thread_for("wm_i", wm_extent) as wmi:
                with b_.thread_for("wn_i", wn_extent) as wni:
                    b_.compute(
                        "fill",
                        c_acc.region(
                            (wmi * cfg.warp_m, cfg.warp_m), (wni * cfg.warp_n, cfg.warp_n)
                        ),
                        [],
                        fn=fill_zero,
                        accumulate=False,
                    )
            # Sequential shared-memory load-and-use loop.
            with b_.serial_for("ko", ko_extent) as ko:
                b_.copy(
                    a_sh.full_region(),
                    a_region(bb, bm, ko),
                    is_async=sch.stages_for(a_sh_t) >= 2,
                    **copy_annotations(a_sh_t),
                )
                b_.copy(
                    b_sh.full_region(),
                    b_region(bb, bn, ko),
                    is_async=sch.stages_for(b_sh_t) >= 2,
                    **copy_annotations(b_sh_t),
                )
                with b_.thread_for("wm", wm_extent) as wm:
                    with b_.thread_for("wn", wn_extent) as wn:
                        # Sequential register load-and-use loop.
                        with b_.serial_for("ki", ki_extent) as ki:
                            b_.copy(
                                a_rf.region((wm * cfg.warp_m, cfg.warp_m), (0, cfg.chunk_k)),
                                a_sh.region(
                                    (wm * cfg.warp_m, cfg.warp_m), (ki * cfg.chunk_k, cfg.chunk_k)
                                ),
                                is_async=sch.stages_for(a_rf_t) >= 2,
                                **copy_annotations(a_rf_t),
                            )
                            b_.copy(
                                b_rf.region((wn * cfg.warp_n, cfg.warp_n), (0, cfg.chunk_k)),
                                b_sh.region(
                                    (wn * cfg.warp_n, cfg.warp_n), (ki * cfg.chunk_k, cfg.chunk_k)
                                ),
                                is_async=sch.stages_for(b_rf_t) >= 2,
                                **copy_annotations(b_rf_t),
                            )
                            b_.compute(
                                "mma",
                                c_acc.region(
                                    (wm * cfg.warp_m, cfg.warp_m), (wn * cfg.warp_n, cfg.warp_n)
                                ),
                                [
                                    a_rf.region((wm * cfg.warp_m, cfg.warp_m), (0, cfg.chunk_k)),
                                    b_rf.region((wn * cfg.warp_n, cfg.warp_n), (0, cfg.chunk_k)),
                                ],
                                fn=mma_fn,
                                flops=mma_flops,
                            )
            # Epilogue: write accumulator fragments back to global memory,
            # applying any fused epilogue elementwise chain on the way out.
            epilogue_ann: Dict[str, object] = {"epilogue": True}
            if sch.epilogue_fns:
                epilogue_ann["fused_fn"] = tuple(sch.epilogue_fns)
            with b_.thread_for("wm_e", wm_extent) as wme:
                with b_.thread_for("wn_e", wn_extent) as wne:
                    b_.copy(
                        c_region(bb, bm, bn, wme, wne),
                        c_acc.region(
                            (wme * cfg.warp_m, cfg.warp_m), (wne * cfg.warp_n, cfg.warp_n)
                        ),
                        **epilogue_ann,
                    )

    if batched:
        with b_.block_for("bb", spec.batch) as bb:
            with b_.block_for("bm", spec.m // cfg.block_m) as bm:
                with b_.block_for("bn", spec.n // cfg.block_n) as bn:
                    emit_block_body(bb, bm, bn)
    else:
        with b_.block_for("bm", spec.m // cfg.block_m) as bm:
            with b_.block_for("bn", spec.n // cfg.block_n) as bn:
                emit_block_body(None, bm, bn)

    kernel = Kernel(
        name or f"gemm_{spec.name}",
        [a_glb, b_glb, c_glb],
        b_.finish(),
        attrs={
            "spec": spec,
            "config": cfg,
            "operand_fused_fn": dict(sch.operand_fused_fn),
        },
    )
    return kernel

"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``compile``   search + pipeline + time one GEMM/BMM problem, with baselines;
``ir``        print the lowered and pipelined IR for a fixed schedule;
``tune``      run one tuning method and report the best-in-k curve;
``suite``     TVM-vs-ALCOP speedups over the paper's operator suite;
``check``     static sync-race check of pipelined IR over the workload suite;
``serve``     long-running compile-as-a-service daemon (docs/serving.md);
``client``    talk to a running daemon: compile | tune | status | health |
              metrics | stop;
``fleet-worker``  one remote seat of a distributed tuning fleet: a serve
              daemon tuned for the ``measure`` endpoint (docs/distributed.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .gpusim.config import A100, H100, V100

_GPUS = {"a100": A100, "h100": H100, "v100": V100}

# Mirrored from repro.serve.server so --help works without importing the
# (heavier) serving stack; tests/serve pin them equal.
_SERVE_WORKERS = 4
_SERVE_SPACE = 600
_SERVE_IDLE_TIMEOUT = 120.0
_SERVE_MAX_QUEUE = 64


def _add_problem_args(p: argparse.ArgumentParser, required: bool = True) -> None:
    p.add_argument("--m", type=int, required=required)
    p.add_argument("--n", type=int, required=required)
    p.add_argument("--k", type=int, required=required)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--gpu", choices=sorted(_GPUS), default="a100")
    p.add_argument("--space", type=int, default=600, help="design-space cap (strided; 0 = full space)")


def _add_measure_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel measurement worker processes")
    p.add_argument("--cache-dir", default=None,
                   help="disk-persistent measurement cache directory "
                        "(repeat runs warm-start; see docs/tuning_cache.md)")
    p.add_argument("--trial-timeout", type=float, default=0.0,
                   help="per-trial wall-clock limit in seconds; a hung "
                        "trial is killed and recorded as failed "
                        "(0 disables; see docs/robustness.md)")
    p.add_argument("--retries", type=int, default=2,
                   help="resubmissions of a trial whose worker crashed "
                        "before it is quarantined")
    p.add_argument("--fault-plan", default=None,
                   help="fault-injection plan (JSON or site:kind[:rate],... "
                        "compact form); also read from $REPRO_FAULT_PLAN")
    p.add_argument("--profile", action="store_true",
                   help="print the per-stage compile/simulate wall-clock "
                        "breakdown with the telemetry (docs/performance.md)")
    p.add_argument("--via-ir", action="store_true",
                   help="measure through the full compiler path (schedule/"
                        "lower/transform/extract) instead of the static "
                        "timing spec; slower but exercises every stage")


def _space_cap(args):
    """--space N caps the enumeration (strided); 0 or negative = full space."""
    return args.space if args.space > 0 else None


def _measurer(args, gpu):
    from . import faults
    from .tuning.cache import MeasurementCache
    from .tuning.measure import Measurer

    if getattr(args, "fault_plan", None):
        faults.activate(faults.FaultPlan.parse(args.fault_plan))
    cache = MeasurementCache(args.cache_dir) if args.cache_dir else None
    return Measurer(
        gpu,
        via_ir=bool(getattr(args, "via_ir", False)),
        cache=cache,
        jobs=args.jobs,
        trial_timeout_s=args.trial_timeout if args.trial_timeout > 0 else None,
        retries=args.retries,
    )


def _print_telemetry(measurer, wall_s: float, profile: bool = False) -> None:
    telemetry = measurer.telemetry
    print(f"telemetry: {telemetry.summary()}; wall {wall_s:.2f}s")
    if measurer.cache is not None:
        print(f"cache    : {len(measurer.cache)} entries in {measurer.cache.path}")
    if measurer.quarantined:
        print(f"quarantined: {len(measurer.quarantined)} config(s) "
              "repeatedly killed workers and were excluded")
    if profile:
        print("profile  : per-stage compile/simulate breakdown")
        for line in telemetry.profile_summary().splitlines():
            print(f"  {line}")


def _interrupted(measurer, wall_s: float, what: str) -> int:
    """Uniform Ctrl-C epilogue: everything measured so far is already
    committed (disk cache appends and journal lines are flushed per
    trial), so report the partial state and exit 130."""
    print(f"\ninterrupted: {what}; partial results are saved", file=sys.stderr)
    try:
        _print_telemetry(measurer, wall_s)
    except Exception:
        pass
    return 130


def _spec(args):
    from .tensor.operation import GemmSpec

    return GemmSpec("cli", batch=args.batch, m=args.m, n=args.n, k=args.k)


def _cmd_compile(args) -> int:
    import time

    from .baselines.tvm_like import tvm_compiler
    from .core.compiler import AlcopCompiler
    from .tuning.space import SpaceOptions

    t0 = time.perf_counter()
    spec = _spec(args)
    gpu = _GPUS[args.gpu]
    measurer = _measurer(args, gpu)
    options = SpaceOptions(max_size=_space_cap(args))
    alcop = AlcopCompiler(
        gpu=gpu, variant=args.variant, measurer=measurer, space_options=options
    ).compile(spec)
    tvm = tvm_compiler(gpu=gpu, measurer=measurer, space_options=options).compile(spec)
    print(f"problem : {spec.m}x{spec.n}x{spec.k} batch={spec.batch} on {gpu.name}")
    print(
        f"{args.variant:8s}: {alcop.latency_us:9.1f} us  "
        f"{alcop.tflops:7.1f} TFLOP/s  {alcop.config}"
    )
    print(f"tvm     : {tvm.latency_us:9.1f} us  {tvm.tflops:7.1f} TFLOP/s  {tvm.config}")
    print(f"speedup : {tvm.latency_us / alcop.latency_us:.2f}x")
    _print_telemetry(measurer, time.perf_counter() - t0, profile=args.profile)
    return 0


def _cmd_ir(args) -> int:
    from .core.compiler import AlcopCompiler
    from .ir.printer import format_kernel
    from .schedule.config import TileConfig

    vals = [int(x) for x in args.config.split(",")]
    if len(vals) != 8:
        print("--config expects bm,bn,bk,wm,wn,ck,smem_stages,reg_stages", file=sys.stderr)
        return 2
    cfg = TileConfig(vals[0], vals[1], vals[2], warp_m=vals[3], warp_n=vals[4],
                     chunk_k=vals[5], smem_stages=vals[6], reg_stages=vals[7])
    kernel = AlcopCompiler(gpu=_GPUS[args.gpu]).build(_spec(args), cfg)
    print(format_kernel(kernel))
    return 0


def _cmd_cuda(args) -> int:
    from .codegen import emit_cuda
    from .core.compiler import AlcopCompiler
    from .schedule.config import TileConfig

    vals = [int(x) for x in args.config.split(",")]
    if len(vals) != 8:
        print("--config expects bm,bn,bk,wm,wn,ck,smem_stages,reg_stages", file=sys.stderr)
        return 2
    cfg = TileConfig(vals[0], vals[1], vals[2], warp_m=vals[3], warp_n=vals[4],
                     chunk_k=vals[5], smem_stages=vals[6], reg_stages=vals[7])
    kernel = AlcopCompiler(gpu=_GPUS[args.gpu]).build(_spec(args), cfg)
    source = emit_cuda(kernel)
    if args.out:
        with open(args.out, "w") as f:
            f.write(source)
        print(f"wrote {len(source.splitlines())} lines to {args.out}")
    else:
        print(source)
    return 0


_TRIALS_DEFAULT = 50


def _cmd_tune(args) -> int:
    import contextlib
    import time

    from .tuning.record import save_history
    from .tuning.session import TuneSession
    from .tuning.space import SpaceOptions, enumerate_space
    from .tuning.tuners import (
        AnalyticalOnlyTuner,
        GridSearchTuner,
        ModelAssistedXGBTuner,
        RandomSearchTuner,
        XGBTuner,
    )

    methods = {
        "grid": GridSearchTuner,
        "random": RandomSearchTuner,
        "xgb": XGBTuner,
        "analytical": AnalyticalOnlyTuner,
        "model-assisted-xgb": ModelAssistedXGBTuner,
    }
    session = None
    if not args.resume and None in (args.m, args.n, args.k):
        print("tune: --m/--n/--k are required unless resuming a session "
              "(--resume DIR)", file=sys.stderr)
        return 2
    if args.resume:
        # The session metadata is the source of truth for the problem and
        # method; only --trials may be raised on the command line.
        session = TuneSession.load(args.resume)
        meta = session.meta
        for field in ("m", "n", "k", "batch", "seed", "space"):
            if field in meta:
                setattr(args, field, meta[field])
        args.gpu = meta.get("gpu", args.gpu)
        args.method = meta.get("method", args.method)
        if args.trials == _TRIALS_DEFAULT:
            args.trials = int(meta.get("trials", args.trials))
        print(f"resuming {session.describe()}")
    elif args.session_dir:
        session = TuneSession.create(
            args.session_dir,
            m=args.m, n=args.n, k=args.k, batch=args.batch,
            gpu=args.gpu, method=args.method, trials=args.trials,
            seed=args.seed, space=args.space,
        )
        print(f"journalling trials to {session.path}")

    t0 = time.perf_counter()
    spec = _spec(args)
    gpu = _GPUS[args.gpu]
    measurer = _measurer(args, gpu)
    if session is not None and len(session):
        n = session.preload(measurer, spec)
        print(f"replaying {n} journalled trial(s) from the session")
    tracer = None
    trace_scope = contextlib.ExitStack()
    if args.trace_out:
        from .obs import trace as obs_trace

        tracer = obs_trace.Tracer(capacity=262144)
        trace_scope.enter_context(obs_trace.activate(tracer, all_threads=True))
        trace_scope.enter_context(obs_trace.span(
            "tune", attrs={"m": spec.m, "n": spec.n, "k": spec.k,
                           "method": args.method, "trials": args.trials}))
    try:
        space = enumerate_space(spec, gpu, options=SpaceOptions(max_size=_space_cap(args)))
        if args.fleet or args.fleet_endpoint:
            # Shard the full enumerated sweep across the fleet first; every
            # trial below (measurer.best and the tuner) is then a cache hit,
            # so the result is bitwise-identical to the serial run
            # (docs/distributed.md).
            from .tuning.fleet import fleet_sweep

            _, fleet_tel = fleet_sweep(
                measurer, spec, space,
                workers=args.fleet,
                endpoints=tuple(args.fleet_endpoint or ()),
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_s=args.breaker_cooldown,
            )
            print(f"fleet: {fleet_tel.summary()}")
        _, best = measurer.best(spec, space)
        tuner = methods[args.method](
            spec, space, measurer=measurer, gpu=gpu, seed=args.seed,
            prune_ratio=args.prune_ratio or None,
        )
        on_trial = session.log_trial if session is not None else None
        history = tuner.tune(args.trials, on_trial=on_trial)
        best_cfg = history.best_config_at(args.trials)
        if tracer is not None and best_cfg is not None:
            # Re-build the winning schedule under the trace so the export
            # carries the schedule/lower/transform stage spans even when
            # measurement went through the static timing spec.
            from .core.compiler import AlcopCompiler

            with obs_trace.span("build-best", attrs={"config": str(best_cfg)}):
                AlcopCompiler(gpu=gpu, measurer=measurer).build(spec, best_cfg)
    except KeyboardInterrupt:
        trace_scope.close()
        what = "tuning stopped"
        if session is not None:
            session.close()
            what += f"; resume with: repro tune --resume {session.path}"
        return _interrupted(measurer, time.perf_counter() - t0, what)
    trace_scope.close()
    if tracer is not None:
        tracer.write_chrome_trace(args.trace_out)
        print(f"trace: {len(tracer)} span(s) written to {args.trace_out}"
              + (f" ({tracer.spans_dropped} dropped)" if tracer.spans_dropped else ""))
    print(f"space: {len(space)} schedules; exhaustive best {best:.1f} us")
    if tuner.prune_stats is not None:
        print(f"{tuner.prune_stats.summary()}")
    for k in (1, 2, 4, 8, 16, 32, args.trials):
        if k <= args.trials:
            print(f"  best-in-{k:<3d}: {history.normalized_curve([k], best)[0]:.3f}")
    print(f"best schedule: {best_cfg}")
    _print_telemetry(measurer, time.perf_counter() - t0, profile=args.profile)
    if session is not None:
        session.close()
    if args.out:
        save_history(history, args.out)
        print(f"log written to {args.out}")
    return 0


def _cmd_suite(args) -> int:
    import time

    from .tuning.space import SpaceOptions, enumerate_space
    from .workloads.suite import OPERATOR_SUITE, degraded_best

    t0 = time.perf_counter()
    gpu = _GPUS[args.gpu]
    measurer = _measurer(args, gpu)
    options = SpaceOptions(max_size=_space_cap(args))
    names = args.ops.split(",") if args.ops else list(OPERATOR_SUITE)
    events = []
    print(f"{'operator':16s} | {'TVM (us)':>9s} | {'ALCOP (us)':>10s} | {'speedup':>7s}")
    try:
        for name in names:
            spec = OPERATOR_SUITE[name]
            space = enumerate_space(spec, gpu, options=options)
            _, tvm, tvm_used = degraded_best(
                measurer, spec, space, variant="tvm", events=events
            )
            _, alcop, alcop_used = degraded_best(
                measurer, spec, space, variant="alcop", events=events
            )
            # A degraded rung is flagged in the table; details follow below.
            note = "" if alcop_used == "alcop" and tvm_used == "tvm" else (
                f"  [{tvm_used}/{alcop_used}]"
            )
            print(f"{name:16s} | {tvm:9.1f} | {alcop:10.1f} | {tvm / alcop:7.2f}{note}")
    except KeyboardInterrupt:
        return _interrupted(measurer, time.perf_counter() - t0, "suite stopped")
    if events:
        print(f"degradations: {len(events)} ladder step(s) over "
              f"{len({ev.op for ev in events})} operator(s)")
        for ev in events:
            print(f"  {ev}")
    _print_telemetry(measurer, time.perf_counter() - t0, profile=args.profile)
    return 0


def _check_configs(space, per_op: int):
    """A deterministic, diversity-first sample of pipelined configs: prefer
    covering every (smem_stages, reg_stages) combination in the space before
    adding more tilings of an already-covered combination."""
    pipelined = [c for c in space if c.smem_stages >= 2]
    pipelined.sort(key=lambda c: (-c.smem_stages, -c.reg_stages, c.key()))
    picked, seen_stages = [], set()
    for cfg in pipelined:
        if (cfg.smem_stages, cfg.reg_stages) not in seen_stages:
            seen_stages.add((cfg.smem_stages, cfg.reg_stages))
            picked.append(cfg)
    for cfg in pipelined:
        if len(picked) >= per_op:
            break
        if cfg not in picked:
            picked.append(cfg)
    return picked[:per_op]


def _cmd_check(args) -> int:
    from .core.compiler import AlcopCompiler
    from .ir.syncheck import check_kernel, format_diagnostics
    from .ir.validate import validate_kernel
    from .tuning.space import SpaceOptions, enumerate_space
    from .workloads.suite import OPERATOR_SUITE

    gpu = _GPUS[args.gpu]
    compiler = AlcopCompiler(gpu=gpu, verify_sync=False)
    names = args.ops.split(",") if args.ops else list(OPERATOR_SUITE)
    unknown = [n for n in names if n not in OPERATOR_SUITE]
    if unknown:
        print(f"unknown operator(s): {', '.join(unknown)}")
        print(f"available: {', '.join(OPERATOR_SUITE)}")
        return 2
    options = SpaceOptions(max_size=_space_cap(args), launchable_only=True)
    total_diags = 0
    total_kernels = 0
    for name in names:
        spec = OPERATOR_SUITE[name]
        configs = _check_configs(enumerate_space(spec, gpu, options), args.configs)
        if not configs:
            print(f"{name:16s} | no pipelined configs in the (capped) space")
            continue
        op_diags = []
        for cfg in configs:
            kernel = compiler.build(spec, cfg)
            validate_kernel(kernel)
            diags = check_kernel(kernel)
            total_kernels += 1
            if diags:
                op_diags.append((cfg, diags))
                total_diags += len(diags)
                if args.verbose:
                    print(f"-- {name} {cfg}:\n{format_diagnostics(diags)}")
        verdict = "ok" if not op_diags else f"{sum(len(d) for _, d in op_diags)} finding(s)"
        print(f"{name:16s} | {len(configs)} pipelined config(s) checked | {verdict}")
        if op_diags and not args.verbose:
            for cfg, diags in op_diags:
                print(f"  {cfg}:")
                for d in diags:
                    print(f"    {d.rule} [{d.severity}] {d.buffer}: {d.message}")
    print(
        f"checked {total_kernels} transformed kernel(s): "
        + ("all synchronization-clean" if total_diags == 0 else f"{total_diags} finding(s)")
    )
    return 0 if total_diags == 0 else 1


def _cmd_serve(args) -> int:
    import signal

    from .serve.registry import ArtifactRegistry
    from .serve.server import ReproServer

    if args.socket is None and args.port is None:
        print("serve: give --socket PATH and/or --port N to listen on", file=sys.stderr)
        return 2
    registry = ArtifactRegistry(args.registry_dir) if args.registry_dir else ArtifactRegistry()
    workers = args.workers if args.workers is not None else _SERVE_WORKERS
    space = args.space if args.space is not None else _SERVE_SPACE
    server = ReproServer(
        gpu=_GPUS[args.gpu],
        socket_path=args.socket,
        port=args.port,
        host=args.host,
        registry=registry,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        workers=workers,
        via_ir=bool(args.via_ir),
        default_space=space,
        idle_timeout=args.idle_timeout,
        max_queue=args.max_queue,
        trace_dir=args.trace_dir,
        trace_sample_rate=args.trace_sample_rate,
    )

    def _stop(signum, frame):
        print("\nshutting down: draining workers, flushing the registry", file=sys.stderr)
        server.stop()

    try:
        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
    except ValueError:
        pass  # not the main thread (tests drive the server object directly)
    server.start()
    where = []
    if args.socket:
        where.append(f"unix socket {args.socket} (newline-JSON)")
    if server.port is not None:
        where.append(f"http://{args.host}:{server.port}/rpc")
    print(f"repro serve: session {server.session_id} on {_GPUS[args.gpu].name}")
    for w in where:
        print(f"  listening on {w}")
    if args.registry_dir:
        print(f"  artifact registry: {args.registry_dir} ({len(registry)} artifact(s))")
    print(f"  workers={workers} jobs={args.jobs} default space cap={space}", flush=True)
    server.serve_forever()
    print(f"stopped; registry holds {len(registry)} artifact(s)")
    return 0


def _cmd_fleet_worker(args) -> int:
    """One remote seat of a tuning fleet: a ReproServer whose raison d'être
    is the ``measure`` endpoint. Coordinators enlist it with
    ``repro tune --fleet-endpoint ADDR`` (docs/distributed.md)."""
    import signal

    from .serve.server import ReproServer

    if args.socket is None and args.port is None:
        print("fleet-worker: give --socket PATH and/or --port N to listen on",
              file=sys.stderr)
        return 2
    server = ReproServer(
        gpu=_GPUS[args.gpu],
        socket_path=args.socket,
        port=args.port,
        host=args.host,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        workers=args.workers if args.workers is not None else _SERVE_WORKERS,
        via_ir=bool(args.via_ir),
        idle_timeout=args.idle_timeout,
        max_queue=args.max_queue,
        trace_dir=args.trace_dir,
        trace_sample_rate=args.trace_sample_rate,
    )

    def _stop(signum, frame):
        print("\nfleet-worker shutting down", file=sys.stderr)
        server.stop()

    try:
        signal.signal(signal.SIGINT, _stop)
        signal.signal(signal.SIGTERM, _stop)
    except ValueError:
        pass  # not the main thread (tests drive the server object directly)
    server.start()
    where = []
    if args.socket:
        where.append(f"unix socket {args.socket}")
    if server.port is not None:
        where.append(f"{args.host}:{server.port}")
    print(f"repro fleet-worker: session {server.session_id} on "
          f"{_GPUS[args.gpu].name} (via_ir={bool(args.via_ir)})")
    for w in where:
        print(f"  enlist with: repro tune --fleet-endpoint {w.split(' ')[-1]}", flush=True)
    server.serve_forever()
    print("fleet-worker stopped")
    return 0


def _client_connection(args):
    from .serve.client import ServeClient

    if (args.socket is None) == (args.port is None):
        print("client: give exactly one of --socket PATH or --port N", file=sys.stderr)
        return None
    return ServeClient(
        socket_path=args.socket, host=args.host, port=args.port, timeout=args.timeout,
        deadline_s=args.deadline if getattr(args, "deadline", 0) else None,
        retries=getattr(args, "retries", 0),
    )


def _print_client_result(result: dict, as_json: bool) -> None:
    import json

    if as_json:
        print(json.dumps(result, indent=1, sort_keys=True))
        return
    cfg = result.get("config")
    if cfg:
        from .schedule.config import TileConfig

        print(f"config   : {TileConfig(**cfg)}")
    if "latency_us" in result:
        print(f"latency  : {result['latency_us']:.1f} us")
    if "served_from" in result:
        print(f"served   : {result['served_from']}")
    stages = result.get("stages") or {}
    if stages:
        total = sum(stages.values())
        print(f"stages   : {', '.join(f'{k} {v:.4f}s' for k, v in stages.items())} "
              f"(total {total:.4f}s)")
    else:
        print("stages   : none (no compile work on this request)")
    prov = result.get("provenance") or {}
    if prov:
        print(f"artifact : {result.get('key', '')[:16]}… "
              f"(session {prov.get('session')}, compiler {prov.get('compiler_version')})")


def _cmd_client(args) -> int:
    import json

    from .core.errors import ServeError

    client = _client_connection(args)
    if client is None:
        return 2
    try:
        if args.wait:
            if not client.wait_until_ready(timeout=args.wait):
                print(f"client: daemon not ready after {args.wait}s", file=sys.stderr)
                return 1
        if args.action in ("compile", "tune"):
            if None in (args.m, args.n, args.k):
                print(f"client {args.action}: --m/--n/--k are required", file=sys.stderr)
                return 2
            params = {
                "m": args.m, "n": args.n, "k": args.k, "batch": args.batch,
                "variant": args.variant,
            }
            if args.space:
                params["space"] = args.space
            if args.trace_out:
                from .obs import trace as obs_trace

                tracer = obs_trace.Tracer(capacity=65536)
                with obs_trace.activate(tracer, all_threads=True):
                    with obs_trace.span("cli"):
                        result = client.request(args.action, params)
                tracer.write_chrome_trace(args.trace_out)
                print(f"trace: {len(tracer)} span(s) written to {args.trace_out}")
            else:
                result = client.request(args.action, params)
            if args.action == "compile" and args.out:
                with open(args.out, "w") as f:
                    f.write(result.get("cuda_source", ""))
                print(f"wrote CUDA source to {args.out}")
            _print_client_result(result, args.json)
        elif args.action == "status":
            result = client.status()
            if args.json:
                print(json.dumps(result, indent=1, sort_keys=True))
            else:
                c = result.get("counters", {})
                m = result.get("measurer", {})
                print(f"daemon   : pid {result.get('pid')} session {result.get('session')} "
                      f"up {result.get('uptime_s', 0):.0f}s on {result.get('gpu')}")
                print(f"registry : {result.get('registry', {}).get('size', 0)} artifact(s)")
                print(f"queue    : depth {result.get('queue_depth', 0)}, "
                      f"{result.get('inflight', 0)} in flight, "
                      f"{result.get('workers', 0)} worker(s), "
                      f"max queue {result.get('max_queue', 0)}")
                # Counters and measurer stats render generically so a new
                # server counter shows up here with zero CLI changes.
                if c:
                    print("counters :")
                    for name in sorted(c):
                        print(f"  {name:24s} {c[name]}")
                if m:
                    print("measurer :")
                    for name in sorted(m):
                        print(f"  {name:24s} {m[name]}")
                for op, snap in sorted((result.get("endpoints") or {}).items()):
                    if snap.get("requests"):
                        extras = ""
                        if snap.get("shed") or snap.get("deadline_exceeded"):
                            extras = (f" shed {snap.get('shed', 0)} "
                                      f"ddl {snap.get('deadline_exceeded', 0)}")
                        print(f"  {op:9s} {snap['requests']:5d} req "
                              f"({snap['errors']} err) "
                              f"p50 {snap['p50_ms']:.1f}ms p95 {snap['p95_ms']:.1f}ms "
                              f"p99 {snap.get('p99_ms', 0.0):.1f}ms{extras}")
        elif args.action == "health":
            result = client.health()
            if args.json:
                print(json.dumps(result, indent=1, sort_keys=True))
            else:
                print(f"state    : {result.get('state')}")
                print(f"queue    : depth {result.get('queue_depth', 0)} of "
                      f"{result.get('max_queue', 0)}, "
                      f"{result.get('workers', 0)} worker(s)")
                print(f"overload : {result.get('shed', 0)} shed, "
                      f"{result.get('deadline_exceeded', 0)} deadline-exceeded")
            if result.get("state") != "ready":
                return 1
        elif args.action == "metrics":
            result = client.metrics()
            if args.json:
                print(json.dumps(result, indent=1, sort_keys=True))
            else:
                print(result.get("text", ""), end="")
        elif args.action == "stop":
            result = client.shutdown()
            print(f"daemon stopping (session {result.get('session')})")
        else:  # ping
            result = client.ping()
            print(f"ok: protocol v{result.get('protocol')} session {result.get('session')}")
    except ServeError as e:
        print(f"client: {e}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro.cli", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="search + pipeline + time one problem")
    _add_problem_args(p)
    _add_measure_args(p)
    p.add_argument("--variant", default="alcop",
                   choices=["alcop", "alcop-no-ml", "alcop-no-ml-no-ms", "tvm-db", "tvm"])
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("ir", help="print pipelined IR for a fixed schedule")
    _add_problem_args(p)
    p.add_argument("--config", required=True, help="bm,bn,bk,wm,wn,ck,smem_stages,reg_stages")
    p.set_defaults(fn=_cmd_ir)

    p = sub.add_parser("cuda", help="emit CUDA C++ for a fixed schedule")
    _add_problem_args(p)
    p.add_argument("--config", required=True, help="bm,bn,bk,wm,wn,ck,smem_stages,reg_stages")
    p.add_argument("--out", default=None, help="write the .cu source here")
    p.set_defaults(fn=_cmd_cuda)

    p = sub.add_parser("tune", help="run one tuning method")
    _add_problem_args(p, required=False)
    _add_measure_args(p)
    p.add_argument("--method", default="model-assisted-xgb",
                   choices=["grid", "random", "xgb", "analytical", "model-assisted-xgb"])
    p.add_argument("--trials", type=int, default=_TRIALS_DEFAULT)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prune-ratio", type=float, default=0.0,
                   help="model-guided pruning: drop configs the analytical "
                        "model prices beyond RATIO x its best prediction "
                        "before measuring (0 = off, the default; "
                        "docs/performance.md)")
    p.add_argument("--out", default=None, help="write a JSON tuning log here")
    p.add_argument("--session-dir", default=None,
                   help="journal every trial to this directory so a killed "
                        "run can be continued with --resume")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="continue a journalled session; problem/method/seed "
                        "are read back from its session.json")
    p.add_argument("--fleet", type=int, default=0, metavar="N",
                   help="shard the full design-space sweep across N local "
                        "worker processes before tuning; results are "
                        "bitwise-identical to the serial run "
                        "(docs/distributed.md)")
    p.add_argument("--fleet-endpoint", action="append", default=None,
                   metavar="ADDR",
                   help="also enlist a running repro serve / fleet-worker "
                        "daemon at ADDR (host:port for HTTP, anything else "
                        "is a Unix socket path); repeatable")
    p.add_argument("--breaker-threshold", type=int, default=3, metavar="K",
                   help="fleet circuit breaker: consecutive transport "
                        "failures before an endpoint's seat stops taking "
                        "shards (docs/robustness.md)")
    p.add_argument("--breaker-cooldown", type=float, default=0.25, metavar="S",
                   help="fleet circuit breaker: base cooldown before an "
                        "opened seat sends a half-open probe shard "
                        "(escalates per open)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome/Perfetto trace JSON of the whole run "
                        "(coordinator, fleet shards, compile stages; "
                        "docs/observability.md)")
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("suite", help="TVM vs ALCOP over the operator suite")
    p.add_argument("--gpu", choices=sorted(_GPUS), default="a100")
    p.add_argument("--space", type=int, default=400)
    p.add_argument("--ops", default=None, help="comma-separated operator names")
    _add_measure_args(p)
    p.set_defaults(fn=_cmd_suite)

    p = sub.add_parser(
        "check",
        help="statically check pipeline synchronization over the workload suite",
    )
    p.add_argument("--gpu", choices=sorted(_GPUS), default="a100")
    p.add_argument("--space", type=int, default=400, help="design-space cap (strided; 0 = full space)")
    p.add_argument("--ops", default=None, help="comma-separated operator names")
    p.add_argument("--configs", type=int, default=4,
                   help="pipelined schedules checked per operator")
    p.add_argument("--verbose", action="store_true", help="print full diagnostics")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "serve",
        help="long-running compile-as-a-service daemon (docs/serving.md)",
    )
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="listen on a Unix socket (newline-delimited JSON)")
    p.add_argument("--port", type=int, default=None,
                   help="listen on TCP with an HTTP POST /rpc endpoint "
                        "(0 picks an ephemeral port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--gpu", choices=sorted(_GPUS), default="a100")
    p.add_argument("--registry-dir", default=None,
                   help="content-addressed kernel artifact registry root; "
                        "omitted = in-memory only (lost on exit)")
    p.add_argument("--cache-dir", default=None,
                   help="disk-persistent measurement cache directory shared "
                        "with batch runs (docs/tuning_cache.md)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel measurement worker processes per sweep")
    p.add_argument("--workers", type=int, default=None,
                   help="request worker threads (default %d)" % _SERVE_WORKERS)
    p.add_argument("--space", type=int, default=None,
                   help="default design-space cap for requests that do not "
                        "send one (default %d)" % _SERVE_SPACE)
    p.add_argument("--idle-timeout", type=float, default=_SERVE_IDLE_TIMEOUT,
                   metavar="S",
                   help="close keep-alive connections idle for S seconds so "
                        "they return their worker thread to the pool; <= 0 "
                        "disables (default %g)" % _SERVE_IDLE_TIMEOUT)
    p.add_argument("--max-queue", type=int, default=_SERVE_MAX_QUEUE,
                   help="admission-control bound on queued connections; "
                        "beyond it requests are shed with a fast "
                        "'overloaded' reply instead of queueing unboundedly "
                        "(default %d)" % _SERVE_MAX_QUEUE)
    p.add_argument("--via-ir", action="store_true",
                   help="tune through the full compiler path instead of the "
                        "static timing spec")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write a Chrome-trace JSON per sampled request here "
                        "(docs/observability.md)")
    p.add_argument("--trace-sample-rate", type=float, default=1.0, metavar="R",
                   help="fraction of requests traced to --trace-dir, 0..1 "
                        "(deterministic 1-in-1/R sampling; default 1.0)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "fleet-worker",
        help="remote seat of a distributed tuning fleet (docs/distributed.md)",
    )
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="listen on a Unix socket (newline-delimited JSON)")
    p.add_argument("--port", type=int, default=None,
                   help="listen on TCP (0 picks an ephemeral port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--gpu", choices=sorted(_GPUS), default="a100")
    p.add_argument("--cache-dir", default=None,
                   help="disk-persistent measurement cache directory "
                        "(docs/tuning_cache.md)")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel measurement worker processes per shard")
    p.add_argument("--workers", type=int, default=None,
                   help="request worker threads (default %d)" % _SERVE_WORKERS)
    p.add_argument("--idle-timeout", type=float, default=_SERVE_IDLE_TIMEOUT,
                   metavar="S",
                   help="close keep-alive connections idle for S seconds "
                        "(<= 0 disables; default %g)" % _SERVE_IDLE_TIMEOUT)
    p.add_argument("--max-queue", type=int, default=_SERVE_MAX_QUEUE,
                   help="admission-control bound on queued connections "
                        "(default %d)" % _SERVE_MAX_QUEUE)
    p.add_argument("--via-ir", action="store_true",
                   help="measure through the full compiler path; must match "
                        "the coordinator's --via-ir or the shard is refused")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write a Chrome-trace JSON per sampled request here "
                        "(docs/observability.md)")
    p.add_argument("--trace-sample-rate", type=float, default=1.0, metavar="R",
                   help="fraction of requests traced to --trace-dir, 0..1 "
                        "(default 1.0)")
    p.set_defaults(fn=_cmd_fleet_worker)

    p = sub.add_parser(
        "client",
        help="talk to a running repro serve daemon",
    )
    p.add_argument("action",
                   choices=["compile", "tune", "status", "health", "metrics",
                            "stop", "ping"])
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="daemon Unix socket path")
    p.add_argument("--port", type=int, default=None, help="daemon TCP port")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="request round-trip limit in seconds")
    p.add_argument("--deadline", type=float, default=0.0, metavar="S",
                   help="server-side budget stamped on the request; expired "
                        "work is rejected and over-budget sweeps abort "
                        "(0 = none)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient failures (connect refused/reset, "
                        "shed by admission control) up to N times with "
                        "exponential backoff + jitter")
    p.add_argument("--wait", type=float, default=0.0, metavar="S",
                   help="poll until the daemon answers ping, up to S seconds, "
                        "before sending the request")
    p.add_argument("--m", type=int, default=None)
    p.add_argument("--n", type=int, default=None)
    p.add_argument("--k", type=int, default=None)
    p.add_argument("--batch", type=int, default=1)
    p.add_argument("--space", type=int, default=None,
                   help="design-space cap for this request (default: server's)")
    p.add_argument("--variant", default="alcop",
                   choices=["alcop", "alcop-no-ml", "alcop-no-ml-no-ms", "tvm-db", "tvm"])
    p.add_argument("--json", action="store_true",
                   help="print the raw result payload as JSON")
    p.add_argument("--out", default=None,
                   help="compile only: write the CUDA source here")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="compile/tune only: write a Chrome-trace JSON of the "
                        "request, stitching the daemon's server-side spans "
                        "into the client timeline (docs/observability.md)")
    p.set_defaults(fn=_cmd_client)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

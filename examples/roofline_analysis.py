"""Roofline placement of the operator suite: why pipelining helps where.

Places every Fig. 10 operator on the A100 roofline and relates its regime
to the measured ALCOP-vs-TVM speedup. The interesting observation: the
biggest gains are *not* deep in the compute-bound regime (those shapes
saturate tensor cores once data arrives) nor at full bandwidth saturation
— they sit near the ridge, where kernels are memory-*latency*-bound with
limited inter-tile parallelism (small outputs, long reductions). That is
precisely the gap latency hiding closes, matching the paper's Sec. V-A
insights.

Run:  python examples/roofline_analysis.py
"""

from repro.perfmodel import analyze_operator
from repro.tuning import Measurer, SpaceOptions, enumerate_space, restrict_space
from repro.workloads import suite_specs


def main() -> None:
    measurer = Measurer()
    options = SpaceOptions(max_size=300)
    print(
        f"{'operator':16s} | {'flops/byte':>10s} | {'regime':>8s} | "
        f"{'ceiling':>8s} | {'ALCOP gain':>10s}"
    )
    rows = []
    for spec in suite_specs():
        r = analyze_operator(spec)
        space = enumerate_space(spec, options=options)
        _, tvm = measurer.best(spec, restrict_space(space, "tvm"))
        _, alcop = measurer.best(spec, restrict_space(space, "alcop"))
        gain = tvm / alcop
        rows.append((r, gain))
        print(
            f"{spec.name:16s} | {r.arithmetic_intensity:10.0f} | {r.bound:>8s} | "
            f"{r.ceiling_tflops:6.0f}TF | {gain:10.2f}"
        )
    ridge = rows[0][0].ridge_intensity
    print(f"\nA100 ridge point: {ridge:.0f} FLOP/byte")
    compute_gains = [g for r, g in rows if r.bound == "compute"]
    memory_gains = [g for r, g in rows if r.bound == "memory"]
    if compute_gains and memory_gains:
        print(f"mean gain, compute-bound ops     : {sum(compute_gains) / len(compute_gains):.2f}x")
        print(f"mean gain, near-ridge/memory ops : {sum(memory_gains) / len(memory_gains):.2f}x")
        print("gains cluster near the ridge: memory-latency-bound shapes with "
              "limited inter-tile parallelism are where latency hiding pays.")


if __name__ == "__main__":
    main()

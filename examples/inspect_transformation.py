"""Inspect the pipelining program transformation (paper Figs. 5-7).

Shows (1) the lowered load-and-use IR, (2) its pipelined version with the
multi-buffered allocations, shifted/wrapped indices, hoisted prologues and
the four synchronization primitives, and (3) the Fig. 5 ordering case
study: inlining before pipelining destroys the opportunity, while
pipelining first keeps the copy asynchronous and fuses the elementwise
function into the consumer.

Run:  python examples/inspect_transformation.py
"""

from repro.codegen import lower
from repro.ir import Scope, format_kernel
from repro.schedule import PipelineRejected, Schedule, TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, elementwise, placeholder
from repro.transform import apply_pipelining


def show_transformation() -> None:
    spec = GemmSpec("demo", batch=1, m=64, n=64, k=128)
    a = placeholder("A", (64, 128))
    b = placeholder("B", (64, 128))
    c = contraction(a, b, spec)
    cfg = TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16,
                     smem_stages=3, reg_stages=2)

    kernel = lower(auto_schedule(c, cfg))
    print("=" * 72)
    print("INPUT IR (lowered, pipeline hints on allocations)")
    print("=" * 72)
    print(format_kernel(kernel))

    pipelined = apply_pipelining(kernel)
    print()
    print("=" * 72)
    print("TRANSFORMED IR (multi-stage, multi-level pipelined — cf. Fig. 7)")
    print("=" * 72)
    print(format_kernel(pipelined))
    print()
    for g in pipelined.attrs["pipeline_groups"]:
        print("pipeline group:", g)


def show_ordering_case_study() -> None:
    print()
    print("=" * 72)
    print("FIG. 5 CASE STUDY: inline x pipeline ordering")
    print("=" * 72)
    spec = GemmSpec("fig5", batch=1, m=64, n=64, k=128)
    cfg = TileConfig(32, 32, 32, warp_m=16, warp_n=16, chunk_k=16)

    def fresh_schedule():
        a = placeholder("A", (64, 128))
        b = placeholder("B", (64, 128))
        s2 = elementwise(a, "cast_f16", name="S2")  # f(.) applied to A
        c = contraction(s2, b, spec, name="S3")
        sch = Schedule(c)
        s2_buf = sch.cache_read(sch.chain("a")[-1], Scope.SHARED)
        sch.tile(cfg)
        return sch, s2_buf

    # Case 1: inline first -> the copy computes f while copying; rule 1
    # rejects pipelining.
    sch, _ = fresh_schedule()
    sch.inline(sch.chain("a")[0])
    new_buf = sch.chain("a")[-1]
    try:
        sch.pipeline(new_buf, 3)
    except PipelineRejected as e:
        print(f"case 1 (inline, then pipeline): REJECTED as expected -> {e}")

    # Case 2: pipeline first -> inline takes the consumer route; the copy
    # stays asynchronous and pipelined.
    sch, s2_buf = fresh_schedule()
    sch.pipeline(s2_buf, 3)
    route = sch.inline(sch.chain("a")[0])
    print(f"case 2 (pipeline, then inline): fusion route = {route}")
    print(sch.describe())


if __name__ == "__main__":
    show_transformation()
    show_ordering_case_study()

"""Convolution through implicit GEMM, compiled with automatic pipelining.

Demonstrates (1) functional correctness of a pipelined implicit-GEMM conv
kernel against a direct convolution reference, and (2) the performance
effect of pipelining on a ResNet-50 3x3 convolution, including how the
im2col footprint ratio feeds the L2/DRAM working-set model.

Run:  python examples/conv_implicit_gemm.py
"""

import numpy as np

from repro.baselines import tvm_compiler
from repro.core import AlcopCompiler
from repro.ops import Conv2dShape, conv2d_spec, im2col, reference_conv2d
from repro.schedule import TileConfig
from repro.tuning import Measurer, SpaceOptions


def correctness_demo() -> None:
    print("-- functional check: pipelined implicit-GEMM conv vs direct conv --")
    shape = Conv2dShape(n=2, c=8, h=6, w=6, k=16, r=3, s=3, padding=1)
    spec = conv2d_spec("demo_conv", shape)  # GEMM 72 x 16 x 72
    cfg = TileConfig(8, 8, 8, warp_m=4, warp_n=4, chunk_k=4, smem_stages=3, reg_stages=2)
    kernel = AlcopCompiler().build(spec, cfg)

    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 8, 6, 6)).astype(np.float16)
    w = rng.standard_normal((16, 8, 3, 3)).astype(np.float16)

    from repro.interp import run_kernel

    cols = im2col(x, shape)
    out = run_kernel(kernel, {"A": cols, "B": w.reshape(16, -1)}, mode="pipeline")["C"]
    got = out.reshape(2, shape.p, shape.q, 16).transpose(0, 3, 1, 2)
    ref = reference_conv2d(x, w, shape)
    err = np.abs(got.astype(np.float32) - ref.astype(np.float32)).max()
    print(f"  max abs error vs direct convolution: {err:.4f}")
    assert err < 0.5


def performance_demo() -> None:
    print("\n-- performance: ResNet-50 3x3 conv (implicit GEMM) --")
    shape = Conv2dShape(n=16, c=128, h=28, w=28, k=128, r=3, s=3, padding=1)
    spec = conv2d_spec("rn50_conv3x3", shape)
    print(f"  GEMM view: M={spec.m} N={spec.n} K={spec.k}, "
          f"im2col footprint ratio = {spec.a_footprint_ratio:.2f}")

    measurer = Measurer()
    options = SpaceOptions(max_size=400)
    a = AlcopCompiler(measurer=measurer, space_options=options).compile(spec)
    t = tvm_compiler(measurer=measurer, space_options=options).compile(spec)
    print(f"  TVM   : {t.latency_us:7.1f} us  {t.config}")
    print(f"  ALCOP : {a.latency_us:7.1f} us  {a.config}")
    print(f"  speedup {t.latency_us / a.latency_us:.2f}x; "
          f"DRAM fraction {a.sim.dram_fraction:.2f} (patch re-reads hit L2)")


if __name__ == "__main__":
    correctness_demo()
    performance_demo()

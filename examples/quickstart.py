"""Quickstart: compile a matrix multiplication with automatic pipelining.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AlcopCompiler, matmul_spec
from repro.baselines import tvm_compiler
from repro.ops import reference_matmul
from repro.tuning import Measurer, SpaceOptions


def main() -> None:
    # A BERT-style feed-forward GEMM (M x N x K).
    spec = matmul_spec("quickstart_mm", m=512, n=768, k=3072)

    # Shared measurement cache so both compilers sweep the space once.
    measurer = Measurer()
    options = SpaceOptions(max_size=400)

    print(f"compiling {spec.name} ({spec.m}x{spec.n}x{spec.k}, "
          f"{spec.flops / 1e9:.1f} GFLOP) for a simulated A100...")
    alcop = AlcopCompiler(measurer=measurer, space_options=options).compile(spec)
    tvm = tvm_compiler(measurer=measurer, space_options=options).compile(spec)

    print(f"\n  ALCOP: {alcop.latency_us:7.1f} us  ({alcop.tflops:6.1f} TFLOP/s)  {alcop.config}")
    print(f"  TVM  : {tvm.latency_us:7.1f} us  ({tvm.tflops:6.1f} TFLOP/s)  {tvm.config}")
    print(f"  pipelining speedup: {tvm.latency_us / alcop.latency_us:.2f}x")

    # The compiled artifact is a real program: execute it on data through the
    # pipeline-semantics interpreter and check against numpy.
    small = matmul_spec("small", 64, 64, 128)
    kernel = AlcopCompiler(measurer=measurer).compile(small)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 128)).astype(np.float16)
    b = rng.standard_normal((64, 128)).astype(np.float16)
    out = kernel.run(a, b)
    err = np.abs(out.astype(np.float32) - reference_matmul(a, b).astype(np.float32)).max()
    print(f"\nfunctional check on 64x64x128: max abs error vs numpy = {err:.4f}")
    assert err < 0.5
    print("OK")


if __name__ == "__main__":
    main()

"""Generate CUDA C++ source for a pipelined GEMM kernel.

The emitted text is what a TVM-based ALCOP deployment would hand to nvcc:
`cuda::pipeline`-guarded `cp.async` staging, wmma fragment loads and
tensor-core MMAs, with the multi-stage/multi-level index arithmetic of the
paper's Fig. 7 visible in the source.

Run:  python examples/generate_cuda.py [output.cu]
"""

import sys

from repro.codegen import emit_cuda, lower
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, placeholder
from repro.transform import apply_pipelining


def main() -> None:
    spec = GemmSpec("bert_fc2", batch=1, m=512, n=768, k=3072)
    a = placeholder("A", (spec.m, spec.k))
    b = placeholder("B", (spec.n, spec.k))
    c = contraction(a, b, spec)
    cfg = TileConfig(64, 64, 64, warp_m=32, warp_n=64, chunk_k=32,
                     smem_stages=3, reg_stages=2)

    kernel = apply_pipelining(lower(auto_schedule(c, cfg)))
    source = emit_cuda(kernel)

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as f:
            f.write(source)
        print(f"wrote {len(source.splitlines())} lines to {sys.argv[1]}")
    else:
        print(source)


if __name__ == "__main__":
    main()

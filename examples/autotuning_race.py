"""Schedule-tuning methods head to head (paper Table II / Fig. 13).

Races the four tuners — Grid-Search, XGB, Analytical-only, and ALCOP's
Model-Assisted XGB — on one operator against the simulator ground truth
and prints the best-in-k-trials curves.

Run:  python examples/autotuning_race.py
"""

from repro.tuning import (
    AnalyticalOnlyTuner,
    GridSearchTuner,
    Measurer,
    ModelAssistedXGBTuner,
    SpaceOptions,
    XGBTuner,
    enumerate_space,
)
from repro.workloads import get_operator

BUDGETS = [4, 8, 10, 16, 25, 50]


def main() -> None:
    spec = get_operator("MM_BERT_FC1")
    space = enumerate_space(spec, options=SpaceOptions(max_size=600))
    measurer = Measurer()
    best_cfg, best = measurer.best(spec, space)
    print(f"operator {spec.name}: space of {len(space)} schedules")
    print(f"exhaustive best: {best:.1f}us with {best_cfg}\n")

    print(f"{'trials':>7s} | " + " | ".join(
        f"{n:>18s}" for n in ("Grid-Search", "XGB", "Analytical-only", "Model-Assisted")
    ))
    tuners = [
        GridSearchTuner(spec, space, measurer=measurer, seed=0),
        XGBTuner(spec, space, measurer=measurer, seed=0),
        AnalyticalOnlyTuner(spec, space, measurer=measurer, seed=0),
        ModelAssistedXGBTuner(spec, space, measurer=measurer, seed=0),
    ]
    histories = [t.tune(max(BUDGETS)) for t in tuners]
    for k in BUDGETS:
        row = [h.normalized_curve([k], best)[0] for h in histories]
        print(f"{k:7d} | " + " | ".join(f"{v:18.2f}" for v in row))

    print("\n(1.00 = found the exhaustive-search optimum)")
    winner = histories[3]
    print(f"Model-Assisted XGB best schedule after 50 trials: {winner.best_config_at(50)}")


if __name__ == "__main__":
    main()

"""End-to-end model compilation: BERT inference latency across backends.

Builds the BERT-base operator graph, compiles every GEMM-family operator
with ALCOP / TVM / the XLA-like baseline, and prints the latency breakdown
(Table III's methodology, single model).

Run:  python examples/end_to_end_bert.py
"""

from repro.baselines import XlaLikeCompiler, tvm_compiler
from repro.core import AlcopCompiler
from repro.models import build_bert, estimate_model_latency
from repro.tuning import Measurer, SpaceOptions


def main() -> None:
    graph = build_bert()
    print(f"{graph!r}: {graph.n_kernels} kernel launches per inference\n")

    measurer = Measurer()
    options = SpaceOptions(max_size=300)
    backends = {
        "ALCOP": AlcopCompiler(measurer=measurer, space_options=options),
        "TVM": tvm_compiler(measurer=measurer, space_options=options),
        "XLA": XlaLikeCompiler(),
    }

    results = {}
    for name, backend in backends.items():
        results[name] = estimate_model_latency(graph, backend, backend_name=name)

    print(f"{'backend':8s} | {'total (ms)':>10s} | {'gemm':>8s} | {'memory':>8s} | {'overhead':>8s}")
    for name, r in results.items():
        print(
            f"{name:8s} | {r.total_us / 1000:10.2f} | {r.gemm_us / 1000:8.2f} | "
            f"{r.memory_us / 1000:8.2f} | {r.overhead_us / 1000:8.2f}"
        )
    alcop = results["ALCOP"].total_us
    print(f"\nspeedup over TVM: {results['TVM'].total_us / alcop:.2f}x")
    print(f"speedup over XLA: {results['XLA'].total_us / alcop:.2f}x")

    print("\nALCOP per-operator latency (one inference):")
    for op, us in sorted(results["ALCOP"].per_op.items(), key=lambda kv: -kv[1]):
        print(f"  {op:18s} {us / 1000:7.3f} ms")


if __name__ == "__main__":
    main()

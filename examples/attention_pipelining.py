"""Pipelining transformer attention: the workloads that motivate ALCOP.

Compiles BERT's attention and feed-forward operators with and without
automatic pipelining, reports per-operator gains, and renders the
pipeline timeline (the quantitative version of the paper's Figs. 2/3)
for the most latency-bound operator.

Run:  python examples/attention_pipelining.py
"""

from repro.baselines import tvm_compiler
from repro.core import AlcopCompiler
from repro.gpusim import format_timeline, simulate_kernel
from repro.perfmodel import timing_spec_from_config
from repro.tuning import Measurer, SpaceOptions
from repro.workloads import get_operator

OPS = ["MM_BERT_QKV", "MM_BERT_FC1", "MM_BERT_FC2", "BMM_BERT_QK", "BMM_BERT_SV"]


def main() -> None:
    measurer = Measurer()
    options = SpaceOptions(max_size=400)
    alcop = AlcopCompiler(measurer=measurer, space_options=options)
    tvm = tvm_compiler(measurer=measurer, space_options=options)

    print(f"{'operator':14s} | {'TVM (us)':>9s} | {'ALCOP (us)':>10s} | {'speedup':>7s} | best schedule")
    results = {}
    for name in OPS:
        spec = get_operator(name)
        a = alcop.compile(spec)
        t = tvm.compile(spec)
        results[name] = (t.latency_us, a)
        print(
            f"{name:14s} | {t.latency_us:9.1f} | {a.latency_us:10.1f} | "
            f"{t.latency_us / a.latency_us:7.2f} | {a.config}"
        )

    # Timeline of the biggest winner, before and after pipelining.
    best_op = max(results, key=lambda k: results[k][0] / results[k][1].latency_us)
    spec = get_operator(best_op)
    compiled = results[best_op][1]
    print(f"\npipeline timeline for {best_op} ({compiled.config}):")
    with_pipe = simulate_kernel(
        timing_spec_from_config(spec, compiled.config), collect_trace=True
    )
    print(format_timeline(with_pipe.trace))
    no_pipe_cfg = compiled.config.with_stages(1, 1)
    without = simulate_kernel(timing_spec_from_config(spec, no_pipe_cfg), collect_trace=True)
    print(f"\nsame tiling without pipelining ({no_pipe_cfg}):")
    print(format_timeline(without.trace))
    print(f"\nstall removal: {without.latency_us:.1f}us -> {with_pipe.latency_us:.1f}us")


if __name__ == "__main__":
    main()

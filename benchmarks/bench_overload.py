"""Traffic soak harness: Poisson arrivals against a live, delayed daemon.

PR "overload resilience" claims the serve stack sheds rather than hangs:
admission control bounds the connection queue, shed requests get a fast
``overloaded`` envelope with a ``retry_after_s`` hint, and deadlines cut
queued work loose. This benchmark is the evidence. It runs an in-process
``ReproServer`` with a deliberately small admission queue, injects a
``delay`` fault at the registry read (every warm request pays a seeded,
jittered service time), then offers Poisson traffic at several multiples
of the daemon's estimated capacity and records, per load level:

* latency **p50/p95/p99** of successfully answered requests;
* **shed rate** — fraction refused by admission control;
* **goodput** — successful answers per second actually achieved;
* the hard invariants: every request is *answered* (success or typed
  error envelope — never a hang), no worker thread dies, and after the
  soak the warm path still serves ``served_from == "registry"``.

Runs two ways: as a pytest benchmark inside the suite, and as a plain
script (``python benchmarks/bench_overload.py --smoke --out FILE``) for
the CI soak-smoke job, which uploads the JSON artifact.
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import tempfile
import threading
import time

#: Arrival-process seed: the offered traffic is reproducible run to run.
SEED = 0x50AC
#: Injected service delay at the registry read (seconds, ±50% jitter).
DELAY_S = 0.03
#: Offered load as multiples of estimated capacity (workers / delay).
LOAD_LEVELS = (0.5, 2.0, 4.0)
REQUESTS_FULL = 120
REQUESTS_QUICK = 40
WORKERS = 2
#: Deliberately small admission queue so overload sheds visibly.
MAX_QUEUE = 8
#: Per-request server-side budget; generous so the soak exercises
#: admission control, not deadline expiry.
DEADLINE_S = 5.0
#: Client round-trip bound; anything hitting it counts as a hang.
CLIENT_TIMEOUT_S = 30.0


def _quantile(ordered, q):
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def _soak_level(server, n_requests: int, rate_rps: float, rng) -> dict:
    """Offer ``n_requests`` warm compiles at Poisson rate ``rate_rps``;
    classify every outcome."""
    from repro.core.errors import (
        DeadlineExceededError,
        OverloadedError,
        ServeError,
    )
    from repro.serve.client import ServeClient

    offsets, t = [], 0.0
    for _ in range(n_requests):
        t += rng.expovariate(rate_rps)
        offsets.append(t)

    lock = threading.Lock()
    outcomes = {"ok": 0, "shed": 0, "deadline": 0, "error": 0, "hang": 0}
    ok_latencies = []
    retry_hints = []

    def one(offset: float, t_start: float) -> None:
        wait = t_start + offset - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        client = ServeClient(
            socket_path=server.socket_path,
            timeout=CLIENT_TIMEOUT_S,
            deadline_s=DEADLINE_S,
        )
        t0 = time.perf_counter()
        try:
            result = client.compile(m=128, n=128, k=128)
            elapsed = time.perf_counter() - t0
            with lock:
                outcomes["ok"] += 1
                ok_latencies.append(elapsed)
                assert result["served_from"] == "registry", result["served_from"]
        except OverloadedError as e:
            with lock:
                outcomes["shed"] += 1
                if e.retry_after_s:
                    retry_hints.append(e.retry_after_s)
        except DeadlineExceededError:
            with lock:
                outcomes["deadline"] += 1
        except ServeError as e:
            with lock:
                outcomes["hang" if "timed out" in str(e) else "error"] += 1

    t_start = time.perf_counter()
    threads = [
        threading.Thread(target=one, args=(off, t_start)) for off in offsets
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start

    ok_latencies.sort()
    answered = sum(outcomes.values()) - outcomes["hang"]
    return {
        "offered_rps": round(rate_rps, 2),
        "requests": n_requests,
        "wall_s": round(wall, 3),
        "answered": answered,
        **outcomes,
        "shed_rate": outcomes["shed"] / n_requests,
        "goodput_rps": round(outcomes["ok"] / max(wall, 1e-9), 2),
        "p50_ms": round(_quantile(ok_latencies, 0.50) * 1e3, 3),
        "p95_ms": round(_quantile(ok_latencies, 0.95) * 1e3, 3),
        "p99_ms": round(_quantile(ok_latencies, 0.99) * 1e3, 3),
        "retry_after_hint_max_s": max(retry_hints) if retry_hints else None,
    }


def run_experiment(quick: bool) -> dict:
    from repro import faults
    from repro.serve.registry import ArtifactRegistry
    from repro.serve.server import ReproServer
    from repro.serve.client import ServeClient

    n_requests = REQUESTS_QUICK if quick else REQUESTS_FULL
    rng = random.Random(SEED)
    with tempfile.TemporaryDirectory(prefix="repro-overload-bench-") as tmp:
        tmp = pathlib.Path(tmp)
        server = ReproServer(
            socket_path=str(tmp / "d.sock"),
            registry=ArtifactRegistry(tmp / "reg"),
            workers=WORKERS,
            default_space=16,
            max_queue=MAX_QUEUE,
        )
        server.start()
        try:
            client = ServeClient(socket_path=server.socket_path, timeout=600)
            assert client.wait_until_ready(timeout=30), "daemon never became ready"
            # Warm the one soak shape before the delay fault goes live, so
            # every soak request is a registry hit with a known service time.
            warmup = client.tune(m=128, n=128, k=128)
            assert warmup["served_from"] == "fresh"

            faults.activate(faults.FaultPlan([
                faults.FaultRule("registry", "delay", match="get:",
                                 delay_s=DELAY_S, jitter=0.5),
            ], seed=SEED), export_env=False)
            try:
                capacity = WORKERS / DELAY_S
                levels = [
                    _soak_level(server, n_requests, mult * capacity, rng)
                    for mult in LOAD_LEVELS
                ]
            finally:
                faults.deactivate()

            # Post-soak: the daemon must still be whole — healthy, all
            # worker threads alive, warm path intact.
            workers_alive = sum(
                1 for t in server._threads
                if t.name.startswith("repro-serve-worker") and t.is_alive()
            )
            health = client.health()
            post = client.compile(m=128, n=128, k=128)
            status = client.status()
        finally:
            server.stop()
            server.shutdown(timeout=30)

    return {
        "quick": quick,
        "seed": SEED,
        "delay_s": DELAY_S,
        "workers": WORKERS,
        "max_queue": MAX_QUEUE,
        "capacity_rps_est": round(WORKERS / DELAY_S, 1),
        "load_multipliers": list(LOAD_LEVELS),
        "levels": levels,
        "workers_alive": workers_alive,
        "health_state": health["state"],
        "post_soak_served_from": post["served_from"],
        "total_shed": status["counters"]["requests_shed"],
        "total_deadline_exceeded": status["counters"]["deadline_exceeded"],
    }


def format_table(r: dict) -> str:
    lines = [
        "Overload soak — Poisson traffic vs. admission control "
        f"(capacity ~{r['capacity_rps_est']} rps, queue {r['max_queue']})"
    ]
    lines.append(
        f"{'load':>5s} | {'offered':>8s} | {'ok':>4s} {'shed':>4s} "
        f"{'ddl':>3s} | {'shed%':>6s} | {'goodput':>8s} | "
        f"{'p50':>7s} {'p95':>7s} {'p99':>7s}"
    )
    for mult, lv in zip(r["load_multipliers"], r["levels"]):
        lines.append(
            f"{mult:4.1f}x | {lv['offered_rps']:6.1f}/s | "
            f"{lv['ok']:4d} {lv['shed']:4d} {lv['deadline']:3d} | "
            f"{lv['shed_rate'] * 100:5.1f}% | {lv['goodput_rps']:6.1f}/s | "
            f"{lv['p50_ms']:5.0f}ms {lv['p95_ms']:5.0f}ms {lv['p99_ms']:5.0f}ms"
        )
    lines.append(
        f"post-soak: health={r['health_state']}, "
        f"{r['workers_alive']}/{r['workers']} workers alive, "
        f"warm path served from {r['post_soak_served_from']}"
    )
    return "\n".join(lines)


def check_invariants(r: dict) -> None:
    for mult, lv in zip(r["load_multipliers"], r["levels"]):
        assert lv["hang"] == 0, (
            f"{lv['hang']} request(s) at {mult}x load hit the client timeout "
            "— the daemon hung instead of answering"
        )
        assert lv["error"] == 0, (
            f"{lv['error']} request(s) at {mult}x load died with an "
            "unclassified transport error"
        )
        assert lv["answered"] == lv["requests"], (
            f"only {lv['answered']}/{lv['requests']} requests answered at "
            f"{mult}x load"
        )
    overload = r["levels"][-1]
    assert overload["shed"] > 0, (
        "sustained overload shed nothing — admission control is not engaging"
    )
    assert overload["ok"] > 0, (
        "sustained overload served nothing — the daemon collapsed instead "
        "of degrading"
    )
    assert r["workers_alive"] == r["workers"], (
        f"{r['workers'] - r['workers_alive']} worker thread(s) died during "
        "the soak"
    )
    assert r["health_state"] == "ready"
    assert r["post_soak_served_from"] == "registry", (
        "the warm path did not survive the soak"
    )


# ------------------------------------------------------------------ pytest
def test_overload_soak(benchmark):
    from conftest import QUICK, RESULTS_DIR, write_result

    result = run_experiment(QUICK)
    check_invariants(result)
    write_result("overload_soak", format_table(result))
    out = RESULTS_DIR / "overload_soak.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {out}]")

    # Representative kernel: the health probe — the dispatch path a load
    # balancer would hammer, no compile work involved.
    from repro.serve.server import ReproServer

    server = ReproServer(port=0, default_space=16)
    benchmark.pedantic(
        lambda: server.handle({"op": "health", "id": "bench"}), rounds=30,
        iterations=1,
    )


# ------------------------------------------------------------------ script
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced request counts per load level")
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)

    result = run_experiment(args.smoke)
    check_invariants(result)
    print(format_table(result))
    if args.out:
        path = pathlib.Path(args.out)
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"[json written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Compile-path throughput tracking (no paper figure — perf trajectory).

Three numbers, recorded as JSON so their trajectory is tracked from PR to
PR by the CI artifact:

* **batch-model speedup** — ``analytical_rank`` via the vectorized batch
  model (:mod:`repro.perfmodel.batch`) against the pre-batching scalar
  loop, on a multi-thousand-config full space;
* **cold configs/sec** — trials through the full ``via_ir`` compiler path
  (schedule, lower, pipelining transform, spec extraction, simulation) on
  an empty cache, with the per-stage breakdown alongside;
* **warm configs/sec** — the same sweep answered from the measurement
  cache;
* **incremental configs/sec** — the same cold compile path with the
  incremental engine's stage-graph memoization, on a *group-preserving*
  slice of the space (whole tile-key groups, so the pipelining-knob
  siblings the engine reuses across are actually present), against a
  fresh-per-config measurer on the identical slice. The two latency
  lists are asserted exactly equal — the speedup is only recorded for
  bitwise-identical results (docs/performance.md);
* **tracing overhead** — the same cold sweep with an active tracer and a
  root span (so every compile stage is also recorded as a span), asserted
  to cost < 2% of cold-sweep throughput (docs/observability.md).

Runs two ways: as a pytest benchmark inside the suite, and as a plain
script (``python benchmarks/bench_compile_throughput.py --smoke --out
FILE``) for the CI bench-smoke job, which uploads the JSON artifact.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

#: The rank micro-benchmark space must stay >= 2000 configs — that scale is
#: where the batch/scalar contrast is meaningful (and what the recorded
#: speedup is defined over).
RANK_MNK = (1024, 1024, 1024)
RANK_MIN_CONFIGS = 2000
#: Loose floor on the batch speedup: typically ~20x; the assert tolerates a
#: loaded CI runner, the JSON records the exact measurement.
RANK_SPEEDUP_FLOOR = 5.0
#: Ceiling on the observability layer's cost on the cold compile path, in
#: percent of cold-sweep throughput. Interleaved min-of-N runs keep the
#: measurement stable on loaded CI runners.
TRACING_OVERHEAD_CEILING_PCT = 2.0
#: Loose floor on the incremental-vs-fresh speedup: typically >= 2x on an
#: idle machine; the assert tolerates a loaded CI runner, the JSON records
#: the exact measurement.
INCREMENTAL_SPEEDUP_FLOOR = 1.3
#: The engine serves 7 of each 8-config stage group from its memoized
#: base; the measured ratio is deterministic, the floor merely loose.
INCREMENTAL_REUSE_FLOOR = 0.5


def _group_preserving_space(spec, gpu, target: int):
    """Whole tile-key groups (all pipelining-knob siblings) until at least
    ``target`` configs — the strided ``max_size`` cap would scatter the
    siblings the incremental engine reuses across."""
    from repro.core.incremental import schedule_key
    from repro.tuning import enumerate_space

    out, seen_keys = [], []
    groups = {}
    for cfg in enumerate_space(spec, gpu):
        k = schedule_key(spec, cfg)
        if k not in groups:
            groups[k] = []
            seen_keys.append(k)
        groups[k].append(cfg)
    for k in seen_keys:
        out.extend(groups[k])
        if len(out) >= target:
            break
    return out


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_experiment(quick: bool, jobs: int = 1) -> dict:
    from repro.gpusim import A100
    from repro.tensor import GemmSpec
    from repro.tuning import Measurer, SpaceOptions, enumerate_space
    from repro.tuning.tuners import _analytical_rank_scalar, analytical_rank

    # --- batch-vs-scalar analytical ranking ---------------------------------
    rank_spec = GemmSpec("throughput_rank", 1, *RANK_MNK)
    rank_space = enumerate_space(rank_spec, A100)
    assert len(rank_space) >= RANK_MIN_CONFIGS
    rounds = 2 if quick else 3
    scalar_s = _best_of(lambda: _analytical_rank_scalar(rank_spec, rank_space), rounds)
    batch_s = _best_of(lambda: analytical_rank(rank_spec, rank_space), rounds)

    # --- cold/warm sweep through the full via_ir compile path ---------------
    sweep_spec = GemmSpec("throughput_sweep", 1, 256, 256, 256)
    sweep_space = enumerate_space(
        sweep_spec, A100, options=SpaceOptions(max_size=48 if quick else 160)
    )
    measurer = Measurer(A100, via_ir=True, jobs=jobs)
    t0 = time.perf_counter()
    measurer.sweep(sweep_spec, sweep_space)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    measurer.sweep(sweep_spec, sweep_space)
    warm_s = time.perf_counter() - t0

    # --- incremental engine vs fresh-per-config, identity-checked -----------
    from repro.ir.printer import format_kernel

    inc_space = _group_preserving_space(sweep_spec, A100, 48 if quick else 160)
    inc_rounds = 2 if quick else 3
    fresh_s = inc_s = float("inf")
    fresh_lat = inc_lat = None
    inc_measurer = None
    for _ in range(inc_rounds):
        m_fresh = Measurer(A100, via_ir=True, incremental=False)
        t0 = time.perf_counter()
        lat = m_fresh.sweep(sweep_spec, inc_space)
        dt = time.perf_counter() - t0
        if dt < fresh_s:
            fresh_s, fresh_lat = dt, lat
        m_inc = Measurer(A100, via_ir=True)
        t0 = time.perf_counter()
        lat = m_inc.sweep(sweep_spec, inc_space)
        dt = time.perf_counter() - t0
        if dt < inc_s:
            inc_s, inc_lat, inc_measurer = dt, lat, m_inc
    # Identity gate: the speedup is only real if the results are. Latency
    # lists must match exactly, and the first stage group's kernels must
    # print byte-identically through the engine's copy-on-write path.
    assert inc_lat == fresh_lat, "incremental sweep changed measured latencies"
    from repro.codegen.lower import lower as _lower
    from repro.schedule.auto import auto_schedule as _auto
    from repro.transform import apply_pipelining as _pipe

    graph = inc_measurer._te_graph(sweep_spec)
    engine = inc_measurer.engine
    for cfg in inc_space[:8]:
        fresh_kernel = _pipe(_lower(_auto(graph, cfg)))
        assert format_kernel(engine.kernel(graph, sweep_spec, cfg)) == format_kernel(
            fresh_kernel
        ), f"incremental kernel for {cfg} prints differently"
    incremental_identity_checked = True

    # --- tracing-on vs tracing-off overhead guard ---------------------------
    # A loaded CI runner's noise is second-scale (load spikes, frequency
    # drift), so the two modes are interleaved at *chunk* granularity
    # (~25 ms of work) with alternating order inside each round — any drift
    # hits both modes equally instead of being misread as tracing cost.
    # Each chunk gets a fresh Measurer, so every sweep is genuinely cold;
    # per-round totals are compared and the best (min) round wins: noise
    # only ever inflates the ratio, a real regression shows in every round.
    # Rounds stop early once one lands comfortably under the ceiling, and
    # keep going (up to six) when the runner is noisy.
    guard_space = enumerate_space(
        sweep_spec, A100, options=SpaceOptions(max_size=160)
    )
    chunks = [guard_space[i::4] for i in range(4)]

    def cold_chunk_s(chunk, traced: bool) -> float:
        from repro.obs import trace as obs_trace

        m = Measurer(A100, via_ir=True, jobs=jobs)
        if traced:
            tracer = obs_trace.Tracer(capacity=1 << 18)
            with obs_trace.activate(tracer, all_threads=True):
                with obs_trace.span("bench-cold-sweep"):
                    t0 = time.perf_counter()
                    m.sweep(sweep_spec, chunk)
                    return time.perf_counter() - t0
        t0 = time.perf_counter()
        m.sweep(sweep_spec, chunk)
        return time.perf_counter() - t0

    cold_chunk_s(chunks[0], traced=False)  # warm both code paths
    cold_chunk_s(chunks[0], traced=True)
    untraced_s = traced_s = float("inf")
    overhead_pct = float("inf")
    for _ in range(6):
        round_off = round_on = 0.0
        for j, chunk in enumerate(chunks):
            order = (False, True) if j % 2 == 0 else (True, False)
            for traced in order:
                dt = cold_chunk_s(chunk, traced=traced)
                if traced:
                    round_on += dt
                else:
                    round_off += dt
        pct = 100.0 * (round_on - round_off) / round_off
        if pct < overhead_pct:
            overhead_pct = pct
            untraced_s, traced_s = round_off, round_on
        if overhead_pct < TRACING_OVERHEAD_CEILING_PCT / 2:
            break

    return {
        "quick": quick,
        "rank_space_size": len(rank_space),
        "scalar_rank_s": scalar_s,
        "batch_rank_s": batch_s,
        "batch_speedup": scalar_s / batch_s,
        "sweep_space_size": len(sweep_space),
        "cold_sweep_s": cold_s,
        "cold_configs_per_s": len(sweep_space) / cold_s,
        "warm_sweep_s": warm_s,
        "warm_configs_per_s": len(sweep_space) / warm_s,
        "incremental_space_size": len(inc_space),
        "incremental_fresh_configs_per_s": len(inc_space) / fresh_s,
        "incremental_cold_configs_per_s": len(inc_space) / inc_s,
        "incremental_speedup": fresh_s / inc_s,
        "lower_reuse_ratio": inc_measurer.engine.reuse_ratio,
        "incremental_identity_checked": incremental_identity_checked,
        "incremental_stage_time_s": dict(inc_measurer.stage_times.ordered()),
        "untraced_cold_configs_per_s": len(guard_space) / untraced_s,
        "traced_cold_configs_per_s": len(guard_space) / traced_s,
        "tracing_overhead_pct": overhead_pct,
        "stage_time_s": dict(measurer.stage_times.ordered()),
    }


def format_table(r: dict) -> str:
    lines = ["Compile throughput — batch model and via_ir hot path"]
    lines.append(
        f"analytical rank ({r['rank_space_size']} configs): "
        f"scalar {r['scalar_rank_s'] * 1e3:7.1f} ms, "
        f"batch {r['batch_rank_s'] * 1e3:6.1f} ms, "
        f"speedup {r['batch_speedup']:.1f}x"
    )
    lines.append(
        f"via_ir sweep ({r['sweep_space_size']} configs): "
        f"cold {r['cold_configs_per_s']:7.1f} configs/s, "
        f"warm {r['warm_configs_per_s']:9.1f} configs/s"
    )
    lines.append(
        f"incremental sweep ({r['incremental_space_size']} configs, "
        f"group-preserving): fresh {r['incremental_fresh_configs_per_s']:7.1f} "
        f"configs/s, incremental {r['incremental_cold_configs_per_s']:7.1f} "
        f"configs/s ({r['incremental_speedup']:.2f}x, "
        f"reuse {r['lower_reuse_ratio']:.3f}, "
        f"identity {'checked' if r['incremental_identity_checked'] else 'SKIPPED'})"
    )
    lines.append(
        f"tracing overhead: off {r['untraced_cold_configs_per_s']:7.1f} "
        f"configs/s, on {r['traced_cold_configs_per_s']:7.1f} configs/s "
        f"({r['tracing_overhead_pct']:+.2f}%)"
    )
    lines.append("per-stage compile breakdown (cold sweep):")
    total = sum(r["stage_time_s"].values()) or 1.0
    for name, s in r["stage_time_s"].items():
        lines.append(f"  {name:12s} {s:8.4f}s  {100.0 * s / total:5.1f}%")
    return "\n".join(lines)


def check_invariants(r: dict) -> None:
    assert r["batch_speedup"] >= RANK_SPEEDUP_FLOOR, (
        f"batch analytical model only {r['batch_speedup']:.1f}x faster than "
        f"the scalar loop (floor {RANK_SPEEDUP_FLOOR}x)"
    )
    assert r["warm_configs_per_s"] > r["cold_configs_per_s"], (
        "warm (cached) sweep should beat the cold compile path"
    )
    assert r["stage_time_s"], "cold via_ir sweep recorded no stage breakdown"
    assert r["incremental_identity_checked"] is True, (
        "incremental sweep speedup recorded without the bitwise identity check"
    )
    assert r["incremental_speedup"] >= INCREMENTAL_SPEEDUP_FLOOR, (
        f"incremental engine only {r['incremental_speedup']:.2f}x faster than "
        f"fresh-per-config compiles (floor {INCREMENTAL_SPEEDUP_FLOOR}x)"
    )
    assert r["lower_reuse_ratio"] >= INCREMENTAL_REUSE_FLOOR, (
        f"incremental engine reused only {r['lower_reuse_ratio']:.3f} of "
        f"stage-graph builds (floor {INCREMENTAL_REUSE_FLOOR}); the sweep "
        "ordering or keying no longer groups pipelining-knob siblings"
    )
    assert r["incremental_stage_time_s"], (
        "incremental sweep recorded no stage breakdown"
    )
    assert r["tracing_overhead_pct"] < TRACING_OVERHEAD_CEILING_PCT, (
        f"tracing-on cold sweep costs {r['tracing_overhead_pct']:.2f}% "
        f"(ceiling {TRACING_OVERHEAD_CEILING_PCT}%): the observability "
        "layer has grown a hot-path cost"
    )


# ------------------------------------------------------------------ pytest
def test_compile_throughput(benchmark):
    from conftest import JOBS, QUICK, RESULTS_DIR, write_result

    result = run_experiment(QUICK, jobs=JOBS)
    check_invariants(result)
    write_result("compile_throughput", format_table(result))
    out = RESULTS_DIR / "compile_throughput.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {out}]")

    from repro.tensor import GemmSpec
    from repro.tuning import enumerate_space
    from repro.tuning.tuners import analytical_rank

    spec = GemmSpec("throughput_rank", 1, *RANK_MNK)
    space = enumerate_space(spec)
    benchmark.pedantic(lambda: analytical_rank(spec, space), rounds=3, iterations=1)


# ------------------------------------------------------------------ script
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sweep sizes")
    parser.add_argument("--jobs", type=int, default=1, help="measurement pool width")
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)

    result = run_experiment(args.smoke, jobs=args.jobs)
    check_invariants(result)
    print(format_table(result))
    if args.out:
        path = pathlib.Path(args.out)
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"[json written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Compiler-performance benchmarks: the cost of ALCOP's own passes.

Not a paper table — this times the reproduction's compilation pipeline
itself (schedule -> lower -> pipelining transformation -> spec extraction),
so regressions in pass complexity are caught.
"""

from __future__ import annotations


from repro.codegen import lower
from repro.gpusim import extract_timing_spec
from repro.schedule import TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, placeholder
from repro.transform import apply_pipelining

SPEC = GemmSpec("bench_mm", 1, 2048, 2048, 2048)
CFG = TileConfig(128, 128, 32, warp_m=64, warp_n=64, chunk_k=16, smem_stages=3, reg_stages=2)


def _graph():
    a = placeholder("A", (2048, 2048))
    b = placeholder("B", (2048, 2048))
    return contraction(a, b, SPEC)


def test_bench_auto_schedule(benchmark):
    benchmark(lambda: auto_schedule(_graph(), CFG))


def test_bench_lowering(benchmark):
    sch = auto_schedule(_graph(), CFG)
    benchmark(lower, sch)


def test_bench_pipelining_pass(benchmark):
    kernel = lower(auto_schedule(_graph(), CFG))
    benchmark(apply_pipelining, kernel)


def test_bench_spec_extraction(benchmark):
    kernel = apply_pipelining(lower(auto_schedule(_graph(), CFG)))
    benchmark(extract_timing_spec, kernel)


def test_bench_full_compile_and_time(benchmark):
    from repro.gpusim import simulate_kernel

    def full():
        kernel = apply_pipelining(lower(auto_schedule(_graph(), CFG)))
        return simulate_kernel(extract_timing_spec(kernel))

    res = benchmark(full)
    assert res.latency_us > 0

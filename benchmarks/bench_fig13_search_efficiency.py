"""Figure 13 — search efficiency of schedule tuning methods.

Four tuners from Table II — Grid-Search, XGB (ML cost model + simulated
annealing), Analytical-only ranking, and ALCOP's Model-Assisted XGB — run
against the simulator ground truth with 10- and 50-trial budgets,
normalized to the exhaustive-search best.

Expected shape (paper): Model-Assisted XGB dominates at both budgets
(95%@10, 99%@50), the analytical prior is what wins the early trials, and
measured-data fine-tuning is what closes the final gap; grid search is
far behind.
"""

from __future__ import annotations

import statistics

import pytest

from repro.tuning import (
    AnalyticalOnlyTuner,
    GridSearchTuner,
    ModelAssistedXGBTuner,
    XGBTuner,
)

from conftest import QUICK, bench_suite_specs, write_result

TUNERS = [
    ("Grid-Search", GridSearchTuner),
    ("XGB", XGBTuner),
    ("Analytical-only", AnalyticalOnlyTuner),
    ("Model-Assisted XGB", ModelAssistedXGBTuner),
]
KS = (10, 50)
SEEDS = (0,) if QUICK else (0, 1, 2)


def run_experiment(measurer, suite_spaces) -> dict:
    out = {}
    for spec in bench_suite_specs():
        space = suite_spaces[spec.name]
        _, best = measurer.best(spec, space)
        row = {}
        for label, cls in TUNERS:
            curves = []
            for seed in SEEDS:
                tuner = cls(spec, space, measurer=measurer, seed=seed)
                hist = tuner.tune(max(KS))
                curves.append(hist.normalized_curve(KS, best))
            row[label] = [statistics.mean(c[i] for c in curves) for i in range(len(KS))]
        out[spec.name] = row
    return out


@pytest.fixture(scope="module")
def fig13(measurer, suite_spaces):
    return run_experiment(measurer, suite_spaces)


def test_fig13(fig13, measurer, suite_spaces, benchmark):
    labels = [l for l, _ in TUNERS]
    lines = ["Fig. 13 — best-in-k-trials, normalized to exhaustive best"]
    lines.append(f"{'operator':16s} | " + " | ".join(f"{l:>18s}" for l in labels))
    lines.append(f"{'':16s} | " + " | ".join(f"{'@10':>8s} {'@50':>9s}" for _ in labels))
    avg = {l: [0.0, 0.0] for l in labels}
    for op, row in fig13.items():
        cells = []
        for l in labels:
            cells.append(f"{row[l][0]:8.2f} {row[l][1]:9.2f}")
            avg[l][0] += row[l][0] / len(fig13)
            avg[l][1] += row[l][1] / len(fig13)
        lines.append(f"{op:16s} | " + " | ".join(cells))
    lines.append(
        f"{'average':16s} | "
        + " | ".join(f"{avg[l][0]:8.2f} {avg[l][1]:9.2f}" for l in labels)
    )
    lines.append("paper averages: Grid n/a; XGB 0.70@10/0.86@50; "
                 "Analytical 0.79@10/0.92@50; Model-Assisted 0.95@10/0.99@50")
    write_result("fig13_search_efficiency", "\n".join(lines))

    # Paper shape: the hybrid leads at both budgets and ~matches exhaustive
    # at 50 trials; the pure-ML tuner has no prior before its first batch
    # returns; grid search is far behind everything. Our simulated space
    # has a denser near-optimal set than real A100 spaces, so random cold
    # starts land closer to the top than the paper's 0.70@10 — the
    # orderings below are the reproduced claims (see EXPERIMENTS.md).
    assert avg["Model-Assisted XGB"][0] >= avg["XGB"][0] - 0.03
    assert avg["Model-Assisted XGB"][0] >= avg["Analytical-only"][0] - 0.02
    # "ML helps analytical": measured fine-tuning beats pure ranking at 50.
    assert avg["Model-Assisted XGB"][1] > avg["Analytical-only"][1]
    assert avg["Model-Assisted XGB"][1] > 0.9
    assert avg["Grid-Search"][1] < avg["Model-Assisted XGB"][1]

    spec = bench_suite_specs()[0]
    space = suite_spaces[spec.name]

    def one_tuning_round():
        t = ModelAssistedXGBTuner(spec, space, measurer=measurer, seed=0)
        return t.tune(10)

    benchmark.pedantic(one_tuning_round, rounds=2, iterations=1)

"""Ablation — pipelining value across GPU generations.

The paper's introduction argues that as tensor-core throughput outpaces
memory bandwidth, exploiting intra-tile pipeline parallelism becomes
essential. This experiment compiles the same operator for three
generations:

* **V100** (Volta) — no asynchronous copy hardware: every shared-memory
  pipelined schedule fails to compile (only pre-Ampere register-level
  software pipelining survives), the reason the paper evaluates on Ampere;
* **A100** (Ampere) — the paper's platform;
* **H100-like** (Hopper) — ~3.2x tensor-core throughput over ~2.2x
  bandwidth: the pipelining gain should *grow*.
"""

from __future__ import annotations

import pytest

from repro.gpusim import A100, H100, V100
from repro.tensor import GemmSpec
from repro.tuning import SpaceOptions, enumerate_space, restrict_space

from conftest import make_measurer, write_result

SPEC = GemmSpec("gen_mm", 1, 512, 768, 3072)
GPUS = [V100, A100, H100]


def run_experiment() -> dict:
    out = {}
    for gpu in GPUS:
        measurer = make_measurer(gpu)
        space = enumerate_space(SPEC, gpu, options=SpaceOptions(max_size=600))
        _, tvm_best = measurer.best(SPEC, restrict_space(space, "tvm"))
        alcop_cfg, alcop_best = measurer.best(SPEC, restrict_space(space, "alcop"))
        out[gpu.name] = {
            "tvm_us": tvm_best,
            "alcop_us": alcop_best,
            "gain": tvm_best / alcop_best,
            "alcop_stages": (alcop_cfg.smem_stages, alcop_cfg.reg_stages),
            "compute_memory_ratio": gpu.tc_flops_total / gpu.dram_bw,
        }
    return out


@pytest.fixture(scope="module")
def generations():
    return run_experiment()


def test_gpu_generations(generations, benchmark):
    lines = ["Ablation — pipelining gain across GPU generations (512x768x3072 MatMul)"]
    lines.append(
        f"{'GPU':18s} | {'flops:byte':>10s} | {'TVM (us)':>9s} | {'ALCOP (us)':>10s} | "
        f"{'gain':>5s} | best stages"
    )
    for name, row in generations.items():
        lines.append(
            f"{name:18s} | {row['compute_memory_ratio']:10.0f} | {row['tvm_us']:9.1f} | "
            f"{row['alcop_us']:10.1f} | {row['gain']:5.2f} | {row['alcop_stages']}"
        )
    write_result("ablation_gpu_generations", "\n".join(lines))

    v100, a100, h100 = (generations[g.name] for g in GPUS)
    # Volta: no cp.async -> every *shared-memory* pipelined candidate fails
    # to compile; only register-level software pipelining (which predates
    # Ampere) survives. This is the paper's hardware premise for evaluating
    # on Ampere only.
    assert v100["alcop_stages"][0] == 1
    assert v100["gain"] < a100["gain"]
    # Ampere and Hopper benefit substantially; the widening compute:memory
    # gap keeps pipelining essential on the newer part.
    assert a100["gain"] > 1.1
    assert h100["gain"] > 1.5
    assert h100["compute_memory_ratio"] > a100["compute_memory_ratio"]

    measurer = make_measurer(H100)
    space = restrict_space(enumerate_space(SPEC, H100, options=SpaceOptions(max_size=200)), "alcop")
    benchmark(measurer.best, SPEC, space)

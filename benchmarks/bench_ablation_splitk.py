"""Ablation — split-K on top of automatic pipelining (extension).

Pipelining restores *intra-tile* parallelism; split-K restores *inter-tile*
parallelism by partitioning the reduction across threadblock groups, at
the cost of a workspace reduction pass. This sweep shows the two are
complementary: on deep-reduction, tiny-output shapes the machine is
starved for threadblocks and split-K stacks on top of pipelining; on
parallelism-rich shapes the search keeps ``split_k == 1``.
"""

from __future__ import annotations

import pytest

from repro.core import AlcopCompiler, SplitKCompiler
from repro.ops import matmul_spec
from repro.tuning import SpaceOptions

from conftest import write_result

SHAPES = [
    ("tiny_out_deep_k", 64, 64, 16384),
    ("small_out_deep_k", 128, 128, 8192),
    ("MM_RN50_FC", 1024, 64, 2048),
    ("wide_parallel", 2048, 2048, 512),
]
OPTS = SpaceOptions(max_size=400)


def run_experiment(measurer) -> dict:
    plain = AlcopCompiler(measurer=measurer, space_options=OPTS)
    splitk = SplitKCompiler(
        measurer=measurer, space_options=OPTS, split_candidates=(1, 2, 4, 8, 16)
    )
    out = {}
    for name, m, n, k in SHAPES:
        spec = matmul_spec(name, m, n, k)
        p = plain.compile(spec)
        s = splitk.compile(spec)
        out[name] = {
            "plain_us": p.latency_us,
            "splitk_us": s.latency_us,
            "split": s.split_k,
            "gain": p.latency_us / s.latency_us,
        }
    return out


@pytest.fixture(scope="module")
def splitk_rows(measurer):
    return run_experiment(measurer)


def test_splitk_ablation(splitk_rows, measurer, benchmark):
    lines = ["Ablation — split-K x pipelining (extension beyond the paper)"]
    lines.append(
        f"{'shape':18s} | {'ALCOP (us)':>10s} | {'+split-K (us)':>13s} | "
        f"{'factor':>6s} | {'gain':>5s}"
    )
    for name, row in splitk_rows.items():
        lines.append(
            f"{name:18s} | {row['plain_us']:10.1f} | {row['splitk_us']:13.1f} | "
            f"{row['split']:6d} | {row['gain']:5.2f}"
        )
    write_result("ablation_splitk", "\n".join(lines))

    # Deep-reduction tiny-output shapes gain substantially ...
    assert splitk_rows["tiny_out_deep_k"]["gain"] > 1.5
    assert splitk_rows["tiny_out_deep_k"]["split"] > 1
    # ... while parallelism-rich shapes are left alone (no regression).
    assert splitk_rows["wide_parallel"]["split"] == 1
    assert splitk_rows["wide_parallel"]["gain"] == pytest.approx(1.0)
    # Split-K never loses: the search includes split_k == 1.
    assert all(row["gain"] >= 0.999 for row in splitk_rows.values())

    comp = SplitKCompiler(measurer=measurer, space_options=SpaceOptions(max_size=150))
    benchmark(comp.gemm_latency, matmul_spec("bench_sk", 64, 64, 4096))

"""Figure 10 — single-operator performance normalized to TVM.

Five compiler variants over the operator suite, each given the exhaustive
best schedule in its (pipelining-restricted) sub-space, as in the paper's
Sec. V-A. Expected shape: ALCOP averages ~1.2x over TVM with the largest
win on small-output / long-reduction shapes; double-buffering alone brings
almost nothing; dropping multi-level then multi-stage pipelining
monotonically erodes the gain.
"""

from __future__ import annotations

import statistics

import pytest

from repro.tuning import restrict_space

from conftest import bench_suite_specs, write_result

VARIANTS = [
    ("TVM", "tvm"),
    ("TVM DB", "tvm-db"),
    ("ALCOP w/o ML&MS", "alcop-no-ml-no-ms"),
    ("ALCOP w/o ML", "alcop-no-ml"),
    ("ALCOP", "alcop"),
]


def run_experiment(measurer, suite_spaces) -> dict:
    results = {}
    for spec in bench_suite_specs():
        space = suite_spaces[spec.name]
        lat = {}
        for label, variant in VARIANTS:
            sub = restrict_space(space, variant)
            _, best = measurer.best(spec, sub)
            lat[label] = best
        results[spec.name] = lat
    return results


@pytest.fixture(scope="module")
def fig10(measurer, suite_spaces):
    return run_experiment(measurer, suite_spaces)


def test_fig10_table(fig10, measurer, benchmark):
    labels = [l for l, _ in VARIANTS]
    lines = ["Fig. 10 — single-operator speedup over TVM (exhaustive search per variant)"]
    lines.append(f"{'operator':16s} | " + " | ".join(f"{l:>16s}" for l in labels))
    speedups = {l: [] for l in labels}
    for op, lat in fig10.items():
        row = []
        for l in labels:
            s = lat["TVM"] / lat[l]
            speedups[l].append(s)
            row.append(f"{s:16.2f}")
        lines.append(f"{op:16s} | " + " | ".join(row))
    lines.append(
        f"{'geo-mean':16s} | "
        + " | ".join(f"{statistics.geometric_mean(speedups[l]):16.2f}" for l in labels)
    )
    lines.append(f"max ALCOP speedup: {max(speedups['ALCOP']):.2f}x")
    write_result("fig10_single_op", "\n".join(lines))

    gm = {l: statistics.geometric_mean(speedups[l]) for l in labels}
    # Paper shape: full ALCOP clearly ahead; ablations ordered; DB ~ nothing.
    assert gm["ALCOP"] >= gm["ALCOP w/o ML"] >= gm["ALCOP w/o ML&MS"] >= 1.0
    assert gm["ALCOP"] > 1.10
    assert max(speedups["ALCOP"]) > 1.4
    assert gm["TVM DB"] < gm["ALCOP"]

    # Insight 1 (Sec. V-A): pipelining works best on limited-spatial-
    # parallelism shapes (MM_RN50_FC) and least on abundant-parallelism
    # ones (MM_Conv1x1_1).
    if "MM_RN50_FC" in fig10 and "MM_Conv1x1_1" in fig10:
        rn50 = fig10["MM_RN50_FC"]["TVM"] / fig10["MM_RN50_FC"]["ALCOP"]
        conv1x1 = fig10["MM_Conv1x1_1"]["TVM"] / fig10["MM_Conv1x1_1"]["ALCOP"]
        assert rn50 > conv1x1
    # Insight 2: longer reduction axes amortize the pipeline fill better
    # (BERT FC2 with K=3072 vs QKV with K=768).
    if "MM_BERT_FC2" in fig10 and "MM_BERT_QKV" in fig10:
        fc2 = fig10["MM_BERT_FC2"]["TVM"] / fig10["MM_BERT_FC2"]["ALCOP"]
        qkv = fig10["MM_BERT_QKV"]["TVM"] / fig10["MM_BERT_QKV"]["ALCOP"]
        assert fc2 > qkv
    # BMM contrast (soft): the attention BMMs are DRAM-bound end to end in
    # our simulator, so SV/QK land close together; require only that SV is
    # not clearly *worse*, and record both in the table.
    if "BMM_BERT_SV" in fig10 and "BMM_BERT_QK" in fig10:
        sv = fig10["BMM_BERT_SV"]["TVM"] / fig10["BMM_BERT_SV"]["ALCOP"]
        qk = fig10["BMM_BERT_QK"]["TVM"] / fig10["BMM_BERT_QK"]["ALCOP"]
        assert sv >= qk - 0.05

    # Machine benchmark: one exhaustive-best lookup from a warm cache.
    spec = next(iter(bench_suite_specs()))
    from conftest import SPACE_OPTIONS
    from repro.tuning import enumerate_space

    space = enumerate_space(spec, options=SPACE_OPTIONS)
    benchmark(measurer.best, spec, space)

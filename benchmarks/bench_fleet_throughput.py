"""Fleet scaling record (no paper figure — perf trajectory).

The distributed tuning fleet (docs/distributed.md) exists to scale the
measurement loop across workers without changing a single bit of the
answer. This benchmark records both halves of that claim as JSON so the
CI fleet-smoke job can track them PR over PR:

* **configs/sec vs. worker count** — the same design-space sweep at fleet
  widths 1, 2 and 4 local workers, each compared against the serial
  ``Measurer.sweep`` wall clock;
* **bitwise identity** — every fleet run's latencies must equal the
  serial run's exactly, including one run with injected worker death;
* **fault overhead** — the dispatch/steal/requeue cost visible in the
  fleet telemetry.

Runs two ways: as a pytest benchmark inside the suite, and as a plain
script (``python benchmarks/bench_fleet_throughput.py --smoke --out F``)
for the CI fleet-smoke job, which uploads the JSON artifact.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

#: Local fleet widths in the scaling sweep.
WIDTHS = (1, 2, 4)


def run_experiment(quick: bool) -> dict:
    from repro import faults
    from repro.gpusim.config import A100
    from repro.tensor.operation import GemmSpec
    from repro.tuning.fleet import fleet_sweep
    from repro.tuning.measure import Measurer
    from repro.tuning.space import SpaceOptions, enumerate_space

    space_cap = 32 if quick else 96
    spec = GemmSpec("fleet-bench", 1, 512, 512, 512)
    space = enumerate_space(spec, A100, SpaceOptions(max_size=space_cap))

    # via_ir=True: each trial pays the full compile path, so there is real
    # work to parallelize (the static-spec path is too cheap to scale).
    t0 = time.perf_counter()
    serial = Measurer(A100, via_ir=True).sweep(spec, space)
    serial_s = time.perf_counter() - t0

    widths = {}
    for n in WIDTHS:
        m = Measurer(A100, via_ir=True)
        t0 = time.perf_counter()
        latencies, tel = fleet_sweep(m, spec, space, workers=n)
        wall = time.perf_counter() - t0
        widths[n] = {
            "wall_s": wall,
            "configs_per_sec": len(space) / max(wall, 1e-9),
            "speedup_vs_serial": serial_s / max(wall, 1e-9),
            "identical_to_serial": latencies == serial,
            "shards": tel.n_shards,
            "dispatches": tel.shards_dispatched,
            "steals": tel.steals,
        }

    # One faulted leg: every shard's first dispatch dies; the recovered
    # sweep must still carry the serial bits.
    plan = faults.FaultPlan(
        [faults.FaultRule("fleet", "worker-death", match="|attempt=0|")],
        seed=11,
    )
    m = Measurer(A100, via_ir=True)
    t0 = time.perf_counter()
    with faults.injected(plan):
        faulted, faulted_tel = fleet_sweep(m, spec, space, workers=2)
    faulted_s = time.perf_counter() - t0

    best = min(range(len(serial)), key=lambda i: serial[i])
    return {
        "quick": quick,
        "space": len(space),
        "serial_wall_s": serial_s,
        "serial_configs_per_sec": len(space) / max(serial_s, 1e-9),
        "best_index": best,
        "best_latency_us": serial[best],
        "widths": {str(n): w for n, w in widths.items()},
        "faulted_wall_s": faulted_s,
        "faulted_identical": faulted == serial,
        "faulted_worker_deaths": faulted_tel.worker_deaths,
        "faulted_shard_losses": faulted_tel.shard_losses,
    }


def format_table(r: dict) -> str:
    lines = ["Fleet throughput — configs/sec vs. local worker count"]
    lines.append(
        f"serial sweep ({r['space']} configs): {r['serial_wall_s']:6.2f}s  "
        f"{r['serial_configs_per_sec']:6.1f} cfg/s"
    )
    for n in sorted(r["widths"], key=int):
        w = r["widths"][n]
        ident = "identical" if w["identical_to_serial"] else "MISMATCH"
        lines.append(
            f"fleet x{n}: {w['wall_s']:6.2f}s  {w['configs_per_sec']:6.1f} cfg/s  "
            f"{w['speedup_vs_serial']:4.2f}x vs serial  "
            f"({w['shards']} shard(s), {w['dispatches']} dispatch(es), "
            f"{w['steals']} steal(s))  [{ident}]"
        )
    lines.append(
        f"faulted x2 (worker death per shard): {r['faulted_wall_s']:6.2f}s, "
        f"{r['faulted_worker_deaths']} death(s) / "
        f"{r['faulted_shard_losses']} shard loss(es) recovered  "
        f"[{'identical' if r['faulted_identical'] else 'MISMATCH'}]"
    )
    return "\n".join(lines)


def check_invariants(r: dict) -> None:
    for n, w in r["widths"].items():
        assert w["identical_to_serial"], (
            f"fleet width {n} diverged from the serial sweep — the bitwise "
            "identity contract is broken"
        )
    assert r["faulted_identical"], (
        "the worker-death run diverged from the serial sweep"
    )
    assert r["faulted_worker_deaths"] >= 1, (
        "the faulted leg injected no deaths — the chaos plan went inert"
    )
    # Scaling is recorded, not hard-asserted (CI runners have few cores);
    # but a wider fleet must never *lose* to one worker by a large margin.
    one = r["widths"]["1"]["configs_per_sec"]
    four = r["widths"]["4"]["configs_per_sec"]
    assert four >= 0.5 * one, (
        f"4-worker fleet ({four:.1f} cfg/s) is dramatically slower than one "
        f"worker ({one:.1f} cfg/s) — dispatch overhead has regressed"
    )


# ------------------------------------------------------------------ pytest
def test_fleet_throughput(benchmark):
    from conftest import QUICK, RESULTS_DIR, write_result

    result = run_experiment(QUICK)
    check_invariants(result)
    write_result("fleet_throughput", format_table(result))
    out = RESULTS_DIR / "fleet_throughput.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {out}]")

    # Representative kernel: one tiny coordinator round (dispatch + stream
    # + merge) — the fleet's pure orchestration overhead.
    from repro.gpusim.config import A100
    from repro.tensor.operation import GemmSpec
    from repro.tuning.fleet import FleetCoordinator
    from repro.tuning.space import SpaceOptions, enumerate_space

    spec = GemmSpec("fleet-kernel", 1, 128, 128, 128)
    tiny = enumerate_space(spec, A100, SpaceOptions(max_size=4))
    benchmark.pedantic(
        lambda: FleetCoordinator(
            spec, tiny, gpu=A100, via_ir=False, workers=1
        ).run(),
        rounds=3,
        iterations=1,
    )


# ------------------------------------------------------------------ script
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced space")
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)

    result = run_experiment(args.smoke)
    check_invariants(result)
    print(format_table(result))
    if args.out:
        path = pathlib.Path(args.out)
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"[json written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

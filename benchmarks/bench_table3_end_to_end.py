"""Table III — end-to-end model speedup from pipelining.

Six models compiled three ways: ALCOP (full pipelining search), vanilla
TVM (tiling-only search on the identical stack), and the XLA-like
whole-graph compiler. Expected shape (paper): 1.02-1.18x over TVM with
transformers at the high end, 1.01-1.64x over XLA with the conv nets'
XLA gap widest on ResNet-18.
"""

from __future__ import annotations

import pytest

from repro.baselines import XlaLikeCompiler, tvm_compiler
from repro.core import AlcopCompiler
from repro.models import MODEL_ZOO, estimate_model_latency

from conftest import E2E_SPACE_OPTIONS, QUICK, write_result

MODELS = ["BERT", "ResNet-18"] if QUICK else list(MODEL_ZOO)


def run_experiment(measurer) -> dict:
    alcop = AlcopCompiler(measurer=measurer, space_options=E2E_SPACE_OPTIONS)
    tvm = tvm_compiler(measurer=measurer, space_options=E2E_SPACE_OPTIONS)
    xla = XlaLikeCompiler()
    out = {}
    for name in MODELS:
        graph = MODEL_ZOO[name]()
        out[name] = {
            "ALCOP": estimate_model_latency(graph, alcop, backend_name="ALCOP"),
            "TVM": estimate_model_latency(graph, tvm, backend_name="TVM"),
            "XLA": estimate_model_latency(graph, xla, backend_name="XLA"),
        }
    return out


@pytest.fixture(scope="module")
def table3(measurer):
    return run_experiment(measurer)


def test_table3(table3, benchmark):
    lines = ["Table III — end-to-end inference speedup from pipelining"]
    lines.append(
        f"{'model':12s} | {'ALCOP (ms)':>10s} | {'TVM (ms)':>9s} | {'XLA (ms)':>9s} | "
        f"{'vs TVM':>7s} | {'vs XLA':>7s}"
    )
    ratios_tvm, ratios_xla = {}, {}
    for name, res in table3.items():
        a, t, x = (res[k].total_us / 1000 for k in ("ALCOP", "TVM", "XLA"))
        ratios_tvm[name] = t * 1000 / res["ALCOP"].total_us
        ratios_xla[name] = x * 1000 / res["ALCOP"].total_us
        lines.append(
            f"{name:12s} | {a:10.2f} | {t:9.2f} | {x:9.2f} | "
            f"{ratios_tvm[name]:7.2f} | {ratios_xla[name]:7.2f}"
        )
    write_result("table3_end_to_end", "\n".join(lines))

    # Paper shape checks.
    for name in table3:
        assert ratios_tvm[name] >= 1.0, f"{name}: ALCOP slower than TVM"
        assert ratios_xla[name] >= 0.95, f"{name}: ALCOP clearly slower than XLA"
    assert max(ratios_tvm.values()) <= 1.45  # end-to-end gains are diluted
    if not QUICK:
        # Transformers gain more over TVM than ResNets (GEMM-dominated).
        assert ratios_tvm["BERT"] > ratios_tvm["ResNet-50"] - 0.05

    # Machine benchmark: re-estimating a model from the warm kernel cache.
    graph = MODEL_ZOO[MODELS[0]]()
    xla = XlaLikeCompiler()
    benchmark(estimate_model_latency, graph, xla)

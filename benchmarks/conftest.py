"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the ALCOP paper
(see DESIGN.md's experiment index). Experiments run once per session inside
fixtures, print their table, and persist it under ``benchmarks/results/``;
the ``benchmark`` fixture then times a representative computational kernel
of that experiment so ``pytest benchmarks/ --benchmark-only`` reports
machine-performance numbers alongside.

Set ``REPRO_BENCH_QUICK=1`` to run reduced sweeps (fewer operators, smaller
spaces) while keeping every experiment exercised.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.tensor import GemmSpec
from repro.tuning import Measurer, SpaceOptions, enumerate_space
from repro.workloads import suite_specs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Cap on enumerated spaces for the exhaustive studies (strided, see
#: SpaceOptions.max_size). Full enumeration changes nothing qualitatively
#: but multiplies runtime.
SPACE_OPTIONS = SpaceOptions(max_size=300 if QUICK else 1200)
E2E_SPACE_OPTIONS = SpaceOptions(max_size=200 if QUICK else 600)


def bench_suite_specs():
    specs = suite_specs()
    if QUICK:
        keep = {"MM_BERT_FC1", "MM_RN50_FC", "BMM_BERT_QK", "BMM_BERT_SV", "Conv_RN50_3x3"}
        specs = [s for s in specs if s.name in keep]
    return specs


def write_result(name: str, text: str) -> None:
    """Persist one experiment's table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def measurer() -> Measurer:
    """One shared compile-and-simulate cache for the whole bench session."""
    return Measurer(via_ir=False)


@pytest.fixture(scope="session")
def suite_spaces(measurer):
    """Enumerated (capped) space per suite operator."""
    return {spec.name: enumerate_space(spec, options=SPACE_OPTIONS) for spec in bench_suite_specs()}

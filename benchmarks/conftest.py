"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the ALCOP paper
(see DESIGN.md's experiment index). Experiments run once per session inside
fixtures, print their table, and persist it under ``benchmarks/results/``;
the ``benchmark`` fixture then times a representative computational kernel
of that experiment so ``pytest benchmarks/ --benchmark-only`` reports
machine-performance numbers alongside.

Set ``REPRO_BENCH_QUICK=1`` (or pass ``--smoke``) to run reduced sweeps
(fewer operators, smaller spaces) while keeping every experiment exercised.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.gpusim import A100
from repro.tuning import Measurer, MeasurementCache, SpaceOptions, enumerate_space
from repro.workloads import suite_specs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Session-wide disk cache / pool width, set from --cache-dir / --jobs in
#: pytest_configure. Bench modules that build their own Measurer (e.g. one
#: per GPU generation) must go through :func:`make_measurer` so every
#: experiment shares the same persisted store and repeat runs warm-start.
SESSION_CACHE = None
JOBS = 1


def make_measurer(gpu=A100, via_ir: bool = False) -> Measurer:
    """A measurer wired to the session's disk cache and process pool."""
    return Measurer(gpu, via_ir=via_ir, cache=SESSION_CACHE, jobs=JOBS)

#: Cap on enumerated spaces for the exhaustive studies (strided, see
#: SpaceOptions.max_size). Full enumeration changes nothing qualitatively
#: but multiplies runtime.
SPACE_OPTIONS = SpaceOptions(max_size=300 if QUICK else 1200)
E2E_SPACE_OPTIONS = SpaceOptions(max_size=200 if QUICK else 600)


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run reduced benchmark sweeps (same as REPRO_BENCH_QUICK=1)",
    )
    parser.addoption(
        "--cache-dir",
        action="store",
        default=None,
        help="disk-persistent measurement cache directory; a second run "
             "against the same directory warm-starts (skips the compiles)",
    )
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=1,
        help="parallel measurement worker processes for benchmark sweeps",
    )


def pytest_configure(config):
    """``--smoke`` flips the module into quick mode before the bench modules
    are collected (they read QUICK / *_SPACE_OPTIONS at import time);
    ``--cache-dir``/``--jobs`` wire the session measurement cache and pool."""
    global SESSION_CACHE, JOBS
    cache_dir = config.getoption("--cache-dir", default=None)
    if cache_dir:
        SESSION_CACHE = MeasurementCache(cache_dir)
    JOBS = config.getoption("--jobs", default=1)
    if not config.getoption("--smoke", default=False):
        return
    global QUICK, SPACE_OPTIONS, E2E_SPACE_OPTIONS
    QUICK = True
    os.environ["REPRO_BENCH_QUICK"] = "1"
    SPACE_OPTIONS = SpaceOptions(max_size=300)
    E2E_SPACE_OPTIONS = SpaceOptions(max_size=200)


def bench_suite_specs():
    specs = suite_specs()
    if QUICK:
        # one library-beating op (MM_Conv1x1_1) must stay in the reduced set
        # so fig11's "ALCOP wins somewhere" paper-shape check holds
        keep = {
            "MM_BERT_FC1",
            "MM_RN50_FC",
            "MM_Conv1x1_1",
            "BMM_BERT_QK",
            "BMM_BERT_SV",
            "Conv_RN50_3x3",
        }
        specs = [s for s in specs if s.name in keep]
    return specs


def write_result(name: str, text: str) -> None:
    """Persist one experiment's table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def measurer(request) -> Measurer:
    """One shared compile-and-simulate cache for the whole bench session."""
    m = make_measurer()
    request.config._repro_measurers = getattr(request.config, "_repro_measurers", [])
    request.config._repro_measurers.append(m)
    return m


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Cache/compile telemetry so warm-vs-cold runs are visible in CI logs."""
    for m in getattr(config, "_repro_measurers", []):
        terminalreporter.write_line(f"[repro] measurement telemetry: {m.telemetry.summary()}")
    if SESSION_CACHE is not None:
        terminalreporter.write_line(
            f"[repro] measurement cache: {len(SESSION_CACHE)} entries, "
            f"{SESSION_CACHE.hits} hits / {SESSION_CACHE.misses} misses "
            f"({SESSION_CACHE.path})"
        )


@pytest.fixture(scope="session")
def suite_spaces(measurer):
    """Enumerated (capped) space per suite operator."""
    return {spec.name: enumerate_space(spec, options=SPACE_OPTIONS) for spec in bench_suite_specs()}

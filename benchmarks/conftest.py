"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the ALCOP paper
(see DESIGN.md's experiment index). Experiments run once per session inside
fixtures, print their table, and persist it under ``benchmarks/results/``;
the ``benchmark`` fixture then times a representative computational kernel
of that experiment so ``pytest benchmarks/ --benchmark-only`` reports
machine-performance numbers alongside.

Set ``REPRO_BENCH_QUICK=1`` (or pass ``--smoke``) to run reduced sweeps
(fewer operators, smaller spaces) while keeping every experiment exercised.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.tuning import Measurer, SpaceOptions, enumerate_space
from repro.workloads import suite_specs

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Cap on enumerated spaces for the exhaustive studies (strided, see
#: SpaceOptions.max_size). Full enumeration changes nothing qualitatively
#: but multiplies runtime.
SPACE_OPTIONS = SpaceOptions(max_size=300 if QUICK else 1200)
E2E_SPACE_OPTIONS = SpaceOptions(max_size=200 if QUICK else 600)


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run reduced benchmark sweeps (same as REPRO_BENCH_QUICK=1)",
    )


def pytest_configure(config):
    """``--smoke`` flips the module into quick mode before the bench modules
    are collected (they read QUICK / *_SPACE_OPTIONS at import time)."""
    if not config.getoption("--smoke", default=False):
        return
    global QUICK, SPACE_OPTIONS, E2E_SPACE_OPTIONS
    QUICK = True
    os.environ["REPRO_BENCH_QUICK"] = "1"
    SPACE_OPTIONS = SpaceOptions(max_size=300)
    E2E_SPACE_OPTIONS = SpaceOptions(max_size=200)


def bench_suite_specs():
    specs = suite_specs()
    if QUICK:
        # one library-beating op (MM_Conv1x1_1) must stay in the reduced set
        # so fig11's "ALCOP wins somewhere" paper-shape check holds
        keep = {
            "MM_BERT_FC1",
            "MM_RN50_FC",
            "MM_Conv1x1_1",
            "BMM_BERT_QK",
            "BMM_BERT_SV",
            "Conv_RN50_3x3",
        }
        specs = [s for s in specs if s.name in keep]
    return specs


def write_result(name: str, text: str) -> None:
    """Persist one experiment's table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def measurer() -> Measurer:
    """One shared compile-and-simulate cache for the whole bench session."""
    return Measurer(via_ir=False)


@pytest.fixture(scope="session")
def suite_spaces(measurer):
    """Enumerated (capped) space per suite operator."""
    return {spec.name: enumerate_space(spec, options=SPACE_OPTIONS) for spec in bench_suite_specs()}

"""Figure 1b — motivating example.

A 2048x2048x2048 half-precision MatMul on the simulated A100, swept over
threadblock tile sizes, with tiling-only schedules versus tiling +
pipelining. The paper's observation to reproduce: with tiling only,
performance is always sub-optimal — small tiles lack data reuse, large
tiles lack inter-tile parallelism; pipelining restores intra-tile
parallelism and makes large tiles win.
"""

from __future__ import annotations

import pytest

from repro.gpusim import simulate_kernel
from repro.perfmodel import timing_spec_from_config
from repro.schedule import TileConfig
from repro.tensor import GemmSpec

from conftest import write_result

SPEC = GemmSpec("MM_2048", 1, 2048, 2048, 2048)

#: (block_m, block_n, warp_m, warp_n) sweep of Fig. 1b's x-axis.
TILES = [
    (32, 32, 32, 32),
    (64, 64, 32, 32),
    (128, 64, 64, 32),
    (128, 128, 64, 64),
    (256, 128, 64, 64),
]


def _tflops(bm: int, bn: int, wm: int, wn: int, ss: int, rs: int) -> float:
    cfg = TileConfig(bm, bn, 32, warp_m=wm, warp_n=wn, chunk_k=16, smem_stages=ss, reg_stages=rs)
    return simulate_kernel(timing_spec_from_config(SPEC, cfg)).tflops


def run_experiment() -> dict:
    rows = {}
    for bm, bn, wm, wn in TILES:
        rows[(bm, bn)] = {
            "tiling only": _tflops(bm, bn, wm, wn, 1, 1),
            "+2-stage": _tflops(bm, bn, wm, wn, 2, 1),
            "+4-stage/2-level": _tflops(bm, bn, wm, wn, 4, 2),
        }
    return rows


@pytest.fixture(scope="module")
def fig1b_rows():
    return run_experiment()


def test_fig1b_table(fig1b_rows, benchmark):
    lines = ["Fig. 1b — 2048^3 MatMul TFLOPS vs tiling and pipelining (simulated A100)"]
    lines.append(
        f"{'TB tile':>10s} | {'tiling only':>12s} | {'+2-stage':>10s} | {'+4st/2lvl':>10s}"
    )
    for (bm, bn), row in fig1b_rows.items():
        lines.append(
            f"{bm}x{bn:>5d} | {row['tiling only']:12.1f} | {row['+2-stage']:10.1f} | "
            f"{row['+4-stage/2-level']:10.1f}"
        )
    best_tiled = max(r["tiling only"] for r in fig1b_rows.values())
    best_piped = max(r["+4-stage/2-level"] for r in fig1b_rows.values())
    lines.append(
        f"best tiling-only: {best_tiled:.1f} TFLOPS; best pipelined: {best_piped:.1f} TFLOPS "
        f"({best_piped / best_tiled:.2f}x)"
    )
    write_result("fig1b_motivation", "\n".join(lines))

    # Paper shape checks: pipelining lifts the achievable peak, and the
    # largest tiles benefit the most.
    assert best_piped > best_tiled * 1.15
    small_gain = fig1b_rows[(32, 32)]["+4-stage/2-level"] / fig1b_rows[(32, 32)]["tiling only"]
    large_gain = fig1b_rows[(256, 128)]["+4-stage/2-level"] / fig1b_rows[(256, 128)]["tiling only"]
    assert large_gain > small_gain

    # Machine benchmark: one full kernel simulation.
    benchmark(_tflops, 128, 128, 64, 64, 4, 2)

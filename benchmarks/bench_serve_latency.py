"""Serving-path latency tracking (no paper figure — perf trajectory).

The ``repro serve`` daemon exists to amortize compile state across
requests; this benchmark records the numbers that claim rests on, as JSON
so the CI serve-smoke job can track their trajectory from PR to PR:

* **cold latency** — first tune of a shape: full space sweep + kernel
  build, through a real Unix-socket round trip;
* **warm latency (p50/p95)** — repeat compiles of the same shape, served
  from the artifact registry with zero compile stages;
* **dedup factor** — N concurrent identical tune requests against a fresh
  shape must run exactly one sweep (requests / sweeps == N).

Runs two ways: as a pytest benchmark inside the suite, and as a plain
script (``python benchmarks/bench_serve_latency.py --smoke --out FILE``)
for the CI serve-smoke job, which uploads the JSON artifact.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import threading
import time

#: Concurrent identical requests in the dedup experiment.
DEDUP_CLIENTS = 3
#: Warm round trips for the p50/p95 estimate.
WARM_ROUNDS_FULL = 60
WARM_ROUNDS_QUICK = 20


def _quantile(ordered, q):
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def run_experiment(quick: bool) -> dict:
    from repro.serve.client import ServeClient
    from repro.serve.registry import ArtifactRegistry
    from repro.serve.server import ReproServer

    space = 24 if quick else 120
    warm_rounds = WARM_ROUNDS_QUICK if quick else WARM_ROUNDS_FULL
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        tmp = pathlib.Path(tmp)
        server = ReproServer(
            socket_path=str(tmp / "d.sock"),
            registry=ArtifactRegistry(tmp / "reg"),
            workers=max(4, DEDUP_CLIENTS),
            default_space=space,
        )
        server.start()
        try:
            client = ServeClient(socket_path=server.socket_path, timeout=600)
            assert client.wait_until_ready(timeout=30), "daemon never became ready"

            # --- cold: first request pays the sweep + kernel build ----------
            t0 = time.perf_counter()
            cold = client.tune(m=512, n=512, k=512)
            cold_s = time.perf_counter() - t0
            assert cold["served_from"] == "fresh"

            # --- warm: registry round trips, zero compile work --------------
            warm_samples = []
            for _ in range(warm_rounds):
                t0 = time.perf_counter()
                warm = client.compile(m=512, n=512, k=512)
                warm_samples.append(time.perf_counter() - t0)
                assert warm["served_from"] == "registry"
                assert warm["stages"] == {}, (
                    f"warm request touched the compiler: {warm['stages']}"
                )
            warm_samples.sort()

            # --- dedup: concurrent identical requests, fresh shape ----------
            results, errors = [], []
            barrier = threading.Barrier(DEDUP_CLIENTS)

            def one():
                c = ServeClient(socket_path=server.socket_path, timeout=600)
                barrier.wait()
                try:
                    results.append(c.tune(m=1024, n=256, k=256))
                except Exception as e:
                    errors.append(e)

            threads = [threading.Thread(target=one) for _ in range(DEDUP_CLIENTS)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            dedup_s = time.perf_counter() - t0
            assert not errors, errors

            status = client.status()
        finally:
            server.stop()
            server.shutdown(timeout=30)

    counters = status["counters"]
    return {
        "quick": quick,
        "space": space,
        "cold_ms": cold_s * 1e3,
        "warm_rounds": warm_rounds,
        "warm_p50_ms": _quantile(warm_samples, 0.50) * 1e3,
        "warm_p95_ms": _quantile(warm_samples, 0.95) * 1e3,
        "cold_over_warm_p50": cold_s / max(_quantile(warm_samples, 0.50), 1e-9),
        "dedup_clients": DEDUP_CLIENTS,
        "dedup_wall_s": dedup_s,
        "dedup_served_from": sorted(r["served_from"] for r in results),
        "sweeps_run": counters["sweeps_run"],
        "artifacts_built": counters["artifacts_built"],
        "dedup_hits": counters["dedup_hits"],
        "dedup_factor": DEDUP_CLIENTS / max(counters["sweeps_run"] - 1, 1),
        "endpoint_tune_p95_ms": status["endpoints"]["tune"]["p95_ms"],
        "measurer_n_compiled": status["measurer"]["n_compiled"],
    }


def format_table(r: dict) -> str:
    lines = ["Serve latency — cold vs. warm round trips and request dedup"]
    lines.append(
        f"cold tune (space {r['space']}): {r['cold_ms']:8.1f} ms  "
        f"({r['measurer_n_compiled']} configs compiled)"
    )
    lines.append(
        f"warm compile ({r['warm_rounds']} rounds): "
        f"p50 {r['warm_p50_ms']:6.2f} ms, p95 {r['warm_p95_ms']:6.2f} ms, "
        f"cold/warm {r['cold_over_warm_p50']:.0f}x"
    )
    lines.append(
        f"dedup: {r['dedup_clients']} concurrent identical tunes -> "
        f"{r['sweeps_run'] - 1} sweep(s) for that shape, "
        f"{r['dedup_hits']} shared in-flight "
        f"(served_from {r['dedup_served_from']})"
    )
    return "\n".join(lines)


def check_invariants(r: dict) -> None:
    assert r["warm_p50_ms"] < r["cold_ms"], (
        f"warm p50 {r['warm_p50_ms']:.2f} ms is not below the cold request "
        f"({r['cold_ms']:.2f} ms) — the registry is not saving work"
    )
    # Two shapes were tuned in total (cold experiment + dedup experiment);
    # the dedup fan-in must have collapsed to one sweep for its shape.
    assert r["sweeps_run"] == 2, (
        f"{r['sweeps_run']} sweeps ran for 2 distinct shapes — concurrent "
        "identical requests did not deduplicate"
    )
    assert r["dedup_served_from"].count("fresh") == 1
    assert r["artifacts_built"] == 2


# ------------------------------------------------------------------ pytest
def test_serve_latency(benchmark):
    from conftest import QUICK, RESULTS_DIR, write_result

    result = run_experiment(QUICK)
    check_invariants(result)
    write_result("serve_latency", format_table(result))
    out = RESULTS_DIR / "serve_latency.json"
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[json written to {out}]")

    # Representative kernel: the transport-independent dispatch path on a
    # status request (no compile work, pure serving overhead).
    from repro.serve.server import ReproServer

    server = ReproServer(port=0, default_space=16)
    benchmark.pedantic(
        lambda: server.handle({"op": "status", "id": "bench"}), rounds=30, iterations=1
    )


# ------------------------------------------------------------------ script
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced space / rounds")
    parser.add_argument("--out", default=None, help="write the JSON record here")
    args = parser.parse_args(argv)

    result = run_experiment(args.smoke)
    check_invariants(result)
    print(format_table(result))
    if args.out:
        path = pathlib.Path(args.out)
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"[json written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 11 — single-operator performance versus vendor libraries.

ALCOP's exhaustively searched kernels against the cuBLAS/cuDNN-like
catalog + dispatcher. Expected shape (paper): on-par performance,
~93% of the library on average, with the compiler *winning* on some
shapes (the library's fixed catalog and heuristic dispatch cannot cover
every problem the way per-shape search does).
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines import LibraryKernels
from repro.gpusim.occupancy import CompileError
from repro.tuning import restrict_space

from conftest import bench_suite_specs, write_result


def run_experiment(measurer, suite_spaces) -> dict:
    lib = LibraryKernels()
    out = {}
    for spec in bench_suite_specs():
        _, alcop = measurer.best(spec, restrict_space(suite_spaces[spec.name], "alcop"))
        try:
            lib_lat = lib.gemm_latency(spec)
        except CompileError:
            lib_lat = None  # library has no kernel for this shape
        out[spec.name] = (alcop, lib_lat)
    return out


@pytest.fixture(scope="module")
def fig11(measurer, suite_spaces):
    return run_experiment(measurer, suite_spaces)


def test_fig11(fig11, benchmark):
    lines = ["Fig. 11 — ALCOP performance normalized to library kernels (>1 = ALCOP faster)"]
    rel = {}
    for op, (alcop, lib) in fig11.items():
        if lib is None:
            lines.append(f"{op:16s} | library: no kernel (generic fallback)")
            continue
        rel[op] = lib / alcop
        lines.append(f"{op:16s} | ALCOP {alcop:8.1f}us | library {lib:8.1f}us | {rel[op]:5.2f}")
    mean = statistics.geometric_mean(rel.values())
    lines.append(f"geo-mean normalized performance: {mean:.2f} "
                 f"(paper: ~0.93; ALCOP wins on {sum(v > 1 for v in rel.values())} ops)")
    write_result("fig11_vs_library", "\n".join(lines))

    # Paper shape: on-par on average (within ~15% either way), with at
    # least one op where the searched compiler beats the library.
    assert 0.8 < mean < 1.15
    assert any(v > 1.0 for v in rel.values())
    assert any(v < 1.0 for v in rel.values())

    lib = LibraryKernels()
    spec = bench_suite_specs()[0]
    benchmark(lib.dispatch, spec)

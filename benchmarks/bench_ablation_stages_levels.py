"""Ablation — stage-count and level sweep (quantifying Figs. 2 and 3).

Fixes one latency-bound workload and tiling, and sweeps the pipeline
configuration: shared-memory stages 1..4 crossed with register
pipelining on/off. This isolates the two mechanisms the paper's concept
figures illustrate: more stages hide longer load latencies (Fig. 2), and
the fused inner pipeline removes the register-load bubble (Fig. 3).
Also validates Table I's pipeline latency model against the simulator on
the same sweep.
"""

from __future__ import annotations

import pytest

from repro.gpusim import simulate_kernel, stall_time
from repro.perfmodel import predict_latency, timing_spec_from_config
from repro.schedule import TileConfig
from repro.tensor import GemmSpec

from conftest import write_result

SPEC = GemmSpec("ablation_mm", 1, 512, 768, 3072)
BASE = dict(block_m=64, block_n=64, block_k=32, warp_m=32, warp_n=32, chunk_k=16)


def run_experiment() -> dict:
    rows = {}
    for ss in (1, 2, 3, 4):
        for rs in (1, 2):
            cfg = TileConfig(**BASE, smem_stages=ss, reg_stages=rs)
            ts = timing_spec_from_config(SPEC, cfg)
            res = simulate_kernel(ts, collect_trace=True)
            rows[(ss, rs)] = {
                "sim_us": res.latency_us,
                "model_us": predict_latency(ts),
                "stall_us": sum(stall_time(res.trace).values()),
            }
    return rows


@pytest.fixture(scope="module")
def ablation():
    return run_experiment()


def test_ablation_stages_levels(ablation, benchmark):
    lines = ["Ablation — pipeline stages x levels on a latency-bound MatMul (512x768x3072)"]
    lines.append(
        f"{'(smem,reg)':>10s} | {'sim (us)':>9s} | {'model (us)':>10s} | {'stall (us)':>10s}"
    )
    for (ss, rs), row in sorted(ablation.items()):
        lines.append(
            f"({ss},{rs})      | {row['sim_us']:9.1f} | {row['model_us']:10.1f} | "
            f"{row['stall_us']:10.2f}"
        )
    base = ablation[(1, 1)]["sim_us"]
    best = min(r["sim_us"] for r in ablation.values())
    lines.append(f"total pipelining gain at fixed tiling: {base / best:.2f}x")
    write_result("ablation_stages_levels", "\n".join(lines))

    # Multi-stage monotonicity at this latency-bound operating point.
    assert ablation[(2, 1)]["sim_us"] < ablation[(1, 1)]["sim_us"]
    assert ablation[(3, 1)]["sim_us"] < ablation[(2, 1)]["sim_us"]
    # Multi-level (register) pipelining adds on top of multi-stage.
    assert ablation[(3, 2)]["sim_us"] < ablation[(3, 1)]["sim_us"]
    # Stall time shrinks as stages are added (the Fig. 2 mechanism).
    assert ablation[(4, 1)]["stall_us"] < ablation[(1, 1)]["stall_us"]
    # Table I tracks the simulator's ordering for the stage sweep: one of
    # the model's top-3 picks is within 2% of the simulator's optimum
    # (the model has exact ties between configurations it cannot separate).
    best_sim = min(r["sim_us"] for r in ablation.values())
    model_order = sorted(ablation, key=lambda k: ablation[k]["model_us"])
    assert any(ablation[k]["sim_us"] <= best_sim * 1.02 for k in model_order[:3])

    cfg = TileConfig(**BASE, smem_stages=3, reg_stages=2)
    ts = timing_spec_from_config(SPEC, cfg)
    benchmark(simulate_kernel, ts)

"""Figure 12 — performance model accuracy: best-in-top-k.

For each suite operator, rank the entire design space by (a) our
pipeline-aware analytical model and (b) the bottleneck-based analysis,
then report the best *measured* performance within the top-10 and top-50
ranked schedules, normalized to the exhaustive-search optimum. 'compile
fail' arises when a model's first k picks all fail to build — only the
bottleneck model, which is blind to occupancy and launchability, does
this.

Expected shape (paper): analytical > bottleneck at both k; top-50 within a
few percent of exhaustive; MatMuls >95% for the analytical model.
"""

from __future__ import annotations

import statistics

import pytest

from repro.perfmodel import bottleneck_latency, predict_latency
from repro.tuning import best_in_top_k
from repro.tuning.tuners import analytical_rank

from conftest import bench_suite_specs, write_result

KS = (10, 50)


def run_experiment(measurer, suite_spaces) -> dict:
    out = {}
    for spec in bench_suite_specs():
        space = suite_spaces[spec.name]
        latencies = measurer.sweep(spec, space)
        best = min(l for l in latencies if l != float("inf"))
        row = {}
        for label, model in (("analytical", predict_latency), ("bottleneck", bottleneck_latency)):
            order = analytical_rank(spec, space, model=model)
            ranked = [latencies[i] for i in order]
            row[label] = {k: best_in_top_k(ranked, k, best) for k in KS}
        out[spec.name] = row
    return out


@pytest.fixture(scope="module")
def fig12(measurer, suite_spaces):
    return run_experiment(measurer, suite_spaces)


def test_fig12(fig12, measurer, suite_spaces, benchmark):
    lines = ["Fig. 12 — best-in-top-k of the two static models (normalized to exhaustive best)"]
    lines.append(
        f"{'operator':16s} | {'anal@10':>8s} {'anal@50':>8s} | {'bneck@10':>8s} {'bneck@50':>8s}"
    )
    for op, row in fig12.items():
        a, b = row["analytical"], row["bottleneck"]

        def fmt(v):
            return "  FAIL  " if v == 0.0 else f"{v:8.2f}"

        lines.append(f"{op:16s} | {fmt(a[10])} {fmt(a[50])} | {fmt(b[10])} {fmt(b[50])}")
    avg = {
        (label, k): statistics.mean(row[label][k] for row in fig12.values())
        for label in ("analytical", "bottleneck")
        for k in KS
    }
    lines.append(
        f"{'average':16s} | {avg[('analytical', 10)]:8.2f} {avg[('analytical', 50)]:8.2f} | "
        f"{avg[('bottleneck', 10)]:8.2f} {avg[('bottleneck', 50)]:8.2f}"
    )
    lines.append("paper: analytical 0.79@10 / 0.92@50; bottleneck 0.75@10 / 0.88@50")
    write_result("fig12_model_accuracy", "\n".join(lines))

    # Paper shape: the pipeline-aware model beats bottleneck analysis at
    # both budgets; top-50 approaches the exhaustive best; MatMuls >90%.
    assert avg[("analytical", 10)] > avg[("bottleneck", 10)]
    assert avg[("analytical", 50)] > avg[("bottleneck", 50)]
    assert avg[("analytical", 50)] > 0.85
    # MatMuls: high top-50 accuracy for most shapes (paper reports >95%;
    # our MM_BERT_FC2 lands lower — recorded in EXPERIMENTS.md).
    mm = [row["analytical"][50] for op, row in fig12.items() if op.startswith("MM_")]
    assert statistics.median(mm) > 0.9

    spec = bench_suite_specs()[0]
    space = suite_spaces[spec.name]
    benchmark(analytical_rank, spec, space[:200])

"""Detailed behaviour tests for the library and XLA-like baselines."""

import pytest

from repro.baselines import LIBRARY_CATALOG, LibraryKernels, XlaLikeCompiler
from repro.gpusim import simulate_kernel
from repro.gpusim.occupancy import CompileError
from repro.ops import Conv2dShape, bmm_spec, conv2d_spec, matmul_spec
from repro.perfmodel import timing_spec_from_config
from repro.workloads import suite_specs


class TestLibraryDispatch:
    def test_dispatch_covers_most_suite_shapes(self):
        lib = LibraryKernels()
        covered = 0
        for spec in suite_specs():
            try:
                lib.dispatch(spec)
                covered += 1
            except CompileError:
                pass
        assert covered >= len(suite_specs()) - 1

    def test_dispatch_is_best_of_catalog(self):
        lib = LibraryKernels()
        spec = matmul_spec("m", 1024, 1024, 1024)
        picked = lib.dispatch(spec)
        picked_lat = simulate_kernel(timing_spec_from_config(spec, picked)).latency_us
        for cfg in LIBRARY_CATALOG:
            if spec.m % cfg.block_m or spec.n % cfg.block_n or spec.k % cfg.block_k:
                continue
            try:
                lat = simulate_kernel(timing_spec_from_config(spec, cfg)).latency_us
            except CompileError:
                continue
            assert picked_lat <= lat + 1e-9

    def test_uplift_applied(self):
        lib = LibraryKernels()
        spec = matmul_spec("m", 1024, 1024, 1024)
        cfg = lib.dispatch(spec)
        raw = simulate_kernel(timing_spec_from_config(spec, cfg)).latency_us
        assert lib.gemm_latency(spec) < raw

    def test_deterministic(self):
        spec = matmul_spec("m", 512, 512, 512)
        assert LibraryKernels().gemm_latency(spec) == LibraryKernels().gemm_latency(spec)

    def test_batched_shapes_supported(self):
        lib = LibraryKernels()
        assert lib.gemm_latency(bmm_spec("b", 12, 512, 64, 512)) > 0


class TestXlaDetail:
    def test_pick_tile_divides(self):
        xla = XlaLikeCompiler()
        spec = matmul_spec("m", 512, 768, 3072)
        cfg = xla.pick_tile(spec)
        assert spec.m % cfg.block_m == 0
        assert spec.n % cfg.block_n == 0

    def test_never_pipelined(self):
        xla = XlaLikeCompiler()
        for spec in (matmul_spec("m", 512, 512, 512), bmm_spec("b", 12, 512, 64, 512)):
            cfg = xla.pick_tile(spec)
            assert cfg.smem_stages == 1 and cfg.reg_stages == 1

    def test_conv_pays_fixed_overhead(self):
        xla = XlaLikeCompiler()
        conv = conv2d_spec("c", Conv2dShape(16, 128, 28, 28, 128, 3, 3, padding=1))
        base = xla._own_path_latency(conv)
        assert xla.gemm_latency(conv) == pytest.approx(base + 8.0)

    def test_small_conv_hit_harder_relatively(self):
        """The fixed overhead dominates small convolutions (ResNet-18's
        profile) and amortizes on large ones (VGG's profile)."""
        xla = XlaLikeCompiler()
        small = conv2d_spec("s", Conv2dShape(16, 256, 7, 7, 512, 3, 3, padding=1))
        large = conv2d_spec("l", Conv2dShape(16, 128, 56, 56, 128, 3, 3, padding=1))
        rel_small = xla.gemm_latency(small) / xla._own_path_latency(small)
        rel_large = xla.gemm_latency(large) / xla._own_path_latency(large)
        assert rel_small > rel_large

    def test_fusion_factor_below_tvm(self):
        from repro.core import AlcopCompiler

        assert XlaLikeCompiler.elementwise_factor < AlcopCompiler.elementwise_factor

    def test_no_menu_tile_raises(self):
        xla = XlaLikeCompiler()
        with pytest.raises(CompileError):
            xla.pick_tile(matmul_spec("odd", 48, 48, 48))

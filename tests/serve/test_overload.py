"""Overload resilience of the serve daemon (docs/serving.md): per-request
deadlines, admission control with fast shedding, the ``health`` probe,
client-side bounded retries, and HTTP truncated-body handling — the daemon
answers *something* to every request, never hangs a worker."""

import json
import socket as socketlib
import time
from concurrent.futures import Future

import pytest

from repro.core.errors import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ServeError,
)
from repro.serve.client import ServeClient
from repro.serve.registry import ArtifactRegistry, artifact_key
from repro.serve.server import ReproServer
from repro.tensor.operation import GemmSpec

SPACE = 16  # tiny design-space cap keeps sweeps fast

PROBLEM = {"m": 128, "n": 128, "k": 128}


def offline_server() -> ReproServer:
    """A server whose ``handle`` is driven directly — no listeners, no
    worker threads — for transport-independent envelope semantics."""
    return ReproServer(port=0, default_space=SPACE)


def _poll(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# --------------------------------------------------------------- deadlines
class TestDeadlines:
    def test_budget_left_proceeds(self):
        server = offline_server()
        response = server.handle({"op": "ping", "id": "a", "deadline_s": 30.0})
        assert response["ok"]

    def test_expired_in_queue_rejected_before_any_work(self):
        """A request whose queue wait already consumed its budget is
        answered with a DeadlineExceededError envelope, not dispatched."""
        server = offline_server()
        response = server.handle(
            {"op": "tune", "params": dict(PROBLEM), "id": "q", "deadline_s": 0.05},
            queue_wait_s=1.0,
        )
        assert not response["ok"]
        err = response["error"]
        assert err["type"] == "DeadlineExceededError"
        assert err["stage"] == "deadline"
        assert "queued" in err["message"]
        assert server.counters["deadline_exceeded"] == 1
        assert server._stats["tune"].deadline_exceeded == 1
        # No sweep ran: the rejection happened before dispatch.
        assert server.counters["sweeps_run"] == 0

    def test_deadline_aborts_inflight_sweep(self):
        """A budget too small for the sweep aborts it mid-flight with the
        same envelope; a retry without a deadline then completes."""
        server = offline_server()
        response = server.handle(
            {"op": "tune", "params": dict(PROBLEM), "id": "d", "deadline_s": 0.001}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "DeadlineExceededError"
        assert server.counters["deadline_exceeded"] == 1

        retry = server.handle({"op": "tune", "params": dict(PROBLEM), "id": "r"})
        assert retry["ok"]
        assert retry["result"]["served_from"] == "fresh"

    def test_waiter_deadline_on_anothers_inflight_solve(self):
        """A deduped waiter stops caring when its own budget runs out, even
        though the owner's solve keeps running."""
        server = offline_server()
        spec = GemmSpec("serve", 1, PROBLEM["m"], PROBLEM["n"], PROBLEM["k"])
        key = artifact_key(server.gpu, spec, "alcop", server.measurer.via_ir, SPACE)
        server._inflight[key] = Future()  # an owner that never finishes
        t0 = time.monotonic()
        response = server.handle(
            {"op": "tune", "params": dict(PROBLEM), "id": "w", "deadline_s": 0.2}
        )
        assert not response["ok"]
        assert response["error"]["type"] == "DeadlineExceededError"
        assert "in-flight" in response["error"]["message"]
        assert time.monotonic() - t0 < 5.0  # bounded by the budget, not a hang

    def test_invalid_deadline_is_a_protocol_error(self):
        server = offline_server()
        for bad in (-1, 0, True, "soon"):
            response = server.handle({"op": "ping", "id": "x", "deadline_s": bad})
            assert not response["ok"]
            assert response["error"]["type"] == "ProtocolError"
        assert server.counters["deadline_exceeded"] == 0


# ------------------------------------------------------- admission control
class TestAdmissionControl:
    @pytest.fixture
    def tiny_server(self, tmp_path):
        """One worker, a two-deep queue: trivially drivable into overload."""
        server = ReproServer(
            socket_path=str(tmp_path / "tiny.sock"),
            registry=ArtifactRegistry(tmp_path / "reg"),
            workers=1,
            max_queue=2,
            default_space=SPACE,
        )
        server.start()
        try:
            yield server
        finally:
            server.stop()
            server.shutdown(timeout=10)

    def _pin(self, server, n):
        """Open ``n`` raw keep-alive connections that send nothing: each
        either parks a worker in readline() or sits in the queue."""
        conns = []
        for _ in range(n):
            sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            sock.connect(server.socket_path)
            conns.append(sock)
        return conns

    def _saturate(self, server):
        """Park every worker on an idle connection first, *then* fill the
        queue to its bound — two steps, or a pinned connection races the
        worker's dequeue and gets shed instead of queued."""
        pinned = self._pin(server, server.workers)
        assert _poll(
            lambda: len(server._open_conns) == server.workers
            and server._conn_queue.qsize() == 0
        ), "workers never parked on the idle connections"
        queued = self._pin(server, server.max_queue)
        assert _poll(
            lambda: server._conn_queue.qsize() >= server.max_queue
        ), "queue never filled"
        return pinned + queued

    def test_full_queue_sheds_with_retry_hint(self, tiny_server):
        client = ServeClient(socket_path=tiny_server.socket_path, timeout=10)
        assert client.wait_until_ready(timeout=10)
        conns = self._saturate(tiny_server)
        try:
            with pytest.raises(OverloadedError) as exc_info:
                client.ping()
            e = exc_info.value
            assert e.retry_after_s is not None and e.retry_after_s > 0
            assert tiny_server.counters["requests_shed"] >= 1
            admission = tiny_server._stats["admission"]
            assert admission.shed >= 1
            assert admission.requests >= 1 and admission.errors >= 1
            # Shedding is visible in the health payload too.
            health = tiny_server.handle({"op": "health", "id": "h"})
            assert health["result"]["state"] == "overloaded"
            assert health["result"]["shed"] >= 1
        finally:
            for sock in conns:
                sock.close()
        # The pinned connections are gone: the daemon recovers on its own.
        assert _poll(lambda: tiny_server._conn_queue.qsize() == 0)
        assert client.ping()["session"] == tiny_server.session_id

    def test_shed_envelope_is_fast_not_a_hang(self, tiny_server):
        """A shed client gets its answer in milliseconds — admission
        control must answer long before any timeout could."""
        conns = self._saturate(tiny_server)
        try:
            client = ServeClient(socket_path=tiny_server.socket_path, timeout=30)
            t0 = time.monotonic()
            with pytest.raises(OverloadedError):
                client.ping()
            assert time.monotonic() - t0 < 5.0
        finally:
            for sock in conns:
                sock.close()

    def test_client_retries_ride_out_the_overload(self, tiny_server):
        """With retries enabled the client absorbs the shed envelope,
        backs off by the server's hint, and succeeds once the pinned
        connections drain."""
        conns = self._saturate(tiny_server)
        import threading

        def free():
            time.sleep(0.3)
            for sock in conns:
                sock.close()

        releaser = threading.Thread(target=free)
        releaser.start()
        try:
            client = ServeClient(
                socket_path=tiny_server.socket_path, timeout=10,
                retries=20, backoff_s=0.05, max_backoff_s=0.25,
            )
            assert client.ping()["session"] == tiny_server.session_id
        finally:
            releaser.join()
        assert tiny_server.counters["requests_shed"] >= 1


# ------------------------------------------------------------- the health op
class TestHealthOp:
    def test_ready_when_idle(self):
        server = offline_server()
        response = server.handle({"op": "health", "id": "h"})
        assert response["ok"]
        result = response["result"]
        assert result["state"] == "ready"
        assert result["queue_depth"] == 0
        assert result["max_queue"] == server.max_queue
        assert result["shed"] == 0 and result["deadline_exceeded"] == 0

    def test_overloaded_when_queue_half_full(self):
        server = ReproServer(port=0, default_space=SPACE, max_queue=4)
        # Not started: nothing drains what we park in the queue.
        server._conn_queue.put_nowait(("jsonl", None, time.monotonic()))
        assert server.handle({"op": "health", "id": "h"})["result"]["state"] == "ready"
        server._conn_queue.put_nowait(("jsonl", None, time.monotonic()))
        assert (
            server.handle({"op": "health", "id": "h"})["result"]["state"]
            == "overloaded"
        )

    def test_draining_once_stop_is_signalled(self):
        server = offline_server()
        server._stop_event.set()
        assert (
            server.handle({"op": "health", "id": "h"})["result"]["state"]
            == "draining"
        )

    def test_client_health_helper(self, tmp_path):
        server = ReproServer(
            socket_path=str(tmp_path / "h.sock"), default_space=SPACE
        )
        server.start()
        try:
            client = ServeClient(socket_path=server.socket_path, timeout=10)
            assert client.wait_until_ready(timeout=10)
            health = client.health()
            assert health["state"] == "ready"
            assert health["workers"] == server.workers
        finally:
            server.stop()
            server.shutdown(timeout=10)


# --------------------------------------------------------- client-side retry
class _Flaky:
    """Scripted ``_request_once`` stand-in: raise each exception in turn,
    then answer."""

    def __init__(self, failures):
        self.failures = list(failures)
        self.calls = 0

    def __call__(self, op, params):
        self.calls += 1
        if self.failures:
            raise self.failures.pop(0)
        return {"answered": self.calls}


def _transient(message="connection reset"):
    err = ServeError(message)
    err.transient = True
    return err


class TestClientRetries:
    @pytest.fixture
    def sleeps(self, monkeypatch):
        """Capture backoff sleeps instead of serving them."""
        recorded = []
        monkeypatch.setattr(
            "repro.serve.client.time.sleep", lambda s: recorded.append(s)
        )
        return recorded

    def _client(self, **kwargs):
        return ServeClient(socket_path="/nonexistent.sock", **kwargs)

    def test_transient_failures_retry_until_success(self, sleeps):
        client = self._client(retries=3, backoff_s=0.1)
        flaky = _Flaky([_transient(), _transient()])
        client._request_once = flaky
        assert client.request("ping") == {"answered": 3}
        assert flaky.calls == 3
        assert len(sleeps) == 2
        assert all(s > 0 for s in sleeps)

    def test_retries_exhausted_reraises(self, sleeps):
        client = self._client(retries=2, backoff_s=0.01)
        client._request_once = _Flaky([_transient()] * 5)
        with pytest.raises(ServeError):
            client.request("ping")

    def test_overloaded_honours_server_retry_hint(self, sleeps):
        client = self._client(retries=1, backoff_s=60.0)
        client._request_once = _Flaky(
            [OverloadedError("shed", retry_after_s=0.123)]
        )
        assert client.request("ping")["answered"] == 2
        assert sleeps == [0.123]

    def test_no_retry_on_protocol_or_deadline_errors(self, sleeps):
        for exc in (ProtocolError("bad request"), DeadlineExceededError("late")):
            client = self._client(retries=5)
            flaky = _Flaky([exc])
            client._request_once = flaky
            with pytest.raises(type(exc)):
                client.request("ping")
            assert flaky.calls == 1
        assert sleeps == []

    def test_no_retry_on_non_transient_server_errors(self, sleeps):
        client = self._client(retries=5)
        flaky = _Flaky([ServeError("sweep failed")])
        client._request_once = flaky
        with pytest.raises(ServeError):
            client.request("ping")
        assert flaky.calls == 1 and sleeps == []

    def test_zero_retries_is_the_default(self, sleeps):
        client = self._client()
        flaky = _Flaky([_transient()])
        client._request_once = flaky
        with pytest.raises(ServeError):
            client.request("ping")
        assert flaky.calls == 1 and sleeps == []

    def test_backoff_grows_and_caps(self):
        client = self._client(backoff_s=0.25, max_backoff_s=1.0)
        delays = [client._backoff(attempt) for attempt in range(8)]
        assert all(d <= 1.0 for d in delays)
        assert delays[-1] == 1.0  # the exponential schedule hits the cap

    def test_deadline_is_stamped_on_every_envelope(self):
        client = self._client(deadline_s=2.5)
        seen = {}
        client._roundtrip = lambda msg: (
            seen.update(msg) or {"ok": True, "result": {}}
        )
        client.request("ping")
        assert seen["deadline_s"] == 2.5

    def test_constructor_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            self._client(deadline_s=0)
        with pytest.raises(ValueError):
            self._client(deadline_s=-1.0)


# ------------------------------------------------------- HTTP truncated body
class TestHttpRobustness:
    @pytest.fixture
    def http_server(self):
        """TCP transport with a short idle bound so a truncated body is
        answered quickly."""
        server = ReproServer(
            port=0, workers=2, default_space=SPACE, idle_timeout=1.0
        )
        server.start()
        try:
            yield server
        finally:
            server.stop()
            server.shutdown(timeout=10)

    def _raw_http(self, server, raw, shutdown_wr=False, timeout=10.0):
        """Send raw bytes, optionally half-close, and read the full reply."""
        sock = socketlib.create_connection((server.host, server.port), timeout=timeout)
        try:
            sock.sendall(raw)
            if shutdown_wr:
                sock.shutdown(socketlib.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        finally:
            sock.close()

    @staticmethod
    def _envelope(response: bytes) -> dict:
        head, _, body = response.partition(b"\r\n\r\n")
        return json.loads(body)

    def test_missing_content_length_answered_as_400(self, http_server):
        response = self._raw_http(
            http_server, b"POST /rpc HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 400")
        envelope = self._envelope(response)
        assert not envelope["ok"]
        assert envelope["error"]["type"] == "ProtocolError"
        assert "Content-Length" in envelope["error"]["message"]

    def test_body_shorter_than_content_length_then_eof_is_400(self, http_server):
        """The client promises 100 bytes, sends 10, and closes: a truncated
        body, answered with an error envelope — not a crashed worker."""
        raw = (
            b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 100\r\n\r\n" + b'{"op": "pi'
        )
        response = self._raw_http(http_server, raw, shutdown_wr=True)
        assert response.startswith(b"HTTP/1.1 400")
        envelope = self._envelope(response)
        assert "truncated" in envelope["error"]["message"]

    def test_short_body_held_open_times_out_to_408(self, http_server):
        """The client promises 100 bytes, sends 10, and keeps the
        connection open: the read idles out and the daemon answers a 408
        envelope within the idle timeout instead of pinning the worker."""
        raw = (
            b"POST /rpc HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 100\r\n\r\n" + b'{"op": "pi'
        )
        t0 = time.monotonic()
        response = self._raw_http(http_server, raw, timeout=30.0)
        elapsed = time.monotonic() - t0
        assert response.startswith(b"HTTP/1.1 408")
        envelope = self._envelope(response)
        assert envelope["error"]["type"] == "ProtocolError"
        assert "truncated" in envelope["error"]["message"]
        assert elapsed < http_server.idle_timeout + 10.0
        assert http_server._stats["invalid"].errors >= 1

    def test_workers_survive_truncated_bodies(self, http_server):
        """After a volley of malformed HTTP, every worker thread is alive
        and a well-formed request round-trips."""
        volley = [
            b"POST /rpc HTTP/1.1\r\nHost: t\r\n\r\n",
            b"GET / HTTP/1.1\r\nHost: t\r\n\r\n",
            b"POST /rpc HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\nshort",
        ]
        for raw in volley:
            self._raw_http(http_server, raw, shutdown_wr=True)
        alive = [
            t for t in http_server._threads
            if t.name.startswith("repro-serve-worker") and t.is_alive()
        ]
        assert len(alive) == http_server.workers
        client = ServeClient(port=http_server.port, timeout=30)
        assert client.ping()["session"] == http_server.session_id


# -------------------------------------------------- overload status surface
class TestStatusOverloadSurface:
    def test_endpoint_snapshot_carries_overload_fields(self):
        server = offline_server()
        server.handle({"op": "ping", "id": "1"})
        server.handle({"op": "ping", "id": "2", "deadline_s": 0.01},
                      queue_wait_s=1.0)
        status = server.handle({"op": "status", "id": "s"})["result"]
        assert status["max_queue"] == server.max_queue
        ping = status["endpoints"]["ping"]
        for field in ("shed", "deadline_exceeded", "p99_ms"):
            assert field in ping, field
        assert ping["deadline_exceeded"] == 1
        assert status["counters"]["deadline_exceeded"] == 1
        assert "disk_errors" in status["measurer"]

"""The content-addressed kernel artifact registry: durability, corruption
quarantine, concurrency convergence, and key invalidation anatomy."""

import dataclasses
import json
import threading

import pytest

from repro import faults
from repro.core.errors import FaultInjected
from repro.gpusim.config import A100, V100
from repro.schedule.config import TileConfig
from repro.serve.registry import (
    ARTIFACT_DIR,
    QUARANTINE_DIR,
    ArtifactRegistry,
    KernelArtifact,
    artifact_key,
)
from repro.tensor.operation import GemmSpec


def _spec(m=128, n=128, k=128, batch=1):
    return GemmSpec("t", batch=batch, m=m, n=n, k=k, dtype="float16")


def _config():
    return TileConfig(
        block_m=64, block_n=64, block_k=32,
        warp_m=32, warp_n=32, chunk_k=16,
        smem_stages=2, reg_stages=2,
    )


def _artifact(key="k" * 64, latency=12.5):
    return KernelArtifact(
        key=key,
        spec=dataclasses.asdict(_spec()),
        config=_config().as_dict(),
        latency_us=latency,
        ir_text="kernel {}",
        cuda_source="__global__ void k() {}",
        provenance={"gpu": "A100", "session": "s1"},
    )


class TestArtifactKey:
    def test_deterministic(self):
        a = artifact_key(A100, _spec(), "alcop", False, 600, version="v1")
        b = artifact_key(A100, _spec(), "alcop", False, 600, version="v1")
        assert a == b and len(a) == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gpu": V100},
            {"spec": _spec(m=256)},
            {"variant": "tvm-db"},
            {"via_ir": True},
            {"space_max": 400},
            {"version": "v2"},
        ],
    )
    def test_every_input_invalidates(self, kwargs):
        base = dict(gpu=A100, spec=_spec(), variant="alcop", via_ir=False,
                    space_max=600, version="v1")
        assert artifact_key(**base) != artifact_key(**{**base, **kwargs})

    def test_shares_compiler_version_with_measurement_cache(self):
        """Default version is the live compiler hash — the same input the
        measurement cache keys on, so both invalidate together."""
        from repro.tuning.cache import compiler_version_hash

        assert artifact_key(A100, _spec(), "alcop", False, 600) == artifact_key(
            A100, _spec(), "alcop", False, 600, version=compiler_version_hash()
        )


class TestArtifactRoundtrip:
    def test_payload_roundtrip(self):
        art = _artifact()
        back = KernelArtifact.from_payload(json.loads(json.dumps(art.to_payload())))
        assert back == art
        assert back.tile_config() == _config()
        assert back.gemm_spec() == _spec()

    def test_bad_schema_rejected(self):
        payload = _artifact().to_payload()
        payload["schema"] = 999
        with pytest.raises(ValueError):
            KernelArtifact.from_payload(payload)

    def test_persists_across_reopen(self, tmp_path):
        reg = ArtifactRegistry(tmp_path)
        reg.put(_artifact())
        reopened = ArtifactRegistry(tmp_path)
        got = reopened.get("k" * 64)
        assert got is not None and got.latency_us == 12.5

    def test_in_memory_mode(self):
        reg = ArtifactRegistry()
        assert reg.get("k" * 64) is None
        reg.put(_artifact())
        assert reg.get("k" * 64) is not None
        assert reg.stats()["dir"] is None
        reg.flush()  # no-op, must not raise

    def test_flush_writes_index(self, tmp_path):
        reg = ArtifactRegistry(tmp_path)
        reg.put(_artifact())
        reg.flush()
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["keys"] == ["k" * 64]
        assert index["size"] == 1 and index["inserted"] == 1


class TestCorruption:
    """Truncated/garbage artifact files must quarantine, never crash."""

    @pytest.mark.parametrize(
        "sick_bytes",
        [
            b"{ not json at all",
            b"",
            json.dumps({"schema": 1, "key": "k" * 64}).encode(),  # fields missing
            json.dumps(_artifact().to_payload()).encode()[:100],  # truncated
        ],
    )
    def test_sick_file_is_quarantined_miss(self, tmp_path, sick_bytes):
        reg = ArtifactRegistry(tmp_path)
        path = tmp_path / ARTIFACT_DIR / ("k" * 64 + ".json")
        path.write_bytes(sick_bytes)
        assert reg.get("k" * 64) is None
        assert not path.exists()
        assert len(list((tmp_path / QUARANTINE_DIR).iterdir())) == 1
        assert reg.stats()["quarantined"] == 1

    def test_key_mismatch_is_quarantined(self, tmp_path):
        """A valid artifact renamed onto the wrong content address must not
        be served under that address."""
        reg = ArtifactRegistry(tmp_path)
        wrong = "f" * 64
        (tmp_path / ARTIFACT_DIR / f"{wrong}.json").write_text(
            json.dumps(_artifact().to_payload())
        )
        assert reg.get(wrong) is None
        assert len(list((tmp_path / QUARANTINE_DIR).iterdir())) == 1

    def test_orphan_tmp_swept_on_open(self, tmp_path):
        ArtifactRegistry(tmp_path)  # creates layout
        orphan = tmp_path / ARTIFACT_DIR / ("k" * 64 + ".json.tmp")
        orphan.write_text("half-written")
        reg = ArtifactRegistry(tmp_path)
        assert not orphan.exists()
        assert reg.stats()["quarantined"] == 1
        assert reg.get("k" * 64) is None  # never served

    def test_quarantine_names_never_collide(self, tmp_path):
        reg = ArtifactRegistry(tmp_path)
        path = tmp_path / ARTIFACT_DIR / ("k" * 64 + ".json")
        for _ in range(3):
            path.write_text("garbage")
            assert reg.get("k" * 64) is None
        assert len(list((tmp_path / QUARANTINE_DIR).iterdir())) == 3


class TestConcurrency:
    def test_same_key_put_converges_to_one_artifact(self, tmp_path):
        reg = ArtifactRegistry(tmp_path)
        results = []
        barrier = threading.Barrier(8)

        def writer(i):
            barrier.wait()
            results.append(reg.put(_artifact(latency=float(i))))

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Everyone holds the same canonical artifact; exactly one insert.
        assert len({id(a) for a in results}) == 1
        assert reg.stats()["inserted"] == 1
        assert len(list((tmp_path / ARTIFACT_DIR).glob("*.json"))) == 1

    def test_concurrent_get_put(self, tmp_path):
        reg = ArtifactRegistry(tmp_path)
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                art = reg.get("k" * 64)
                if art is not None:
                    seen.append(art.latency_us)

        t = threading.Thread(target=reader)
        t.start()
        try:
            for _ in range(20):
                reg.put(_artifact())
        finally:
            stop.set()
            t.join()
        assert all(v == 12.5 for v in seen)


class TestRegistryFaultSite:
    def test_crash_between_write_and_publish(self, tmp_path):
        """The 'registry' fault site models a daemon dying mid-put: the
        orphan tmp is quarantined by the next open and the key was never
        published."""
        reg = ArtifactRegistry(tmp_path)
        plan = faults.FaultPlan([faults.FaultRule("registry", "crash", match="put:")])
        with faults.injected(plan):
            with pytest.raises(FaultInjected):
                reg.put(_artifact())
        # Published name never appeared; only the tmp orphan exists.
        assert list((tmp_path / ARTIFACT_DIR).glob("*.json")) == []
        assert len(list((tmp_path / ARTIFACT_DIR).glob("*.tmp"))) == 1
        reopened = ArtifactRegistry(tmp_path)
        assert reopened.get("k" * 64) is None
        assert list((tmp_path / ARTIFACT_DIR).iterdir()) == []
        assert reopened.stats()["quarantined"] == 1

    def test_get_site_fires(self, tmp_path):
        reg = ArtifactRegistry(tmp_path)
        reg.put(_artifact())
        plan = faults.FaultPlan([faults.FaultRule("registry", "crash", match="get:")])
        with faults.injected(plan):
            with pytest.raises(FaultInjected):
                reg.get("k" * 64)
        assert reg.get("k" * 64) is not None  # healthy once the plan lifts

    def test_registry_is_a_declared_site(self):
        assert "registry" in faults.SITES

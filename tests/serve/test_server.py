"""The serve daemon: both transports, warm/cold/dedup semantics, telemetry,
error envelopes, and graceful shutdown."""

import json
import threading

import pytest

from repro.core.errors import ProtocolError, ServeError
from repro.serve.client import ServeClient
from repro.serve.registry import ArtifactRegistry
from repro.serve.server import ReproServer

SPACE = 16  # tiny design-space cap keeps sweeps fast

PROBLEM = {"m": 128, "n": 128, "k": 128}


@pytest.fixture
def unix_server(tmp_path):
    server = ReproServer(
        socket_path=str(tmp_path / "d.sock"),
        registry=ArtifactRegistry(tmp_path / "reg"),
        workers=4,
        default_space=SPACE,
    )
    server.start()
    try:
        yield server
    finally:
        server.stop()
        server.shutdown(timeout=10)


@pytest.fixture
def unix_client(unix_server):
    client = ServeClient(socket_path=unix_server.socket_path, timeout=120)
    assert client.wait_until_ready(timeout=10)
    return client


class TestUnixTransport:
    def test_ping(self, unix_server, unix_client):
        result = unix_client.ping()
        assert result["session"] == unix_server.session_id

    def test_cold_then_warm(self, unix_server, unix_client):
        cold = unix_client.tune(**PROBLEM)
        assert cold["served_from"] == "fresh"
        assert cold["latency_us"] > 0
        assert cold["stages"], "a fresh solve must report compile stages"

        warm = unix_client.compile(**PROBLEM)
        assert warm["served_from"] == "registry"
        assert warm["key"] == cold["key"]
        # The acceptance criterion: a warm request never touches the
        # compiler — no schedule/transform/simulate stages at all.
        assert warm["stages"] == {}
        assert "__global__" in warm["cuda_source"]
        assert warm["ir_text"]

    def test_tune_omits_kernel_text(self, unix_client):
        result = unix_client.tune(**PROBLEM)
        assert "cuda_source" not in result and "ir_text" not in result

    def test_many_requests_one_connection(self, unix_server):
        """The jsonl transport handles several requests per connection."""
        import socket as socketlib

        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.connect(unix_server.socket_path)
        f = sock.makefile("rwb")
        try:
            for i in range(3):
                f.write((json.dumps({"op": "ping", "id": str(i)}) + "\n").encode())
                f.flush()
                response = json.loads(f.readline())
                assert response["ok"] and response["id"] == str(i)
        finally:
            f.close()
            sock.close()


class TestDedup:
    def test_concurrent_identical_requests_share_one_sweep(self, unix_server):
        """N concurrent tune requests for the same key run exactly one
        sweep; the rest wait on the in-flight future."""
        n = 4
        results, errors = [], []
        barrier = threading.Barrier(n)

        def one():
            client = ServeClient(socket_path=unix_server.socket_path, timeout=120)
            barrier.wait()
            try:
                results.append(client.tune(m=256, n=128, k=128))
            except Exception as e:  # surface in the main thread
                errors.append(e)

        threads = [threading.Thread(target=one) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == n
        assert len({r["key"] for r in results}) == 1
        origins = sorted(r["served_from"] for r in results)
        assert origins.count("fresh") == 1
        assert set(origins) <= {"fresh", "inflight", "registry"}

        client = ServeClient(socket_path=unix_server.socket_path, timeout=30)
        status = client.status()
        assert status["counters"]["sweeps_run"] == 1
        assert status["counters"]["artifacts_built"] == 1
        assert (
            status["counters"]["dedup_hits"]
            == origins.count("inflight")
            == n - 1 - origins.count("registry")
        )


class TestWarmAcrossRestart:
    def test_new_daemon_serves_from_registry_without_compiling(self, tmp_path):
        reg_dir = tmp_path / "reg"
        first = ReproServer(
            socket_path=str(tmp_path / "a.sock"),
            registry=ArtifactRegistry(reg_dir),
            default_space=SPACE,
        )
        first.start()
        try:
            c = ServeClient(socket_path=first.socket_path, timeout=120)
            assert c.wait_until_ready(timeout=10)
            assert c.tune(**PROBLEM)["served_from"] == "fresh"
        finally:
            first.stop()
            first.shutdown(timeout=10)

        second = ReproServer(
            socket_path=str(tmp_path / "b.sock"),
            registry=ArtifactRegistry(reg_dir),
            default_space=SPACE,
        )
        second.start()
        try:
            c = ServeClient(socket_path=second.socket_path, timeout=120)
            assert c.wait_until_ready(timeout=10)
            warm = c.tune(**PROBLEM)
            assert warm["served_from"] == "registry"
            assert warm["stages"] == {}
            status = c.status()
            assert status["counters"]["sweeps_run"] == 0
            assert status["measurer"]["n_compiled"] == 0
        finally:
            second.stop()
            second.shutdown(timeout=10)


class TestErrors:
    def test_unknown_op_is_protocol_error(self, unix_client):
        with pytest.raises(ProtocolError, match="unknown op"):
            unix_client.request("frobnicate")

    def test_missing_problem_field_is_protocol_error(self, unix_client):
        with pytest.raises(ProtocolError, match="m"):
            unix_client.tune(n=128, k=128)

    def test_garbage_params_is_protocol_error(self, unix_client):
        with pytest.raises(ProtocolError):
            unix_client.tune(m="not-a-number", n=128, k=128)

    def test_error_does_not_kill_connection_handling(self, unix_client):
        with pytest.raises(ProtocolError):
            unix_client.request("nope")
        assert unix_client.ping()["protocol"] >= 1

    def test_errors_counted_in_endpoint_stats(self, unix_client):
        with pytest.raises(ProtocolError):
            unix_client.tune(n=1, k=1)
        status = unix_client.status()
        assert status["endpoints"]["tune"]["errors"] >= 1

    def test_unreachable_daemon_is_serve_error(self, tmp_path):
        client = ServeClient(socket_path=str(tmp_path / "nope.sock"), timeout=2)
        with pytest.raises(ServeError, match="cannot reach"):
            client.ping()

    def test_client_requires_exactly_one_endpoint(self):
        with pytest.raises(ValueError):
            ServeClient()
        with pytest.raises(ValueError):
            ServeClient(socket_path="/tmp/x.sock", port=1234)


class TestMalformedRequests:
    """Regression tests: hostile envelopes must produce error responses,
    never kill a worker thread or desync a connection."""

    def _roundtrip_raw(self, server, payload: bytes):
        import socket as socketlib

        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(server.socket_path)
        f = sock.makefile("rwb")
        try:
            f.write(payload)
            f.flush()
            return json.loads(f.readline())
        finally:
            f.close()
            sock.close()

    def test_unhashable_op_is_error_envelope(self, tmp_path):
        server = ReproServer(socket_path=str(tmp_path / "d.sock"), default_space=SPACE)
        for bad_op in ([], {}, ["tune"], {"op": "nested"}):
            response = server.handle({"op": bad_op, "id": "x"})
            assert not response["ok"]
            assert response["error"]["type"] == "ProtocolError"

    def test_unhashable_op_does_not_kill_workers(self, unix_server):
        # More malformed requests than worker threads: with the old bug
        # each one killed a worker permanently and the daemon went silent.
        for _ in range(unix_server.workers + 1):
            response = self._roundtrip_raw(unix_server, b'{"op": []}\n')
            assert not response["ok"]
        client = ServeClient(socket_path=unix_server.socket_path, timeout=30)
        assert client.ping()["protocol"] >= 1

    def test_oversized_message_answers_once_and_closes(self, unix_server, monkeypatch):
        import socket as socketlib

        from repro.serve import protocol

        monkeypatch.setattr(protocol, "MAX_MESSAGE_BYTES", 512)
        big = b'{"op": "ping", "pad": "' + b"x" * 2048 + b'"}\n'
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(unix_server.socket_path)
        f = sock.makefile("rwb")
        try:
            f.write(big)
            f.flush()
            response = json.loads(f.readline())
            assert not response["ok"]
            assert "exceeds" in response["error"]["message"]
            # The connection is closed — the buffered remainder of the
            # oversized message must not be parsed as further "messages".
            assert f.readline() == b""
        finally:
            f.close()
            sock.close()
        # And the daemon still serves fresh connections.
        client = ServeClient(socket_path=unix_server.socket_path, timeout=30)
        assert client.ping()["protocol"] >= 1


class TestIdleTimeout:
    def test_idle_connection_is_closed_and_worker_freed(self, tmp_path):
        import socket as socketlib

        server = ReproServer(
            socket_path=str(tmp_path / "d.sock"),
            workers=1,  # a single pinned worker would starve everything
            default_space=SPACE,
            idle_timeout=0.5,
        )
        server.start()
        try:
            sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            sock.settimeout(10)
            sock.connect(server.socket_path)
            f = sock.makefile("rwb")
            f.write(b'{"op": "ping"}\n')
            f.flush()
            assert json.loads(f.readline())["ok"]
            # Go idle: the daemon closes the connection (EOF) instead of
            # letting it pin the only worker forever.
            assert f.readline() == b""
            f.close()
            sock.close()
            # The worker is back in the pool and answers new clients.
            client = ServeClient(socket_path=server.socket_path, timeout=30)
            assert client.ping()["protocol"] >= 1
        finally:
            server.stop()
            server.shutdown(timeout=10)

    def test_idle_timeout_disabled_when_nonpositive(self, tmp_path):
        server = ReproServer(
            socket_path=str(tmp_path / "d.sock"), default_space=SPACE, idle_timeout=0
        )
        assert server.idle_timeout is None


class TestDedupRecheck:
    def test_owner_rechecks_registry_under_lock(self, tmp_path):
        """A thread whose registry miss raced the owner's publish and whose
        in-flight lookup raced the owner's pop must be served from the
        registry, not run a duplicate sweep (CI asserts sweeps_run == 1)."""
        from repro.serve.protocol import parse_problem_params

        server = ReproServer(socket_path=str(tmp_path / "d.sock"), default_space=SPACE)
        p = parse_problem_params(dict(PROBLEM))
        _, served_from = server._ensure_artifact(p)
        assert served_from == "fresh"
        assert server.counters["sweeps_run"] == 1

        real_get = server.registry.get
        calls = {"n": 0}

        def get_missing_first(key):
            # Simulate the race: the lock-free pre-check misses, the
            # under-lock re-check sees the published artifact.
            calls["n"] += 1
            return None if calls["n"] == 1 else real_get(key)

        server.registry.get = get_missing_first
        artifact, served_from = server._ensure_artifact(p)
        assert served_from == "registry"
        assert artifact is not None
        assert calls["n"] == 2
        assert server.counters["sweeps_run"] == 1  # no duplicate sweep


class TestMeasureOp:
    """The fleet-worker endpoint: one shard of configs per request, with
    latencies bitwise-equal to a local serial measurer's."""

    def _space(self, n=6):
        from repro.gpusim.config import A100
        from repro.tensor.operation import GemmSpec
        from repro.tuning.space import SpaceOptions, enumerate_space

        spec = GemmSpec("shard", 1, 128, 128, 256)
        return spec, enumerate_space(spec, A100, SpaceOptions(max_size=n))

    def test_shard_roundtrip_matches_local_measurer(self, unix_client):
        from repro.gpusim.config import A100
        from repro.tuning.measure import Measurer

        spec, cfgs = self._space()
        result = unix_client.measure(spec, cfgs)
        local = Measurer(A100, via_ir=False).measure_many(spec, cfgs)
        assert result["latencies"] == local
        assert result["persist"] == [True] * len(cfgs)
        assert result["via_ir"] is False

    def test_inf_latency_survives_the_wire(self, unix_server):
        """The FAILED sentinel (math.inf) is not valid strict JSON; the
        protocol encodes it as the string "inf" and the client decodes it
        back, so a shard containing a non-compiling config round-trips."""
        import math

        from repro.serve.protocol import decode_latency, encode_latency

        assert encode_latency(math.inf) == "inf"
        assert decode_latency("inf") == math.inf
        assert decode_latency(encode_latency(12.5)) == 12.5

    def test_measure_counts_fleet_telemetry(self, unix_client):
        spec, cfgs = self._space()
        unix_client.measure(spec, cfgs)
        status = unix_client.status()
        assert status["counters"]["fleet_shards"] >= 1
        assert status["counters"]["fleet_trials"] >= len(cfgs)
        assert status["endpoints"]["measure"]["requests"] >= 1

    def test_repeat_shard_is_served_from_cache(self, unix_client):
        spec, cfgs = self._space()
        first = unix_client.measure(spec, cfgs)
        before = unix_client.status()["measurer"]["n_compiled"]
        second = unix_client.measure(spec, cfgs)
        after = unix_client.status()["measurer"]["n_compiled"]
        assert second["latencies"] == first["latencies"]
        assert after == before, "a repeat shard must not recompile"

    def test_empty_configs_is_protocol_error(self, unix_client):
        with pytest.raises(ProtocolError, match="configs"):
            unix_client.measure({"m": 64, "n": 64, "k": 64}, [])

    def test_bad_config_entry_is_protocol_error(self, unix_client):
        with pytest.raises(ProtocolError, match="configs\\[0\\]"):
            unix_client.measure(
                {"m": 64, "n": 64, "k": 64}, [{"not_a_field": 1}]
            )

    def test_oversized_shard_is_refused(self, unix_client, monkeypatch):
        from repro.serve import protocol

        monkeypatch.setattr(protocol, "MAX_SHARD_CONFIGS", 4)
        spec, cfgs = self._space(8)
        assert len(cfgs) > 4
        with pytest.raises(ProtocolError, match="cap"):
            unix_client.measure(spec, cfgs)


class TestStatus:
    def test_status_shape(self, unix_server, unix_client):
        unix_client.tune(**PROBLEM)
        status = unix_client.status()
        assert status["session"] == unix_server.session_id
        assert status["gpu"] == unix_server.gpu.name
        assert status["workers"] == 4
        for counter in ("sweeps_run", "artifacts_built", "dedup_hits",
                        "registry_hits", "registry_misses"):
            assert counter in status["counters"]
        for field in ("n_compiled", "memory_hits", "disk_hits",
                      "compile_time_s", "n_crashes", "n_timeouts"):
            assert field in status["measurer"]
        tune_stats = status["endpoints"]["tune"]
        assert tune_stats["requests"] == 1
        assert tune_stats["p95_ms"] >= tune_stats["p50_ms"] >= 0


class TestShutdown:
    def test_shutdown_op_stops_and_flushes(self, tmp_path):
        reg_dir = tmp_path / "reg"
        server = ReproServer(
            socket_path=str(tmp_path / "d.sock"),
            registry=ArtifactRegistry(reg_dir),
            default_space=SPACE,
        )
        server.start()
        client = ServeClient(socket_path=server.socket_path, timeout=120)
        assert client.wait_until_ready(timeout=10)
        client.tune(**PROBLEM)
        client.shutdown()
        server.shutdown(timeout=10)
        assert not server.running
        index = json.loads((reg_dir / "index.json").read_text())
        assert index["size"] == 1 and len(index["keys"]) == 1

    def test_socket_file_removed(self, tmp_path):
        import os

        server = ReproServer(socket_path=str(tmp_path / "d.sock"), default_space=SPACE)
        server.start()
        assert os.path.exists(server.socket_path)
        server.stop()
        server.shutdown(timeout=10)
        assert not os.path.exists(server.socket_path)


class TestHttpTransport:
    @pytest.fixture
    def http_server(self, tmp_path):
        server = ReproServer(
            port=0,  # ephemeral
            registry=ArtifactRegistry(tmp_path / "reg"),
            default_space=SPACE,
        )
        server.start()
        try:
            yield server
        finally:
            server.stop()
            server.shutdown(timeout=10)

    def test_roundtrip_and_warm_path(self, http_server):
        client = ServeClient(port=http_server.port, timeout=120)
        assert client.wait_until_ready(timeout=10)
        cold = client.tune(**PROBLEM)
        warm = client.compile(**PROBLEM)
        assert cold["served_from"] == "fresh"
        assert warm["served_from"] == "registry" and warm["stages"] == {}

    def test_non_rpc_request_gets_400(self, http_server):
        import socket as socketlib

        sock = socketlib.socket(socketlib.AF_INET, socketlib.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(("127.0.0.1", http_server.port))
        sock.sendall(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
        head = sock.recv(64)
        sock.close()
        assert b"400" in head.split(b"\r\n")[0]

    def test_remote_error_taxonomy_over_http(self, http_server):
        client = ServeClient(port=http_server.port, timeout=30)
        assert client.wait_until_ready(timeout=10)
        with pytest.raises(ProtocolError):
            client.tune(m=-1, n=128, k=128)


class TestHandleDirect:
    """handle() is transport-independent — the benchmark drives it this way."""

    def test_ping_envelope(self, tmp_path):
        server = ReproServer(socket_path=str(tmp_path / "d.sock"), default_space=SPACE)
        response = server.handle({"op": "ping", "id": "x"})
        assert response["ok"] and response["id"] == "x"
        assert response["result"]["protocol"] >= 1

    def test_error_envelope_structure(self, tmp_path):
        server = ReproServer(socket_path=str(tmp_path / "d.sock"), default_space=SPACE)
        response = server.handle({"op": "tune", "params": {}})
        assert not response["ok"]
        err = response["error"]
        assert err["type"] == "ProtocolError" and err["stage"] == "serve"

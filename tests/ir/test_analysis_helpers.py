"""Tests for the remaining IR analysis helpers."""

import pytest

from repro.ir import Buffer, ComputeStmt, IRBuilder, IntImm, Kernel, MemCopy, Scope, SyncKind, Var
from repro.ir.analysis import (
    collect,
    count_nodes,
    kernel_flops,
    loop_var_map,
    stmt_regions_read,
    stmt_regions_written,
)
from repro.ir.stmt import For


class TestRegionAccess:
    def test_memcopy_reads_src_writes_dst(self):
        a = Buffer("a", (8,))
        b = Buffer("b", (8,))
        c = MemCopy(a.full_region(), b.full_region())
        assert [r.buffer for r in stmt_regions_read(c)] == [b]
        assert [r.buffer for r in stmt_regions_written(c)] == [a]

    def test_compute_accumulate_reads_out(self):
        acc = Buffer("acc", (4,), scope=Scope.ACCUMULATOR)
        x = Buffer("x", (4,))
        c = ComputeStmt("mma", acc.full_region(), [x.full_region()])
        read = {r.buffer for r in stmt_regions_read(c)}
        assert read == {x, acc}  # accumulation reads the output

    def test_compute_non_accumulate_skips_out(self):
        acc = Buffer("acc", (4,), scope=Scope.ACCUMULATOR)
        c = ComputeStmt("fill", acc.full_region(), [], annotations={"accumulate": False})
        assert stmt_regions_read(c) == []

    def test_sync_touches_nothing(self):
        from repro.ir import PipelineSync

        s = PipelineSync(Buffer("b", (1,)), SyncKind.PRODUCER_COMMIT)
        assert stmt_regions_read(s) == [] and stmt_regions_written(s) == []


class TestKernelFlops:
    def _kernel(self, guard=False):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.serial_for("i", 4) as i:
            if guard:
                with b.if_then(i.equal(0)):
                    b.compute("mma", A.full_region(), [], fn=lambda o: None, flops=10)
            else:
                b.compute("mma", A.full_region(), [], fn=lambda o: None, flops=10)
        return Kernel("k", [A], b.finish())

    def test_plain_loop(self):
        assert kernel_flops(self._kernel()) == 40

    def test_guarded_flops_counted_per_iteration(self):
        # Conservative: guards count as always-taken.
        assert kernel_flops(self._kernel(guard=True)) == 40

    def test_nested_multiplication(self):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.serial_for("i", 3):
            with b.thread_for("w", 2):
                b.compute("mma", A.full_region(), [], fn=lambda o: None, flops=5)
        assert kernel_flops(Kernel("k", [A], b.finish())) == 30


class TestLoopVarMap:
    def test_maps_all(self):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.serial_for("i", 2):
            with b.serial_for("j", 3):
                b.copy(A.full_region(), A.full_region())
        m = loop_var_map(b.finish())
        assert sorted(v.name for v in m) == ["i", "j"]
        assert {loop.var.name for loop in m.values()} == {"i", "j"}

    def test_duplicate_binding_rejected(self):
        A = Buffer("A", (8,))
        i = Var("i")
        inner = For(i, 2, MemCopy(A.full_region(), A.full_region()))
        outer = For(Var("o"), 2, inner)
        from repro.ir.stmt import SeqStmt

        dup = SeqStmt([outer, For(i, 3, MemCopy(A.full_region(), A.full_region()))])
        with pytest.raises(ValueError, match="bound twice"):
            loop_var_map(dup)


class TestCollect:
    def test_predicate_collection(self):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.serial_for("i", 2):
            b.copy(A.full_region(), A.full_region())
            b.copy(A.full_region(), A.full_region())
        found = collect(b.finish(), lambda s: isinstance(s, MemCopy))
        assert len(found) == 2

    def test_count_nodes_matches_walk(self):
        A = Buffer("A", (8,))
        b = IRBuilder()
        with b.serial_for("i", 2):
            with b.if_then(IntImm(1).equal(1)):
                b.copy(A.full_region(), A.full_region())
        # For + SeqStmt? (single child collapses) + IfThenElse + MemCopy
        assert count_nodes(b.finish()) == 3

"""One test per ValidationError branch in ``repro.ir.validate``."""

import pytest

from repro.ir import (
    Allocate,
    Buffer,
    ComputeStmt,
    For,
    IfThenElse,
    IntImm,
    Kernel,
    MemCopy,
    PipelineSync,
    Scope,
    SeqStmt,
    Stmt,
    SyncKind,
    ValidationError,
    Var,
    validate_kernel,
    validate_stmt,
)


def _kernel(body, params=None):
    return Kernel("k", params if params is not None else [A, B], body)


A = Buffer("A", (16,))
B = Buffer("B", (16,))


class TestCleanKernel:
    def test_minimal_copy_kernel(self):
        t = Var("t")
        body = For(t, 4, MemCopy(B.region((t * 4, 4)), A.region((t * 4, 4))))
        validate_kernel(_kernel(body))

    def test_allocate_with_pipeline_stages(self):
        sh = Buffer("sh", (4,), scope=Scope.SHARED)
        body = Allocate(
            sh,
            SeqStmt([
                MemCopy(sh.full_region(), A.region((0, 4)), is_async=True),
                PipelineSync(sh, SyncKind.PRODUCER_COMMIT),
            ]),
            attrs={"pipeline_stages": 2},
        )
        validate_kernel(_kernel(body))


class TestLoopInvariants:
    def test_rebound_loop_var(self):
        t = Var("t")
        inner = For(t, 2, MemCopy(B.region((t, 1)), A.region((t, 1))))
        with pytest.raises(ValidationError, match="rebound"):
            validate_kernel(_kernel(For(t, 2, inner)))

    def test_unbound_var_in_extent(self):
        t, n = Var("t"), Var("n")
        body = For(t, n, MemCopy(B.region((t, 1)), A.region((t, 1))))
        with pytest.raises(ValidationError, match="unbound var n in extent"):
            validate_kernel(_kernel(body))

    def test_unbound_var_in_condition(self):
        w = Var("w")
        body = IfThenElse(w.equal(0), MemCopy(B.region((0, 1)), A.region((0, 1))))
        with pytest.raises(ValidationError, match="unbound var w in condition"):
            validate_kernel(_kernel(body))

    def test_unbound_var_in_region(self):
        t = Var("t")
        body = MemCopy(B.region((t, 1)), A.region((0, 1)))
        with pytest.raises(ValidationError, match="unbound var t in region"):
            validate_kernel(_kernel(body))


class TestBufferVisibility:
    def test_double_allocate(self):
        sh = Buffer("sh", (4,), scope=Scope.SHARED)
        inner = Allocate(sh, MemCopy(sh.full_region(), A.region((0, 4))))
        with pytest.raises(ValidationError, match="allocated twice"):
            validate_kernel(_kernel(Allocate(sh, inner)))

    def test_region_buffer_not_visible(self):
        ghost = Buffer("ghost", (4,), scope=Scope.SHARED)
        body = MemCopy(ghost.full_region(), A.region((0, 4)))
        with pytest.raises(ValidationError, match="ghost not visible"):
            validate_kernel(_kernel(body))

    def test_compute_input_not_visible(self):
        ghost = Buffer("ghost", (4,), scope=Scope.SHARED)
        body = ComputeStmt("ew", B.region((0, 4)), [ghost.full_region()])
        with pytest.raises(ValidationError, match="ghost not visible"):
            validate_kernel(_kernel(body))

    def test_sync_buffer_not_visible(self):
        ghost = Buffer("ghost", (4,), scope=Scope.SHARED)
        with pytest.raises(ValidationError, match="sync references buffer ghost"):
            validate_kernel(_kernel(PipelineSync(ghost, SyncKind.CONSUMER_WAIT)))


class TestAllocateAttrs:
    @pytest.mark.parametrize("stages", [0, -1, 2.5, "3"])
    def test_bad_pipeline_stages(self, stages):
        sh = Buffer("sh", (4,), scope=Scope.SHARED)
        body = Allocate(
            sh,
            MemCopy(sh.full_region(), A.region((0, 4))),
            attrs={"pipeline_stages": stages},
        )
        with pytest.raises(ValidationError, match="positive int"):
            validate_kernel(_kernel(body))


class TestKernelLevel:
    def test_duplicate_param_names(self):
        dup = Buffer("A", (16,))
        body = MemCopy(dup.full_region(), A.full_region())
        with pytest.raises(ValidationError, match="duplicate parameter names"):
            validate_kernel(_kernel(body, params=[A, dup]))

    def test_unknown_stmt_type(self):
        class Rogue(Stmt):
            pass

        with pytest.raises(ValidationError, match="unknown statement type Rogue"):
            validate_stmt(Rogue(), set(), set())

    def test_validate_stmt_entry_point(self):
        # direct use, as passes do: visible buffers and bound vars threaded in
        t = Var("t")
        stmt = MemCopy(B.region((t, 1)), A.region((t, 1)))
        validate_stmt(stmt, {A, B}, {t})
        with pytest.raises(ValidationError):
            validate_stmt(stmt, {A, B}, set())

    def test_intimm_extent_ok(self):
        t = Var("t")
        body = For(t, IntImm(4), MemCopy(B.region((t, 1)), A.region((t, 1))))
        validate_kernel(_kernel(body))

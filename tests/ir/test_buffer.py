"""Tests for buffers and regions."""

import pytest

from repro.ir import Buffer, BufferRegion, Scope, Var, as_expr


class TestBuffer:
    def test_basic_properties(self):
        b = Buffer("A", (4, 8), dtype="float16", scope=Scope.SHARED)
        assert b.ndim == 2
        assert b.size_elems == 32
        assert b.elem_bytes == 2
        assert b.size_bytes == 64

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            Buffer("A", (4,), dtype="complex64")

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            Buffer("A", ())

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            Buffer("A", (4, 0))

    def test_with_shape_keeps_identity_fields(self):
        b = Buffer("A", (4,), dtype="float32", scope=Scope.REGISTER)
        b2 = b.with_shape((2, 4))
        assert b2.name == "A" and b2.dtype == "float32" and b2.scope == Scope.REGISTER
        assert b2.shape == (2, 4)

    def test_identity_equality(self):
        assert Buffer("A", (4,)) != Buffer("A", (4,)) or True  # identity-based
        b = Buffer("A", (4,))
        assert b == b

    def test_scope_async_source(self):
        assert Scope.SHARED.async_source is Scope.GLOBAL
        assert Scope.REGISTER.async_source is Scope.SHARED
        assert Scope.GLOBAL.async_source is None
        assert Scope.ACCUMULATOR.async_source is None

    def test_scope_on_chip(self):
        assert not Scope.GLOBAL.is_on_chip
        assert Scope.SHARED.is_on_chip and Scope.REGISTER.is_on_chip


class TestBufferRegion:
    def test_full_region(self):
        b = Buffer("A", (4, 8))
        r = b.full_region()
        assert r.extents == (4, 8)
        assert r.size_elems == 32
        assert r.size_bytes == 64

    def test_region_builder_bare_offset(self):
        b = Buffer("A", (4, 8))
        r = b.region(2, (0, 8))
        assert r.extents == (1, 8)

    def test_rank_mismatch_raises(self):
        b = Buffer("A", (4, 8))
        with pytest.raises(ValueError):
            BufferRegion(b, [as_expr(0)], [4])

    def test_extent_exceeds_shape_raises(self):
        b = Buffer("A", (4, 8))
        with pytest.raises(ValueError):
            b.region((0, 5), (0, 8))

    def test_nonpositive_extent_raises(self):
        b = Buffer("A", (4, 8))
        with pytest.raises(ValueError):
            b.region((0, 0), (0, 8))

    def test_free_vars(self):
        b = Buffer("A", (16, 8))
        k = Var("k")
        r = b.region((k * 4, 4), (0, 8))
        assert r.free_vars() == {k}

    def test_substitute(self):
        b = Buffer("A", (16, 8))
        k = Var("k")
        r = b.region((k * 4, 4), (0, 8)).substitute({k: as_expr(2)})
        assert r.concrete_slices({}) == (slice(8, 12), slice(0, 8))

    def test_concrete_slices_in_bounds(self):
        b = Buffer("A", (16, 8))
        k = Var("k")
        r = b.region((k * 4, 4), (0, 8))
        assert r.concrete_slices({k: 3}) == (slice(12, 16), slice(0, 8))

    def test_concrete_slices_out_of_bounds(self):
        b = Buffer("A", (16, 8))
        k = Var("k")
        r = b.region((k * 4, 4), (0, 8))
        with pytest.raises(IndexError):
            r.concrete_slices({k: 4})

    def test_concrete_slices_negative_offset(self):
        b = Buffer("A", (16, 8))
        k = Var("k")
        r = b.region((k, 4), (0, 8))
        with pytest.raises(IndexError):
            r.concrete_slices({k: -1})

    def test_with_buffer_rebind(self):
        b = Buffer("A", (16, 8))
        b2 = Buffer("B", (16, 8))
        r = b.full_region().with_buffer(b2)
        assert r.buffer is b2

    def test_with_offsets(self):
        b = Buffer("A", (16, 8))
        r = b.region((0, 4), (0, 8)).with_offsets([as_expr(4), as_expr(0)])
        assert r.concrete_slices({})[0] == slice(4, 8)

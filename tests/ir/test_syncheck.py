"""Unit tests for the static pipeline-synchronization race checker.

Each of the five rules is exercised with a minimal hand-built IR whose
synchronization is deliberately wrong in exactly one way, plus clean IRs
(hand-built and real pass output) that must produce zero diagnostics.
"""

import pytest

from repro.core.compiler import AlcopCompiler
from repro.ir import (
    Buffer,
    For,
    ForKind,
    IfThenElse,
    IntImm,
    Kernel,
    MemCopy,
    PipelineSync,
    Scope,
    SeqStmt,
    SyncCheckError,
    SyncDiagnostic,
    Var,
    check_kernel,
    format_diagnostics,
)
from repro.ir.syncheck import (
    RULE_PROLOGUE_SHORTFALL,
    RULE_READ_BEFORE_ARRIVAL,
    RULE_STAGE_ALIAS,
    RULE_UNBALANCED_SYNC,
    RULE_UNGUARDED_COPY,
)
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.transform import apply_pipelining
from repro.transform.pipeline_pass import PipelineGroupInfo


def rules_of(diags):
    return {d.rule for d in diags}


class _Builder:
    """Hand-build a minimal pipelined streaming kernel, one primitive at a
    time, mirroring the shape the transformation pass emits:

        prologue: (acquire, copy chunk p -> stage p, commit) x (stages-1)
        for t in 0..n_tiles:          # software_pipelined
            acquire
            copy chunk (t+stages-1) -> stage (t+stages-1)%stages
            commit
            wait
            copy stage t%stages -> out chunk t
            release
    """

    def __init__(self, n_tiles=4, tile=4, stages=3):
        self.n_tiles = n_tiles
        self.tile = tile
        self.stages = stages
        self.inp = Buffer("I", (n_tiles * tile,))
        self.out = Buffer("O", (n_tiles * tile,), dtype="float32")
        self.sh = Buffer("sh", (stages, tile), scope=Scope.SHARED)
        self.t = Var("t")
        self.info = PipelineGroupInfo(
            leader=self.sh,
            buffers=[self.sh],
            scope=Scope.SHARED,
            stages=stages,
            loop_var_name="t",
            loop_extent=n_tiles,
        )

    def sync(self, kind):
        return PipelineSync(self.sh, kind)

    def load(self, chunk_expr, stage_expr):
        return MemCopy(
            self.sh.region(stage_expr, (0, self.tile)),
            self.inp.region((chunk_expr * self.tile, self.tile)),
            is_async=True,
        )

    def consume(self, stage_expr):
        return MemCopy(
            self.out.region((self.t * self.tile, self.tile)),
            self.sh.region(stage_expr, (0, self.tile)),
        )

    def prologue(self, chunks=None):
        from repro.ir import SyncKind

        stmts = []
        for p in range(self.stages - 1) if chunks is None else chunks:
            stmts.append(self.sync(SyncKind.PRODUCER_ACQUIRE))
            stmts.append(self.load(IntImm(p % self.n_tiles), IntImm(p % self.stages)))
            stmts.append(self.sync(SyncKind.PRODUCER_COMMIT))
        return stmts

    def steady_body(self):
        from repro.ir import SyncKind

        shift = self.stages - 1
        return [
            self.sync(SyncKind.PRODUCER_ACQUIRE),
            self.load((self.t + shift) % self.n_tiles, (self.t + shift) % self.stages),
            self.sync(SyncKind.PRODUCER_COMMIT),
            self.sync(SyncKind.CONSUMER_WAIT),
            self.consume(self.t % self.stages),
            self.sync(SyncKind.CONSUMER_RELEASE),
        ]

    def kernel(self, prologue=None, body=None, tail=None):
        loop = For(
            self.t,
            self.n_tiles,
            SeqStmt(body if body is not None else self.steady_body()),
            ForKind.SERIAL,
            {"software_pipelined": True},
        )
        stmts = (prologue if prologue is not None else self.prologue()) + [loop]
        if tail:
            stmts += tail
        k = Kernel("hand", [self.inp, self.out], SeqStmt(stmts))
        k.attrs["pipeline_groups"] = [self.info]
        return k


class TestCleanKernels:
    def test_hand_built_clean(self):
        assert check_kernel(_Builder().kernel()) == []

    def test_no_groups_is_trivially_clean(self):
        b = _Builder()
        k = b.kernel()
        k.attrs["pipeline_groups"] = []
        assert check_kernel(k) == []

    @pytest.mark.parametrize("stages", [(2, 1), (3, 2), (4, 2)])
    def test_pass_output_clean(self, stages):
        ss, rs = stages
        cfg = TileConfig(
            32, 32, 32, warp_m=16, warp_n=16, chunk_k=8, smem_stages=ss, reg_stages=rs
        )
        spec = GemmSpec("toy", batch=1, m=64, n=64, k=128)
        kernel = AlcopCompiler(verify_sync=False).build(spec, cfg)
        assert check_kernel(kernel) == []

    def test_compiler_verify_sync_build_path(self):
        cfg = TileConfig(
            32, 32, 32, warp_m=16, warp_n=16, chunk_k=8, smem_stages=3, reg_stages=2
        )
        spec = GemmSpec("toy", batch=1, m=64, n=64, k=128)
        kernel = AlcopCompiler(verify_sync=True).build(spec, cfg)
        assert kernel.attrs["pipeline_groups"]


class TestRule1UnguardedCopy:
    def test_copy_outside_window(self):
        from repro.ir import SyncKind

        b = _Builder()
        body = b.steady_body()
        body.remove(body[0])  # drop the in-loop producer_acquire
        diags = check_kernel(b.kernel(body=body))
        assert RULE_UNGUARDED_COPY in rules_of(diags)

    def test_commit_without_acquire(self):
        from repro.ir import SyncKind

        b = _Builder()
        tail = [b.sync(SyncKind.PRODUCER_COMMIT)]
        diags = check_kernel(b.kernel(tail=tail))
        assert RULE_UNGUARDED_COPY in rules_of(diags)

    def test_async_copy_into_unpipelined_buffer(self):
        b = _Builder()
        rogue = Buffer("rogue", (b.tile,), scope=Scope.SHARED)
        stray = MemCopy(
            rogue.full_region(), b.inp.region((0, b.tile)), is_async=True
        )
        diags = check_kernel(b.kernel(tail=[stray]))
        hits = [d for d in diags if d.rule == RULE_UNGUARDED_COPY]
        assert hits and hits[0].buffer == "rogue"


class TestRule2ReadBeforeArrival:
    def test_missing_wait(self):
        from repro.ir import SyncKind

        b = _Builder()
        body = b.steady_body()
        body = [s for s in body if not (
            isinstance(s, PipelineSync) and s.kind is SyncKind.CONSUMER_WAIT
        )]
        diags = check_kernel(b.kernel(body=body))
        assert RULE_READ_BEFORE_ARRIVAL in rules_of(diags)

    def test_wrong_stage_distance(self):
        # Consumer reads the stage being *filled* instead of the oldest one.
        b = _Builder()
        body = b.steady_body()
        body[4] = b.consume((b.t + b.stages - 1) % b.stages)
        diags = check_kernel(b.kernel(body=body))
        assert RULE_READ_BEFORE_ARRIVAL in rules_of(diags)
        assert any("consumer_wait" in d.message for d in diags)

    def test_wait_on_empty_pipeline(self):
        from repro.ir import SyncKind

        b = _Builder()
        diags = check_kernel(b.kernel(tail=[b.sync(SyncKind.CONSUMER_WAIT)] * b.stages))
        assert RULE_READ_BEFORE_ARRIVAL in rules_of(diags)


class TestRule3StageAlias:
    def test_unshifted_producer_aliases_consumer_stage(self):
        b = _Builder()
        body = b.steady_body()
        body[1] = b.load((b.t + b.stages - 1) % b.n_tiles, b.t % b.stages)
        diags = check_kernel(b.kernel(body=body))
        assert RULE_STAGE_ALIAS in rules_of(diags)

    def test_acquire_beyond_capacity(self):
        from repro.ir import SyncKind

        b = _Builder()
        body = b.steady_body()
        body = [s for s in body if not (
            isinstance(s, PipelineSync) and s.kind is SyncKind.CONSUMER_RELEASE
        )]
        diags = check_kernel(b.kernel(body=body))
        assert RULE_STAGE_ALIAS in rules_of(diags)

    def test_constant_stage_producer(self):
        b = _Builder()
        body = b.steady_body()
        body[1] = b.load((b.t + b.stages - 1) % b.n_tiles, IntImm(0))
        diags = check_kernel(b.kernel(body=body))
        assert RULE_STAGE_ALIAS in rules_of(diags)


class TestRule4PrologueShortfall:
    def test_underfilled_prologue(self):
        b = _Builder()
        diags = check_kernel(b.kernel(prologue=b.prologue(chunks=[0])))
        hits = [d for d in diags if d.rule == RULE_PROLOGUE_SHORTFALL]
        assert hits and "num_stages=3" in hits[0].message

    def test_empty_prologue(self):
        b = _Builder()
        diags = check_kernel(b.kernel(prologue=[]))
        assert RULE_PROLOGUE_SHORTFALL in rules_of(diags)

    def test_overfilled_prologue(self):
        b = _Builder()
        diags = check_kernel(b.kernel(prologue=b.prologue(chunks=[0, 1, 2])))
        assert RULE_PROLOGUE_SHORTFALL in rules_of(diags)


class TestRule5UnbalancedSync:
    def test_release_without_wait(self):
        from repro.ir import SyncKind

        b = _Builder()
        diags = check_kernel(b.kernel(tail=[b.sync(SyncKind.CONSUMER_RELEASE)]))
        assert RULE_UNBALANCED_SYNC in rules_of(diags)

    def test_dangling_producer_window(self):
        from repro.ir import SyncKind

        b = _Builder()
        diags = check_kernel(b.kernel(tail=[b.sync(SyncKind.PRODUCER_ACQUIRE)]))
        hits = [d for d in diags if d.rule == RULE_UNBALANCED_SYNC]
        assert hits and "kernel end" in hits[0].path

    def test_sync_on_unpipelined_buffer(self):
        from repro.ir import SyncKind

        b = _Builder()
        rogue = Buffer("rogue", (b.tile,), scope=Scope.SHARED)
        diags = check_kernel(
            b.kernel(tail=[PipelineSync(rogue, SyncKind.CONSUMER_WAIT)])
        )
        assert RULE_UNBALANCED_SYNC in rules_of(diags)

    def test_thread_divergent_sync_forks_and_reports(self):
        from repro.ir import SyncKind

        b = _Builder()
        w = Var("w")
        body = b.steady_body()
        # Only warp 0 releases: lanes diverge on the barrier sequence.
        body[-1] = For(
            w,
            2,
            IfThenElse(w.equal(0), b.sync(SyncKind.CONSUMER_RELEASE)),
            ForKind.THREAD,
        )
        diags = check_kernel(b.kernel(body=body))
        assert RULE_UNBALANCED_SYNC in rules_of(diags)

    def test_thread_uniform_guard_is_clean(self):
        from repro.ir import SyncKind

        b = _Builder()
        w = Var("w")
        body = b.steady_body()
        # Every lane takes the same (state-neutral) branch: no divergence.
        body.insert(
            5,
            For(w, 2, IfThenElse(w.equal(0), b.consume(b.t % b.stages)), ForKind.THREAD),
        )
        assert check_kernel(b.kernel(body=body)) == []


class TestDiagnosticsAndWiring:
    def test_diagnostic_rendering(self):
        d = SyncDiagnostic(
            rule=RULE_STAGE_ALIAS,
            severity="error",
            buffer="sh",
            path="for t@2",
            message="boom",
        )
        text = format_diagnostics([d])
        assert "R3-stage-alias" in text and "for t@2" in text

    def test_diagnostics_carry_concrete_path(self):
        b = _Builder()
        body = b.steady_body()
        body = [s for s in body if not (
            isinstance(s, PipelineSync)
            and s.kind.value == "consumer_wait"
        )]
        diags = check_kernel(b.kernel(body=body))
        assert any("for t@0" in d.path for d in diags)

    def test_apply_pipelining_verify_sync_raises_on_races(self, monkeypatch):
        import repro.ir.syncheck as syncheck
        from tests.transform.test_fuzz_streaming import build_streaming_kernel

        bad = SyncDiagnostic(
            rule=RULE_STAGE_ALIAS, severity="error", buffer="sh0",
            path="x", message="seeded",
        )
        monkeypatch.setattr(syncheck, "check_kernel", lambda k: [bad])
        kernel = build_streaming_kernel(4, 4, 2, 1, False)
        with pytest.raises(SyncCheckError) as err:
            apply_pipelining(kernel, verify_sync=True)
        assert "seeded" in str(err.value)
        assert err.value.diagnostics == [bad]

    def test_apply_pipelining_verify_sync_clean(self):
        from tests.transform.test_fuzz_streaming import build_streaming_kernel

        kernel = build_streaming_kernel(4, 4, 3, 2, True)
        out = apply_pipelining(kernel, verify_sync=True)
        assert out.attrs["pipeline_groups"]

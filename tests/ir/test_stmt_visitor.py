"""Tests for statement nodes, visitors, mutators, builder, printer, validation."""

import pytest

from repro.ir import (
    Allocate,
    Buffer,
    For,
    ForKind,
    IRBuilder,
    IfThenElse,
    IntImm,
    Kernel,
    MemCopy,
    PipelineSync,
    Scope,
    SeqStmt,
    StmtMutator,
    StmtVisitor,
    SyncKind,
    ValidationError,
    Var,
    format_kernel,
    format_stmt,
    post_order_visit,
    pre_order_find,
    seq,
    validate_kernel,
)
from repro.ir.analysis import (
    buffers_read,
    buffers_written,
    collect_allocates,
    collect_copies,
    collect_computes,
    collect_syncs,
    count_nodes,
    enclosing_loops,
    kernel_flops,
    loop_extent_int,
    walk_with_path,
)


def _sample_kernel():
    """A small load-and-use kernel: copy tile of A into shared, then mma."""
    A = Buffer("A", (64, 16))
    C = Buffer("C", (64, 16))
    A_sh = Buffer("A_shared", (16, 16), scope=Scope.SHARED)
    b = IRBuilder()
    with b.allocate(A_sh, attrs={"pipeline_stages": 3}):
        with b.serial_for("ko", 4) as ko:
            b.copy(A_sh.full_region(), A.region((ko * 16, 16), (0, 16)), is_async=True)
            b.compute("mma", C.region((0, 64), (0, 16)), [A_sh.full_region()], flops=512)
    return Kernel("k", [A, C], b.finish()), A, C, A_sh


class TestStmtConstruction:
    def test_for_rejects_non_var(self):
        with pytest.raises(TypeError):
            For("x", 4, PipelineSync(Buffer("b", (1,)), SyncKind.PRODUCER_COMMIT))

    def test_for_rejects_zero_extent(self):
        buf = Buffer("b", (1,))
        with pytest.raises(ValueError):
            For(Var("i"), 0, PipelineSync(buf, SyncKind.PRODUCER_COMMIT))

    def test_seqstmt_flattens(self):
        buf = Buffer("b", (1,))
        s1 = PipelineSync(buf, SyncKind.PRODUCER_COMMIT)
        s2 = PipelineSync(buf, SyncKind.CONSUMER_WAIT)
        nested = SeqStmt([SeqStmt([s1]), s2])
        assert nested.stmts == (s1, s2)

    def test_seqstmt_rejects_empty(self):
        with pytest.raises(ValueError):
            SeqStmt([])

    def test_seq_single_collapses(self):
        buf = Buffer("b", (1,))
        s = PipelineSync(buf, SyncKind.PRODUCER_COMMIT)
        assert seq(s) is s

    def test_memcopy_size_mismatch(self):
        a = Buffer("a", (8, 8))
        b = Buffer("b", (8, 8))
        with pytest.raises(ValueError):
            MemCopy(a.region((0, 4), (0, 4)), b.region((0, 8), (0, 8)))

    def test_memcopy_bytes(self):
        a = Buffer("a", (8, 8), dtype="float16")
        c = MemCopy(a.region((0, 4), (0, 4)), a.region((4, 4), (4, 4)))
        assert c.bytes == 4 * 4 * 2

    def test_sync_kind_type_checked(self):
        with pytest.raises(TypeError):
            PipelineSync(Buffer("b", (1,)), "producer_commit")

    def test_allocate_requires_buffer(self):
        with pytest.raises(TypeError):
            Allocate("A", PipelineSync(Buffer("b", (1,)), SyncKind.PRODUCER_COMMIT))


class TestAnalysis:
    def test_collects(self):
        k, A, C, A_sh = _sample_kernel()
        assert len(collect_allocates(k.body)) == 1
        assert len(collect_copies(k.body)) == 1
        assert len(collect_computes(k.body)) == 1
        assert collect_syncs(k.body) == []

    def test_buffers_read_written(self):
        k, A, C, A_sh = _sample_kernel()
        assert buffers_read(k.body) == {A, A_sh, C}  # C read for accumulate
        assert buffers_written(k.body) == {A_sh, C}

    def test_walk_with_path_depths(self):
        k, *_ = _sample_kernel()
        paths = {type(n).__name__: len(p) for n, p in walk_with_path(k.body)}
        assert paths["MemCopy"] == 3  # under Allocate -> For -> SeqStmt

    def test_enclosing_loops(self):
        k, *_ = _sample_kernel()
        for node, path in walk_with_path(k.body):
            if isinstance(node, MemCopy):
                loops = enclosing_loops(path)
                assert [lp.var.name for lp in loops] == ["ko"]

    def test_loop_extent_int(self):
        k, *_ = _sample_kernel()
        loop = pre_order_find(k.body, lambda s: isinstance(s, For))
        assert loop_extent_int(loop) == 4

    def test_loop_extent_nonconst_raises(self):
        n = Var("n")
        loop = For(Var("i"), n + 1, PipelineSync(Buffer("b", (1,)), SyncKind.PRODUCER_COMMIT))
        with pytest.raises(ValueError):
            loop_extent_int(loop)

    def test_kernel_flops(self):
        k, *_ = _sample_kernel()
        assert kernel_flops(k) == 512 * 4

    def test_count_nodes(self):
        k, *_ = _sample_kernel()
        # Allocate, For, SeqStmt, MemCopy, ComputeStmt
        assert count_nodes(k.body) == 5


class TestVisitorMutator:
    def test_visitor_counts(self):
        k, *_ = _sample_kernel()
        seen = []

        class V(StmtVisitor):
            def visit_memcopy(self, s):
                seen.append(s)

        V().visit(k.body)
        assert len(seen) == 1

    def test_post_order_visit_order(self):
        k, *_ = _sample_kernel()
        order = []
        post_order_visit(k.body, lambda s: order.append(type(s).__name__))
        assert order[-1] == "Allocate"  # root visited last
        assert order.index("MemCopy") < order.index("SeqStmt")

    def test_mutator_identity_preserved(self):
        k, *_ = _sample_kernel()
        out = StmtMutator().visit(k.body)
        assert out is k.body

    def test_mutator_rewrites(self):
        k, *_ = _sample_kernel()

        class MakeSync(StmtMutator):
            def visit_memcopy(self, s):
                return MemCopy(s.dst, s.src, is_async=False)

        out = MakeSync().visit(k.body)
        assert out is not k.body
        copies = collect_copies(out)
        assert not copies[0].is_async

    def test_mutator_deletion_in_seq(self):
        k, *_ = _sample_kernel()

        class DropCopies(StmtMutator):
            def visit_memcopy(self, s):
                return None

        out = DropCopies().visit(k.body)
        assert collect_copies(out) == []
        assert len(collect_computes(out)) == 1

    def test_mutate_kernel_wrapper(self):
        k, *_ = _sample_kernel()
        assert StmtMutator().mutate_kernel(k) is k


class TestBuilder:
    def test_unclosed_scope_raises(self):
        b = IRBuilder()
        cm = b.serial_for("i", 4)
        cm.__enter__()
        with pytest.raises(RuntimeError):
            b.finish()
        # Close the scope cleanly so the suspended generator does not warn.
        b.sync(Buffer("b", (1,)), SyncKind.PRODUCER_COMMIT)
        cm.__exit__(None, None, None)

    def test_empty_scope_raises(self):
        b = IRBuilder()
        with pytest.raises(ValueError):
            with b.serial_for("i", 4):
                pass

    def test_empty_builder_raises(self):
        with pytest.raises(ValueError):
            IRBuilder().finish()

    def test_if_then(self):
        b = IRBuilder()
        buf = Buffer("b", (1,))
        with b.serial_for("i", 4) as i:
            with b.if_then(i.equal(0)):
                b.sync(buf, SyncKind.CONSUMER_WAIT)
        stmt = b.finish()
        found = pre_order_find(stmt, lambda s: isinstance(s, IfThenElse))
        assert found is not None

    def test_kinds(self):
        b = IRBuilder()
        buf = Buffer("b", (1,))
        with b.block_for("bi", 2):
            with b.thread_for("ti", 2):
                with b.unrolled_for("u", 2):
                    b.sync(buf, SyncKind.PRODUCER_COMMIT)
        stmt = b.finish()
        kinds = [s.kind for s, _ in walk_with_path(stmt) if isinstance(s, For)]
        assert kinds == [ForKind.BLOCK, ForKind.THREAD, ForKind.UNROLLED]


class TestPrinter:
    def test_format_contains_structure(self):
        k, *_ = _sample_kernel()
        text = format_kernel(k)
        assert "async_memcpy" in text
        assert "alloc A_shared" in text
        assert "pipeline_stages" in text
        assert "for ko in 0..4:" in text

    def test_sync_printed(self):
        buf = Buffer("s", (1,), scope=Scope.SHARED)
        s = PipelineSync(buf, SyncKind.CONSUMER_WAIT)
        assert "s.consumer_wait()" in format_stmt(s)

    def test_if_else_printed(self):
        buf = Buffer("s", (1,), scope=Scope.SHARED)
        st = IfThenElse(
            IntImm(1),
            PipelineSync(buf, SyncKind.CONSUMER_WAIT),
            PipelineSync(buf, SyncKind.CONSUMER_RELEASE),
        )
        text = format_stmt(st)
        assert "if 1:" in text and "else:" in text


class TestValidation:
    def test_valid_kernel_passes(self):
        k, *_ = _sample_kernel()
        validate_kernel(k)

    def test_unallocated_buffer_caught(self):
        A = Buffer("A", (8, 8))
        ghost = Buffer("ghost", (8, 8), scope=Scope.SHARED)
        body = MemCopy(ghost.full_region(), A.full_region())
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A], body))

    def test_unbound_var_caught(self):
        A = Buffer("A", (8, 8))
        k = Var("phantom")
        body = MemCopy(A.region((k, 4), (0, 8)), A.region((0, 4), (0, 8)))
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A], body))

    def test_rebound_loop_var_caught(self):
        A = Buffer("A", (8, 8))
        i = Var("i")
        inner = For(i, 2, MemCopy(A.region((i, 4), (0, 8)), A.region((0, 4), (0, 8))))
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A], For(i, 2, inner)))

    def test_double_allocation_caught(self):
        A = Buffer("A", (8, 8))
        sh = Buffer("sh", (4, 4), scope=Scope.SHARED)
        inner = Allocate(sh, MemCopy(sh.full_region(), A.region((0, 4), (0, 4))))
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A], Allocate(sh, inner)))

    def test_bad_pipeline_stage_attr_caught(self):
        A = Buffer("A", (8, 8))
        sh = Buffer("sh", (4, 4), scope=Scope.SHARED)
        body = Allocate(
            sh,
            MemCopy(sh.full_region(), A.region((0, 4), (0, 4))),
            attrs={"pipeline_stages": 0},
        )
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A], body))

    def test_duplicate_params_caught(self):
        A = Buffer("A", (8, 8))
        B = Buffer("A", (8, 8))
        body = MemCopy(A.full_region(), B.full_region())
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A, B], body))

    def test_sync_on_invisible_buffer_caught(self):
        A = Buffer("A", (8, 8))
        ghost = Buffer("ghost", (4,), scope=Scope.SHARED)
        with pytest.raises(ValidationError):
            validate_kernel(Kernel("k", [A], PipelineSync(ghost, SyncKind.PRODUCER_COMMIT)))

"""Tests for the scalar expression IR."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import expr as E
from repro.ir.expr import (
    BinOp,
    FloatImm,
    IntImm,
    Var,
    as_expr,
    evaluate,
    floormod,
    free_vars,
    imax,
    imin,
    simplify,
    struct_equal,
    substitute,
)


class TestConstruction:
    def test_intimm_value(self):
        assert IntImm(5).value == 5

    def test_intimm_rejects_bool(self):
        with pytest.raises(TypeError):
            IntImm(True)

    def test_intimm_rejects_float(self):
        with pytest.raises(TypeError):
            IntImm(1.5)

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_as_expr_int(self):
        e = as_expr(7)
        assert isinstance(e, IntImm) and e.value == 7

    def test_as_expr_float(self):
        e = as_expr(1.5)
        assert isinstance(e, FloatImm) and e.value == 1.5

    def test_as_expr_identity_on_expr(self):
        v = Var("x")
        assert as_expr(v) is v

    def test_as_expr_rejects_str(self):
        with pytest.raises(TypeError):
            as_expr("x")

    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            BinOp("pow", IntImm(1), IntImm(2))


class TestConstantFolding:
    def test_add_folds(self):
        e = as_expr(2) + 3
        assert isinstance(e, IntImm) and e.value == 5

    def test_mul_folds(self):
        assert (as_expr(4) * 6).value == 24

    def test_floordiv_folds(self):
        assert (as_expr(7) // 2).value == 3

    def test_floormod_folds(self):
        assert (as_expr(7) % 3).value == 1

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            as_expr(1) // 0

    def test_add_zero_identity(self):
        x = Var("x")
        assert (x + 0) is x
        assert (0 + x) is x

    def test_mul_one_identity(self):
        x = Var("x")
        assert (x * 1) is x
        assert (1 * x) is x

    def test_mul_zero_annihilates(self):
        x = Var("x")
        e = x * 0
        assert isinstance(e, IntImm) and e.value == 0

    def test_mod_one_is_zero(self):
        x = Var("x")
        e = x % 1
        assert isinstance(e, IntImm) and e.value == 0

    def test_div_one_identity(self):
        x = Var("x")
        assert (x // 1) is x

    def test_sub_zero_identity(self):
        x = Var("x")
        assert (x - 0) is x

    def test_negation(self):
        e = -Var("x")
        assert isinstance(e, BinOp) and e.op == "sub"


class TestEvaluate:
    def test_simple(self):
        x = Var("x")
        assert evaluate((x + 2) * 3, {x: 4}) == 18

    def test_floor_semantics_match_python(self):
        x = Var("x")
        assert evaluate(x // 4, {x: -3}) == -3 // 4
        assert evaluate(x % 4, {x: -3}) == -3 % 4

    def test_unbound_var_raises(self):
        with pytest.raises(KeyError):
            evaluate(Var("x") + 1, {})

    def test_min_max(self):
        x = Var("x")
        assert evaluate(imin(x, 3), {x: 5}) == 3
        assert evaluate(imax(x, 3), {x: 5}) == 5

    def test_comparisons(self):
        x = Var("x")
        assert evaluate(x.lt(5), {x: 3}) == 1
        assert evaluate(x.ge(5), {x: 3}) == 0
        assert evaluate(x.equal(3), {x: 3}) == 1
        assert evaluate(x.not_equal(3), {x: 3}) == 0

    def test_logical(self):
        x = Var("x")
        assert evaluate(x.lt(5).logical_and(x.gt(1)), {x: 3}) == 1
        assert evaluate(x.lt(2).logical_or(x.gt(10)), {x: 3}) == 0

    def test_runtime_div_zero(self):
        x = Var("x")
        with pytest.raises(ZeroDivisionError):
            evaluate(as_expr(10) // x, {x: 0})


class TestSubstitute:
    def test_basic(self):
        x, y = Var("x"), Var("y")
        e = substitute(x + y, {x: as_expr(2)})
        assert evaluate(e, {y: 3}) == 5

    def test_substitute_folds(self):
        x = Var("x")
        e = substitute(x + 1, {x: as_expr(2)})
        assert isinstance(e, IntImm) and e.value == 3

    def test_untouched_tree_shared(self):
        x, y = Var("x"), Var("y")
        e = x + y
        assert substitute(e, {Var("z"): as_expr(1)}) is e

    def test_var_to_expr(self):
        x, y = Var("x"), Var("y")
        e = substitute(x * 4, {x: y + 1})
        assert evaluate(e, {y: 2}) == 12


class TestFreeVars:
    def test_collects_all(self):
        x, y = Var("x"), Var("y")
        assert free_vars((x + y) * x) == {x, y}

    def test_const_has_none(self):
        assert free_vars(as_expr(3) + 4) == set()

    def test_vars_identity_based(self):
        x1, x2 = Var("x"), Var("x")
        assert free_vars(x1 + x2) == {x1, x2}


class TestSimplify:
    def test_mod_mod_collapse(self):
        x = Var("x")
        e = simplify((x % 3) % 3)
        assert struct_equal(e, x % 3)

    def test_mod_div_is_zero(self):
        x = Var("x")
        e = simplify((x % 3) // 3)
        assert isinstance(e, IntImm) and e.value == 0

    def test_constant_gathering(self):
        x = Var("x")
        e = simplify((x + 1) + 2)
        assert struct_equal(e, x + 3)

    def test_simplify_preserves_value(self):
        x = Var("x")
        e = ((x + 1) + 2) % 4
        s = simplify(e)
        for v in range(-5, 15):
            assert evaluate(e, {x: v}) == evaluate(s, {x: v})

    def test_nested_mod_different_base_kept(self):
        x = Var("x")
        e = simplify((x % 3) % 2)
        # must not collapse: (x%3)%2 differs from x%2 at x=3 -> 0 vs 1
        assert evaluate(e, {x: 3}) == (3 % 3) % 2


class TestStructEqual:
    def test_equal_trees(self):
        x = Var("x")
        assert struct_equal(x + 1, x + 1)

    def test_var_identity(self):
        assert not struct_equal(Var("x"), Var("x"))

    def test_different_ops(self):
        x = Var("x")
        assert not struct_equal(x + 1, x - 1)

    def test_int_vs_float(self):
        assert not struct_equal(IntImm(1), FloatImm(1.0))


# -- property-based tests ------------------------------------------------------

_vars = [Var("a"), Var("b"), Var("c")]


@st.composite
def exprs(draw, depth=0):
    """Random integer expression trees over three variables."""
    if depth > 3 or draw(st.booleans()):
        leaf = draw(st.integers(min_value=-8, max_value=8) | st.sampled_from(_vars))
        return as_expr(leaf)
    op = draw(st.sampled_from(["add", "sub", "mul"]))
    a = draw(exprs(depth=depth + 1))
    b = draw(exprs(depth=depth + 1))
    return E._binop(op, a, b)


@given(exprs(), st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
def test_simplify_is_semantics_preserving(e, a, b, c):
    env = {_vars[0]: a, _vars[1]: b, _vars[2]: c}
    assert evaluate(simplify(e), env) == evaluate(e, env)


@given(exprs(), st.integers(1, 7), st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
def test_mod_wrap_matches_python(e, n, a, b, c):
    env = {_vars[0]: a, _vars[1]: b, _vars[2]: c}
    assert evaluate(floormod(e, n), env) == evaluate(e, env) % n


@given(exprs(), exprs(), st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
def test_min_max_consistent(e1, e2, a, b, c):
    env = {_vars[0]: a, _vars[1]: b, _vars[2]: c}
    lo = evaluate(imin(e1, e2), env)
    hi = evaluate(imax(e1, e2), env)
    assert lo <= hi
    assert {lo, hi} == {evaluate(e1, env), evaluate(e2, env)}


@given(exprs())
def test_substitute_closes_expression(e):
    env = {v: as_expr(i + 1) for i, v in enumerate(_vars)}
    closed = substitute(e, env)
    assert free_vars(closed) == set()
    assert isinstance(closed, (IntImm, FloatImm))

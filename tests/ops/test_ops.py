"""Tests for operator definitions: matmul, bmm, conv2d (implicit GEMM)."""

import numpy as np
import pytest

from repro.ops import (
    Conv2dShape,
    MemoryBoundOp,
    bmm_spec,
    build_bmm_graph,
    build_matmul_graph,
    conv2d_spec,
    im2col,
    matmul_spec,
    memory_bound_latency,
    reference_bmm,
    reference_conv2d,
    reference_matmul,
)


class TestMatmul:
    def test_spec(self):
        s = matmul_spec("m", 64, 32, 128)
        assert (s.batch, s.m, s.n, s.k) == (1, 64, 32, 128)

    def test_graph_shapes(self):
        s = matmul_spec("m", 64, 32, 128)
        a, b, c = build_matmul_graph(s)
        assert a.shape == (64, 128) and b.shape == (32, 128) and c.shape == (64, 32)

    def test_graph_with_elementwise(self):
        s = matmul_spec("m", 64, 32, 128)
        a, b, c = build_matmul_graph(s, a_elementwise="relu")
        assert a.name == "A_f"

    def test_batched_rejected(self):
        with pytest.raises(ValueError):
            build_matmul_graph(bmm_spec("b", 2, 4, 4, 4))

    def test_reference(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 16)).astype(np.float16)
        b = rng.standard_normal((4, 16)).astype(np.float16)
        out = reference_matmul(a, b)
        assert out.shape == (8, 4) and out.dtype == np.float16


class TestBmm:
    def test_requires_batch(self):
        with pytest.raises(ValueError):
            bmm_spec("b", 1, 4, 4, 4)

    def test_graph_shapes(self):
        s = bmm_spec("b", 3, 8, 4, 16)
        a, b, c = build_bmm_graph(s)
        assert a.shape == (3, 8, 16) and c.shape == (3, 8, 4)

    def test_reference_matches_loop(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2, 4, 8)).astype(np.float16)
        b = rng.standard_normal((2, 3, 8)).astype(np.float16)
        out = reference_bmm(a, b)
        for i in range(2):
            np.testing.assert_allclose(
                out[i].astype(np.float32),
                a[i].astype(np.float32) @ b[i].astype(np.float32).T,
                rtol=1e-2,
                atol=1e-2,
            )


class TestConv2d:
    SHAPE = Conv2dShape(n=2, c=3, h=8, w=8, k=4, r=3, s=3, padding=1)

    def test_output_geometry(self):
        assert (self.SHAPE.p, self.SHAPE.q) == (8, 8)
        strided = Conv2dShape(1, 3, 8, 8, 4, 3, 3, stride=2, padding=1)
        assert (strided.p, strided.q) == (4, 4)

    def test_gemm_dims(self):
        assert self.SHAPE.gemm_m == 2 * 8 * 8
        assert self.SHAPE.gemm_n == 4
        assert self.SHAPE.gemm_k == 27

    def test_footprint_ratio(self):
        assert 0 < self.SHAPE.footprint_ratio < 1
        one_by_one = Conv2dShape(1, 16, 8, 8, 4, 1, 1)
        assert one_by_one.footprint_ratio == 1.0

    def test_spec_carries_footprint(self):
        spec = conv2d_spec("c", self.SHAPE)
        assert spec.a_footprint_ratio == self.SHAPE.footprint_ratio
        assert spec.m == self.SHAPE.gemm_m

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Conv2dShape(1, 3, 2, 2, 4, 5, 5)  # kernel larger than padded input

    def test_im2col_shape(self):
        x = np.arange(2 * 3 * 8 * 8, dtype=np.float16).reshape(2, 3, 8, 8)
        cols = im2col(x, self.SHAPE)
        assert cols.shape == (self.SHAPE.gemm_m, self.SHAPE.gemm_k)

    def test_im2col_wrong_input_shape(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 3, 8, 8), dtype=np.float16), self.SHAPE)

    def test_implicit_gemm_equals_direct_conv(self):
        """The central conv identity: im2col @ W.T == conv2d."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float16)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float16)
        out = reference_conv2d(x, w, self.SHAPE)
        # brute-force direct convolution
        xp = np.pad(x.astype(np.float32), ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((2, 4, 8, 8), dtype=np.float32)
        for n in range(2):
            for ko in range(4):
                for p in range(8):
                    for q in range(8):
                        ref[n, ko, p, q] = np.sum(
                            xp[n, :, p : p + 3, q : q + 3] * w[ko].astype(np.float32)
                        )
        np.testing.assert_allclose(out.astype(np.float32), ref, rtol=5e-2, atol=5e-2)

    def test_compiled_conv_matches_reference(self):
        """End to end: implicit-GEMM kernel over materialized im2col data
        reproduces the direct convolution."""
        from repro.core import AlcopCompiler
        from repro.schedule import TileConfig

        shape = Conv2dShape(n=1, c=4, h=4, w=4, k=16, r=3, s=3, padding=1)
        spec = conv2d_spec("conv_t", shape)  # GEMM 16 x 16 x 36
        cfg = TileConfig(16, 16, 12, warp_m=8, warp_n=8, chunk_k=6, smem_stages=2, reg_stages=2)
        kernel = AlcopCompiler().build(spec, cfg)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 4, 4)).astype(np.float16)
        w = rng.standard_normal((16, 4, 3, 3)).astype(np.float16)
        from repro.interp import run_kernel

        cols = im2col(x, shape)
        wm = w.reshape(16, shape.gemm_k)
        out = run_kernel(kernel, {"A": cols, "B": wm}, mode="pipeline")["C"]
        expected = reference_conv2d(x, w, shape)
        got = out.reshape(1, 4, 4, 16).transpose(0, 3, 1, 2)
        np.testing.assert_allclose(
            got.astype(np.float32), expected.astype(np.float32), rtol=5e-2, atol=5e-2
        )


class TestMemoryBound:
    def test_latency_scales_with_bytes(self):
        small = memory_bound_latency(MemoryBoundOp("x", 1 << 20, 1 << 20))
        large = memory_bound_latency(MemoryBoundOp("x", 1 << 24, 1 << 24))
        assert large > small

    def test_count_multiplies(self):
        one = memory_bound_latency(MemoryBoundOp("x", 1 << 20, 1 << 20, count=1))
        ten = memory_bound_latency(MemoryBoundOp("x", 1 << 20, 1 << 20, count=10))
        assert ten == pytest.approx(10 * one)

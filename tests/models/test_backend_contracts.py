"""Contract tests: every backend satisfies the runtime's Backend protocol
and produces sane end-to-end estimates."""

import pytest

from repro.baselines import LibraryKernels, XlaLikeCompiler, tvm_compiler
from repro.core import AlcopCompiler, SplitKCompiler
from repro.models import build_bert, estimate_model_latency
from repro.ops import matmul_spec
from repro.tuning import Measurer, SpaceOptions

MEAS = Measurer(via_ir=False)
OPTS = SpaceOptions(max_size=120)


def backends():
    return {
        "alcop": AlcopCompiler(measurer=MEAS, space_options=OPTS),
        "tvm": tvm_compiler(measurer=MEAS, space_options=OPTS),
        "xla": XlaLikeCompiler(),
        "splitk": SplitKCompiler(measurer=MEAS, space_options=OPTS),
    }


class TestProtocol:
    @pytest.mark.parametrize("name", ["alcop", "tvm", "xla", "splitk"])
    def test_required_attributes(self, name):
        b = backends()[name]
        assert hasattr(b, "gemm_latency")
        assert isinstance(b.elementwise_factor, float)
        assert isinstance(b.launch_overhead, float)
        assert isinstance(b.fallback_factor, float)

    @pytest.mark.parametrize("name", ["alcop", "tvm", "xla", "splitk"])
    def test_gemm_latency_positive(self, name):
        b = backends()[name]
        assert b.gemm_latency(matmul_spec("contract_mm", 256, 256, 512)) > 0


class TestSplitKAttributes:
    """SplitKCompiler is usable as an end-to-end backend drop-in."""

    def test_has_backend_defaults(self):
        c = SplitKCompiler(measurer=MEAS, space_options=OPTS)
        # Protocol attributes come from the class or delegated defaults.
        assert getattr(c, "elementwise_factor", None) is not None

    def test_end_to_end_not_slower_than_plain(self):
        g = build_bert()
        plain = estimate_model_latency(
            g, AlcopCompiler(measurer=MEAS, space_options=OPTS), backend_name="alcop"
        )
        sk = estimate_model_latency(
            g, SplitKCompiler(measurer=MEAS, space_options=OPTS), backend_name="splitk"
        )
        assert sk.total_us <= plain.total_us * 1.001


class TestLibraryAsBackend:
    def test_library_lacks_fallback_handling(self):
        """LibraryKernels raises on untileable shapes; the runtime's
        fallback path absorbs that only for Backend implementors — so the
        library is used per-op (Fig. 11), not as an end-to-end backend."""
        lib = LibraryKernels()
        from repro.gpusim.occupancy import CompileError

        with pytest.raises(CompileError):
            lib.gemm_latency(matmul_spec("odd", 48, 48, 48))

"""Tests for the model zoo, workload suite and end-to-end runtime."""

import pytest

from repro.models import (
    MODEL_ZOO,
    build_bert,
    build_bert_large,
    build_gpt2,
    build_resnet18,
    build_resnet50,
    build_vgg16,
    estimate_model_latency,
    roofline_fallback_latency,
)
from repro.ops import matmul_spec
from repro.tensor import GemmSpec
from repro.workloads import OPERATOR_SUITE, get_operator, suite_specs


class TestWorkloadSuite:
    def test_expected_operators_present(self):
        names = set(OPERATOR_SUITE)
        assert {"MM_BERT_FC1", "MM_RN50_FC", "BMM_BERT_QK", "BMM_BERT_SV", "Conv_RN50_3x3"} <= names

    def test_rn50_fc_shape_matches_paper(self):
        s = get_operator("MM_RN50_FC")
        assert (s.m, s.n, s.k) == (1024, 64, 2048)

    def test_bert_qk_short_reduction(self):
        qk = get_operator("BMM_BERT_QK")
        sv = get_operator("BMM_BERT_SV")
        assert qk.k < sv.k  # the paper's short vs long reduction contrast

    def test_all_specs_have_nonempty_space(self):
        from repro.tuning import enumerate_space

        for spec in suite_specs():
            assert len(enumerate_space(spec)) > 0, spec.name

    def test_convs_have_footprint_below_one(self):
        assert get_operator("Conv_RN50_3x3").a_footprint_ratio < 1.0

    def test_unknown_operator(self):
        with pytest.raises(KeyError):
            get_operator("MM_NOT_REAL")


class TestZoo:
    def test_all_models_build(self):
        for name, build in MODEL_ZOO.items():
            g = build()
            assert g.name == name
            assert g.gemm_ops and g.memory_ops
            assert g.total_gemm_flops > 0

    def test_bert_layer_counts(self):
        g = build_bert()
        counts = {op.spec.name: op.count for op in g.gemm_ops}
        assert counts["BERT_FC1"] == 12
        assert counts["BERT_QK"] == 12

    def test_bert_large_heavier_than_bert(self):
        assert build_bert_large().total_gemm_flops > 2 * build_bert().total_gemm_flops

    def test_gpt2_seq_length(self):
        g = build_gpt2()
        fc1 = next(op.spec for op in g.gemm_ops if op.spec.name == "GPT-2_FC1")
        assert fc1.m == 1024

    def test_resnet50_deeper_than_18(self):
        assert len(build_resnet50().gemm_ops) > len(build_resnet18().gemm_ops)

    def test_vgg_flops_heavy(self):
        # VGG-16 is famously FLOP-heavy relative to ResNets.
        assert build_vgg16().total_gemm_flops > build_resnet50().total_gemm_flops


class _StubBackend:
    """Backend charging 1us per GFLOP; stem-like untileable ops excluded."""

    elementwise_factor = 1.0
    launch_overhead = 0.0
    fallback_factor = 1.0

    def gemm_latency(self, spec: GemmSpec) -> float:
        from repro.tuning import enumerate_space

        enumerate_space(spec)  # raises ValueError for untileable shapes
        return spec.flops / 1e9


class TestRuntime:
    def test_breakdown_sums(self):
        g = build_bert()
        res = estimate_model_latency(g, _StubBackend(), backend_name="stub")
        assert res.total_us == pytest.approx(
            res.gemm_us + res.fallback_us + res.memory_us + res.overhead_us
        )
        assert res.backend == "stub"

    def test_fallback_used_for_untileable(self):
        g = build_resnet18()
        res = estimate_model_latency(g, _StubBackend())
        assert res.fallback_us > 0  # the 3-channel stem conv

    def test_fallback_roofline_positive_and_monotone(self):
        small = roofline_fallback_latency(matmul_spec("s", 64, 64, 64))
        large = roofline_fallback_latency(matmul_spec("l", 1024, 1024, 1024))
        assert 0 < small < large

    def test_elementwise_factor_scales_memory(self):
        g = build_bert()
        b = _StubBackend()
        full = estimate_model_latency(g, b).memory_us

        b2 = _StubBackend()
        b2.elementwise_factor = 0.5
        half = estimate_model_latency(g, b2).memory_us
        assert half == pytest.approx(0.5 * full)

    def test_per_op_records_every_gemm(self):
        g = build_bert()
        res = estimate_model_latency(g, _StubBackend())
        assert set(res.per_op) == {op.spec.name for op in g.gemm_ops}

"""The CI workflow must stay parseable and keep its contract with the repo:
the exact commands it runs are the ones documented in README and ROADMAP."""

import pathlib

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = pathlib.Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def job_commands(job):
    return [step["run"] for step in job["steps"] if "run" in step]


def test_workflow_parses_and_has_expected_jobs(workflow):
    assert workflow["name"] == "CI"
    assert set(workflow["jobs"]) == {
        "lint", "tests", "sync-safety", "bench-smoke", "chaos", "serve-smoke",
        "fleet-smoke", "soak-smoke",
    }


def test_concurrency_cancels_superseded_runs(workflow):
    """A new push must cancel the previous run for the same ref, not queue
    behind it."""
    group = workflow["concurrency"]
    assert group["cancel-in-progress"] is True
    assert "github.ref" in group["group"]


def test_triggers_cover_push_and_pr(workflow):
    # pyyaml parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12"]


def test_pip_caching_enabled_everywhere(workflow):
    for name, job in workflow["jobs"].items():
        setup = [s for s in job["steps"] if "setup-python" in s.get("uses", "")]
        assert setup, f"job {name} does not set up python"
        assert setup[0]["with"].get("cache") == "pip", f"job {name} misses pip caching"


def test_job_command_lines(workflow):
    assert "ruff check src tests benchmarks" in job_commands(workflow["jobs"]["lint"])
    assert "PYTHONPATH=src python -m pytest -x -q" in job_commands(workflow["jobs"]["tests"])
    assert "PYTHONPATH=src python -m repro.cli check" in job_commands(
        workflow["jobs"]["sync-safety"]
    )
    assert "PYTHONPATH=src python -m pytest benchmarks --smoke -q --cache-dir .bench-cache" in (
        job_commands(workflow["jobs"]["bench-smoke"])
    )


def test_chaos_job_contract(workflow):
    """The chaos job must run the chaos test suite AND an end-to-end tune
    under an injected fault plan that exercises all three recovery paths
    (dead workers, hung workers, corrupted latencies)."""
    cmds = job_commands(workflow["jobs"]["chaos"])
    assert "PYTHONPATH=src python -m pytest tests/chaos -q" in cmds
    faulted = [c for c in cmds if "--fault-plan" in c]
    assert len(faulted) == 1, "chaos job must run one faulted tune"
    cmd = faulted[0]
    assert "repro.cli tune" in cmd
    assert "--trial-timeout" in cmd, "hang recovery needs a trial timeout"
    assert "--jobs" in cmd, "worker-death recovery needs a process pool"
    for kind in ("worker-death", "hang", "corrupt-latency"):
        assert kind in cmd, f"fault plan must inject {kind}"


def test_bench_smoke_runs_cold_then_warm(workflow):
    """The bench job must exercise the measurement cache twice against the
    same --cache-dir: the first run populates it, the second warm-starts."""
    bench = [c for c in job_commands(workflow["jobs"]["bench-smoke"]) if "pytest benchmarks" in c]
    assert len(bench) == 2, "bench-smoke must run the suite twice (cold, then warm)"
    assert all("--cache-dir .bench-cache" in c for c in bench)
    assert bench[0] == bench[1], "both runs must target the same cache directory"


class TestServeSmokeJob:
    """The serve-smoke job is the executable acceptance criterion for
    compile-as-a-service: it boots the daemon, proves request dedup
    (3 concurrent clients, exactly one sweep) and proves the warm round
    is served from the registry with zero compiles."""

    def test_boots_daemon_in_background_and_waits(self, workflow):
        cmds = job_commands(workflow["jobs"]["serve-smoke"])
        boot = [c for c in cmds if "repro.cli serve" in c]
        assert len(boot) == 1, "serve-smoke must boot exactly one daemon"
        assert "&" in boot[0], "the daemon must run in the background"
        assert "--registry-dir" in boot[0]
        assert "--wait" in boot[0], "the boot step must wait for readiness"

    def test_three_concurrent_clients_same_shape(self, workflow):
        cmds = job_commands(workflow["jobs"]["serve-smoke"])
        fanout = [c for c in cmds
                  if "client tune" in c and "--trace-out" not in c]
        assert len(fanout) == 1
        assert "for i in 1 2 3" in fanout[0], "three concurrent clients"
        assert fanout[0].count("--m 512 --n 512 --k 512"), "same GEMM shape"
        assert "wait" in fanout[0]

    def test_asserts_exactly_one_sweep(self, workflow):
        cmds = "\n".join(job_commands(workflow["jobs"]["serve-smoke"]))
        assert 'assert s["counters"]["sweeps_run"] == 1' in cmds

    def test_asserts_warm_round_from_registry_with_zero_compiles(self, workflow):
        cmds = "\n".join(job_commands(workflow["jobs"]["serve-smoke"]))
        assert 'warm["served_from"] == "registry"' in cmds
        assert 'warm["stages"] == {}' in cmds
        assert 's2["measurer"]["n_compiled"] == s1["measurer"]["n_compiled"]' in cmds

    def test_runs_latency_benchmark_and_uploads_artifact(self, workflow):
        cmds = job_commands(workflow["jobs"]["serve-smoke"])
        bench = [c for c in cmds if "bench_serve_latency.py" in c]
        assert len(bench) == 1
        assert "--smoke" in bench[0] and "--out serve-latency.json" in bench[0]
        uploads = [
            s for s in workflow["jobs"]["serve-smoke"]["steps"]
            if "upload-artifact" in s.get("uses", "")
        ]
        assert {u["with"]["path"] for u in uploads} == {
            "serve-latency.json", "trace.json",
        }

    def test_curls_metrics_endpoint_and_asserts_dedup_counter(self, workflow):
        """The daemon must expose Prometheus metrics over HTTP, and the job
        must prove the exposition parses and the fanout registered >= 2
        dedup joins, with the resilience counters present."""
        boot = next(c for c in job_commands(workflow["jobs"]["serve-smoke"])
                    if "repro.cli serve" in c)
        assert "--port 8731" in boot, "daemon must listen on HTTP for /metrics"
        cmds = "\n".join(job_commands(workflow["jobs"]["serve-smoke"]))
        assert "curl -sf http://127.0.0.1:8731/metrics" in cmds
        assert 'values["repro_dedup_hits_total"] >= 2' in cmds
        for counter in ("repro_requests_shed_total",
                        "repro_deadline_exceeded_total",
                        "repro_disk_errors_total"):
            assert counter in cmds, f"metrics step must check {counter}"

    def test_traced_tune_validates_and_uploads_chrome_trace(self, workflow):
        """A traced client tune must produce one stitched Chrome trace —
        client and server spans under a single trace_id — uploaded as an
        artifact."""
        cmds = job_commands(workflow["jobs"]["serve-smoke"])
        traced = [c for c in cmds if "--trace-out trace.json" in c]
        assert len(traced) == 1, "serve-smoke must run one traced tune"
        assert "client tune" in traced[0]
        assert 'len({e["args"]["trace_id"] for e in events}) == 1' in traced[0]
        assert '{"client:tune", "serve:tune", "sweep"} <= names' in traced[0]

    def test_daemon_is_stopped_even_on_failure(self, workflow):
        stops = [
            s for s in workflow["jobs"]["serve-smoke"]["steps"]
            if "client stop" in s.get("run", "")
        ]
        assert len(stops) == 1
        assert stops[0].get("if") == "always()"


class TestFleetSmokeJob:
    """The fleet-smoke job is the executable acceptance criterion for the
    distributed tuning fleet: the same seeded tune run serially and through
    a 3-worker fleet under injected worker death must produce bitwise-equal
    trial logs and the same best config."""

    def test_runs_serial_then_fleet_with_same_seeded_problem(self, workflow):
        cmds = job_commands(workflow["jobs"]["fleet-smoke"])
        tunes = [c for c in cmds if "repro.cli tune" in c]
        assert len(tunes) == 2, "fleet-smoke must run a serial and a fleet tune"
        serial, fleet = tunes
        assert "--fleet" not in serial and "--out serial.json" in serial
        assert "--fleet 3" in fleet and "--out fleet.json" in fleet
        # Identical problem/method/seed, or the comparison is meaningless.
        for flag in ("--m 256", "--n 256", "--k 512", "--space 32",
                     "--trials 8", "--method xgb", "--seed 3"):
            assert flag in serial and flag in fleet

    def test_fleet_tune_injects_worker_death(self, workflow):
        cmds = job_commands(workflow["jobs"]["fleet-smoke"])
        fleet = next(c for c in cmds if "--fleet 3" in c)
        assert "--fault-plan" in fleet
        assert '"site": "fleet"' in fleet
        assert '"kind": "worker-death"' in fleet

    def test_asserts_bitwise_identity_with_serial(self, workflow):
        cmds = "\n".join(job_commands(workflow["jobs"]["fleet-smoke"]))
        assert "assert fleet == serial" in cmds
        assert '[e["latency_us"] for e in f] == [e["latency_us"] for e in s]' in cmds

    def test_records_throughput_and_uploads_artifact(self, workflow):
        cmds = job_commands(workflow["jobs"]["fleet-smoke"])
        bench = [c for c in cmds if "bench_fleet_throughput.py" in c]
        assert len(bench) == 1
        assert "--smoke" in bench[0] and "--out fleet-throughput.json" in bench[0]
        uploads = [
            s for s in workflow["jobs"]["fleet-smoke"]["steps"]
            if "upload-artifact" in s.get("uses", "")
        ]
        assert len(uploads) == 1
        assert uploads[0]["with"]["path"] == "fleet-throughput.json"


class TestSoakSmokeJob:
    """The soak-smoke job is the executable acceptance criterion for
    overload resilience: a short Poisson-traffic soak with injected delay
    faults must shed (not hang), answer every request, kill no worker
    thread, and leave the warm registry path intact."""

    def test_runs_overload_soak_in_smoke_mode(self, workflow):
        cmds = job_commands(workflow["jobs"]["soak-smoke"])
        soak = [c for c in cmds if "bench_overload.py" in c]
        assert len(soak) == 1, "soak-smoke must run the overload soak once"
        assert "--smoke" in soak[0]
        assert "--out overload.json" in soak[0]

    def test_asserts_overload_invariants(self, workflow):
        cmds = "\n".join(job_commands(workflow["jobs"]["soak-smoke"]))
        assert 'r["workers_alive"] == r["workers"]' in cmds, (
            "must assert zero worker deaths"
        )
        assert 'r["levels"][-1]["shed"] > 0' in cmds, (
            "must assert overload actually shed"
        )
        assert 'lv["hang"] == 0' in cmds, "must assert no request hung"
        assert 'lv["answered"] == lv["requests"]' in cmds, (
            "must assert every request was answered"
        )
        assert 'r["post_soak_served_from"] == "registry"' in cmds, (
            "must assert the warm path survived the soak"
        )

    def test_uploads_overload_artifact(self, workflow):
        uploads = [
            s for s in workflow["jobs"]["soak-smoke"]["steps"]
            if "upload-artifact" in s.get("uses", "")
        ]
        assert len(uploads) == 1
        assert uploads[0]["with"]["path"] == "overload.json"


def test_bench_smoke_records_compile_throughput(workflow):
    """The bench job must emit the compile-throughput JSON record (batch
    model speedup, cold/warm configs/sec) and upload it as an artifact so
    the perf trajectory is tracked PR over PR."""
    cmds = job_commands(workflow["jobs"]["bench-smoke"])
    throughput = [c for c in cmds if "bench_compile_throughput.py" in c]
    assert len(throughput) == 1, "bench-smoke must run the throughput script once"
    assert "--smoke" in throughput[0]
    assert "--out compile-throughput.json" in throughput[0]
    uploads = [
        s for s in workflow["jobs"]["bench-smoke"]["steps"]
        if "upload-artifact" in s.get("uses", "")
    ]
    assert len(uploads) == 1, "the throughput JSON must be uploaded as an artifact"
    assert uploads[0]["with"]["path"] == "compile-throughput.json"


def test_bench_smoke_checks_incremental_engine_fields(workflow):
    """The throughput record must carry the incremental-engine fields and
    prove the speedup was gated on the bitwise identity check — a silent
    drop of either would let the engine regress (or cheat) unnoticed."""
    cmds = "\n".join(job_commands(workflow["jobs"]["bench-smoke"]))
    assert "'incremental_cold_configs_per_s' in r" in cmds
    assert "'lower_reuse_ratio' in r" in cmds
    assert "r['incremental_identity_checked'] is True" in cmds

"""The CI workflow must stay parseable and keep its contract with the repo:
the exact commands it runs are the ones documented in README and ROADMAP."""

import pathlib

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = pathlib.Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


def job_commands(job):
    return [step["run"] for step in job["steps"] if "run" in step]


def test_workflow_parses_and_has_expected_jobs(workflow):
    assert workflow["name"] == "CI"
    assert set(workflow["jobs"]) == {"lint", "tests", "sync-safety", "bench-smoke", "chaos"}


def test_triggers_cover_push_and_pr(workflow):
    # pyyaml parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
    assert matrix["python-version"] == ["3.10", "3.11", "3.12"]


def test_pip_caching_enabled_everywhere(workflow):
    for name, job in workflow["jobs"].items():
        setup = [s for s in job["steps"] if "setup-python" in s.get("uses", "")]
        assert setup, f"job {name} does not set up python"
        assert setup[0]["with"].get("cache") == "pip", f"job {name} misses pip caching"


def test_job_command_lines(workflow):
    assert "ruff check src tests benchmarks" in job_commands(workflow["jobs"]["lint"])
    assert "PYTHONPATH=src python -m pytest -x -q" in job_commands(workflow["jobs"]["tests"])
    assert "PYTHONPATH=src python -m repro.cli check" in job_commands(
        workflow["jobs"]["sync-safety"]
    )
    assert "PYTHONPATH=src python -m pytest benchmarks --smoke -q --cache-dir .bench-cache" in (
        job_commands(workflow["jobs"]["bench-smoke"])
    )


def test_chaos_job_contract(workflow):
    """The chaos job must run the chaos test suite AND an end-to-end tune
    under an injected fault plan that exercises all three recovery paths
    (dead workers, hung workers, corrupted latencies)."""
    cmds = job_commands(workflow["jobs"]["chaos"])
    assert "PYTHONPATH=src python -m pytest tests/chaos -q" in cmds
    faulted = [c for c in cmds if "--fault-plan" in c]
    assert len(faulted) == 1, "chaos job must run one faulted tune"
    cmd = faulted[0]
    assert "repro.cli tune" in cmd
    assert "--trial-timeout" in cmd, "hang recovery needs a trial timeout"
    assert "--jobs" in cmd, "worker-death recovery needs a process pool"
    for kind in ("worker-death", "hang", "corrupt-latency"):
        assert kind in cmd, f"fault plan must inject {kind}"


def test_bench_smoke_runs_cold_then_warm(workflow):
    """The bench job must exercise the measurement cache twice against the
    same --cache-dir: the first run populates it, the second warm-starts."""
    bench = [c for c in job_commands(workflow["jobs"]["bench-smoke"]) if "pytest benchmarks" in c]
    assert len(bench) == 2, "bench-smoke must run the suite twice (cold, then warm)"
    assert all("--cache-dir .bench-cache" in c for c in bench)
    assert bench[0] == bench[1], "both runs must target the same cache directory"


def test_bench_smoke_records_compile_throughput(workflow):
    """The bench job must emit the compile-throughput JSON record (batch
    model speedup, cold/warm configs/sec) and upload it as an artifact so
    the perf trajectory is tracked PR over PR."""
    cmds = job_commands(workflow["jobs"]["bench-smoke"])
    throughput = [c for c in cmds if "bench_compile_throughput.py" in c]
    assert len(throughput) == 1, "bench-smoke must run the throughput script once"
    assert "--smoke" in throughput[0]
    assert "--out compile-throughput.json" in throughput[0]
    uploads = [
        s for s in workflow["jobs"]["bench-smoke"]["steps"]
        if "upload-artifact" in s.get("uses", "")
    ]
    assert len(uploads) == 1, "the throughput JSON must be uploaded as an artifact"
    assert uploads[0]["with"]["path"] == "compile-throughput.json"

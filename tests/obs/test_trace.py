"""Tracing core: activation, parenting, the ring buffer and Chrome export."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import (
    Span,
    SpanContext,
    Tracer,
    activate,
    extract_context,
    inject_context,
    new_id,
    record_span,
    span,
)


class TestSpanBasics:
    def test_span_yields_none_without_tracer(self):
        with span("work") as s:
            assert s is None

    def test_span_records_into_active_tracer(self):
        t = Tracer()
        with activate(t):
            with span("work", attrs={"k": 1}) as s:
                assert s is not None
        spans = t.spans()
        assert [s.name for s in spans] == ["work"]
        assert spans[0].duration_s >= 0
        assert spans[0].attrs == {"k": 1}

    def test_nested_spans_parent_implicitly(self):
        t = Tracer()
        with activate(t):
            with span("outer") as outer:
                with span("inner") as inner:
                    assert inner.trace_id == outer.trace_id
                    assert inner.parent_id == outer.span_id

    def test_explicit_parent_wins(self):
        t = Tracer()
        ctx = SpanContext(new_id(), new_id())
        with activate(t):
            with span("ambient"):
                with span("child", parent=ctx) as s:
                    assert s.trace_id == ctx.trace_id
                    assert s.parent_id == ctx.span_id

    def test_empty_parent_span_id_joins_trace_without_parent(self):
        t = Tracer()
        ctx = SpanContext(new_id(), "")
        with activate(t):
            with span("child", parent=ctx) as s:
                assert s.trace_id == ctx.trace_id
                assert s.parent_id is None

    def test_thread_local_activation_does_not_leak_across_threads(self):
        t = Tracer()
        seen = []

        def other():
            with span("elsewhere") as s:
                seen.append(s)

        with activate(t):
            th = threading.Thread(target=other)
            th.start()
            th.join()
        assert seen == [None]
        assert len(t) == 0

    def test_all_threads_activation_captures_worker_threads(self):
        t = Tracer()

        def worker():
            with span("threaded"):
                pass

        with activate(t, all_threads=True):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert [s.name for s in t.spans()] == ["threaded"]


class TestRecordSpan:
    def test_retroactive_span_needs_a_parent(self):
        t = Tracer()
        with activate(t):
            assert record_span("queue-wait", 0.0, 1.0) is None
        assert len(t) == 0

    def test_retroactive_span_under_open_parent(self):
        t = Tracer()
        with activate(t):
            with span("request") as root:
                s = record_span("queue-wait", 5.0, 5.25)
        assert s.parent_id == root.span_id
        assert s.duration_s == pytest.approx(0.25)

    def test_no_tracer_returns_none(self):
        assert record_span("x", 0.0, 1.0, parent=SpanContext(new_id())) is None


class TestRingBuffer:
    def test_drop_oldest_under_overflow_and_counter(self):
        from repro.obs.metrics import REGISTRY

        dropped_before = REGISTRY.get("repro_spans_dropped_total").value
        t = Tracer(capacity=3)
        for i in range(5):
            t.add(Span(f"s{i}", new_id(), new_id()))
        assert [s.name for s in t.spans()] == ["s2", "s3", "s4"]
        assert t.spans_dropped == 2
        assert REGISTRY.get("repro_spans_dropped_total").value == dropped_before + 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestChromeExport:
    def test_export_shape(self, tmp_path):
        t = Tracer()
        with activate(t):
            with span("root", category="stage"):
                pass
        out = tmp_path / "trace.json"
        t.write_chrome_trace(out)
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "stage"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"]["trace_id"]

    def test_parent_id_surfaces_in_args(self):
        t = Tracer()
        with activate(t):
            with span("outer"):
                with span("inner"):
                    pass
        events = {e["name"]: e for e in t.to_chrome_trace()["traceEvents"]}
        assert (events["inner"]["args"]["parent_span_id"]
                == events["outer"]["args"]["span_id"])


class TestImportExport:
    def test_round_trip_preserves_origin_pid_tid(self):
        s = Span("remote", new_id(), new_id(), start_s=1.0, duration_s=0.5)
        d = s.as_dict()
        d["pid"], d["tid"] = 4242, 99
        back = Span.from_dict(d)
        assert back.pid == 4242 and back.tid == 99
        assert back.name == "remote" and back.duration_s == 0.5

    def test_import_skips_garbage_entries(self):
        t = Tracer()
        good = Span("ok", new_id(), new_id()).as_dict()
        added = t.import_spans([
            None, "not-a-dict", {}, {"name": "x"},
            {"name": "x", "trace_id": "ZZZ", "span_id": "ok",
             "start_s": 0, "duration_s": 0},
            good,
        ])
        assert added == 1
        assert [s.name for s in t.spans()] == ["ok"]


class TestEnvelopePropagation:
    def test_inject_then_extract_round_trips(self):
        ctx = SpanContext(new_id(), new_id())
        env = inject_context({"op": "tune"}, ctx)
        assert extract_context(env) == ctx

    def test_inject_without_context_is_noop(self):
        env = {"op": "tune"}
        assert inject_context(env) is env
        assert trace.TRACE_ID_FIELD not in env

    @pytest.mark.parametrize("bad", [
        None, 42, [], "xyz", "UPPERCASE00", "abc", "g" * 16, "a" * 33, "",
    ])
    def test_garbage_trace_id_means_untraced_not_fatal(self, bad):
        assert extract_context({"trace_id": bad}) is None

    def test_missing_trace_id_means_untraced(self):
        assert extract_context({"op": "tune"}) is None
        assert extract_context("not a dict") is None

    def test_valid_trace_garbage_parent_joins_without_parent(self):
        tid = new_id()
        ctx = extract_context({"trace_id": tid, "parent_span_id": "ZZ!!"})
        assert ctx == SpanContext(tid, "")

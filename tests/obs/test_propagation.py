"""Trace-context propagation edge cases across the serve and fleet
boundaries.

The contract: trace context is best-effort freight. Garbage or missing
context downgrades a request to untraced — never to an error — in both
compatibility directions (old client → new server, new client → old
server), and a fleet worker dying mid-trial costs the trace that shard's
detail, never the sweep's correctness or the trace's validity.
"""

import pytest

from repro import faults
from repro.gpusim.config import A100
from repro.obs import trace as obs_trace
from repro.obs.trace import SpanContext, Tracer, activate, new_id
from repro.serve.server import ReproServer
from repro.tensor.operation import GemmSpec
from repro.tuning.fleet import FleetCoordinator, LocalProcessWorker
from repro.tuning.measure import Measurer
from repro.tuning.space import SpaceOptions, enumerate_space

SPEC = GemmSpec("obs", 1, 128, 128, 256)


@pytest.fixture
def server(tmp_path):
    return ReproServer(socket_path=str(tmp_path / "d.sock"), default_space=12)


PARAMS = {"m": 128, "n": 128, "k": 128, "space": 12}


class TestServerSide:
    def test_garbage_trace_id_is_untraced_not_fatal(self, server):
        """Old-client compat and hostile input: a request whose trace_id is
        garbage is served normally, simply without tracing."""
        for bad in ("ZZZ!!", 42, None, [], {"nested": 1}, "short"):
            response = server.handle(
                {"op": "ping", "id": "x", "trace_id": bad})
            assert response["ok"], bad
            assert "spans" not in response["result"]

    def test_missing_trace_id_is_untraced(self, server):
        response = server.handle({"op": "tune", "params": dict(PARAMS)})
        assert response["ok"]
        assert "spans" not in response["result"]
        assert "trace_id" not in response["result"]

    def test_valid_context_returns_server_spans(self, server):
        ctx = SpanContext(new_id(), new_id())
        response = server.handle(
            {"op": "tune", "params": dict(PARAMS),
             "trace_id": ctx.trace_id, "parent_span_id": ctx.span_id})
        assert response["ok"]
        result = response["result"]
        assert result["trace_id"] == ctx.trace_id
        names = {s["name"] for s in result["spans"]}
        assert "serve:tune" in names and "sweep" in names
        root = next(s for s in result["spans"] if s["name"] == "serve:tune")
        assert root["parent_id"] == ctx.span_id

    def test_garbage_parent_joins_trace_without_parent(self, server):
        tid = new_id()
        response = server.handle(
            {"op": "ping", "id": "x",
             "trace_id": tid, "parent_span_id": "NOT-HEX"})
        assert response["ok"]
        root = next(s for s in response["result"]["spans"]
                    if s["name"] == "serve:ping")
        assert root["trace_id"] == tid and root["parent_id"] is None


class TestClientSide:
    def test_client_tolerates_old_server_response_without_spans(self):
        """New client → old server: the reply carries no spans/trace_id;
        the client's own span still records and nothing raises."""
        from repro.serve.client import ServeClient

        client = ServeClient(socket_path="/tmp/unused.sock")
        client._roundtrip = lambda envelope: {
            "ok": True, "id": envelope["id"], "result": {"pong": True}}
        tracer = Tracer()
        with activate(tracer):
            result = client.request("ping")
        assert result == {"pong": True}
        assert [s.name for s in tracer.spans()] == ["client:ping"]

    def test_client_injects_context_only_when_traced(self):
        from repro.serve.client import ServeClient

        seen = []

        def fake_roundtrip(envelope):
            seen.append(dict(envelope))
            return {"ok": True, "id": envelope["id"], "result": {}}

        client = ServeClient(socket_path="/tmp/unused.sock")
        client._roundtrip = fake_roundtrip
        client.request("ping")
        assert "trace_id" not in seen[-1]
        with activate(Tracer()):
            client.request("ping")
        assert obs_trace._ID_RE.match(seen[-1]["trace_id"])
        assert obs_trace._ID_RE.match(seen[-1]["parent_span_id"])


class _ScriptedConn:
    """Pipe stand-in replaying a fixed message sequence from the worker."""

    def __init__(self, messages):
        self._messages = list(messages)
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)

    def poll(self, timeout=None):
        return bool(self._messages)

    def recv(self):
        return self._messages.pop(0)


class TestFleetSide:
    def test_old_worker_done_without_spans_is_tolerated(self):
        """Old worker → new coordinator: a bare ("done", sid) message (no
        spans element) completes the shard cleanly."""
        worker = LocalProcessWorker(A100, via_ir=False)
        worker._conn = _ScriptedConn([("result", 0, 0, 5.0, True),
                                      ("done", 0)])
        results = []
        worker.measure_shard(SPEC, 0, 0, [(0, None)],
                             lambda idx, lat, persist: results.append(idx))
        assert results == [0]
        # The outbound shard message still carries the (absent) trace slot.
        assert worker._conn.sent[0][:3] == ("shard", 0, 0)
        assert worker._conn.sent[0][5] is None

    def test_worker_crash_mid_trial_keeps_trace_valid(self):
        """A worker dying mid-trial under an active trace: the sweep still
        matches the serial bits, and the stitched trace stays a single
        valid tree (the requeued attempt's spans fill in)."""
        space = enumerate_space(SPEC, A100, SpaceOptions(max_size=12))
        serial = Measurer(A100, via_ir=False).sweep(SPEC, space)
        plan = faults.FaultPlan(
            [faults.FaultRule("fleet", "worker-death", match="|attempt=0|")],
            seed=1)
        tracer = Tracer()
        with activate(tracer, all_threads=True):
            with faults.injected(plan):
                coord = FleetCoordinator(SPEC, space, gpu=A100, via_ir=False,
                                         workers=2, shard_size=3)
                result = coord.run()
        assert result.latencies == serial
        assert result.telemetry.worker_deaths >= 1
        spans = tracer.spans()
        names = {s.name for s in spans}
        assert {"fleet:coordinator", "fleet:dispatch",
                "fleet:worker-shard", "fleet:trial"} <= names
        assert len({s.trace_id for s in spans}) == 1
        # Export must still be serializable after the chaos.
        events = tracer.to_chrome_trace()["traceEvents"]
        assert len(events) == len(spans)

    def test_untraced_fleet_run_ships_no_spans(self):
        space = enumerate_space(SPEC, A100, SpaceOptions(max_size=8))
        coord = FleetCoordinator(SPEC, space, gpu=A100, via_ir=False, workers=2)
        result = coord.run()
        assert len(result.latencies) == len(space)

"""Metrics registry: get-or-create semantics, thread safety and the
hand-rolled Prometheus text exposition."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c_total")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        c = Counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_thread_safe_under_contention(self):
        c = Counter("c_total")

        def worker():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_value(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5

    def test_callback_read_at_render_time(self):
        box = {"v": 1}
        g = Gauge("g", fn=lambda: box["v"])
        assert g.value == 1
        box["v"] = 7
        assert g.value == 7

    def test_dead_callback_reads_zero(self):
        def boom():
            raise RuntimeError("server stopped")

        g = Gauge("g", fn=boom)
        assert g.value == 0.0

    def test_set_clears_callback(self):
        g = Gauge("g", fn=lambda: 99)
        g.set(2)
        assert g.value == 2.0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = dict(h.samples())
        assert samples['h_seconds_bucket{le="0.1"}'] == 1
        assert samples['h_seconds_bucket{le="1"}'] == 3
        assert samples['h_seconds_bucket{le="10"}'] == 4
        assert samples['h_seconds_bucket{le="+Inf"}'] == 5
        assert samples["h_seconds_count"] == 5
        assert samples["h_seconds_sum"] == pytest.approx(56.05)

    def test_default_buckets_cover_serve_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help")
        b = r.counter("x_total")
        assert a is b

    def test_type_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x_total")

    def test_invalid_name_rejected(self):
        r = MetricsRegistry()
        for bad in ("1abc", "a-b", "a b", ""):
            with pytest.raises(ValueError):
                r.counter(bad)

    def test_gauge_callback_replaced_on_reregistration(self):
        r = MetricsRegistry()
        r.gauge("g", fn=lambda: 1)
        g = r.gauge("g", fn=lambda: 2)
        assert g.value == 2

    def test_snapshot_flattens_samples(self):
        r = MetricsRegistry()
        r.counter("c_total").inc(3)
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap["c_total"] == 3
        assert snap["h_count"] == 1

    def test_render_prometheus_exposition(self):
        r = MetricsRegistry()
        r.counter("repro_sweeps_run_total", "Sweeps executed.").inc(2)
        r.gauge("repro_queue_depth", "Queue depth.").set(1)
        r.histogram("repro_request_seconds", "Latency.",
                    buckets=(0.5,)).observe(0.1)
        text = r.render()
        assert "# HELP repro_sweeps_run_total Sweeps executed." in text
        assert "# TYPE repro_sweeps_run_total counter" in text
        assert "repro_sweeps_run_total 2" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_request_seconds histogram" in text
        assert 'repro_request_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_request_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_request_seconds_count 1" in text
        assert text.endswith("\n")

    def test_render_escapes_help_newlines(self):
        r = MetricsRegistry()
        r.counter("c_total", "line one\nline two")
        text = r.render()
        assert "\nline two" not in text.split("# TYPE")[0].replace(
            r"\n", "")
        assert r"line one\nline two" in text

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line must be `name{labels} value` — the shape a
        stock Prometheus scraper requires."""
        r = MetricsRegistry()
        r.counter("a_total").inc()
        r.histogram("b_seconds").observe(0.2)
        for line in r.render().splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value.replace("+Inf", "inf"))

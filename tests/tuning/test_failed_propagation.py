"""Failure propagation through the tuners: an all-failing design space must
end in a clean 'no valid schedule' error, never a bare ValueError from an
empty ``min``."""

import math

import pytest

from repro import faults
from repro.core.compiler import AlcopCompiler
from repro.core.errors import CompileError
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import Measurer
from repro.tuning.tuners import ModelAssistedXGBTuner, XGBTuner

SPEC = GemmSpec("allfail", 1, 1024, 1024, 4096)

#: Every config here exceeds A100 shared-memory/register budgets: the whole
#: space is unlaunchable (the MONSTERS pattern of the Fig. 12 tests).
MONSTERS = [
    TileConfig(256, 256, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=s, reg_stages=2)
    for s in (4, 5, 6)
]


class TestMeasurerBest:
    def test_empty_space_raises_compile_error_naming_spec(self):
        m = Measurer(via_ir=False)
        with pytest.raises(CompileError, match="allfail"):
            m.best(SPEC, [])

    def test_all_failing_space_raises_compile_error(self):
        m = Measurer(via_ir=False)
        with pytest.raises(CompileError, match="no configuration"):
            m.best(SPEC, MONSTERS)


@pytest.mark.parametrize("tuner_cls", [XGBTuner, ModelAssistedXGBTuner])
class TestTunersOnAllFailingSpace:
    def test_history_is_all_inf_and_best_is_none(self, tuner_cls):
        tuner = tuner_cls(SPEC, MONSTERS, measurer=Measurer(via_ir=False), seed=0)
        history = tuner.tune(len(MONSTERS))
        assert len(history) == len(MONSTERS)
        assert all(math.isinf(r.latency_us) for r in history.records)
        assert all(r.failed for r in history.records)
        assert history.best_config_at(len(MONSTERS)) is None
        assert history.best_latency_at(len(MONSTERS)) == math.inf


class TestCompilerSearch:
    def test_xgb_search_over_failing_space_raises_clean_error(self):
        """AlcopCompiler(search=xgb) on a space where every trial fails
        (faulted compile path, retries exhausted) raises a CompileError
        that names the spec — not min()'s bare ValueError."""
        spec = GemmSpec("doomed", 1, 256, 256, 512)
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")], seed=1)
        c = AlcopCompiler(
            search="xgb", n_trials=6, degrade=False,
            measurer=Measurer(via_ir=False, retries=0, backoff_s=0.001),
        )
        with faults.injected(plan):
            with pytest.raises(CompileError, match="no valid schedule"):
                c.compile(spec)

    def test_exhaustive_search_over_failing_space_raises_clean_error(self):
        spec = GemmSpec("doomed", 1, 256, 256, 512)
        plan = faults.FaultPlan([faults.FaultRule("compile", "crash")], seed=1)
        c = AlcopCompiler(
            search="exhaustive", degrade=False,
            measurer=Measurer(via_ir=False, retries=0, backoff_s=0.001),
        )
        with faults.injected(plan):
            with pytest.raises(CompileError, match="doomed"):
                c.compile(spec)

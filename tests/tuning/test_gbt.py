"""Tests for the from-scratch gradient-boosted trees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tuning.gbt import GradientBoostedTrees, RegressionTree


class TestRegressionTree:
    def test_constant_target(self):
        X = np.arange(10).reshape(-1, 1).astype(float)
        y = np.full(10, 3.0)
        t = RegressionTree().fit(X, y)
        np.testing.assert_allclose(t.predict(X), 3.0)

    def test_perfect_step_split(self):
        X = np.arange(20).reshape(-1, 1).astype(float)
        y = (X[:, 0] >= 10).astype(float)
        t = RegressionTree(max_depth=1).fit(X, y)
        np.testing.assert_allclose(t.predict(X), y)

    def test_depth_limits_complexity(self):
        rng = np.random.default_rng(0)
        X = rng.random((64, 1))
        y = np.sin(10 * X[:, 0])
        shallow = RegressionTree(max_depth=1).fit(X, y).predict(X)
        deep = RegressionTree(max_depth=6).fit(X, y).predict(X)
        assert ((deep - y) ** 2).mean() < ((shallow - y) ** 2).mean()

    def test_min_samples_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0])
        t = RegressionTree(max_depth=3, min_samples_leaf=2).fit(X, y)
        # No leaf may isolate the single outlier.
        preds = t.predict(X)
        assert preds.max() < 10.0

    def test_sample_weights_shift_mean(self):
        X = np.array([[0.0], [0.0]])
        y = np.array([0.0, 10.0])
        t = RegressionTree().fit(X, y, w=np.array([1.0, 3.0]))
        np.testing.assert_allclose(t.predict(X), 7.5)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_bad_weights_rejected(self):
        X = np.zeros((2, 1))
        with pytest.raises(ValueError):
            RegressionTree().fit(X, np.zeros(2), w=np.array([-1.0, 1.0]))

    def test_multifeature_picks_informative(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 3))
        y = (X[:, 1] > 0.5).astype(float)
        t = RegressionTree(max_depth=1).fit(X, y)
        assert t._root.feature == 1


class TestGradientBoosting:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 2))
        y = 3 * X[:, 0] - 2 * X[:, 1]
        m = GradientBoostedTrees(n_estimators=100, learning_rate=0.2).fit(X, y)
        rmse = np.sqrt(((m.predict(X) - y) ** 2).mean())
        assert rmse < 0.1

    def test_improves_over_single_tree(self):
        rng = np.random.default_rng(0)
        X = rng.random((150, 2))
        y = np.sin(6 * X[:, 0]) + X[:, 1] ** 2
        tree = RegressionTree(max_depth=4).fit(X, y)
        gbt = GradientBoostedTrees(n_estimators=60, max_depth=4).fit(X, y)
        assert ((gbt.predict(X) - y) ** 2).mean() < ((tree.predict(X) - y) ** 2).mean()

    def test_generalization_sane(self):
        rng = np.random.default_rng(0)
        X = rng.random((300, 2))
        y = X[:, 0] * X[:, 1]
        m = GradientBoostedTrees().fit(X[:200], y[:200])
        test_rmse = np.sqrt(((m.predict(X[200:]) - y[200:]) ** 2).mean())
        assert test_rmse < 0.15

    def test_is_fitted_flag(self):
        m = GradientBoostedTrees()
        assert not m.is_fitted
        m.fit(np.random.default_rng(0).random((10, 1)), np.arange(10.0))
        assert m.is_fitted

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_ranking_quality_on_random_monotone_data(self, seed):
        """Boosting must at least get the ordering of a monotone target
        mostly right — the property the tuner relies on."""
        rng = np.random.default_rng(seed)
        X = rng.random((120, 3))
        y = 2 * X[:, 0] + X[:, 1]
        m = GradientBoostedTrees(n_estimators=50).fit(X, y)
        pred = m.predict(X)
        corr = np.corrcoef(pred, y)[0, 1]
        assert corr > 0.9

"""Tests for the disk-persistent measurement cache, the full-identity
cache keys, and parallel batch measurement."""

import json
import math

import pytest

from repro.gpusim.config import A100, V100
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import (
    Measurer,
    MeasurementCache,
    SpaceOptions,
    compiler_version_hash,
    enumerate_space,
    gpu_fingerprint,
    measurement_key,
)

SPEC = GemmSpec("mm", 1, 256, 256, 256)
CFG = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
SPACE = enumerate_space(SPEC, options=SpaceOptions(max_size=30))


class TestKeys:
    def test_version_hash_stable_within_process(self):
        assert compiler_version_hash() == compiler_version_hash()
        assert len(compiler_version_hash()) == 16

    def test_gpu_fingerprint_distinguishes_generations(self):
        assert gpu_fingerprint(A100) != gpu_fingerprint(V100)

    def test_key_covers_full_measurement_identity(self):
        base = measurement_key(A100, SPEC, CFG, via_ir=False)
        assert measurement_key(V100, SPEC, CFG, via_ir=False) != base
        assert measurement_key(A100, SPEC, CFG, via_ir=True) != base
        assert measurement_key(A100, SPEC, CFG, via_ir=False, version="other") != base
        other_spec = GemmSpec("mm", 1, 256, 256, 512)
        assert measurement_key(A100, other_spec, CFG, via_ir=False) != base
        other_cfg = CFG.with_stages(3, 2)
        assert measurement_key(A100, SPEC, other_cfg, via_ir=False) != base
        assert measurement_key(A100, SPEC, CFG, via_ir=False) == base


class TestMemoryKeyRegression:
    """The in-memory key must fold in the GPU spec and the via_ir mode —
    a measurer retargeted across generations or modes must re-measure."""

    def test_gpu_generations_not_conflated(self):
        m = Measurer(A100, via_ir=False)
        a100_lat = m.measure(SPEC, CFG)
        m.gpu = V100
        v100_lat = m.measure(SPEC, CFG)
        assert m.n_compiled == 2, "V100 must not be served the A100 latency"
        assert a100_lat != v100_lat
        # and flipping back hits the A100 entry, not the V100 one
        m.gpu = A100
        assert m.measure(SPEC, CFG) == a100_lat and m.n_compiled == 2

    def test_via_ir_mode_not_conflated(self):
        m = Measurer(A100, via_ir=False)
        static_lat = m.measure(SPEC, CFG)
        m.via_ir = True
        ir_lat = m.measure(SPEC, CFG)
        assert m.n_compiled == 2, "mode flip must recompile, not reuse"
        assert ir_lat == pytest.approx(static_lat)  # the proven-equal paths


class TestDiskCache:
    def test_round_trip_identical_latencies(self, tmp_path):
        cold = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        first = cold.sweep(SPEC, SPACE)
        assert cold.n_compiled == len(SPACE)
        warm = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        second = warm.sweep(SPEC, SPACE)
        assert second == first
        assert warm.n_compiled == 0
        assert warm.n_disk_hits == len(SPACE)

    def test_warm_run_at_least_5x_fewer_compiles(self, tmp_path):
        cold = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        cold.sweep(SPEC, SPACE)
        warm = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        warm.sweep(SPEC, SPACE)
        assert cold.n_compiled >= 5
        assert warm.n_compiled * 5 <= cold.n_compiled

    def test_failed_builds_are_cached(self, tmp_path):
        bad = TileConfig(256, 256, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=4)
        spec = GemmSpec("big", 1, 512, 512, 512)
        cold = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        assert math.isinf(cold.measure(spec, bad))
        warm = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        assert math.isinf(warm.measure(spec, bad))
        assert warm.n_compiled == 0, "known compile failures must not recompile"

    def test_invalidation_on_version_bump(self, tmp_path):
        v1 = Measurer(via_ir=False, cache=MeasurementCache(tmp_path, version="v1"))
        lat = v1.measure(SPEC, CFG)
        v2 = Measurer(via_ir=False, cache=MeasurementCache(tmp_path, version="v2"))
        assert v2.measure(SPEC, CFG) == lat
        assert v2.n_compiled == 1, "a compiler change must orphan old entries"
        # returning to v1 still finds the original entries
        back = Measurer(via_ir=False, cache=MeasurementCache(tmp_path, version="v1"))
        assert back.measure(SPEC, CFG) == lat and back.n_compiled == 0

    def test_shared_dir_keeps_gpus_apart(self, tmp_path):
        a = Measurer(A100, via_ir=False, cache=MeasurementCache(tmp_path))
        v = Measurer(V100, via_ir=False, cache=MeasurementCache(tmp_path))
        assert a.measure(SPEC, CFG) != v.measure(SPEC, CFG)
        assert v.n_disk_hits == 0

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        cache = MeasurementCache(tmp_path, version="v1")
        cache.put("k1", 42.0)
        with cache.path.open("a") as f:
            f.write("{torn json\n")
            f.write(json.dumps({"key": "k2", "version": "other", "latency_us": 1.0}) + "\n")
        reloaded = MeasurementCache(tmp_path, version="v1")
        assert reloaded.get("k1") == 42.0
        assert reloaded.get("k2") is None

    def test_entries_carry_human_readable_meta(self, tmp_path):
        m = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        m.measure(SPEC, CFG)
        entry = json.loads(m.cache.path.read_text().splitlines()[0])
        assert entry["gpu"] == A100.name
        assert entry["dims"] == [1, 256, 256, 256]


class TestParallel:
    def test_parallel_sweep_identical_to_serial(self):
        serial = Measurer(via_ir=False).sweep(SPEC, SPACE)
        parallel = Measurer(via_ir=False, jobs=4).sweep(SPEC, SPACE)
        assert parallel == serial  # bitwise: same floats, same order

    def test_jobs_override_on_sweep(self):
        m = Measurer(via_ir=False)
        out = m.sweep(SPEC, SPACE, jobs=2)
        assert m.jobs == 1, "per-sweep override must not stick"
        assert out == Measurer(via_ir=False).sweep(SPEC, SPACE)

    def test_duplicates_in_batch_compile_once(self):
        m = Measurer(via_ir=False, jobs=2)
        out = m.measure_many(SPEC, [CFG, CFG, CFG.with_stages(2, 1), CFG])
        assert m.n_compiled == 2
        assert out[0] == out[1] == out[3]

    def test_parallel_populates_disk_cache(self, tmp_path):
        cold = Measurer(via_ir=False, cache=MeasurementCache(tmp_path), jobs=4)
        first = cold.sweep(SPEC, SPACE)
        warm = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        assert warm.sweep(SPEC, SPACE) == first
        assert warm.n_compiled == 0

    def test_parallel_failed_configs_still_inf(self):
        bad = TileConfig(256, 256, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=4)
        spec = GemmSpec("big", 1, 512, 512, 512)
        out = Measurer(via_ir=False, jobs=2).measure_many(spec, [bad, CFG])
        assert math.isinf(out[0]) and math.isfinite(out[1])


class TestTelemetry:
    def test_counters_partition_the_measurements(self, tmp_path):
        m = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        m.sweep(SPEC, SPACE)
        m.sweep(SPEC, SPACE)  # second sweep: all memory hits
        warm = Measurer(via_ir=False, cache=MeasurementCache(tmp_path))
        warm.sweep(SPEC, SPACE)
        tel = m.telemetry
        assert (tel.n_compiled, tel.memory_hits, tel.disk_hits) == (
            len(SPACE), len(SPACE), 0)
        assert tel.n_measured == 2 * len(SPACE)
        wtel = warm.telemetry
        assert (wtel.n_compiled, wtel.disk_hits) == (0, len(SPACE))
        assert "compiled" in tel.summary() and "disk-cache hits" in wtel.summary()

"""Property tests: the incremental engine is bitwise-invisible.

The engine (:mod:`repro.core.incremental`) is a pure throughput
optimization — every artifact it serves must be indistinguishable from a
fresh per-config build. These tests assert that over the *full*
enumerated space on two GPU generations: kernels print byte-identically,
timing specs are field-for-field equal, and simulated latencies match
exactly. A fault-injection case then proves a crashed trial cannot
poison the shared stage cache for its neighboring configs.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.codegen.lower import lower
from repro.core.incremental import IncrementalEngine, schedule_key, sort_key
from repro.gpusim.config import A100, V100
from repro.gpusim.engine import simulate_kernel
from repro.gpusim.spec import extract_timing_spec
from repro.ir.printer import format_kernel
from repro.schedule.auto import auto_schedule
from repro.tensor.operation import GemmSpec, contraction, placeholder
from repro.transform import apply_pipelining
from repro.tuning.measure import FAILED, Measurer
from repro.tuning.space import enumerate_space

SPEC = GemmSpec("inc_prop", 1, 64, 64, 64)


def _graph(spec: GemmSpec):
    a = placeholder("A", (spec.m, spec.k), dtype=spec.dtype)
    b = placeholder("B", (spec.n, spec.k), dtype=spec.dtype)
    return contraction(a, b, spec)


def _fresh_kernel(graph, cfg):
    return apply_pipelining(lower(auto_schedule(graph, cfg)))


def _latency(ts, gpu):
    """Simulated latency, or the error identity for unlaunchable configs
    (both paths must fail the same way, not just succeed the same way)."""
    try:
        return simulate_kernel(ts, gpu).latency_us
    except Exception as e:
        return (type(e).__name__, str(e))


@pytest.mark.parametrize("gpu", [A100, V100], ids=["a100", "v100"])
def test_full_space_bitwise_identical(gpu):
    """Every config of the full space: identical printer text, identical
    extracted timing spec (all fields), identical simulated latency."""
    space = enumerate_space(SPEC, gpu)
    graph = _graph(SPEC)
    engine = IncrementalEngine()
    engine.note_batch(SPEC, space)
    for cfg in space:
        fresh = _fresh_kernel(graph, cfg)
        derived = engine.kernel(graph, SPEC, cfg)
        assert derived is not None, cfg
        assert format_kernel(derived) == format_kernel(fresh), cfg
        ts_fresh = extract_timing_spec(fresh)
        ts_inc = engine.timing_spec(graph, SPEC, cfg)
        assert ts_inc == ts_fresh, cfg
        assert _latency(ts_inc, gpu) == _latency(ts_fresh, gpu), cfg
    # The space enumerates the stage knobs innermost, so reuse is high.
    assert engine.reuse_ratio > 0.8
    assert engine.hits + engine.misses > 0


def test_sweep_results_identical_to_fresh_measurer():
    """End-to-end through ``Measurer.sweep``: the incremental measurer
    reports exactly the latency list a non-incremental one does."""
    space = enumerate_space(SPEC, A100)[:256]
    fresh = Measurer(A100, via_ir=True, incremental=False).sweep(SPEC, space)
    inc_measurer = Measurer(A100, via_ir=True)
    inc = inc_measurer.sweep(SPEC, space)
    assert inc == fresh
    assert inc_measurer.engine is not None
    assert inc_measurer.engine.hits > 0


def test_measure_order_and_results_unchanged_by_sorting():
    """measure_many regroups trials by schedule key internally but the
    returned list must stay aligned to the caller's config order."""
    space = enumerate_space(SPEC, A100)[:64]
    shuffled = list(reversed(space))
    m = Measurer(A100, via_ir=True)
    lat = m.measure_many(SPEC, shuffled)
    serial = {cfg.key(): l for cfg, l in zip(shuffled, lat)}
    m2 = Measurer(A100, via_ir=True, incremental=False)
    for cfg in space:
        assert serial[cfg.key()] == m2.measure(SPEC, cfg)


def test_compile_fault_mid_sweep_does_not_poison_neighbors():
    """A config whose trial crashes (injected ``compile`` fault) fails in
    both paths, its siblings stay bitwise-identical, and the shared stage
    cache serves the faulted config correctly once the fault is gone."""
    space = [cfg for cfg in enumerate_space(SPEC, A100)
             if schedule_key(SPEC, cfg) == schedule_key(SPEC, enumerate_space(SPEC, A100)[0])]
    assert len(space) >= 4
    # Fault the *middle* sibling so the cache is warm when it crashes and
    # used again afterwards.
    victim = sorted(space, key=sort_key)[len(space) // 2]
    match = ",".join(str(x) for x in victim.key())
    plan = faults.FaultPlan([faults.FaultRule("compile", "crash", match=match)])

    with faults.injected(plan):
        inc_measurer = Measurer(A100, via_ir=True, retries=0)
        inc = inc_measurer.sweep(SPEC, space)
    with faults.injected(plan):
        fresh = Measurer(A100, via_ir=True, incremental=False, retries=0).sweep(SPEC, space)

    assert inc == fresh
    victim_idx = next(i for i, c in enumerate(space) if c.key() == victim.key())
    assert inc[victim_idx] == FAILED
    assert all(l != FAILED for i, l in enumerate(inc) if i != victim_idx)

    # The engine's shared entry was not poisoned: with the fault plan gone
    # it serves the victim a spec identical to a fresh build's.
    graph = _graph(SPEC)
    engine = inc_measurer.engine
    assert engine is not None
    served = engine.timing_spec(graph, SPEC, victim)
    assert served == extract_timing_spec(_fresh_kernel(graph, victim))


def test_unsupported_graph_bypasses():
    """Graphs with non-placeholder inputs compile fresh: the engine
    declines rather than risking a fusion-dependent base kernel."""
    graph = _graph(SPEC)
    engine = IncrementalEngine()
    assert engine.supports(graph)
    # A tensor whose op is not a pure contraction-of-placeholders.
    assert not engine.supports(graph.op.inputs[0])
    assert engine.kernel(graph.op.inputs[0], SPEC, enumerate_space(SPEC, A100)[0]) is None
    assert engine.bypasses == 1


def test_lru_eviction_bounded_and_counted():
    space = enumerate_space(SPEC, A100)
    graph = _graph(SPEC)
    engine = IncrementalEngine(max_entries=4)
    engine.note_batch(SPEC, space)
    for cfg in space[:200]:
        assert engine.kernel(graph, SPEC, cfg) is not None
    assert len(engine._entries) <= 4
    assert engine.evictions > 0
    stats = engine.stats()
    assert stats["entries"] <= 4
    assert stats["evictions"] == engine.evictions

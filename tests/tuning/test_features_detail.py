"""Detailed tests for schedule featurization."""

import numpy as np
import pytest

from repro.gpusim import A100
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import FEATURE_NAMES, featurize, featurize_batch

SPEC = GemmSpec("f", 1, 512, 512, 1024)


def cfg(**kw):
    base = dict(block_m=64, block_n=64, block_k=32, warp_m=32, warp_n=32, chunk_k=16)
    base.update(kw)
    return TileConfig(**base)


class TestFeaturize:
    def test_vector_length_matches_names(self):
        assert featurize(SPEC, cfg()).shape == (len(FEATURE_NAMES),)

    def test_all_finite(self):
        v = featurize(SPEC, cfg(smem_stages=4, reg_stages=2))
        assert np.isfinite(v).all()

    def test_stage_features_raw(self):
        v = featurize(SPEC, cfg(smem_stages=3, reg_stages=2))
        names = dict(zip(FEATURE_NAMES, v))
        assert names["smem_stages"] == 3.0
        assert names["reg_stages"] == 2.0

    def test_launchable_flag(self):
        ok = featurize(SPEC, cfg())
        bad = featurize(SPEC, cfg(block_m=256, block_n=256, block_k=64, warp_m=64,
                                  warp_n=64, smem_stages=4))
        names_ok = dict(zip(FEATURE_NAMES, ok))
        names_bad = dict(zip(FEATURE_NAMES, bad))
        assert names_ok["launchable"] == 1.0
        assert names_bad["launchable"] == 0.0
        assert names_bad["occupancy"] == 0.0

    def test_occupancy_feature_tracks_resources(self):
        light = dict(zip(FEATURE_NAMES, featurize(SPEC, cfg(smem_stages=1))))
        heavy = dict(zip(FEATURE_NAMES, featurize(SPEC, cfg(smem_stages=4))))
        assert light["occupancy"] >= heavy["occupancy"]

    def test_waves_feature(self):
        v = dict(zip(FEATURE_NAMES, featurize(SPEC, cfg())))
        grid = (512 // 64) ** 2
        assert v["grid"] == grid
        assert v["waves"] == pytest.approx(grid / (v["occupancy"] * A100.num_sms))

    def test_batch_shape(self):
        X = featurize_batch(SPEC, [cfg(), cfg(smem_stages=2)])
        assert X.shape == (2, len(FEATURE_NAMES))
        assert not np.array_equal(X[0], X[1])

    def test_empty_batch(self):
        assert featurize_batch(SPEC, []).shape[0] == 0

    def test_deterministic(self):
        np.testing.assert_array_equal(featurize(SPEC, cfg()), featurize(SPEC, cfg()))

    def test_distinct_configs_distinct_features(self):
        a = featurize(SPEC, cfg(chunk_k=8))
        b = featurize(SPEC, cfg(chunk_k=16))
        assert not np.array_equal(a, b)

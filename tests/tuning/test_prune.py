"""Model-guided space pruning: opt-in, fail-safe, and never cuts the winner.

Pruning trades exhaustiveness for sweep time, so two properties are load
bearing: at the default ratio the *measured* best config must survive the
cut (the model's job is to discard the hopeless tail, not pick winners),
and with pruning off — the default everywhere — tuners must behave exactly
as they did before the feature existed.
"""

import math

import pytest

from repro.gpusim import A100
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import (
    DEFAULT_PRUNE_RATIO,
    FAILED,
    Measurer,
    SpaceOptions,
    enumerate_space,
    prune_space,
)
from repro.tuning.tuners import GridSearchTuner, ModelAssistedXGBTuner, RandomSearchTuner

SPECS = [
    GemmSpec("prune_a", 1, 256, 256, 256),
    GemmSpec("prune_b", 1, 128, 256, 512),
]


def small_space(spec):
    return enumerate_space(spec, A100, options=SpaceOptions(max_size=60))


class TestPruneSpace:
    def test_stats_account_for_every_config(self):
        spec = SPECS[0]
        space = enumerate_space(spec, A100)
        kept, stats = prune_space(spec, space, A100, ratio=1.5)
        assert stats.n_total == len(space)
        assert stats.n_kept == len(kept)
        assert stats.n_kept + stats.n_pruned + stats.n_model_rejected == stats.n_total
        assert 0 < stats.n_kept < stats.n_total
        assert math.isfinite(stats.best_predicted_us)

    def test_order_preserved_and_subset(self):
        spec = SPECS[0]
        space = enumerate_space(spec, A100)
        kept, _ = prune_space(spec, space, A100)
        keys = [c.key() for c in space]
        assert [c.key() for c in kept] == [k for k in keys if k in {c.key() for c in kept}]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_default_ratio_keeps_exhaustive_best(self, spec):
        space = small_space(spec)
        measurer = Measurer(A100)
        latencies = measurer.sweep(spec, space)
        best_cfg = min(zip(latencies, space), key=lambda t: t[0])[1]
        kept, stats = prune_space(spec, space, A100, ratio=DEFAULT_PRUNE_RATIO)
        assert best_cfg.key() in {c.key() for c in kept}, stats.summary()

    def test_ratio_one_keeps_model_best(self):
        spec = SPECS[0]
        space = enumerate_space(spec, A100)
        kept, _ = prune_space(spec, space, A100, ratio=1.0)
        assert kept  # the argmin itself always satisfies lat <= 1.0 * best

    def test_fail_safe_when_model_prices_nothing(self):
        # 64 % 48 != 0 on every config: the model rejects the whole space,
        # so pruning must pass it through untouched rather than empty it.
        spec = GemmSpec("hopeless", 1, 64, 64, 64)
        space = [
            TileConfig(48, 48, 16, warp_m=16, warp_n=16, chunk_k=8),
            TileConfig(48, 48, 16, warp_m=48, warp_n=16, chunk_k=8),
        ]
        kept, stats = prune_space(spec, space, A100)
        assert kept == space
        assert stats.n_kept == stats.n_total == 2
        assert stats.n_pruned == 0
        assert math.isinf(stats.best_predicted_us)

    def test_non_positive_ratio_rejected(self):
        spec = SPECS[0]
        with pytest.raises(ValueError):
            prune_space(spec, small_space(spec), A100, ratio=0.0)
        with pytest.raises(ValueError):
            prune_space(spec, small_space(spec), A100, ratio=-2.0)

    def test_summary_mentions_counts(self):
        spec = SPECS[0]
        _, stats = prune_space(spec, enumerate_space(spec, A100), A100)
        s = stats.summary()
        assert f"kept {stats.n_kept}/{stats.n_total}" in s


class TestTunerIntegration:
    def test_pruning_is_off_by_default(self):
        spec = SPECS[0]
        space = small_space(spec)
        tuner = GridSearchTuner(spec, space, measurer=Measurer(A100))
        assert tuner.prune_stats is None
        assert [c.key() for c in tuner.space] == [c.key() for c in space]

    def test_off_reproduces_unpruned_trial_sequence(self):
        """prune_ratio omitted, None and 0 — pre-PR behavior, identical
        trial sequences trial for trial."""
        spec = SPECS[0]
        space = small_space(spec)
        histories = []
        for kwargs in ({}, {"prune_ratio": None}, {"prune_ratio": 0.0}):
            tuner = RandomSearchTuner(spec, space, measurer=Measurer(A100), seed=3, **kwargs)
            assert tuner.prune_stats is None
            histories.append(tuner.tune(12))
        ref = [(r.config.key(), r.latency_us) for r in histories[0].records]
        for h in histories[1:]:
            assert [(r.config.key(), r.latency_us) for r in h.records] == ref

    def test_model_assisted_off_matches_default(self):
        spec = SPECS[0]
        space = small_space(spec)
        runs = []
        for kwargs in ({}, {"prune_ratio": None}):
            tuner = ModelAssistedXGBTuner(
                spec, space, measurer=Measurer(A100), seed=7, **kwargs
            )
            runs.append(tuner.tune(10))
        assert [r.config.key() for r in runs[0].records] == [
            r.config.key() for r in runs[1].records
        ]

    def test_tuner_prune_shrinks_space_and_records_stats(self):
        spec = SPECS[0]
        space = small_space(spec)
        tuner = GridSearchTuner(spec, space, measurer=Measurer(A100), prune_ratio=1.5)
        assert tuner.prune_stats is not None
        assert len(tuner.space) == tuner.prune_stats.n_kept < len(space)
        history = tuner.tune(len(tuner.space))
        # every measured config survived the cut
        kept = {c.key() for c in tuner.space}
        assert all(r.config.key() in kept for r in history.records)


class TestSweepIntegration:
    def test_sweep_prune_positions_align(self):
        spec = SPECS[0]
        space = small_space(spec)
        full = Measurer(A100).sweep(spec, space)
        measurer = Measurer(A100)
        pruned = measurer.sweep(spec, space, prune_ratio=1.5)
        assert len(pruned) == len(space)
        stats = measurer.last_prune_stats
        assert stats is not None and stats.n_kept < stats.n_total
        kept = {c.key() for c in prune_space(spec, space, A100, ratio=1.5)[0]}
        n_failed_at_pruned = 0
        for cfg, lat, ref in zip(space, pruned, full):
            if cfg.key() in kept:
                assert lat == ref
            else:
                assert lat is FAILED or lat == FAILED
                n_failed_at_pruned += 1
        assert n_failed_at_pruned == stats.n_total - stats.n_kept
        assert measurer.telemetry.n_pruned == n_failed_at_pruned
        assert "pruned by the analytical model" in measurer.telemetry.summary()

    def test_sweep_without_prune_has_no_stats(self):
        spec = SPECS[1]
        measurer = Measurer(A100)
        measurer.sweep(spec, small_space(spec))
        assert measurer.last_prune_stats is None
        assert measurer.telemetry.n_pruned == 0
        assert "pruned" not in measurer.telemetry.summary()

"""Memoization of enumerate_space / restrict_space.

Tuners, benchmarks and the CLI all re-enumerate the same (spec, gpu,
options) triples; the cache must hand back equal results without letting
callers alias (and mutate) each other's lists.
"""

from repro.gpusim import A100, V100
from repro.tensor import GemmSpec
from repro.tuning import SpaceOptions, clear_space_caches, enumerate_space, restrict_space
from repro.tuning.space import _ENUM_CACHE_SIZE, _enum_cache, _restrict_cache

SPEC = GemmSpec("cache_mm", 1, 256, 256, 256)


def setup_function(_):
    clear_space_caches()


def test_repeat_enumeration_is_cached_and_equal():
    first = enumerate_space(SPEC, A100)
    assert len(_enum_cache) == 1
    second = enumerate_space(SPEC, A100)
    assert second == first
    assert second is not first  # fresh list per call


def test_cached_list_is_mutation_safe():
    first = enumerate_space(SPEC, A100)
    first.clear()
    assert enumerate_space(SPEC, A100) != first


def test_cache_key_distinguishes_gpu_and_options():
    a = enumerate_space(SPEC, A100)
    b = enumerate_space(SPEC, V100)
    c = enumerate_space(SPEC, A100, options=SpaceOptions(max_size=40))
    assert len(_enum_cache) == 3
    assert len(c) <= 40 < len(a)
    assert a is not b


def test_restrict_space_cached():
    space = enumerate_space(SPEC, A100)
    first = restrict_space(space, "alcop")
    assert len(_restrict_cache) == 1
    second = restrict_space(space, "alcop")
    assert second == first and second is not first
    restrict_space(space, "tvm")
    assert len(_restrict_cache) == 2


def test_clear_space_caches():
    enumerate_space(SPEC, A100)
    restrict_space(enumerate_space(SPEC, A100), "alcop")
    clear_space_caches()
    assert not _enum_cache and not _restrict_cache


def test_lru_bound():
    for k in range(_ENUM_CACHE_SIZE + 8):
        enumerate_space(GemmSpec(f"lru{k}", 1, 256, 256, 64 * (k + 1)), A100)
    assert len(_enum_cache) == _ENUM_CACHE_SIZE

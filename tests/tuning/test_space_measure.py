"""Tests for design-space enumeration, measurement harness and records."""

import math

import pytest

from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import (
    FAILED,
    Measurer,
    SpaceOptions,
    TuneHistory,
    best_in_top_k,
    enumerate_space,
    restrict_space,
)


SPEC = GemmSpec("mm", 1, 512, 512, 512)


class TestSpace:
    def test_all_configs_tile_problem(self):
        for cfg in enumerate_space(SPEC):
            assert SPEC.m % cfg.block_m == 0
            assert SPEC.n % cfg.block_n == 0
            assert SPEC.k % cfg.block_k == 0

    def test_deterministic_order(self):
        assert [c.key() for c in enumerate_space(SPEC)] == [
            c.key() for c in enumerate_space(SPEC)
        ]

    def test_contains_unpipelined_and_pipelined(self):
        stages = {(c.smem_stages, c.reg_stages) for c in enumerate_space(SPEC)}
        assert (1, 1) in stages and (4, 2) in stages

    def test_launchable_only_filter(self):
        full = enumerate_space(SPEC)
        filtered = enumerate_space(SPEC, options=SpaceOptions(launchable_only=True))
        assert 0 < len(filtered) < len(full)

    def test_max_size_subsampling(self):
        capped = enumerate_space(SPEC, options=SpaceOptions(max_size=100))
        assert len(capped) <= 100
        # still spans pipelining variants
        assert len({c.smem_stages for c in capped}) > 1

    def test_warp_limits(self):
        for cfg in enumerate_space(SPEC, options=SpaceOptions(max_warps=4)):
            assert cfg.warps_per_block <= 4

    def test_empty_space_raises(self):
        with pytest.raises(ValueError, match="empty"):
            enumerate_space(GemmSpec("bad", 1, 7, 7, 7))

    def test_variant_subspaces(self):
        space = enumerate_space(SPEC)
        tvm = restrict_space(space, "tvm")
        assert all(c.smem_stages == 1 and c.reg_stages == 1 for c in tvm)
        db = restrict_space(space, "tvm-db")
        assert all(c.smem_stages <= 2 and c.reg_stages == 1 for c in db)
        no_ml = restrict_space(space, "alcop-no-ml")
        assert all(c.reg_stages == 1 for c in no_ml)
        assert any(c.smem_stages == 4 for c in no_ml)
        assert restrict_space(space, "alcop") == space

    def test_subspace_nesting(self):
        space = enumerate_space(SPEC)
        tvm = {c.key() for c in restrict_space(space, "tvm")}
        db = {c.key() for c in restrict_space(space, "tvm-db")}
        no_ml = {c.key() for c in restrict_space(space, "alcop-no-ml")}
        assert tvm < db < no_ml

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            restrict_space(enumerate_space(SPEC), "cutlass")


class TestMeasurer:
    def test_caching(self):
        m = Measurer(via_ir=False)
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        a = m.measure(SPEC, cfg)
        n = m.n_compiled
        b = m.measure(SPEC, cfg)
        assert a == b and m.n_compiled == n

    def test_failed_config_returns_inf(self):
        m = Measurer(via_ir=False)
        bad = TileConfig(256, 256, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=4)
        assert math.isinf(m.measure(GemmSpec("big", 1, 512, 512, 512), bad))

    def test_via_ir_and_static_agree(self):
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16, smem_stages=3, reg_stages=2)
        ir_lat = Measurer(via_ir=True).measure(SPEC, cfg)
        st_lat = Measurer(via_ir=False).measure(SPEC, cfg)
        assert ir_lat == pytest.approx(st_lat)

    def test_best_skips_failures(self):
        m = Measurer(via_ir=False)
        space = enumerate_space(SPEC, options=SpaceOptions(max_size=60))
        cfg, lat = m.best(SPEC, space)
        assert math.isfinite(lat)


class TestRecords:
    def test_best_curve(self):
        h = TuneHistory()
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        for lat in (100.0, 50.0, FAILED, 80.0):
            h.append(cfg, lat)
        assert h.best_latency_at(1) == 100.0
        assert h.best_latency_at(2) == 50.0
        assert h.best_latency_at(4) == 50.0
        assert h.normalized_curve([1, 2], exhaustive_best_us=50.0) == [0.5, 1.0]

    def test_all_failed_curve_is_zero(self):
        h = TuneHistory()
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        h.append(cfg, FAILED)
        assert h.normalized_curve([1], 10.0) == [0.0]
        assert h.best_config_at(1) is None

    def test_best_in_top_k(self):
        assert best_in_top_k([100.0, 50.0, 25.0], 2, 25.0) == 0.5
        assert best_in_top_k([100.0, 50.0, 25.0], 3, 25.0) == 1.0
        assert best_in_top_k([FAILED, FAILED], 2, 25.0) == 0.0

    def test_zero_latency_does_not_divide_by_zero(self):
        """A zero/denormal simulated latency must clamp, not raise or inf."""
        h = TuneHistory()
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        h.append(cfg, 0.0)
        (ratio,) = h.normalized_curve([1], exhaustive_best_us=10.0)
        assert math.isfinite(ratio)
        assert math.isfinite(best_in_top_k([0.0, 5e-324], 2, 10.0))

    def test_infinite_exhaustive_best_yields_zero(self):
        h = TuneHistory()
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        h.append(cfg, 50.0)
        assert h.normalized_curve([1], exhaustive_best_us=math.inf) == [0.0]
        assert best_in_top_k([50.0], 1, math.inf) == 0.0

    def test_save_load_round_trip_with_failures(self, tmp_path):
        from repro.tuning.record import load_history, save_history

        h = TuneHistory()
        cfg = TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16)
        for lat in (120.0, FAILED, 80.5, FAILED):
            h.append(cfg, lat)
        path = tmp_path / "log.json"
        save_history(h, path)
        back = load_history(path)
        assert [r.latency_us for r in back.records] == [120.0, FAILED, 80.5, FAILED]
        assert [r.failed for r in back.records] == [False, True, False, True]
        assert [r.trial for r in back.records] == [0, 1, 2, 3]
        assert [r.config for r in back.records] == [r.config for r in h.records]

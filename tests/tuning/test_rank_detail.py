"""Detailed tests for analytical ranking and tuner edge cases."""

import math

import pytest

from repro.perfmodel import bottleneck_latency, predict_latency
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import (
    AnalyticalOnlyTuner,
    GridSearchTuner,
    Measurer,
    SpaceOptions,
    enumerate_space,
)
from repro.tuning.tuners import analytical_rank

SPEC = GemmSpec("rank", 1, 512, 512, 1024)
SPACE = enumerate_space(SPEC, options=SpaceOptions(max_size=150))


class TestAnalyticalRank:
    def test_ranked_by_prediction(self):
        order = analytical_rank(SPEC, SPACE)
        preds = []
        for i in order:
            try:
                from repro.perfmodel import timing_spec_from_config

                preds.append(predict_latency(timing_spec_from_config(SPEC, SPACE[i])))
            except Exception:
                preds.append(math.inf)
        finite = [p for p in preds if math.isfinite(p)]
        assert finite == sorted(finite)

    def test_rejected_configs_rank_last(self):
        # Build a space with a guaranteed-unlaunchable config appended.
        bad = TileConfig(256, 256, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=4)
        space = SPACE + [bad]
        order = analytical_rank(SPEC, space)
        assert order[-1] == len(space) - 1

    def test_custom_model_changes_order(self):
        a = analytical_rank(SPEC, SPACE, model=predict_latency)
        b = analytical_rank(SPEC, SPACE, model=bottleneck_latency)
        assert a != b

    def test_rank_deterministic(self):
        assert analytical_rank(SPEC, SPACE) == analytical_rank(SPEC, SPACE)


class TestTunerEdgeCases:
    def test_budget_larger_than_space(self):
        meas = Measurer(via_ir=False)
        small = SPACE[:12]
        h = GridSearchTuner(SPEC, small, measurer=meas).tune(50)
        assert len(h) == 12  # exhausted, not stuck

    def test_single_config_space(self):
        meas = Measurer(via_ir=False)
        launchable = [c for c in SPACE if meas.measure(SPEC, c) != math.inf][:1]
        h = AnalyticalOnlyTuner(SPEC, launchable, measurer=meas).tune(5)
        assert len(h) == 1
        assert h.best_config_at(1) is not None

    def test_k_zero_rejected(self):
        from repro.tuning import TuneHistory

        with pytest.raises(ValueError):
            TuneHistory().best_latency_at(0)

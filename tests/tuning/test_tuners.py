"""Tests for the four tuning methods and the SA sampler."""

import numpy as np
import pytest

from repro.tensor import GemmSpec
from repro.tuning import (
    AnalyticalOnlyTuner,
    GridSearchTuner,
    Measurer,
    ModelAssistedXGBTuner,
    RandomSearchTuner,
    SimulatedAnnealingSampler,
    SpaceOptions,
    Tuner,
    XGBTuner,
    analytical_rank,
    enumerate_space,
)

SPEC = GemmSpec("mm", 1, 512, 768, 1024)
SPACE = enumerate_space(SPEC, options=SpaceOptions(max_size=400))
MEAS = Measurer(via_ir=False)
BEST = MEAS.best(SPEC, SPACE)[1]


class TestSampler:
    def test_proposals_distinct_and_in_space(self):
        sampler = SimulatedAnnealingSampler(SPACE, seed=0)
        keys = {c.key() for c in SPACE}
        out = sampler.propose(lambda cs: np.zeros(len(cs)), 16)
        assert len({c.key() for c in out}) == 16
        assert all(c.key() in keys for c in out)

    def test_exclusion_respected(self):
        sampler = SimulatedAnnealingSampler(SPACE, seed=0)
        exclude = {c.key() for c in SPACE[:200]}
        out = sampler.propose(lambda cs: np.zeros(len(cs)), 8, exclude=exclude)
        assert all(c.key() not in exclude for c in out)

    def test_score_guides_proposals(self):
        """With a sharp score function, proposals concentrate near argmax."""
        target = SPACE[137]

        def score(cs):
            return np.array(
                [-sum(abs(np.log2(a) - np.log2(b))
                      for a, b in zip(c.key()[:6], target.key()[:6])) for c in cs]
            )

        sampler = SimulatedAnnealingSampler(SPACE, seed=1, n_iters=120)
        out = sampler.propose(score, 8, seeds=[SPACE[0]])
        assert max(score(out)) >= score([target])[0] - 2.0

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSampler([])


class TestTunerBasics:
    def test_grid_measures_in_order(self):
        t = GridSearchTuner(SPEC, SPACE, measurer=MEAS)
        h = t.tune(5)
        assert [r.config.key() for r in h.records] == [c.key() for c in SPACE[:5]]

    def test_random_is_permutation(self):
        t = RandomSearchTuner(SPEC, SPACE, measurer=MEAS, seed=3)
        h = t.tune(20)
        keys = [r.config.key() for r in h.records]
        assert len(set(keys)) == 20

    def test_budget_respected(self):
        for cls in (GridSearchTuner, AnalyticalOnlyTuner):
            assert len(cls(SPEC, SPACE, measurer=MEAS).tune(17)) == 17

    def test_xgb_no_duplicate_measurements(self):
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0)
        h = t.tune(30)
        keys = [r.config.key() for r in h.records]
        assert len(set(keys)) == len(keys)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            GridSearchTuner(SPEC, [], measurer=MEAS)

    def test_analytical_rank_puts_rejects_last(self):
        order = analytical_rank(SPEC, SPACE)
        assert len(order) == len(SPACE)
        # ranks are a permutation
        assert sorted(order) == list(range(len(SPACE)))


class TestNoDuplicateTrials:
    """A tuner must never burn trial budget re-recording a measured config."""

    def test_stubborn_proposer_is_deduped_and_terminates(self):
        class StubbornTuner(Tuner):
            """Always re-proposes the same two configs."""

            def _next_batch(self, n):
                return [SPACE[0], SPACE[0], SPACE[1]]

        h = StubbornTuner(SPEC, SPACE, measurer=MEAS).tune(10)
        keys = [r.config.key() for r in h.records]
        assert keys == [SPACE[0].key(), SPACE[1].key()]

    def test_every_tuner_records_distinct_configs(self):
        for cls in (
            GridSearchTuner,
            RandomSearchTuner,
            XGBTuner,
            AnalyticalOnlyTuner,
            ModelAssistedXGBTuner,
        ):
            h = cls(SPEC, SPACE, measurer=MEAS, seed=2).tune(24)
            keys = [r.config.key() for r in h.records]
            assert len(set(keys)) == len(keys) == 24, cls.name


class TestTunerQuality:
    def test_all_tuners_beat_nothing(self):
        for cls in (XGBTuner, AnalyticalOnlyTuner, ModelAssistedXGBTuner):
            h = cls(SPEC, SPACE, measurer=MEAS, seed=0).tune(40)
            assert h.normalized_curve([40], BEST)[0] > 0.7, cls.name

    def test_model_assisted_first_batch_is_analytical_order(self):
        t = ModelAssistedXGBTuner(SPEC, SPACE, measurer=MEAS, seed=0)
        h = t.tune(8)
        expected = analytical_rank(SPEC, SPACE)[:8]
        assert [r.config.key() for r in h.records] == [SPACE[i].key() for i in expected]

    def test_model_assisted_at_least_matches_analytical_at_10(self):
        a = AnalyticalOnlyTuner(SPEC, SPACE, measurer=MEAS, seed=0).tune(10)
        m = ModelAssistedXGBTuner(SPEC, SPACE, measurer=MEAS, seed=0).tune(10)
        assert m.best_latency_at(10) <= a.best_latency_at(10) * 1.001

    def test_xgb_improves_with_budget(self):
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=1)
        h = t.tune(48)
        assert h.best_latency_at(48) <= h.best_latency_at(8)

    def test_seeded_determinism(self):
        h1 = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=7).tune(24)
        h2 = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=7).tune(24)
        assert [r.config.key() for r in h1.records] == [r.config.key() for r in h2.records]

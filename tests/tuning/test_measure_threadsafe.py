"""Thread-safety of the shared measurer and its supporting caches.

The serve daemon hands one :class:`Measurer` to several request-worker
threads at once. These tests pin the guarantees that makes safe: telemetry
counters accumulate without lost updates, the measurement cache and the
design-space memoization tolerate concurrent access, and the stage-profiling
collector stack is thread-local (one request's collector never sees another
request's stages)."""

import threading

from repro.core import profiling
from repro.gpusim.config import A100
from repro.tensor import GemmSpec
from repro.tuning import Measurer, SpaceOptions, enumerate_space
from repro.tuning.space import clear_space_caches

SPEC = GemmSpec("mm", 1, 256, 256, 256)


def _space(n=8):
    return enumerate_space(SPEC, options=SpaceOptions(max_size=n))


def _run_threads(n, fn):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        barrier.wait()
        try:
            fn(i)
        except Exception as e:
            errors.append(e)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestTelemetryCounters:
    def test_concurrent_fresh_measures_count_exactly(self):
        """8 threads × distinct configs: n_compiled is the exact total —
        a lost update under racing `+= 1` would undercount."""
        measurer = Measurer(A100)
        space = _space(16)
        per_thread = len(space) // 8

        def work(i):
            for cfg in space[i * per_thread:(i + 1) * per_thread]:
                measurer.measure(SPEC, cfg)

        _run_threads(8, work)
        assert measurer.telemetry.n_compiled == per_thread * 8
        assert measurer.telemetry.compile_time_s > 0

    def test_concurrent_cache_hits_count_exactly(self):
        measurer = Measurer(A100)
        space = _space(4)
        for cfg in space:  # prepopulate the in-memory cache
            measurer.measure(SPEC, cfg)
        compiled_before = measurer.telemetry.n_compiled

        def work(i):
            for _ in range(5):
                for cfg in space:
                    measurer.measure(SPEC, cfg)

        _run_threads(8, work)
        t = measurer.telemetry
        assert t.n_compiled == compiled_before  # warm: nothing recompiled
        assert t.memory_hits == len(space) + 8 * 5 * len(space) - len(space)

    def test_concurrent_measures_agree_with_serial(self):
        space = _space(6)
        serial = {cfg.key(): Measurer(A100).measure(SPEC, cfg) for cfg in space}
        measurer = Measurer(A100)
        results = {}
        lock = threading.Lock()

        def work(i):
            cfg = space[i % len(space)]
            latency = measurer.measure(SPEC, cfg)
            with lock:
                results.setdefault(cfg.key(), set()).add(latency)

        _run_threads(12, work)
        for key, latencies in results.items():
            assert latencies == {serial[key]}


class TestSpaceCacheThreadSafety:
    def test_concurrent_enumeration_identical(self):
        clear_space_caches()
        spaces = [None] * 8

        def work(i):
            spaces[i] = enumerate_space(SPEC, A100, SpaceOptions(max_size=32))

        _run_threads(8, work)
        first = [c.key() for c in spaces[0]]
        assert all([c.key() for c in s] == first for s in spaces[1:])


class TestThreadLocalProfiling:
    def test_collectors_do_not_leak_across_threads(self):
        """A collector active on thread A must not receive stages timed on
        thread B — per-request profiles would otherwise blend together."""
        seen = {}

        def work(i):
            times = profiling.StageTimes()
            with profiling.collect(times):
                with profiling.stage(f"stage-{i}"):
                    pass
            seen[i] = set(times)

        _run_threads(6, work)
        for i, stages in seen.items():
            assert stages == {f"stage-{i}"}

    def test_shared_staget_times_accumulates_from_many_threads(self):
        shared = profiling.StageTimes()

        def work(i):
            with profiling.collect(shared):
                for _ in range(50):
                    with profiling.stage("s"):
                        pass

        _run_threads(8, work)
        assert shared["s"] > 0

    def test_add_is_atomic(self):
        times = profiling.StageTimes()

        def work(i):
            for _ in range(1000):
                times.add("s", 1.0)

        _run_threads(8, work)
        assert times["s"] == 8000.0

    def test_merge_self_does_not_deadlock(self):
        times = profiling.StageTimes()
        times.add("s", 1.0)
        times.merge(times)
        assert times["s"] == 2.0

"""Tests for tuner warm starting from saved logs (transfer tuning)."""

import numpy as np

from repro.tensor import GemmSpec
from repro.tuning import (
    Measurer,
    SpaceOptions,
    TuneHistory,
    XGBTuner,
    enumerate_space,
)
from repro.tuning.record import load_history, save_history

SPEC = GemmSpec("warm", 1, 512, 768, 1024)
SPACE = enumerate_space(SPEC, options=SpaceOptions(max_size=250))
MEAS = Measurer(via_ir=False)


def _prior_history(n=40, seed=3):
    """A finished tuning session to transfer from."""
    rng = np.random.default_rng(seed)
    h = TuneHistory()
    for i in rng.permutation(len(SPACE))[:n]:
        cfg = SPACE[int(i)]
        h.append(cfg, MEAS.measure(SPEC, cfg))
    return h


class TestWarmStart:
    def test_model_fitted_before_first_measurement(self):
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=_prior_history())
        assert t.model.is_fitted

    def test_first_batch_is_model_guided_not_random(self):
        warm = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=_prior_history())
        cold = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0)
        wb = [c.key() for c in warm._next_batch(8)]
        cb = [c.key() for c in cold._next_batch(8)]
        assert wb != cb

    def test_warm_start_not_worse_early(self):
        prior = _prior_history()
        _, best = MEAS.best(SPEC, SPACE)
        warm = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=1, warm_start=prior).tune(16)
        cold = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=1).tune(16)
        assert warm.best_latency_at(16) <= cold.best_latency_at(16) * 1.15

    def test_round_trip_through_log_file(self, tmp_path):
        prior = _prior_history(n=10)
        path = tmp_path / "log.json"
        save_history(prior, path)
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=load_history(path))
        assert t.model.is_fitted

    def test_empty_history_is_noop(self):
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=TuneHistory())
        assert not t.model.is_fitted

    def test_best_prior_config_becomes_seed(self):
        prior = _prior_history()
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=prior)
        best = prior.best_config_at(len(prior))
        assert any(s.key() == best.key() for s in t._prior_seeds)

    def test_warm_start_with_failed_trials(self):
        """Transferred logs carry inf latencies for compile failures; they
        must absorb as floor-score samples, not poison the fit."""
        import math

        from repro.tuning import FAILED

        prior = _prior_history(n=20)
        for cfg in SPACE[:5]:
            prior.append(cfg, FAILED)
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=prior)
        assert t.model.is_fitted
        assert np.isfinite(t._pseudo_y).all()
        h = t.tune(8)
        assert len(h) == 8
        assert math.isfinite(h.best_latency_at(8))

    def test_warm_start_from_all_failed_history(self):
        from repro.tuning import FAILED, TuneHistory

        prior = TuneHistory()
        for cfg in SPACE[:6]:
            prior.append(cfg, FAILED)
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=prior)
        assert t.model.is_fitted
        assert len(t.tune(8)) == 8

    def test_warm_start_round_trip_preserves_failures(self, tmp_path):
        import math

        from repro.tuning import FAILED

        prior = _prior_history(n=6)
        prior.append(SPACE[0], FAILED)
        path = tmp_path / "log.json"
        save_history(prior, path)
        loaded = load_history(path)
        assert math.isinf(loaded.records[-1].latency_us)
        t = XGBTuner(SPEC, SPACE, measurer=MEAS, seed=0, warm_start=loaded)
        assert t.model.is_fitted

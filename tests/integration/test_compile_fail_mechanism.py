"""The Fig. 12 'compile fail' mechanism, isolated.

The paper marks model-ranked schedule lists as 'compile fail' when the
first k proposals all fail to build. Only the bottleneck model can do
this: it is blind to occupancy and launchability, so on a space where the
resource-heaviest schedules look fastest to it, its top picks are
unbuildable. The occupancy-aware analytical model rejects those configs up
front and ranks them last.
"""

import math

from repro.gpusim.occupancy import CompileError, check_launchable
from repro.perfmodel import bottleneck_latency, predict_latency
from repro.schedule import TileConfig
from repro.tensor import GemmSpec
from repro.tuning import Measurer, best_in_top_k
from repro.tuning.tuners import analytical_rank

SPEC = GemmSpec("cf", 1, 1024, 1024, 4096)

#: A crafted space: a handful of monstrous (unlaunchable) tiles that a
#: full-utilization model loves, plus modest real ones.
MONSTERS = [
    TileConfig(256, 256, 64, warp_m=64, warp_n=64, chunk_k=16, smem_stages=s, reg_stages=2)
    for s in (4, 5, 6)
]
REASONABLE = [
    TileConfig(128, 128, 32, warp_m=64, warp_n=64, chunk_k=16, smem_stages=3, reg_stages=2),
    TileConfig(64, 64, 32, warp_m=32, warp_n=32, chunk_k=16, smem_stages=3, reg_stages=1),
    TileConfig(64, 128, 32, warp_m=32, warp_n=64, chunk_k=16, smem_stages=2, reg_stages=1),
]
SPACE = MONSTERS + REASONABLE


def test_monsters_do_not_launch():
    for cfg in MONSTERS:
        r = cfg.resource_usage()
        try:
            check_launchable(
                __import__("repro.gpusim", fromlist=["A100"]).A100,
                r.smem_bytes,
                r.regs_per_thread,
                r.threads,
            )
            raised = False
        except CompileError:
            raised = True
        assert raised, cfg


def test_bottleneck_top_picks_compile_fail():
    meas = Measurer(via_ir=False)
    lats = meas.sweep(SPEC, SPACE)
    best = min(x for x in lats if math.isfinite(x))
    order = analytical_rank(SPEC, SPACE, model=bottleneck_latency)
    ranked = [lats[i] for i in order]
    # The bottleneck model's first picks are the unbuildable monsters.
    assert best_in_top_k(ranked, len(MONSTERS), best) == 0.0  # 'compile fail'


def test_analytical_ranks_unlaunchable_last():
    meas = Measurer(via_ir=False)
    lats = meas.sweep(SPEC, SPACE)
    best = min(x for x in lats if math.isfinite(x))
    order = analytical_rank(SPEC, SPACE, model=predict_latency)
    ranked = [lats[i] for i in order]
    assert best_in_top_k(ranked, 1, best) > 0.0  # first pick builds
    assert all(math.isinf(lats[i]) for i in order[-len(MONSTERS):])

"""Integration tests: whole-compiler golden paths at reduced scale.

These run the same pipelines as the benchmarks on small spaces so the
repository's headline claims stay true under `pytest tests/`.
"""

import numpy as np
import pytest

from repro.baselines import LibraryKernels, ablation_compilers
from repro.core import AlcopCompiler
from repro.ops import bmm_spec, matmul_spec, reference_bmm
from repro.perfmodel import predict_latency
from repro.tuning import (
    Measurer,
    ModelAssistedXGBTuner,
    SpaceOptions,
    enumerate_space,
    restrict_space,
)
from repro.tuning.record import best_in_top_k
from repro.tuning.tuners import analytical_rank

OPTS = SpaceOptions(max_size=200)
MEAS = Measurer(via_ir=False)


class TestHeadlineClaims:
    def test_pipelining_speedup_on_latency_bound_gemm(self):
        """ALCOP must clearly beat TVM on the paper's favourite shape."""
        spec = matmul_spec("int_rn50fc", 1024, 64, 2048)
        space = enumerate_space(spec, options=OPTS)
        _, tvm = MEAS.best(spec, restrict_space(space, "tvm"))
        _, alcop = MEAS.best(spec, restrict_space(space, "alcop"))
        assert tvm / alcop > 1.3

    def test_ablation_ordering(self):
        spec = matmul_spec("int_fc2", 512, 768, 3072)
        space = enumerate_space(spec, options=OPTS)
        lat = {v: MEAS.best(spec, restrict_space(space, v))[1]
               for v in ("tvm", "tvm-db", "alcop-no-ml", "alcop")}
        assert lat["alcop"] <= lat["alcop-no-ml"] <= lat["tvm-db"] <= lat["tvm"]

    def test_model_ranking_beats_bottleneck(self):
        from repro.perfmodel import bottleneck_latency

        spec = matmul_spec("int_fc1", 512, 3072, 768)
        space = enumerate_space(spec, options=OPTS)
        lats = MEAS.sweep(spec, space)
        best = min(x for x in lats if x != float("inf"))
        scores = {}
        for label, model in (("anal", predict_latency), ("bneck", bottleneck_latency)):
            order = analytical_rank(spec, space, model=model)
            scores[label] = best_in_top_k([lats[i] for i in order], 25, best)
        assert scores["anal"] >= scores["bneck"]

    def test_tuner_reaches_near_best_in_50(self):
        spec = matmul_spec("int_fc1b", 512, 3072, 768)
        space = enumerate_space(spec, options=OPTS)
        _, best = MEAS.best(spec, space)
        h = ModelAssistedXGBTuner(spec, space, measurer=MEAS, seed=0).tune(50)
        assert h.normalized_curve([50], best)[0] > 0.9

    def test_library_on_par(self):
        spec = matmul_spec("int_2048", 2048, 2048, 2048)
        space = enumerate_space(spec, options=OPTS)
        _, alcop = MEAS.best(spec, space)
        lib = LibraryKernels().gemm_latency(spec)
        assert 0.7 < lib / alcop < 1.3


class TestFunctionalGoldenPath:
    def test_compiled_bmm_matches_reference(self):
        spec = bmm_spec("int_bmm", 3, 32, 16, 64)
        comp = AlcopCompiler(measurer=Measurer(), space_options=SpaceOptions(max_size=80))
        ck = comp.compile(spec)
        rng = np.random.default_rng(5)
        a = rng.standard_normal((3, 32, 64)).astype(np.float16)
        b = rng.standard_normal((3, 16, 64)).astype(np.float16)
        out = ck.run(a, b)
        np.testing.assert_allclose(
            out.astype(np.float32),
            reference_bmm(a, b).astype(np.float32),
            rtol=2e-2,
            atol=0.5,
        )

    def test_all_variants_functionally_identical(self):
        """Every compiler variant computes the same numbers — pipelining is
        a pure performance transformation."""
        spec = matmul_spec("int_small", 32, 32, 64)
        rng = np.random.default_rng(6)
        a = rng.standard_normal((32, 64)).astype(np.float16)
        b = rng.standard_normal((32, 64)).astype(np.float16)
        outs = []
        for name, comp in ablation_compilers(
            measurer=Measurer(), space_options=SpaceOptions(max_size=60)
        ).items():
            outs.append(comp.compile(spec).run(a, b))
        for other in outs[1:]:
            np.testing.assert_allclose(
                outs[0].astype(np.float32), other.astype(np.float32), rtol=2e-2, atol=0.5
            )

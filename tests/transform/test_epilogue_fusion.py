"""Tests for epilogue fusion (output-side elementwise chains)."""

import numpy as np

from repro.codegen import lower
from repro.interp import run_kernel
from repro.ir import validate_kernel
from repro.ir.analysis import collect_copies
from repro.schedule import Schedule, TileConfig, auto_schedule
from repro.tensor import GemmSpec, contraction, elementwise, placeholder
from repro.transform import apply_pipelining

CFG = TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=3, reg_stages=2)


def graph_with_epilogue(fns, m=32, n=32, k=64):
    spec = GemmSpec("epi", 1, m, n, k)
    a = placeholder("A", (m, k))
    b = placeholder("B", (n, k))
    out = contraction(a, b, spec)
    for fn in fns:
        out = elementwise(out, fn)
    return out, spec


class TestScheduleLevel:
    def test_epilogue_chain_detected(self):
        out, _ = graph_with_epilogue(["relu", "scale2"])
        sch = Schedule(out)
        assert sch.contraction is not None  # resolved through the chain
        assert sch.fuse_epilogue() == ["relu", "scale2"]
        assert sch.epilogue_fns == ["relu", "scale2"]

    def test_fuse_is_idempotent(self):
        out, _ = graph_with_epilogue(["relu"])
        sch = Schedule(out)
        sch.fuse_epilogue()
        assert sch.fuse_epilogue() == []
        assert sch.epilogue_fns == ["relu"]

    def test_no_epilogue_returns_empty(self):
        out, _ = graph_with_epilogue([])
        assert Schedule(out).fuse_epilogue() == []

    def test_auto_schedule_fuses(self):
        out, _ = graph_with_epilogue(["relu"])
        sch = auto_schedule(out, CFG)
        assert sch.epilogue_fns == ["relu"]
        assert len(sch.pipeline_marks) == 4  # pipelining unaffected


class TestLoweredSemantics:
    def _run(self, fns, np_epilogue):
        out, spec = graph_with_epilogue(fns)
        sch = auto_schedule(out, CFG)
        kernel = apply_pipelining(lower(sch))
        validate_kernel(kernel)
        rng = np.random.default_rng(3)
        a = rng.standard_normal((32, 64)).astype(np.float16)
        b = rng.standard_normal((32, 64)).astype(np.float16)
        got = run_kernel(kernel, {"A": a, "B": b}, mode="pipeline")["C"].astype(np.float32)
        ref = np_epilogue(a.astype(np.float32) @ b.astype(np.float32).T)
        np.testing.assert_allclose(got, ref, rtol=2e-2, atol=0.5)
        return kernel

    def test_relu_epilogue(self):
        kernel = self._run(["relu"], lambda x: np.maximum(x, 0))
        epilogue = [c for c in collect_copies(kernel.body) if c.annotations.get("epilogue")]
        assert epilogue and epilogue[0].annotations["fused_fn"] == ("relu",)

    def test_chained_epilogue_order(self):
        # relu then scale2 must not equal scale2 then relu on negative inputs.
        self._run(["relu", "scale2"], lambda x: 2 * np.maximum(x, 0))

    def test_epilogue_plus_operand_fusion(self):
        spec = GemmSpec("both", 1, 32, 32, 64)
        a = elementwise(placeholder("A", (32, 64)), "relu", name="A_f")
        b = placeholder("B", (32, 64))
        out = elementwise(contraction(a, b, spec), "scale2")
        sch = auto_schedule(out, CFG)
        assert sch.operand_fused_fn["a"] == "relu"
        assert sch.epilogue_fns == ["scale2"]
        kernel = apply_pipelining(lower(sch))
        rng = np.random.default_rng(4)
        av = rng.standard_normal((32, 64)).astype(np.float16)
        bv = rng.standard_normal((32, 64)).astype(np.float16)
        got = run_kernel(kernel, {"A": av, "B": bv}, mode="pipeline")["C"].astype(np.float32)
        ref = 2 * (np.maximum(av.astype(np.float32), 0) @ bv.astype(np.float32).T)
        np.testing.assert_allclose(got, ref, rtol=2e-2, atol=0.5)

    def test_epilogue_does_not_change_timing_spec(self):
        from repro.gpusim import extract_timing_spec

        out, spec = graph_with_epilogue(["relu"])
        k1 = apply_pipelining(lower(auto_schedule(out, CFG)))
        plain, _ = graph_with_epilogue([])
        k2 = apply_pipelining(lower(auto_schedule(plain, CFG)))
        t1, t2 = extract_timing_spec(k1), extract_timing_spec(k2)
        assert t1.epilogue_bytes == t2.epilogue_bytes
        assert t1.flops_chunk_tb == t2.flops_chunk_tb

"""Structural tests for the pipelining transformation (Fig. 7 fidelity)."""

import pytest

from repro.ir import For, IfThenElse, PipelineSync, Scope, SyncKind, format_kernel, validate_kernel
from repro.ir.analysis import collect, collect_allocates, collect_copies, collect_syncs
from repro.schedule import TileConfig
from repro.transform import apply_pipelining

from .conftest import build_kernel


def cfg(smem=3, reg=2):
    return TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8, smem_stages=smem, reg_stages=reg)


@pytest.fixture()
def pipelined():
    kernel, _ = build_kernel(m=32, n=32, k=64, cfg=cfg())
    return apply_pipelining(kernel)


class TestBufferExpansion:
    def test_stage_dimension_prepended(self, pipelined):
        shapes = {a.buffer.name: a.buffer.shape for a in collect_allocates(pipelined.body)}
        assert shapes["A_shared"] == (3, 16, 16)
        assert shapes["B_shared"] == (3, 16, 16)
        assert shapes["A_reg"] == (2, 16, 8)
        assert shapes["C_acc"] == (16, 16)  # untouched

    def test_pipelined_attr_set(self, pipelined):
        attrs = {a.buffer.name: a.attrs for a in collect_allocates(pipelined.body)}
        assert attrs["A_shared"]["pipelined"] is True
        assert "pipelined" not in attrs["C_acc"]

    def test_validates(self, pipelined):
        validate_kernel(pipelined)


class TestIndexShifting:
    def test_smem_producer_shifted(self, pipelined):
        text = format_kernel(pipelined)
        # stage rolls with shifted var; source wraps by the loop extent
        assert "A_shared[((ko + 2) % 3)" in text
        assert "(((ko + 2) % 4) * 16)" in text

    def test_reg_producer_carry_into_outer(self, pipelined):
        text = format_kernel(pipelined)
        # Fig. 7 line 26: outer variable advanced by the inner carry
        assert "A_shared[((ko + ((ki + 1) // 2)) % 3)" in text

    def test_consumer_stage_unshifted(self, pipelined):
        text = format_kernel(pipelined)
        assert "mma(C_acc" in text
        assert "A_reg[(ki % 2)" in text


class TestPrologue:
    def test_prologue_copy_count(self, pipelined):
        # smem: (3-1) stages x 2 buffers; reg: (2-1) x 2 buffers
        copies = collect_copies(pipelined.body)
        # main loop has 2 smem + 2 reg copies; epilogue 1
        prologue_async = [
            c for c in copies if c.is_async and not c.dst.free_vars() and not c.src.free_vars()
        ]
        # Prologue smem copies have constant offsets apart from block vars;
        # count instead via constant stage indices 0/1 in dst.
        assert len(copies) == 2 * 2 + 1 + (2 * 2 + 2)  # mains + epilogue + prologues

    def test_guarded_outer_wait_in_inner_loop(self, pipelined):
        guards = collect(pipelined.body, lambda s: isinstance(s, IfThenElse))
        assert len(guards) == 1
        guard = guards[0]
        assert isinstance(guard.then_body, PipelineSync)
        assert guard.then_body.kind is SyncKind.CONSUMER_WAIT
        assert guard.then_body.buffer.scope is Scope.SHARED

    def test_prologue_wait_before_inner_prologue(self, pipelined):
        # One consumer_wait on the smem leader appears outside any loop body
        # guard: the prologue wait for outer chunk 0.
        syncs = collect_syncs(pipelined.body)
        smem_waits = [
            s for s in syncs if s.kind is SyncKind.CONSUMER_WAIT and s.buffer.scope is Scope.SHARED
        ]
        assert len(smem_waits) == 2  # prologue wait + guarded in-loop wait


class TestSyncInjection:
    def test_sync_counts(self, pipelined):
        syncs = collect_syncs(pipelined.body)
        by = {}
        for s in syncs:
            by.setdefault((s.buffer.scope, s.kind), 0)
            by[(s.buffer.scope, s.kind)] += 1
        # smem: 2 prologue acquires + 1 main acquire (static stmt count)
        assert by[(Scope.SHARED, SyncKind.PRODUCER_ACQUIRE)] == 3
        assert by[(Scope.SHARED, SyncKind.PRODUCER_COMMIT)] == 3
        assert by[(Scope.SHARED, SyncKind.CONSUMER_RELEASE)] == 1
        assert by[(Scope.REGISTER, SyncKind.PRODUCER_ACQUIRE)] == 2
        assert by[(Scope.REGISTER, SyncKind.CONSUMER_WAIT)] == 1

    def test_loop_annotated(self, pipelined):
        loops = collect(
            pipelined.body,
            lambda s: isinstance(s, For) and s.annotations.get("software_pipelined"),
        )
        assert len(loops) == 2

    def test_group_info_published(self, pipelined):
        groups = pipelined.attrs["pipeline_groups"]
        assert len(groups) == 2
        scopes = {g.scope for g in groups}
        assert scopes == {Scope.SHARED, Scope.REGISTER}
        smem = next(g for g in groups if g.scope is Scope.SHARED)
        assert smem.stages == 3
        assert {b.name for b in smem.buffers} == {"A_shared", "B_shared"}


class TestVariants:
    def test_no_hints_is_identity_modulo_attrs(self):
        kernel, _ = build_kernel(cfg=TileConfig(16, 16, 16, warp_m=8, warp_n=8, chunk_k=8))
        out = apply_pipelining(kernel)
        assert out.attrs["pipeline_groups"] == []
        assert format_kernel(out).replace("pipeline_groups", "") == format_kernel(kernel).replace(
            "pipeline_groups", ""
        )

    def test_single_level_no_guard(self):
        kernel, _ = build_kernel(cfg=cfg(smem=3, reg=1))
        out = apply_pipelining(kernel)
        guards = collect(out.body, lambda s: isinstance(s, IfThenElse))
        assert guards == []
        validate_kernel(out)

    def test_reg_only_has_drain(self):
        kernel, _ = build_kernel(cfg=cfg(smem=1, reg=2))
        out = apply_pipelining(kernel)
        syncs = collect_syncs(out.body)
        releases = [s for s in syncs if s.kind is SyncKind.CONSUMER_RELEASE]
        # in-loop release + drain release
        assert len(releases) == 2
        validate_kernel(out)

    def test_smem_only_no_drain(self):
        kernel, _ = build_kernel(cfg=cfg(smem=3, reg=1))
        out = apply_pipelining(kernel)
        syncs = collect_syncs(out.body)
        waits = [s for s in syncs if s.kind is SyncKind.CONSUMER_WAIT]
        assert len(waits) == 1  # only the in-loop wait; no prologue/drain waits

    def test_double_buffering_stage_two(self):
        kernel, _ = build_kernel(cfg=cfg(smem=2, reg=1))
        out = apply_pipelining(kernel)
        text = format_kernel(out)
        assert "A_shared[((ko + 1) % 2)" in text

    def test_batched_kernel_transforms(self):
        kernel, _ = build_kernel(batch=2, k=64, cfg=cfg())
        out = apply_pipelining(kernel)
        validate_kernel(out)
        assert len(out.attrs["pipeline_groups"]) == 2
